//! Differential oracle: every `.lpt` decode path must agree.
//!
//! For each of the six workload families, the recorded trace is
//! serialized once and decoded three ways — the streaming event
//! iterator, the chunked SoA decoder, and the mmap-backed zero-copy
//! reader — and the decoded event streams must be identical. The CI
//! `decode` job runs this suite twice, with and without
//! `LIFEPRED_NO_MMAP=1`, so both the mapped and heap-fallback flavors
//! of [`TraceMap`] are covered.

use lifepred_trace::{ChunkEvent, ChunkSource, EventChunk, CHUNK_EVENTS, POOLED_CHUNK_EVENTS};
use lifepred_tracefile::{trace_to_vec, MappedTrace, TraceEvent, TraceMap, TraceReader};
use lifepred_workloads::{all_workloads, record};

/// One decoded event in path-neutral form: `(is_alloc, record, size)`.
type Flat = (bool, u64, u32);

fn via_iterator(bytes: &[u8]) -> Vec<Flat> {
    let events = TraceReader::new(bytes)
        .expect("open")
        .into_events()
        .expect("events");
    events
        .map(|event| match event.expect("decode") {
            TraceEvent::Alloc { record, size, .. } => (true, record, size),
            TraceEvent::Free { record, .. } => (false, record, 0),
        })
        .collect()
}

fn drain<C: ChunkSource>(mut source: C, chunk_capacity: usize) -> Vec<Flat>
where
    C::Error: std::fmt::Debug,
{
    let mut chunk = EventChunk::with_capacity(chunk_capacity);
    let mut flat = Vec::new();
    while source.next_chunk(&mut chunk).expect("chunk") {
        assert!(chunk.len() <= chunk.target());
        for event in chunk.events() {
            flat.push(match event {
                ChunkEvent::Alloc { record, size } => (true, record as u64, size),
                ChunkEvent::Free { record } => (false, record as u64, 0),
            });
        }
    }
    flat
}

fn via_chunked(bytes: &[u8], chunk_capacity: usize) -> Vec<Flat> {
    let chunks = TraceReader::new(bytes)
        .expect("open")
        .into_event_chunks()
        .expect("chunks");
    drain(chunks, chunk_capacity)
}

fn via_mapped(bytes: &[u8], chunk_capacity: usize) -> Vec<Flat> {
    let mapped = MappedTrace::from_map(TraceMap::from_vec(bytes.to_vec())).expect("open");
    drain(mapped.events(), chunk_capacity)
}

#[test]
fn all_decode_paths_agree_on_every_workload() {
    for workload in all_workloads() {
        let trace = record(workload.as_ref(), 0, lifepred_trace::shared_registry());
        let bytes = trace_to_vec(&trace).expect("encode");

        let iterator = via_iterator(&bytes);
        assert_eq!(
            iterator.len() as u64,
            trace.end_seq(),
            "{}: iterator decodes every event",
            workload.name()
        );
        for (label, decoded) in [
            ("chunked/default", via_chunked(&bytes, CHUNK_EVENTS)),
            ("chunked/pooled", via_chunked(&bytes, POOLED_CHUNK_EVENTS)),
            ("chunked/tiny", via_chunked(&bytes, 3)),
            ("mapped/default", via_mapped(&bytes, CHUNK_EVENTS)),
            ("mapped/pooled", via_mapped(&bytes, POOLED_CHUNK_EVENTS)),
            ("mapped/tiny", via_mapped(&bytes, 3)),
        ] {
            assert_eq!(decoded, iterator, "{}: {label} diverges", workload.name());
        }
    }
}

#[test]
fn mapped_records_agree_on_every_workload() {
    for workload in all_workloads() {
        let trace = record(workload.as_ref(), 0, lifepred_trace::shared_registry());
        let bytes = trace_to_vec(&trace).expect("encode");
        let mapped = MappedTrace::from_map(TraceMap::from_vec(bytes)).expect("open");
        let records: Vec<_> = mapped
            .records()
            .expect("records")
            .collect::<Result<_, _>>()
            .expect("decode");
        assert_eq!(records, trace.records(), "{}", workload.name());
    }
}

#[test]
fn decode_paths_agree_on_a_streamed_synthetic_trace_file() {
    use lifepred_workloads::server::sim::SimConfig;
    use lifepred_workloads::server::synth::generate_lpt;

    let config = SimConfig {
        requests: 4_000,
        connections: 32,
        sessions: 256,
        seed: 0x5e4e,
    };
    let (summary, sink) =
        generate_lpt(&config, std::io::Cursor::new(Vec::new())).expect("generate");
    let bytes = sink.into_inner();

    // Round-trip through a real file so `TraceMap::open` exercises the
    // mmap syscall path (or its heap fallback under LIFEPRED_NO_MMAP).
    let path = std::env::temp_dir().join(format!("lifepred-diff-{}.lpt", std::process::id()));
    std::fs::write(&path, &bytes).expect("write temp trace");
    let mapped = MappedTrace::open(&path).expect("mapped open");
    let from_file = drain(mapped.events(), POOLED_CHUNK_EVENTS);
    drop(mapped);
    std::fs::remove_file(&path).ok();

    let iterator = via_iterator(&bytes);
    assert_eq!(iterator.len() as u64, summary.events);
    assert_eq!(from_file, iterator);
    assert_eq!(via_chunked(&bytes, POOLED_CHUNK_EVENTS), iterator);
}
