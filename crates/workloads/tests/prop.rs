//! Property tests for the workload substrates: the bignum package, the
//! cube algebra and the regex engine must be *correct*, not just
//! allocation-realistic.

use lifepred_trace::TraceSession;
use lifepred_workloads::cfrac::Big;
use lifepred_workloads::espresso::{cofactor, complement, tautology, Cube, DC, ONE, ZERO};
use lifepred_workloads::regexlite::Regex;
use proptest::prelude::*;

proptest! {
    // ---- bignum vs u128 oracle ----

    #[test]
    fn big_add_matches_u128(a in 0u128..1 << 100, b in 0u128..1 << 24) {
        let s = TraceSession::new("prop");
        let x = Big::from_u128(&s, a);
        let y = Big::from_u128(&s, b);
        prop_assert_eq!(x.add(&s, &y).to_u128(), Some(a + b));
    }

    #[test]
    fn big_sub_matches_u128(a in 0u128..1 << 100, b in 0u128..1 << 100) {
        let s = TraceSession::new("prop");
        let (hi, lo) = if a >= b { (a, b) } else { (b, a) };
        let x = Big::from_u128(&s, hi);
        let y = Big::from_u128(&s, lo);
        prop_assert_eq!(x.sub(&s, &y).to_u128(), Some(hi - lo));
    }

    #[test]
    fn big_mul_matches_u128(a in 0u128..1 << 60, b in 0u128..1 << 60) {
        let s = TraceSession::new("prop");
        let x = Big::from_u128(&s, a);
        let y = Big::from_u128(&s, b);
        prop_assert_eq!(x.mul(&s, &y).to_u128(), Some(a * b));
    }

    #[test]
    fn big_div_rem_matches_u128(a in 0u128..1 << 110, b in 1u128..1 << 70) {
        let s = TraceSession::new("prop");
        let x = Big::from_u128(&s, a);
        let y = Big::from_u128(&s, b);
        let (q, r) = x.div_rem(&s, &y);
        prop_assert_eq!(q.to_u128(), Some(a / b));
        prop_assert_eq!(r.to_u128(), Some(a % b));
    }

    #[test]
    fn big_division_identity(a in 0u128..1 << 90, b in 1u128..1 << 50) {
        // a == q*b + r, with r < b.
        let s = TraceSession::new("prop");
        let x = Big::from_u128(&s, a);
        let y = Big::from_u128(&s, b);
        let (q, r) = x.div_rem(&s, &y);
        let back = q.mul(&s, &y).add(&s, &r);
        prop_assert_eq!(back.to_u128(), Some(a));
        prop_assert!(r.to_u128().expect("fits") < b);
    }

    #[test]
    fn big_sqrt_bounds(a in 0u128..1 << 100) {
        let s = TraceSession::new("prop");
        let x = Big::from_u128(&s, a);
        let r = x.sqrt(&s).to_u128().expect("fits");
        prop_assert!(r * r <= a);
        prop_assert!((r + 1).checked_mul(r + 1).is_none_or(|sq| sq > a));
    }

    #[test]
    fn big_gcd_divides_both(a in 1u128..1 << 60, b in 1u128..1 << 60) {
        let s = TraceSession::new("prop");
        let x = Big::from_u128(&s, a);
        let y = Big::from_u128(&s, b);
        let g = x.gcd(&s, &y).to_u128().expect("fits");
        prop_assert!(g > 0);
        prop_assert_eq!(a % g, 0);
        prop_assert_eq!(b % g, 0);
    }

    // ---- cube algebra ----

    #[test]
    fn cube_complement_is_disjoint_and_covering(
        patterns in proptest::collection::vec(
            proptest::collection::vec(0u8..3, 4), 1..6)
    ) {
        let s = TraceSession::new("prop");
        let cover: Vec<Cube> = patterns
            .iter()
            .map(|p| Cube::from_vars(&s, p.clone()))
            .collect();
        let comp = complement(&s, &cover, 4);
        // Check all 16 minterms: each is in the cover XOR the complement.
        for m in 0..16u32 {
            let minterm: Vec<u8> = (0..4)
                .map(|i| if (m >> i) & 1 == 1 { ONE } else { ZERO })
                .collect();
            let mc = Cube::from_vars(&s, minterm);
            let in_cover = cover.iter().any(|c| c.covers(&mc));
            let in_comp = comp.iter().any(|c| c.covers(&mc));
            prop_assert!(in_cover != in_comp, "minterm {m:04b} in both/neither");
        }
    }

    #[test]
    fn cube_tautology_matches_bruteforce(
        patterns in proptest::collection::vec(
            proptest::collection::vec(0u8..3, 4), 0..8)
    ) {
        let s = TraceSession::new("prop");
        let cover: Vec<Cube> = patterns
            .iter()
            .map(|p| Cube::from_vars(&s, p.clone()))
            .collect();
        let brute = (0..16u32).all(|m| {
            let minterm: Vec<u8> = (0..4)
                .map(|i| if (m >> i) & 1 == 1 { ONE } else { ZERO })
                .collect();
            let mc = Cube::from_vars(&s, minterm);
            cover.iter().any(|c| c.covers(&mc))
        });
        prop_assert_eq!(tautology(&s, &cover, 4), brute);
    }

    #[test]
    fn cube_cofactor_preserves_membership(
        pattern in proptest::collection::vec(0u8..3, 4),
        var in 0usize..4,
        phase in 0u8..2,
    ) {
        let s = TraceSession::new("prop");
        let cover = vec![Cube::from_vars(&s, pattern)];
        let cof = cofactor(&s, &cover, var, phase);
        // Any minterm with var=phase is in the cover iff its reduced
        // form is in the cofactor.
        for m in 0..16u32 {
            let bits: Vec<u8> = (0..4)
                .map(|i| if (m >> i) & 1 == 1 { ONE } else { ZERO })
                .collect();
            if bits[var] != phase {
                continue;
            }
            let mc = Cube::from_vars(&s, bits.clone());
            let mut reduced = bits;
            reduced[var] = DC;
            let rc = Cube::from_vars(&s, reduced);
            let in_cover = cover.iter().any(|c| c.covers(&mc));
            let in_cof = cof.iter().any(|c| c.covers(&rc));
            prop_assert_eq!(in_cover, in_cof);
        }
    }

    // ---- regex engine vs reference semantics ----

    #[test]
    fn regex_literal_matches_contains(
        needle in "[a-c]{1,4}",
        hay in "[a-c]{0,12}",
    ) {
        let re = Regex::compile(&needle).expect("literal compiles");
        prop_assert_eq!(re.is_match(&hay), hay.contains(&needle));
    }

    #[test]
    fn regex_anchored_matches_prefix_suffix(
        needle in "[a-c]{1,3}",
        hay in "[a-c]{0,10}",
    ) {
        let start = Regex::compile(&format!("^{needle}")).expect("compiles");
        prop_assert_eq!(start.is_match(&hay), hay.starts_with(&needle));
        let end = Regex::compile(&format!("{needle}$")).expect("compiles");
        prop_assert_eq!(end.is_match(&hay), hay.ends_with(&needle));
    }

    #[test]
    fn regex_star_never_panics_and_finds_in_range(
        pat in "[a-c]\\*[a-c]",
        hay in "[a-c]{0,10}",
    ) {
        // pat like "a*b" after unescaping the generated backslash.
        let pat = pat.replace('\\', "");
        if let Ok(re) = Regex::compile(&pat) {
            if let Some((a, b)) = re.find(&hay) {
                prop_assert!(a <= b);
                prop_assert!(b <= hay.chars().count());
            }
        }
    }
}
