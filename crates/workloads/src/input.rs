//! Deterministic synthetic input generators shared by the workloads.
//!
//! The paper's inputs (dictionaries, PLA examples, PostScript
//! documents, semiprimes) are reproduced by seeded generators so every
//! run of the suite sees byte-identical inputs.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Creates the deterministic RNG used by all generators.
pub fn rng(seed: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed)
}

/// Generates `count` pronounceable pseudo-words (for dictionaries).
pub fn words(seed: u64, count: usize) -> Vec<String> {
    let consonants = b"bcdfghjklmnprstvwz";
    let vowels = b"aeiou";
    let mut r = rng(seed);
    (0..count)
        .map(|_| {
            let syllables = r.gen_range(1..=4);
            let mut w = String::new();
            for _ in 0..syllables {
                w.push(consonants[r.gen_range(0..consonants.len())] as char);
                w.push(vowels[r.gen_range(0..vowels.len())] as char);
                if r.gen_bool(0.3) {
                    w.push(consonants[r.gen_range(0..consonants.len())] as char);
                }
            }
            w
        })
        .collect()
}

/// Generates a dictionary file: one word per line.
pub fn dictionary(seed: u64, count: usize) -> String {
    let mut out = String::new();
    for w in words(seed, count) {
        out.push_str(&w);
        out.push('\n');
    }
    out
}

/// Generates lines of whitespace-separated fields (a "log file").
pub fn field_lines(seed: u64, lines: usize, fields: usize) -> String {
    let vocab = words(seed ^ 0x5eed, 200);
    let mut r = rng(seed);
    let mut out = String::new();
    for _ in 0..lines {
        for f in 0..fields {
            if f > 0 {
                out.push(' ');
            }
            if f == 0 {
                out.push_str(&r.gen_range(0..100_000u32).to_string());
            } else {
                out.push_str(&vocab[r.gen_range(0..vocab.len())]);
            }
        }
        out.push('\n');
    }
    out
}

/// Generates a semiprime near `digits` decimal digits (product of two
/// primes of roughly equal size), for the factoring workload.
pub fn semiprime(seed: u64, digits: u32) -> u128 {
    let mut r = rng(seed);
    let half = digits / 2;
    let lo = 10u128.pow(half.saturating_sub(1).max(1));
    let hi = 10u128.pow(half.min(18));
    let p = next_prime(r.gen_range(lo..hi));
    let q = next_prime(r.gen_range(lo..hi));
    p * q
}

/// The smallest prime `>= n` (Miller–Rabin over u128).
pub fn next_prime(mut n: u128) -> u128 {
    if n <= 2 {
        return 2;
    }
    if n.is_multiple_of(2) {
        n += 1;
    }
    while !is_prime(n) {
        n += 2;
    }
    n
}

/// Deterministic Miller–Rabin primality test, exact for `n < 3.3e24`
/// with this witness set.
pub fn is_prime(n: u128) -> bool {
    if n < 2 {
        return false;
    }
    for p in [2u128, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        if n.is_multiple_of(p) {
            return n == p;
        }
    }
    let mut d = n - 1;
    let mut s = 0;
    while d.is_multiple_of(2) {
        d /= 2;
        s += 1;
    }
    'witness: for a in [2u128, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        let mut x = pow_mod(a, d, n);
        if x == 1 || x == n - 1 {
            continue;
        }
        for _ in 0..s - 1 {
            x = mul_mod(x, x, n);
            if x == n - 1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

fn mul_mod(a: u128, b: u128, m: u128) -> u128 {
    // Safe for m < 2^64 (our semiprimes): the product fits in u128.
    debug_assert!(m < 1 << 64);
    (a % m) * (b % m) % m
}

fn pow_mod(mut base: u128, mut exp: u128, m: u128) -> u128 {
    let mut acc = 1u128;
    base %= m;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = mul_mod(acc, base, m);
        }
        base = mul_mod(base, base, m);
        exp >>= 1;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(words(42, 10), words(42, 10));
        assert_eq!(dictionary(7, 5), dictionary(7, 5));
        assert_eq!(semiprime(1, 12), semiprime(1, 12));
        assert_ne!(words(1, 10), words(2, 10));
    }

    #[test]
    fn words_are_nonempty_ascii() {
        for w in words(3, 100) {
            assert!(!w.is_empty());
            assert!(w.bytes().all(|b| b.is_ascii_lowercase()));
        }
    }

    #[test]
    fn primality_basics() {
        assert!(is_prime(2));
        assert!(is_prime(97));
        assert!(!is_prime(1));
        assert!(!is_prime(91)); // 7 * 13
        assert!(is_prime(1_000_000_007));
        assert_eq!(next_prime(90), 97);
        assert_eq!(next_prime(2), 2);
    }

    #[test]
    fn semiprimes_are_composite_products() {
        let n = semiprime(9, 12);
        assert!(n > 10u128.pow(9), "n = {n}");
        assert!(!is_prime(n));
    }

    #[test]
    fn field_lines_have_shape() {
        let text = field_lines(5, 10, 4);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 10);
        for l in lines {
            assert_eq!(l.split_whitespace().count(), 4);
        }
    }
}
