//! CFRAC: continued-fraction integer factoring.
//!
//! A faithful miniature of Brillhart–Morrison CFRAC, the paper's first
//! workload: expand the continued fraction of √n, trial-divide the
//! residues `Q_k` over a factor base, collect smooth relations, find a
//! GF(2) dependency by Gaussian elimination and extract a factor with
//! a gcd. The allocation profile matches the original's: floods of
//! tiny, immediately-dead bignum temporaries plus a few long-lived
//! structures (factor base, relation matrix).

mod bignum;

pub use bignum::Big;

use crate::input;
use crate::Workload;
use lifepred_trace::{TraceSession, Traced};

/// Upper bound on continued-fraction iterations per number.
const MAX_ITERATIONS: usize = 1500;

/// The CFRAC workload.
#[derive(Debug, Default, Clone)]
pub struct Cfrac;

/// One input: a list of semiprimes to factor.
fn numbers_for(input: usize) -> Vec<u128> {
    match input {
        // Small training semiprimes: whole factorizations finish in a
        // few tens of KB of allocation, so relation records look
        // short-lived to the trainer...
        0 => (0..4).map(|i| input::semiprime(100 + i, 8)).collect(),
        // ...while on the larger test numbers the same sites hold
        // their relations for hundreds of KB — the mispredicted
        // long-lived objects behind the paper's CFRAC arena pollution.
        _ => (0..3).map(|i| input::semiprime(777 + i, 16)).collect(),
    }
}

impl Workload for Cfrac {
    fn name(&self) -> &'static str {
        "cfrac"
    }

    fn description(&self) -> &'static str {
        "Factors large integers with the continued-fraction method \
         (Brillhart–Morrison) over a traced arbitrary-precision \
         integer package; inputs are products of two primes."
    }

    fn inputs(&self) -> Vec<String> {
        vec!["small-semiprimes".to_owned(), "large-semiprimes".to_owned()]
    }

    fn run(&self, input: usize, session: &TraceSession) {
        let _main = session.enter("cfrac_main");
        for n in numbers_for(input) {
            let _ = factor(session, n);
        }
    }
}

/// A smooth relation: `A² ≡ (-1)^sign · ∏ p_i^{e_i} (mod n)`.
struct Relation {
    /// `A_{k-1} mod n`, kept as a traced bignum (long-lived).
    a: Big,
    /// Exponent vector over the factor base (index 0 = sign bit),
    /// traced, long-lived until elimination.
    exponents: Traced<Vec<u32>>,
    /// Parity bitmask of `exponents` used during elimination.
    parity: u64,
}

/// Attempts to factor `n`; returns a nontrivial factor if found.
pub fn factor(session: &TraceSession, n: u128) -> Option<u128> {
    let _g = session.enter("factor");
    if n.is_multiple_of(2) {
        return Some(2);
    }
    let base = build_factor_base(session, n);
    let relations = collect_relations(session, n, &base);
    solve(session, n, &base, relations)
}

/// Primes `p` with Legendre symbol `(n|p) != -1`, i.e. those that can
/// divide the residues `Q_k`. Long-lived allocation.
fn build_factor_base(session: &TraceSession, n: u128) -> Traced<Vec<u32>> {
    let _g = session.enter("build_factor_base");
    let mut primes = Vec::new();
    let mut candidate = 3u32;
    while primes.len() < 60 && candidate < 10_000 {
        if input::is_prime(u128::from(candidate)) && legendre(n, candidate) != -1 {
            primes.push(candidate);
        }
        candidate += 2;
    }
    session.work(primes.len() as u64 * 20);
    let size = (primes.len() * 4) as u32;
    session.traced(primes, size)
}

fn legendre(n: u128, p: u32) -> i32 {
    let p128 = u128::from(p);
    let nm = n % p128;
    if nm == 0 {
        return 0;
    }
    // Euler's criterion via square-and-multiply.
    let mut acc = 1u128;
    let mut b = nm;
    let mut e = (p128 - 1) / 2;
    while e > 0 {
        if e & 1 == 1 {
            acc = acc * b % p128;
        }
        b = b * b % p128;
        e >>= 1;
    }
    if acc == 1 {
        1
    } else {
        -1
    }
}

/// Expands the continued fraction of √n, keeping smooth residues.
fn collect_relations(session: &TraceSession, n: u128, base: &Traced<Vec<u32>>) -> Vec<Relation> {
    let _g = session.enter("collect_relations");
    let nbig = Big::from_u128(session, n);
    let sqrt_n = nbig.sqrt(session);
    let one = Big::from_u128(session, 1);

    // Continued-fraction state: P, Q, convergent numerators A mod n.
    let mut p = Big::from_u128(session, 0);
    let mut q = one.clone_in(session);
    let mut a_prev = one.clone_in(session);
    let mut a_cur = sqrt_n.rem(session, &nbig);
    let wanted = base.len() + 8;
    let mut relations = Vec::new();

    for k in 0..MAX_ITERATIONS {
        let _step = session.enter("cf_step");
        // a = (sqrt_n + P) / Q ; P' = a*Q - P ; Q' = (n - P'^2) / Q
        let num = sqrt_n.add(session, &p);
        let (a, _) = num.div_rem(session, &q);
        let aq = a.mul(session, &q);
        let p_next = aq.sub(session, &p);
        let p_sq = p_next.mul(session, &p_next);
        let diff = nbig.sub(session, &p_sq);
        let (q_next, _) = diff.div_rem(session, &q);

        // A_{k+1} = (a * A_k + A_{k-1}) mod n
        let prod = a.mul(session, &a_cur);
        let sum = prod.add(session, &a_prev);
        let a_next = sum.rem(session, &nbig);

        // (-1)^(k+1) Q_{k+1} ≡ A_k² (mod n): test Q_{k+1} for
        // smoothness over the factor base.
        if let Some(exponents) = smooth_exponents(session, &q_next, base, k % 2 == 0) {
            let parity = parity_mask(&exponents);
            relations.push(Relation {
                a: a_cur.clone_in(session),
                exponents,
                parity,
            });
            if relations.len() >= wanted {
                break;
            }
        }
        p = p_next;
        q = q_next;
        a_prev = a_cur;
        a_cur = a_next;
        if q.is_zero() {
            break;
        }
        session.work(30);
    }
    relations
}

/// Trial-divides `q` over the base; `Some(exponents)` if fully smooth.
/// Index 0 of the exponent vector is the sign "prime".
fn smooth_exponents(
    session: &TraceSession,
    q: &Big,
    base: &Traced<Vec<u32>>,
    negative: bool,
) -> Option<Traced<Vec<u32>>> {
    let _g = session.enter("trial_divide");
    let mut exps = vec![0u32; base.len() + 1];
    exps[0] = u32::from(negative);
    let mut rest = q.clone_in(session);
    for (i, &prime) in base.iter().enumerate() {
        while !rest.is_zero() && rest.rem_u32(prime) == 0 {
            let pb = Big::from_u128(session, u128::from(prime));
            let (next, _) = rest.div_rem(session, &pb);
            rest = next;
            exps[i + 1] += 1;
        }
    }
    session.touch(Traced::id(base), base.len() as u64);
    if rest.to_u128() == Some(1) {
        let size = (exps.len() * 4) as u32;
        Some(session.traced(exps, size))
    } else {
        None
    }
}

fn parity_mask(exps: &Traced<Vec<u32>>) -> u64 {
    let mut mask = 0u64;
    for (i, &e) in exps.iter().enumerate().take(64) {
        if e % 2 == 1 {
            mask |= 1 << i;
        }
    }
    mask
}

/// Gaussian elimination over GF(2) on the relation parities; each
/// dependency yields a congruence of squares and a gcd attempt.
fn solve(
    session: &TraceSession,
    n: u128,
    base: &Traced<Vec<u32>>,
    relations: Vec<Relation>,
) -> Option<u128> {
    let _g = session.enter("solve");
    if relations.is_empty() {
        return None;
    }
    let nbig = Big::from_u128(session, n);
    // rows[i]: (parity, member bitset over relations)
    let mut rows: Vec<(u64, u128)> = relations
        .iter()
        .enumerate()
        .map(|(i, r)| (r.parity, 1u128 << (i % 128)))
        .collect();
    session.work(rows.len() as u64 * rows.len() as u64 / 4);

    let mut pivots: Vec<(u64, usize)> = Vec::new();
    for i in 0..rows.len() {
        let mut row = rows[i];
        for &(pmask, pidx) in &pivots {
            let pivot_bit = pivots_bit(pmask);
            if row.0 & pivot_bit != 0 {
                row.0 ^= rows[pidx].0;
                row.1 ^= rows[pidx].1;
            }
        }
        if row.0 == 0 {
            // Dependency found: combine the member relations.
            if let Some(f) = try_dependency(session, n, &nbig, base, &relations, row.1) {
                return Some(f);
            }
        } else {
            pivots.push((row.0, i));
        }
        rows[i] = row;
    }
    None
}

/// Lowest set bit of a parity mask (the pivot column).
fn pivots_bit(mask: u64) -> u64 {
    mask & mask.wrapping_neg()
}

/// Builds X = ∏ A_i mod n and Y = ∏ p^{Σe/2} mod n for the dependency
/// members, then tries `gcd(X − Y, n)`.
fn try_dependency(
    session: &TraceSession,
    n: u128,
    nbig: &Big,
    base: &Traced<Vec<u32>>,
    relations: &[Relation],
    members: u128,
) -> Option<u128> {
    let _g = session.enter("try_dependency");
    let mut x = Big::from_u128(session, 1);
    let mut exp_sums = vec![0u64; base.len() + 1];
    for (i, rel) in relations.iter().enumerate() {
        if members & (1u128 << (i % 128)) == 0 {
            continue;
        }
        let prod = x.mul(session, &rel.a);
        x = prod.rem(session, nbig);
        for (j, &e) in rel.exponents.iter().enumerate() {
            exp_sums[j] += u64::from(e);
        }
        Traced::touch(&rel.exponents, rel.exponents.len() as u64);
    }
    if exp_sums.iter().any(|e| e % 2 != 0) {
        return None; // masked-out 64+ columns spoiled the square
    }
    let mut y = Big::from_u128(session, 1);
    for (j, &e) in exp_sums.iter().enumerate().skip(1) {
        for _ in 0..e / 2 {
            let prod = y.mul_u32(session, base[j - 1]);
            y = prod.rem(session, nbig);
        }
    }
    // gcd(|X - Y|, n)
    let diff = if x.cmp_big(&y) == std::cmp::Ordering::Less {
        y.sub(session, &x)
    } else {
        x.sub(session, &y)
    };
    if diff.is_zero() {
        return None;
    }
    let g = diff.gcd(session, nbig);
    let gv = g.to_u128()?;
    if gv > 1 && gv < n {
        Some(gv)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lifepred_trace::TraceSession;

    #[test]
    fn factors_a_small_semiprime() {
        let s = TraceSession::new("cfrac-test");
        // 4-digit primes keep the test quick.
        let n = 1009u128 * 2003;
        let f = factor(&s, n);
        if let Some(f) = f {
            assert!(f == 1009 || f == 2003, "got {f}");
        }
        // Whether or not the factorization succeeded, the run must
        // have exercised the allocator heavily.
        let t = s.finish();
        assert!(t.stats().total_objects > 1000);
    }

    #[test]
    fn trace_is_dominated_by_short_lived_temporaries() {
        let s = TraceSession::new("cfrac-life");
        let _ = factor(&s, 1009u128 * 2003);
        let t = s.finish();
        let end = t.end_clock();
        let short = t
            .records()
            .iter()
            .filter(|r| r.lifetime(end) < 32 * 1024)
            .count();
        let frac = short as f64 / t.records().len() as f64;
        assert!(frac > 0.9, "short-lived fraction {frac}");
    }

    #[test]
    fn chains_are_layered() {
        let s = TraceSession::new("cfrac-chains");
        let _ = factor(&s, 101u128 * 103);
        let t = s.finish();
        let max_depth = t
            .records()
            .iter()
            .map(|r| t.chain(r.chain).len())
            .max()
            .unwrap_or(0);
        assert!(max_depth >= 4, "expected deep chains, got {max_depth}");
    }

    #[test]
    fn workload_runs_training_input() {
        let s = TraceSession::new("cfrac-wl");
        Cfrac.run(0, &s);
        let t = s.finish();
        assert!(t.stats().total_objects > 10_000);
    }

    #[test]
    fn legendre_sanity() {
        // 2 is a QR mod 7 (3² = 2), 3 is not.
        assert_eq!(legendre(2, 7), 1);
        assert_eq!(legendre(3, 7), -1);
        assert_eq!(legendre(14, 7), 0);
    }
}
