//! Traced arbitrary-precision unsigned integers.
//!
//! Every number owns a traced limb vector, so each arithmetic result
//! is one heap allocation whose size, call-chain and lifetime are
//! recorded — exactly how the original CFRAC's bignum package drove
//! `malloc`. Limbs are base-2³² little-endian, normalized (no leading
//! zero limbs).

use lifepred_trace::{TraceSession, Traced};
use std::cmp::Ordering;

/// A traced unsigned big integer.
#[derive(Debug)]
pub struct Big {
    limbs: Traced<Vec<u32>>,
}

/// The `xmalloc`-style allocation layer: every limb vector passes
/// through here, adding one deliberate chain layer (the paper's
/// length-1 sub-chains are weak for exactly this reason).
fn big_alloc(session: &TraceSession, mut limbs: Vec<u32>) -> Big {
    let _g = session.enter("big_alloc");
    while limbs.last() == Some(&0) {
        limbs.pop();
    }
    let size = (limbs.len() as u32 * 4).max(4);
    let traced = session.traced(limbs, size);
    Traced::touch(&traced, traced.len() as u64 + 1);
    Big { limbs: traced }
}

impl Big {
    /// Builds a number from a `u128`.
    pub fn from_u128(session: &TraceSession, mut v: u128) -> Big {
        let _g = session.enter("big_from_int");
        let mut limbs = Vec::new();
        while v > 0 {
            limbs.push((v & 0xffff_ffff) as u32);
            v >>= 32;
        }
        big_alloc(session, limbs)
    }

    /// Returns the value as `u128` if it fits.
    pub fn to_u128(&self) -> Option<u128> {
        if self.limbs.len() > 4 {
            return None;
        }
        let mut v = 0u128;
        for &l in self.limbs.iter().rev() {
            v = (v << 32) | u128::from(l);
        }
        Some(v)
    }

    /// Number of limbs (0 for zero).
    pub fn limb_count(&self) -> usize {
        self.limbs.len()
    }

    /// Whether the value is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// Whether the value is even (zero counts as even).
    pub fn is_even(&self) -> bool {
        self.limbs.first().is_none_or(|l| l % 2 == 0)
    }

    /// Deep copy (a fresh traced allocation, like the C original).
    pub fn clone_in(&self, session: &TraceSession) -> Big {
        let _g = session.enter("big_copy");
        big_alloc(session, self.limbs.to_vec())
    }

    /// Three-way comparison.
    pub fn cmp_big(&self, other: &Big) -> Ordering {
        let (a, b) = (&*self.limbs, &*other.limbs);
        if a.len() != b.len() {
            return a.len().cmp(&b.len());
        }
        for i in (0..a.len()).rev() {
            match a[i].cmp(&b[i]) {
                Ordering::Equal => {}
                ord => return ord,
            }
        }
        Ordering::Equal
    }

    /// `self + other`.
    pub fn add(&self, session: &TraceSession, other: &Big) -> Big {
        let _g = session.enter("big_add");
        let (a, b) = (&*self.limbs, &*other.limbs);
        let mut out = Vec::with_capacity(a.len().max(b.len()) + 1);
        let mut carry = 0u64;
        for i in 0..a.len().max(b.len()) {
            let x = u64::from(a.get(i).copied().unwrap_or(0))
                + u64::from(b.get(i).copied().unwrap_or(0))
                + carry;
            out.push((x & 0xffff_ffff) as u32);
            carry = x >> 32;
        }
        if carry > 0 {
            out.push(carry as u32);
        }
        big_alloc(session, out)
    }

    /// `self - other`.
    ///
    /// # Panics
    ///
    /// Panics if `other > self`.
    pub fn sub(&self, session: &TraceSession, other: &Big) -> Big {
        let _g = session.enter("big_sub");
        assert_ne!(
            self.cmp_big(other),
            Ordering::Less,
            "big_sub would underflow"
        );
        let (a, b) = (&*self.limbs, &*other.limbs);
        let mut out = Vec::with_capacity(a.len());
        let mut borrow = 0i64;
        for (i, &ai) in a.iter().enumerate() {
            let mut x = i64::from(ai) - i64::from(b.get(i).copied().unwrap_or(0)) - borrow;
            if x < 0 {
                x += 1 << 32;
                borrow = 1;
            } else {
                borrow = 0;
            }
            out.push(x as u32);
        }
        big_alloc(session, out)
    }

    /// `self * other` (schoolbook).
    pub fn mul(&self, session: &TraceSession, other: &Big) -> Big {
        let _g = session.enter("big_mul");
        let (a, b) = (&*self.limbs, &*other.limbs);
        if a.is_empty() || b.is_empty() {
            return big_alloc(session, Vec::new());
        }
        let mut out = vec![0u32; a.len() + b.len()];
        for (i, &ai) in a.iter().enumerate() {
            let mut carry = 0u64;
            for (j, &bj) in b.iter().enumerate() {
                let x = u64::from(ai) * u64::from(bj) + u64::from(out[i + j]) + carry;
                out[i + j] = (x & 0xffff_ffff) as u32;
                carry = x >> 32;
            }
            let mut k = i + b.len();
            while carry > 0 {
                let x = u64::from(out[k]) + carry;
                out[k] = (x & 0xffff_ffff) as u32;
                carry = x >> 32;
                k += 1;
            }
        }
        big_alloc(session, out)
    }

    /// `self * m` for a small factor.
    pub fn mul_u32(&self, session: &TraceSession, m: u32) -> Big {
        let _g = session.enter("big_mul_small");
        let mut out = Vec::with_capacity(self.limbs.len() + 1);
        let mut carry = 0u64;
        for &l in self.limbs.iter() {
            let x = u64::from(l) * u64::from(m) + carry;
            out.push((x & 0xffff_ffff) as u32);
            carry = x >> 32;
        }
        if carry > 0 {
            out.push(carry as u32);
        }
        big_alloc(session, out)
    }

    /// `(self / other, self % other)` — Knuth's Algorithm D, with a
    /// fast path for single-limb divisors.
    ///
    /// # Panics
    ///
    /// Panics on division by zero.
    pub fn div_rem(&self, session: &TraceSession, other: &Big) -> (Big, Big) {
        let _g = session.enter("big_div");
        assert!(!other.is_zero(), "big_div by zero");
        match self.cmp_big(other) {
            Ordering::Less => {
                return (big_alloc(session, Vec::new()), self.clone_in(session));
            }
            Ordering::Equal => {
                return (big_alloc(session, vec![1]), big_alloc(session, Vec::new()));
            }
            Ordering::Greater => {}
        }
        if other.limbs.len() == 1 {
            let d = u64::from(other.limbs[0]);
            let mut q = vec![0u32; self.limbs.len()];
            let mut rem = 0u64;
            for i in (0..self.limbs.len()).rev() {
                let cur = (rem << 32) | u64::from(self.limbs[i]);
                q[i] = (cur / d) as u32;
                rem = cur % d;
            }
            return (big_alloc(session, q), big_alloc(session, vec![rem as u32]));
        }
        self.div_rem_knuth(session, other)
    }

    /// Multi-limb division (Knuth TAOCP vol. 2, Algorithm 4.3.1 D).
    fn div_rem_knuth(&self, session: &TraceSession, other: &Big) -> (Big, Big) {
        // Normalize so the divisor's top limb has its high bit set.
        let shift = other.limbs.last().expect("nonzero divisor").leading_zeros();
        let u = shl_limbs(&self.limbs, shift);
        let v = shl_limbs(&other.limbs, shift);
        let n = v.len();
        let m = u.len() - n;
        let mut u = {
            let mut t = u;
            t.push(0);
            t
        };
        let mut q = vec![0u32; m + 1];
        let vtop = u64::from(v[n - 1]);
        let vnext = u64::from(v[n - 2]);
        for j in (0..=m).rev() {
            let top = (u64::from(u[j + n]) << 32) | u64::from(u[j + n - 1]);
            let mut qhat = top / vtop;
            let mut rhat = top % vtop;
            while qhat >= 1 << 32 || qhat * vnext > ((rhat << 32) | u64::from(u[j + n - 2])) {
                qhat -= 1;
                rhat += vtop;
                if rhat >= 1 << 32 {
                    break;
                }
            }
            // Multiply-subtract qhat * v from u[j..j+n+1].
            let mut borrow = 0i64;
            let mut carry = 0u64;
            for i in 0..n {
                let p = qhat * u64::from(v[i]) + carry;
                carry = p >> 32;
                let x = i64::from(u[j + i]) - i64::from((p & 0xffff_ffff) as u32) - borrow;
                if x < 0 {
                    u[j + i] = (x + (1 << 32)) as u32;
                    borrow = 1;
                } else {
                    u[j + i] = x as u32;
                    borrow = 0;
                }
            }
            let x = i64::from(u[j + n]) - i64::from(carry as u32) - borrow;
            if x < 0 {
                // qhat was one too large: add v back.
                u[j + n] = (x + (1 << 32)) as u32;
                qhat -= 1;
                let mut carry2 = 0u64;
                for i in 0..n {
                    let s = u64::from(u[j + i]) + u64::from(v[i]) + carry2;
                    u[j + i] = (s & 0xffff_ffff) as u32;
                    carry2 = s >> 32;
                }
                u[j + n] = u[j + n].wrapping_add(carry2 as u32);
            } else {
                u[j + n] = x as u32;
            }
            q[j] = qhat as u32;
        }
        u.truncate(n);
        let rem = shr_limbs(&u, shift);
        (big_alloc(session, q), big_alloc(session, rem))
    }

    /// `self % other`.
    pub fn rem(&self, session: &TraceSession, other: &Big) -> Big {
        let _g = session.enter("big_mod");
        let (_, r) = self.div_rem(session, other);
        r
    }

    /// `self % m` for a small modulus (no allocation for the result
    /// value; still allocates the temporary quotient like the C code).
    pub fn rem_u32(&self, m: u32) -> u32 {
        let mut rem = 0u64;
        for &l in self.limbs.iter().rev() {
            rem = ((rem << 32) | u64::from(l)) % u64::from(m);
        }
        rem as u32
    }

    /// Integer square root (Newton's method).
    pub fn sqrt(&self, session: &TraceSession) -> Big {
        let _g = session.enter("big_sqrt");
        if self.is_zero() {
            return big_alloc(session, Vec::new());
        }
        // Initial guess: 2^(bits/2 + 1).
        let bits = self.limbs.len() * 32;
        let mut x = Big::from_u128(session, 1);
        x = shl_big(session, &x, (bits / 2 + 1) as u32);
        loop {
            // x' = (x + self/x) / 2
            let (d, _) = self.div_rem(session, &x);
            let s = x.add(session, &d);
            let two = Big::from_u128(session, 2);
            let (next, _) = s.div_rem(session, &two);
            if next.cmp_big(&x) != Ordering::Less {
                break;
            }
            x = next;
        }
        x
    }

    /// `gcd(self, other)` (Euclid).
    pub fn gcd(&self, session: &TraceSession, other: &Big) -> Big {
        let _g = session.enter("big_gcd");
        let mut a = self.clone_in(session);
        let mut b = other.clone_in(session);
        while !b.is_zero() {
            let r = a.rem(session, &b);
            a = b;
            b = r;
        }
        a
    }
}

fn shl_limbs(limbs: &[u32], shift: u32) -> Vec<u32> {
    if shift == 0 {
        return limbs.to_vec();
    }
    let mut out = Vec::with_capacity(limbs.len() + 1);
    let mut carry = 0u32;
    for &l in limbs {
        out.push((l << shift) | carry);
        carry = (u64::from(l) >> (32 - shift)) as u32;
    }
    if carry > 0 {
        out.push(carry);
    }
    out
}

fn shr_limbs(limbs: &[u32], shift: u32) -> Vec<u32> {
    if shift == 0 {
        return limbs.to_vec();
    }
    let mut out = vec![0u32; limbs.len()];
    for i in 0..limbs.len() {
        out[i] = limbs[i] >> shift;
        if i + 1 < limbs.len() {
            out[i] |= (u64::from(limbs[i + 1]) << (32 - shift)) as u32;
        }
    }
    out
}

fn shl_big(session: &TraceSession, x: &Big, bits: u32) -> Big {
    let _g = session.enter("big_shl");
    let mut limbs = vec![0u32; (bits / 32) as usize];
    limbs.extend(shl_limbs(&x.limbs, bits % 32));
    // Whole-limb shifts were prepended as zeros; partial shift applied
    // above. Recombine: shl_limbs already handled the sub-limb part.
    big_alloc(session, limbs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lifepred_trace::TraceSession;

    fn s() -> TraceSession {
        TraceSession::new("bignum-test")
    }

    #[test]
    fn roundtrip_u128() {
        let s = s();
        for v in [
            0u128,
            1,
            0xffff_ffff,
            1 << 32,
            u128::from(u64::MAX),
            1 << 100,
        ] {
            let b = Big::from_u128(&s, v);
            assert_eq!(b.to_u128(), Some(v));
        }
    }

    #[test]
    fn add_sub_inverse() {
        let s = s();
        let a = Big::from_u128(&s, 0xdead_beef_cafe_babe);
        let b = Big::from_u128(&s, 0x1234_5678_9abc_def0);
        let sum = a.add(&s, &b);
        let back = sum.sub(&s, &b);
        assert_eq!(back.to_u128(), a.to_u128());
    }

    #[test]
    fn mul_matches_u128() {
        let s = s();
        let cases = [
            (3u128, 5u128),
            (1 << 40, 1 << 50),
            (123_456_789, 987_654_321),
        ];
        for (x, y) in cases {
            let a = Big::from_u128(&s, x);
            let b = Big::from_u128(&s, y);
            assert_eq!(a.mul(&s, &b).to_u128(), Some(x * y));
        }
    }

    #[test]
    fn div_rem_matches_u128() {
        let s = s();
        let cases: [(u128, u128); 6] = [
            (100, 7),
            (1 << 90, (1 << 33) + 12345),
            (0xffff_ffff_ffff_ffff, 0xffff_ffff),
            (10u128.pow(30), 10u128.pow(11) + 7),
            (5, 10),
            (42, 42),
        ];
        for (x, y) in cases {
            let a = Big::from_u128(&s, x);
            let b = Big::from_u128(&s, y);
            let (q, r) = a.div_rem(&s, &b);
            assert_eq!(q.to_u128(), Some(x / y), "{x} / {y}");
            assert_eq!(r.to_u128(), Some(x % y), "{x} % {y}");
        }
    }

    #[test]
    fn sqrt_matches() {
        let s = s();
        for v in [0u128, 1, 2, 4, 99, 100, 10u128.pow(20), (1u128 << 80) + 17] {
            let b = Big::from_u128(&s, v);
            let r = b.sqrt(&s).to_u128().expect("fits");
            assert!(r * r <= v, "sqrt({v}) = {r}");
            assert!((r + 1) * (r + 1) > v, "sqrt({v}) = {r}");
        }
    }

    #[test]
    fn gcd_matches() {
        let s = s();
        let a = Big::from_u128(&s, 48);
        let b = Big::from_u128(&s, 180);
        assert_eq!(a.gcd(&s, &b).to_u128(), Some(12));
    }

    #[test]
    fn rem_u32_fast_path() {
        let s = s();
        let a = Big::from_u128(&s, 10u128.pow(25) + 3);
        assert_eq!(u128::from(a.rem_u32(97)), (10u128.pow(25) + 3) % 97);
    }

    #[test]
    fn parity() {
        let s = s();
        assert!(Big::from_u128(&s, 0).is_even());
        assert!(Big::from_u128(&s, 4).is_even());
        assert!(!Big::from_u128(&s, 7).is_even());
    }

    #[test]
    fn arithmetic_is_traced() {
        let s = s();
        let before = s.objects();
        let a = Big::from_u128(&s, 1000);
        let b = Big::from_u128(&s, 999);
        let _c = a.mul(&s, &b);
        assert!(s.objects() > before + 2, "each op should allocate");
    }
}
