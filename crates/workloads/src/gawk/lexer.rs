//! Tokenizer for the AWK subset.

use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Numeric literal.
    Number(f64),
    /// String literal (quotes stripped, escapes resolved).
    Str(String),
    /// Regular-expression literal `/.../`.
    Regex(String),
    /// Identifier or keyword.
    Ident(String),
    /// `$` field prefix.
    Dollar,
    /// `(`.
    LParen,
    /// `)`.
    RParen,
    /// `{`.
    LBrace,
    /// `}`.
    RBrace,
    /// `[`.
    LBracket,
    /// `]`.
    RBracket,
    /// `;` or newline (statement separator).
    Semi,
    /// `,`.
    Comma,
    /// An operator such as `+`, `==`, `&&`, `=`, `+=`, `~`, `++`.
    Op(String),
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Number(n) => write!(f, "{n}"),
            Token::Str(s) => write!(f, "\"{s}\""),
            Token::Regex(r) => write!(f, "/{r}/"),
            Token::Ident(i) => write!(f, "{i}"),
            Token::Dollar => write!(f, "$"),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::LBrace => write!(f, "{{"),
            Token::RBrace => write!(f, "}}"),
            Token::LBracket => write!(f, "["),
            Token::RBracket => write!(f, "]"),
            Token::Semi => write!(f, ";"),
            Token::Comma => write!(f, ","),
            Token::Op(o) => write!(f, "{o}"),
        }
    }
}

/// Tokenizes an AWK program.
///
/// Newlines become [`Token::Semi`] except after an opening brace or
/// operator, mirroring AWK's line-oriented statement rules closely
/// enough for our scripts.
///
/// # Errors
///
/// Returns a message with the offending character on lexical errors.
pub fn tokenize(src: &str) -> Result<Vec<Token>, String> {
    let mut out = Vec::new();
    let b: Vec<char> = src.chars().collect();
    let mut i = 0;
    while i < b.len() {
        let c = b[i];
        match c {
            ' ' | '\t' | '\r' => i += 1,
            '\n' => {
                // Suppress empty statements and separators after
                // tokens that clearly continue an expression.
                match out.last() {
                    Some(Token::LBrace) | Some(Token::Semi) | Some(Token::Op(_))
                    | Some(Token::Comma) | None => {}
                    _ => out.push(Token::Semi),
                }
                i += 1;
            }
            '#' => {
                while i < b.len() && b[i] != '\n' {
                    i += 1;
                }
            }
            '"' => {
                i += 1;
                let mut s = String::new();
                while i < b.len() && b[i] != '"' {
                    if b[i] == '\\' && i + 1 < b.len() {
                        i += 1;
                        s.push(match b[i] {
                            'n' => '\n',
                            't' => '\t',
                            other => other,
                        });
                    } else {
                        s.push(b[i]);
                    }
                    i += 1;
                }
                if i >= b.len() {
                    return Err("unterminated string".to_owned());
                }
                i += 1;
                out.push(Token::Str(s));
            }
            '/' if regex_position(&out) => {
                i += 1;
                let mut s = String::new();
                while i < b.len() && b[i] != '/' {
                    s.push(b[i]);
                    i += 1;
                }
                if i >= b.len() {
                    return Err("unterminated regex".to_owned());
                }
                i += 1;
                out.push(Token::Regex(s));
            }
            '0'..='9' | '.' => {
                let start = i;
                while i < b.len() && (b[i].is_ascii_digit() || b[i] == '.') {
                    i += 1;
                }
                let text: String = b[start..i].iter().collect();
                let n = text
                    .parse::<f64>()
                    .map_err(|_| format!("bad number {text}"))?;
                out.push(Token::Number(n));
            }
            'a'..='z' | 'A'..='Z' | '_' => {
                let start = i;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == '_') {
                    i += 1;
                }
                out.push(Token::Ident(b[start..i].iter().collect()));
            }
            '$' => {
                out.push(Token::Dollar);
                i += 1;
            }
            '(' => {
                out.push(Token::LParen);
                i += 1;
            }
            ')' => {
                out.push(Token::RParen);
                i += 1;
            }
            '{' => {
                out.push(Token::LBrace);
                i += 1;
            }
            '}' => {
                out.push(Token::RBrace);
                i += 1;
            }
            '[' => {
                out.push(Token::LBracket);
                i += 1;
            }
            ']' => {
                out.push(Token::RBracket);
                i += 1;
            }
            ';' => {
                out.push(Token::Semi);
                i += 1;
            }
            ',' => {
                out.push(Token::Comma);
                i += 1;
            }
            _ => {
                // Multi-character operators, longest match first.
                let two: String = b[i..(i + 2).min(b.len())].iter().collect();
                let ops2 = [
                    "==", "!=", "<=", ">=", "&&", "||", "+=", "-=", "*=", "/=", "%=", "++", "--",
                    "!~",
                ];
                if ops2.contains(&two.as_str()) {
                    out.push(Token::Op(two));
                    i += 2;
                } else if "+-*/%<>=!~?:".contains(c) {
                    out.push(Token::Op(c.to_string()));
                    i += 1;
                } else {
                    return Err(format!("unexpected character {c:?}"));
                }
            }
        }
    }
    Ok(out)
}

/// `/` starts a regex except where a division could appear.
fn regex_position(out: &[Token]) -> bool {
    !matches!(
        out.last(),
        Some(Token::Number(_))
            | Some(Token::Ident(_))
            | Some(Token::RParen)
            | Some(Token::RBracket)
            | Some(Token::Str(_))
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizes_simple_program() {
        let toks = tokenize("{ x = x + 1 }").expect("lex");
        assert_eq!(toks.len(), 7);
        assert_eq!(toks[0], Token::LBrace);
        assert_eq!(toks[2], Token::Op("=".into()));
    }

    #[test]
    fn strings_and_escapes() {
        let toks = tokenize(r#"{ print "a\tb" }"#).expect("lex");
        assert!(toks.contains(&Token::Str("a\tb".into())));
        assert!(tokenize("\"unterminated").is_err());
    }

    #[test]
    fn regex_vs_division() {
        let toks = tokenize("/ab/ { x = y / 2 }").expect("lex");
        assert_eq!(toks[0], Token::Regex("ab".into()));
        assert!(toks.contains(&Token::Op("/".into())));
    }

    #[test]
    fn newlines_become_separators() {
        let toks = tokenize("{ x = 1\ny = 2 }").expect("lex");
        assert!(toks.contains(&Token::Semi));
    }

    #[test]
    fn two_char_operators() {
        let toks = tokenize("{ if (a == b && c >= d) n++ }").expect("lex");
        assert!(toks.contains(&Token::Op("==".into())));
        assert!(toks.contains(&Token::Op("&&".into())));
        assert!(toks.contains(&Token::Op(">=".into())));
        assert!(toks.contains(&Token::Op("++".into())));
    }

    #[test]
    fn comments_are_skipped() {
        let toks = tokenize("# hello\n{ x = 1 } # tail").expect("lex");
        assert_eq!(toks[0], Token::LBrace);
    }
}
