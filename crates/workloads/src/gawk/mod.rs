//! GAWK: an AWK-subset interpreter.
//!
//! Lexer → recursive-descent parser → tree-walking evaluator, with
//! gawk's allocation discipline: string values, field splits and array
//! cells are traced heap objects. The workload runs the paper's kind
//! of script — formatting the words of several dictionaries into
//! filled paragraphs (plus a word-frequency pass) — over generated
//! dictionaries. Both inputs run the *same* script on different data,
//! which is why the paper sees near-perfect true prediction for GAWK.

mod interp;
mod lexer;
mod parser;

pub use interp::{num_to_string, Interp, Value};
pub use lexer::{tokenize, Token};
pub use parser::{parse, Expr, Lvalue, Pattern, Program, Rule, Stmt};

use crate::input;
use crate::Workload;
use lifepred_trace::TraceSession;

/// The dictionary-formatting script (same for every input, as in the
/// paper).
const SCRIPT: &str = r#"
/^[a-z]/ { count[$1]++ }
{ line = line " " $1 }
length(line) > 60 { print line; line = "" }
END {
    for (w in count) {
        total += count[w]
        if (count[w] > max) { max = count[w]; maxw = w }
    }
    print "words", total, "most", maxw, max
    if (length(line) > 0) print line
}
"#;

/// The GAWK workload.
#[derive(Debug, Default, Clone)]
pub struct Gawk;

impl Workload for Gawk {
    fn name(&self) -> &'static str {
        "gawk"
    }

    fn description(&self) -> &'static str {
        "An AWK interpreter running a script that formats the words of \
         several dictionaries into filled paragraphs and counts word \
         frequencies; inputs differ only in the dictionaries fed to \
         the same script."
    }

    fn inputs(&self) -> Vec<String> {
        vec!["small-dicts".to_owned(), "large-dicts".to_owned()]
    }

    fn run(&self, input_idx: usize, session: &TraceSession) {
        let _main = session.enter("gawk_main");
        let data = match input_idx {
            0 => {
                let mut d = input::dictionary(1001, 6_000);
                d.push_str(&input::dictionary(1002, 4_000));
                d
            }
            _ => {
                let mut d = input::dictionary(2001, 20_000);
                d.push_str(&input::dictionary(2002, 15_000));
                d.push_str(&input::dictionary(2003, 10_000));
                d
            }
        };
        let program = parse(SCRIPT).expect("the built-in script parses");
        let mut interp = Interp::new(session);
        let out = interp.run(&program, &data).expect("the script runs");
        session.work(out.len() as u64 / 4);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lifepred_trace::TraceSession;

    #[test]
    fn workload_produces_a_heavy_trace() {
        let s = TraceSession::new("gawk-wl");
        Gawk.run(0, &s);
        let t = s.finish();
        assert!(
            t.stats().total_objects > 50_000,
            "objects {}",
            t.stats().total_objects
        );
        // Field strings die quickly; symbol nodes persist: lifetimes
        // must span several orders of magnitude.
        let end = t.end_clock();
        let max_life = t
            .records()
            .iter()
            .map(|r| r.lifetime(end))
            .max()
            .unwrap_or(0);
        assert!(max_life > 100_000, "max lifetime {max_life}");
    }

    #[test]
    fn builtin_script_parses() {
        parse(SCRIPT).expect("valid");
    }
}
