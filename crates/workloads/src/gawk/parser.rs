//! Recursive-descent parser for the AWK subset.

use super::lexer::{tokenize, Token};

/// An lvalue: a thing that can be assigned to.
#[derive(Debug, Clone, PartialEq)]
pub enum Lvalue {
    /// A scalar variable.
    Var(String),
    /// A field reference `$expr`.
    Field(Box<Expr>),
    /// An array element `name[subscript]`.
    Index(String, Box<Expr>),
}

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Numeric literal.
    Num(f64),
    /// String literal.
    Str(String),
    /// Regex literal used as an expression: matches against `$0`.
    Regex(String),
    /// Variable read.
    Var(String),
    /// Field read `$expr`.
    Field(Box<Expr>),
    /// Array element read.
    Index(String, Box<Expr>),
    /// Assignment with operator (`=`, `+=`, ...).
    Assign(Lvalue, String, Box<Expr>),
    /// Binary operation (`+ - * / % < <= > >= == != && ||` or
    /// `concat`).
    Binary(String, Box<Expr>, Box<Expr>),
    /// Unary `!` or `-`.
    Unary(String, Box<Expr>),
    /// Pre- or post-increment/decrement.
    Incr {
        /// The target.
        lvalue: Lvalue,
        /// `+1` or `-1`.
        delta: f64,
        /// Whether the original value is the expression's value.
        postfix: bool,
    },
    /// `expr ~ /re/` or `expr !~ /re/`.
    Match(Box<Expr>, String, bool),
    /// Builtin call.
    Call(String, Vec<Expr>),
    /// `key in array`.
    In(Box<Expr>, String),
}

/// A statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `print expr, expr, ...` (no args prints `$0`).
    Print(Vec<Expr>),
    /// `printf fmt, expr, ...` (no trailing newline).
    Printf(Vec<Expr>),
    /// A bare expression (usually an assignment).
    Expr(Expr),
    /// `if (cond) stmt [else stmt]`.
    If(Expr, Box<Stmt>, Option<Box<Stmt>>),
    /// `while (cond) stmt`.
    While(Expr, Box<Stmt>),
    /// `for (init; cond; step) stmt`.
    For(
        Option<Box<Stmt>>,
        Option<Expr>,
        Option<Box<Stmt>>,
        Box<Stmt>,
    ),
    /// `for (var in array) stmt`.
    ForIn(String, String, Box<Stmt>),
    /// `{ ... }`.
    Block(Vec<Stmt>),
    /// `next`.
    Next,
    /// `delete array[subscript]`.
    Delete(String, Expr),
}

/// A pattern guarding a rule.
#[derive(Debug, Clone, PartialEq)]
pub enum Pattern {
    /// `BEGIN`.
    Begin,
    /// `END`.
    End,
    /// Expression pattern (regexes match `$0`).
    Expr(Expr),
    /// No pattern: every record.
    Always,
}

/// One pattern-action rule.
#[derive(Debug, Clone, PartialEq)]
pub struct Rule {
    /// When the action fires.
    pub pattern: Pattern,
    /// The action; `None` means `{ print $0 }`.
    pub action: Option<Vec<Stmt>>,
}

/// A parsed AWK program.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    /// The rules in source order.
    pub rules: Vec<Rule>,
}

/// Parses an AWK program.
///
/// # Errors
///
/// Returns a human-readable message on lexical or syntax errors.
pub fn parse(src: &str) -> Result<Program, String> {
    let tokens = tokenize(src)?;
    let mut p = Parser { tokens, pos: 0 };
    p.program()
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, tok: &Token) -> bool {
        if self.peek() == Some(tok) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, tok: &Token) -> Result<(), String> {
        if self.eat(tok) {
            Ok(())
        } else {
            Err(format!("expected {tok}, found {:?}", self.peek()))
        }
    }

    fn eat_op(&mut self, op: &str) -> bool {
        if matches!(self.peek(), Some(Token::Op(o)) if o == op) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn skip_semis(&mut self) {
        while self.eat(&Token::Semi) {}
    }

    fn program(&mut self) -> Result<Program, String> {
        let mut rules = Vec::new();
        self.skip_semis();
        while self.peek().is_some() {
            rules.push(self.rule()?);
            self.skip_semis();
        }
        Ok(Program { rules })
    }

    fn rule(&mut self) -> Result<Rule, String> {
        let pattern = match self.peek() {
            Some(Token::Ident(id)) if id == "BEGIN" => {
                self.pos += 1;
                Pattern::Begin
            }
            Some(Token::Ident(id)) if id == "END" => {
                self.pos += 1;
                Pattern::End
            }
            Some(Token::LBrace) => Pattern::Always,
            _ => Pattern::Expr(self.expr()?),
        };
        let action = if self.peek() == Some(&Token::LBrace) {
            Some(self.block()?)
        } else {
            None
        };
        if action.is_none() && matches!(pattern, Pattern::Begin | Pattern::End) {
            return Err("BEGIN/END require an action".to_owned());
        }
        Ok(Rule { pattern, action })
    }

    fn block(&mut self) -> Result<Vec<Stmt>, String> {
        self.expect(&Token::LBrace)?;
        let mut stmts = Vec::new();
        self.skip_semis();
        while self.peek() != Some(&Token::RBrace) {
            if self.peek().is_none() {
                return Err("unterminated block".to_owned());
            }
            stmts.push(self.stmt()?);
            self.skip_semis();
        }
        self.expect(&Token::RBrace)?;
        Ok(stmts)
    }

    fn stmt(&mut self) -> Result<Stmt, String> {
        match self.peek() {
            Some(Token::LBrace) => Ok(Stmt::Block(self.block()?)),
            Some(Token::Ident(id)) => match id.as_str() {
                "print" | "printf" => {
                    let is_printf = id == "printf";
                    self.pos += 1;
                    let mut args = Vec::new();
                    while !matches!(self.peek(), None | Some(Token::Semi) | Some(Token::RBrace)) {
                        args.push(self.expr()?);
                        if !self.eat(&Token::Comma) {
                            break;
                        }
                    }
                    if is_printf {
                        if args.is_empty() {
                            return Err("printf needs a format".to_owned());
                        }
                        Ok(Stmt::Printf(args))
                    } else {
                        Ok(Stmt::Print(args))
                    }
                }
                "if" => {
                    self.pos += 1;
                    self.expect(&Token::LParen)?;
                    let cond = self.expr()?;
                    self.expect(&Token::RParen)?;
                    self.skip_semis();
                    let then = Box::new(self.stmt()?);
                    let save = self.pos;
                    self.skip_semis();
                    let otherwise = if matches!(self.peek(), Some(Token::Ident(i)) if i == "else") {
                        self.pos += 1;
                        self.skip_semis();
                        Some(Box::new(self.stmt()?))
                    } else {
                        self.pos = save;
                        None
                    };
                    Ok(Stmt::If(cond, then, otherwise))
                }
                "while" => {
                    self.pos += 1;
                    self.expect(&Token::LParen)?;
                    let cond = self.expr()?;
                    self.expect(&Token::RParen)?;
                    self.skip_semis();
                    Ok(Stmt::While(cond, Box::new(self.stmt()?)))
                }
                "for" => self.for_stmt(),
                "next" => {
                    self.pos += 1;
                    Ok(Stmt::Next)
                }
                "delete" => {
                    self.pos += 1;
                    let name = match self.next() {
                        Some(Token::Ident(n)) => n,
                        other => return Err(format!("delete expects array, got {other:?}")),
                    };
                    self.expect(&Token::LBracket)?;
                    let sub = self.expr()?;
                    self.expect(&Token::RBracket)?;
                    Ok(Stmt::Delete(name, sub))
                }
                _ => Ok(Stmt::Expr(self.expr()?)),
            },
            _ => Ok(Stmt::Expr(self.expr()?)),
        }
    }

    fn for_stmt(&mut self) -> Result<Stmt, String> {
        self.pos += 1; // "for"
        self.expect(&Token::LParen)?;
        // for (k in arr) ...
        let lookahead = (
            self.tokens.get(self.pos).cloned(),
            self.tokens.get(self.pos + 1).cloned(),
            self.tokens.get(self.pos + 2).cloned(),
        );
        if let (Some(Token::Ident(var)), Some(Token::Ident(kw)), Some(Token::Ident(arr))) =
            lookahead
        {
            if kw == "in" && self.tokens.get(self.pos + 3) == Some(&Token::RParen) {
                self.pos += 4;
                self.skip_semis();
                return Ok(Stmt::ForIn(var, arr, Box::new(self.stmt()?)));
            }
        }
        let init = if self.peek() == Some(&Token::Semi) {
            None
        } else {
            Some(Box::new(Stmt::Expr(self.expr()?)))
        };
        self.expect(&Token::Semi)?;
        let cond = if self.peek() == Some(&Token::Semi) {
            None
        } else {
            Some(self.expr()?)
        };
        self.expect(&Token::Semi)?;
        let step = if self.peek() == Some(&Token::RParen) {
            None
        } else {
            Some(Box::new(Stmt::Expr(self.expr()?)))
        };
        self.expect(&Token::RParen)?;
        self.skip_semis();
        Ok(Stmt::For(init, cond, step, Box::new(self.stmt()?)))
    }

    // ----- expressions, lowest precedence first -----

    fn expr(&mut self) -> Result<Expr, String> {
        self.assignment()
    }

    fn assignment(&mut self) -> Result<Expr, String> {
        let lhs = self.or_expr()?;
        for op in ["=", "+=", "-=", "*=", "/=", "%="] {
            if self.eat_op(op) {
                let lv = to_lvalue(&lhs).ok_or_else(|| format!("cannot assign to {lhs:?}"))?;
                let rhs = self.assignment()?;
                return Ok(Expr::Assign(lv, op.to_owned(), Box::new(rhs)));
            }
        }
        Ok(lhs)
    }

    fn or_expr(&mut self) -> Result<Expr, String> {
        let mut lhs = self.and_expr()?;
        while self.eat_op("||") {
            let rhs = self.and_expr()?;
            lhs = Expr::Binary("||".to_owned(), Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, String> {
        let mut lhs = self.in_expr()?;
        while self.eat_op("&&") {
            let rhs = self.in_expr()?;
            lhs = Expr::Binary("&&".to_owned(), Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn in_expr(&mut self) -> Result<Expr, String> {
        let lhs = self.match_expr()?;
        if matches!(self.peek(), Some(Token::Ident(i)) if i == "in") {
            self.pos += 1;
            let arr = match self.next() {
                Some(Token::Ident(n)) => n,
                other => return Err(format!("`in` expects array name, got {other:?}")),
            };
            return Ok(Expr::In(Box::new(lhs), arr));
        }
        Ok(lhs)
    }

    fn match_expr(&mut self) -> Result<Expr, String> {
        let lhs = self.relational()?;
        for (op, negated) in [("~", false), ("!~", true)] {
            if self.eat_op(op) {
                return match self.next() {
                    Some(Token::Regex(re)) => Ok(Expr::Match(Box::new(lhs), re, negated)),
                    other => Err(format!("~ expects regex, got {other:?}")),
                };
            }
        }
        Ok(lhs)
    }

    fn relational(&mut self) -> Result<Expr, String> {
        let lhs = self.concat()?;
        for op in ["<=", ">=", "==", "!=", "<", ">"] {
            if self.eat_op(op) {
                let rhs = self.concat()?;
                return Ok(Expr::Binary(op.to_owned(), Box::new(lhs), Box::new(rhs)));
            }
        }
        Ok(lhs)
    }

    fn concat(&mut self) -> Result<Expr, String> {
        let mut lhs = self.additive()?;
        while self.starts_expression() {
            let rhs = self.additive()?;
            lhs = Expr::Binary("concat".to_owned(), Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    /// Whether the next token can begin an operand (for detecting
    /// string concatenation by juxtaposition).
    fn starts_expression(&self) -> bool {
        matches!(
            self.peek(),
            Some(Token::Number(_))
                | Some(Token::Str(_))
                | Some(Token::Ident(_))
                | Some(Token::Dollar)
                | Some(Token::LParen)
        ) && !matches!(self.peek(), Some(Token::Ident(i)) if i == "in" || i == "else")
    }

    fn additive(&mut self) -> Result<Expr, String> {
        let mut lhs = self.multiplicative()?;
        loop {
            if self.eat_op("+") {
                let rhs = self.multiplicative()?;
                lhs = Expr::Binary("+".to_owned(), Box::new(lhs), Box::new(rhs));
            } else if self.eat_op("-") {
                let rhs = self.multiplicative()?;
                lhs = Expr::Binary("-".to_owned(), Box::new(lhs), Box::new(rhs));
            } else {
                return Ok(lhs);
            }
        }
    }

    fn multiplicative(&mut self) -> Result<Expr, String> {
        let mut lhs = self.unary()?;
        loop {
            if self.eat_op("*") {
                let rhs = self.unary()?;
                lhs = Expr::Binary("*".to_owned(), Box::new(lhs), Box::new(rhs));
            } else if self.eat_op("/") {
                let rhs = self.unary()?;
                lhs = Expr::Binary("/".to_owned(), Box::new(lhs), Box::new(rhs));
            } else if self.eat_op("%") {
                let rhs = self.unary()?;
                lhs = Expr::Binary("%".to_owned(), Box::new(lhs), Box::new(rhs));
            } else {
                return Ok(lhs);
            }
        }
    }

    fn unary(&mut self) -> Result<Expr, String> {
        if self.eat_op("!") {
            return Ok(Expr::Unary("!".to_owned(), Box::new(self.unary()?)));
        }
        if self.eat_op("-") {
            return Ok(Expr::Unary("-".to_owned(), Box::new(self.unary()?)));
        }
        if self.eat_op("++") {
            let target = self.postfix()?;
            let lv = to_lvalue(&target).ok_or("++ needs an lvalue")?;
            return Ok(Expr::Incr {
                lvalue: lv,
                delta: 1.0,
                postfix: false,
            });
        }
        if self.eat_op("--") {
            let target = self.postfix()?;
            let lv = to_lvalue(&target).ok_or("-- needs an lvalue")?;
            return Ok(Expr::Incr {
                lvalue: lv,
                delta: -1.0,
                postfix: false,
            });
        }
        self.postfix()
    }

    fn postfix(&mut self) -> Result<Expr, String> {
        let e = self.primary()?;
        if self.eat_op("++") {
            let lv = to_lvalue(&e).ok_or("++ needs an lvalue")?;
            return Ok(Expr::Incr {
                lvalue: lv,
                delta: 1.0,
                postfix: true,
            });
        }
        if self.eat_op("--") {
            let lv = to_lvalue(&e).ok_or("-- needs an lvalue")?;
            return Ok(Expr::Incr {
                lvalue: lv,
                delta: -1.0,
                postfix: true,
            });
        }
        Ok(e)
    }

    fn primary(&mut self) -> Result<Expr, String> {
        match self.next() {
            Some(Token::Number(n)) => Ok(Expr::Num(n)),
            Some(Token::Str(s)) => Ok(Expr::Str(s)),
            Some(Token::Regex(r)) => Ok(Expr::Regex(r)),
            Some(Token::Dollar) => {
                let inner = self.primary()?;
                Ok(Expr::Field(Box::new(inner)))
            }
            Some(Token::LParen) => {
                let e = self.expr()?;
                self.expect(&Token::RParen)?;
                Ok(e)
            }
            Some(Token::Ident(name)) => {
                if self.peek() == Some(&Token::LParen) {
                    self.pos += 1;
                    let mut args = Vec::new();
                    if self.peek() != Some(&Token::RParen) {
                        loop {
                            args.push(self.expr()?);
                            if !self.eat(&Token::Comma) {
                                break;
                            }
                        }
                    }
                    self.expect(&Token::RParen)?;
                    Ok(Expr::Call(name, args))
                } else if self.eat(&Token::LBracket) {
                    let sub = self.expr()?;
                    self.expect(&Token::RBracket)?;
                    Ok(Expr::Index(name, Box::new(sub)))
                } else {
                    Ok(Expr::Var(name))
                }
            }
            other => Err(format!("unexpected token {other:?}")),
        }
    }
}

fn to_lvalue(e: &Expr) -> Option<Lvalue> {
    match e {
        Expr::Var(n) => Some(Lvalue::Var(n.clone())),
        Expr::Field(i) => Some(Lvalue::Field(i.clone())),
        Expr::Index(n, s) => Some(Lvalue::Index(n.clone(), s.clone())),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_pattern_action_rules() {
        let p = parse("BEGIN { x = 0 }\n{ n++ }\nEND { print n }").expect("parse");
        assert_eq!(p.rules.len(), 3);
        assert_eq!(p.rules[0].pattern, Pattern::Begin);
        assert_eq!(p.rules[1].pattern, Pattern::Always);
        assert_eq!(p.rules[2].pattern, Pattern::End);
    }

    #[test]
    fn parses_expression_patterns() {
        let p = parse("length(line) > 60 { print line }").expect("parse");
        assert!(matches!(p.rules[0].pattern, Pattern::Expr(_)));
    }

    #[test]
    fn parses_regex_patterns() {
        let p = parse("/^[a-z]+$/ { count++ }").expect("parse");
        assert!(matches!(p.rules[0].pattern, Pattern::Expr(Expr::Regex(_))));
    }

    #[test]
    fn concat_by_juxtaposition() {
        let p = parse(r#"{ line = line " " $1 }"#).expect("parse");
        let Some(stmts) = &p.rules[0].action else {
            panic!("action expected")
        };
        let Stmt::Expr(Expr::Assign(_, _, rhs)) = &stmts[0] else {
            panic!("assign expected, got {stmts:?}")
        };
        assert!(matches!(&**rhs, Expr::Binary(op, _, _) if op == "concat"));
    }

    #[test]
    fn precedence_mul_over_add() {
        let p = parse("{ x = 1 + 2 * 3 }").expect("parse");
        let Some(stmts) = &p.rules[0].action else {
            panic!()
        };
        let Stmt::Expr(Expr::Assign(_, _, rhs)) = &stmts[0] else {
            panic!()
        };
        let Expr::Binary(op, _, r) = &**rhs else {
            panic!()
        };
        assert_eq!(op, "+");
        assert!(matches!(&**r, Expr::Binary(o, _, _) if o == "*"));
    }

    #[test]
    fn for_in_and_classic_for() {
        let p = parse("END { for (w in count) s += count[w]; for (i = 0; i < 3; i++) s++ }")
            .expect("parse");
        let Some(stmts) = &p.rules[0].action else {
            panic!()
        };
        assert!(matches!(stmts[0], Stmt::ForIn(..)));
        assert!(matches!(stmts[1], Stmt::For(..)));
    }

    #[test]
    fn syntax_errors_are_reported() {
        assert!(parse("{ x = }").is_err());
        assert!(parse("{ if (x }").is_err());
        assert!(parse("BEGIN").is_err());
    }

    #[test]
    fn field_expressions() {
        let p = parse("{ print $1, $(NF - 1) }").expect("parse");
        let Some(stmts) = &p.rules[0].action else {
            panic!()
        };
        let Stmt::Print(args) = &stmts[0] else {
            panic!()
        };
        assert_eq!(args.len(), 2);
        assert!(matches!(args[0], Expr::Field(_)));
    }
}
