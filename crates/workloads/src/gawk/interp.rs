//! Tree-walking evaluator for the AWK subset.
//!
//! Values mirror gawk's NODE discipline: every string value and every
//! array cell is a traced heap allocation, reference-counted so its
//! trace lifetime ends when the last holder lets go — field values die
//! at the next record, symbol-table entries die at program end.

use super::parser::{Expr, Lvalue, Pattern, Program, Stmt};
use crate::regexlite::Regex;
use lifepred_trace::{TraceSession, Traced};
use std::collections::HashMap;
use std::rc::Rc;

/// A traced, shared string.
pub type RStr = Rc<Traced<String>>;

/// An AWK value.
#[derive(Debug, Clone, Default)]
pub enum Value {
    /// Unset (compares as `""` / `0`).
    #[default]
    Uninit,
    /// A number.
    Num(f64),
    /// A string.
    Str(RStr),
}

/// One array cell: the per-key symbol node plus the value.
#[derive(Debug)]
struct Cell {
    /// Simulates gawk's per-element NODE allocation (long-lived).
    _node: Traced<()>,
    value: Value,
}

/// The interpreter state.
#[derive(Debug)]
pub struct Interp<'s> {
    session: &'s TraceSession,
    globals: HashMap<String, Value>,
    arrays: HashMap<String, HashMap<String, Cell>>,
    /// `$0` at index 0, fields at 1..=NF.
    fields: Vec<Value>,
    regex_cache: HashMap<String, Regex>,
    output: String,
    next_flag: bool,
}

impl<'s> Interp<'s> {
    /// Creates an interpreter recording into `session`.
    pub fn new(session: &'s TraceSession) -> Self {
        Interp {
            session,
            globals: HashMap::new(),
            arrays: HashMap::new(),
            fields: vec![Value::Uninit],
            regex_cache: HashMap::new(),
            output: String::new(),
            next_flag: false,
        }
    }

    /// Runs `program` over `input`, returning the accumulated output.
    ///
    /// # Errors
    ///
    /// Returns a message on runtime errors (bad builtin arity etc.).
    pub fn run(&mut self, program: &Program, input: &str) -> Result<String, String> {
        let _g = self.session.enter("awk_run");
        for rule in &program.rules {
            if rule.pattern == Pattern::Begin {
                self.run_action(rule)?;
            }
        }
        for (nr, line) in input.lines().enumerate() {
            self.set_record(line, nr as f64 + 1.0);
            self.next_flag = false;
            for rule in &program.rules {
                if matches!(rule.pattern, Pattern::Begin | Pattern::End) {
                    continue;
                }
                let fire = match &rule.pattern {
                    Pattern::Always => true,
                    Pattern::Expr(e) => {
                        let v = self.eval(e)?;
                        self.truthy(&v)
                    }
                    _ => unreachable!(),
                };
                if fire {
                    self.run_action(rule)?;
                }
                if self.next_flag {
                    break;
                }
            }
        }
        for rule in &program.rules {
            if rule.pattern == Pattern::End {
                self.run_action(rule)?;
            }
        }
        Ok(std::mem::take(&mut self.output))
    }

    fn run_action(&mut self, rule: &super::parser::Rule) -> Result<(), String> {
        match &rule.action {
            Some(stmts) => {
                for s in stmts {
                    self.exec(s)?;
                    if self.next_flag {
                        break;
                    }
                }
                Ok(())
            }
            None => {
                let rec = self.fields[0].clone();
                self.print_values(&[rec]);
                Ok(())
            }
        }
    }

    /// Splits a record into fields — the per-record allocation storm
    /// the paper's GAWK numbers are made of.
    fn set_record(&mut self, line: &str, nr: f64) {
        let _g = self.session.enter("split_fields");
        self.fields.clear();
        self.fields.push(Value::Str(self.mkstr(line.to_owned())));
        let parts: Vec<&str> = line.split_whitespace().collect();
        for p in &parts {
            self.fields.push(Value::Str(self.mkstr((*p).to_owned())));
        }
        self.globals.insert("NR".to_owned(), Value::Num(nr));
        self.globals
            .insert("NF".to_owned(), Value::Num(parts.len() as f64));
        self.session.work(line.len() as u64);
    }

    /// Allocates a traced string (the `dupnode`/`make_str_node` layer).
    fn mkstr(&self, s: String) -> RStr {
        let _g = self.session.enter("make_str_node");
        let _m = self.session.enter("emalloc");
        let size = s.len().max(1) as u32;
        let t = self.session.traced(s, size);
        Traced::touch(&t, (t.len() / 4 + 1) as u64);
        Rc::new(t)
    }

    fn exec(&mut self, stmt: &Stmt) -> Result<(), String> {
        match stmt {
            Stmt::Print(args) => {
                let _g = self.session.enter("do_print");
                let vals = if args.is_empty() {
                    vec![self.fields[0].clone()]
                } else {
                    args.iter()
                        .map(|a| self.eval(a))
                        .collect::<Result<Vec<_>, _>>()?
                };
                self.print_values(&vals);
                Ok(())
            }
            Stmt::Printf(args) => {
                let _g = self.session.enter("do_printf");
                let vals: Vec<Value> = args
                    .iter()
                    .map(|a| self.eval(a))
                    .collect::<Result<_, _>>()?;
                let fmt = self.to_string_value(&vals[0]);
                let out = self.format(&fmt, &vals[1..]);
                self.output.push_str(&out);
                self.session.work(out.len() as u64 / 2 + 4);
                Ok(())
            }
            Stmt::Expr(e) => {
                self.eval(e)?;
                Ok(())
            }
            Stmt::If(cond, then, otherwise) => {
                let v = self.eval(cond)?;
                if self.truthy(&v) {
                    self.exec(then)
                } else if let Some(o) = otherwise {
                    self.exec(o)
                } else {
                    Ok(())
                }
            }
            Stmt::While(cond, body) => {
                loop {
                    let v = self.eval(cond)?;
                    if !self.truthy(&v) || self.next_flag {
                        break;
                    }
                    self.exec(body)?;
                }
                Ok(())
            }
            Stmt::For(init, cond, step, body) => {
                if let Some(i) = init {
                    self.exec(i)?;
                }
                loop {
                    if let Some(c) = cond {
                        let v = self.eval(c)?;
                        if !self.truthy(&v) {
                            break;
                        }
                    }
                    if self.next_flag {
                        break;
                    }
                    self.exec(body)?;
                    if let Some(s) = step {
                        self.exec(s)?;
                    }
                }
                Ok(())
            }
            Stmt::ForIn(var, arr, body) => {
                let mut keys: Vec<String> = self
                    .arrays
                    .get(arr)
                    .map_or_else(Vec::new, |m| m.keys().cloned().collect());
                keys.sort(); // deterministic iteration
                for k in keys {
                    let kv = Value::Str(self.mkstr(k));
                    self.globals.insert(var.clone(), kv);
                    self.exec(body)?;
                    if self.next_flag {
                        break;
                    }
                }
                Ok(())
            }
            Stmt::Block(stmts) => {
                for s in stmts {
                    self.exec(s)?;
                    if self.next_flag {
                        break;
                    }
                }
                Ok(())
            }
            Stmt::Next => {
                self.next_flag = true;
                Ok(())
            }
            Stmt::Delete(arr, sub) => {
                let key = {
                    let v = self.eval(sub)?;
                    self.to_string_value(&v)
                };
                if let Some(m) = self.arrays.get_mut(arr) {
                    m.remove(&key);
                }
                Ok(())
            }
        }
    }

    fn print_values(&mut self, vals: &[Value]) {
        for (i, v) in vals.iter().enumerate() {
            if i > 0 {
                self.output.push(' ');
            }
            let s = self.to_string_value(v);
            self.output.push_str(&s);
        }
        self.output.push('\n');
        self.session.work(8);
    }

    fn eval(&mut self, expr: &Expr) -> Result<Value, String> {
        match expr {
            Expr::Num(n) => Ok(Value::Num(*n)),
            Expr::Str(s) => Ok(Value::Str(self.mkstr(s.clone()))),
            Expr::Regex(re) => {
                // A bare regex matches against $0.
                let rec = self.to_string_value(&self.fields[0].clone());
                Ok(Value::Num(f64::from(self.regex_match(re, &rec)?)))
            }
            Expr::Var(name) => Ok(self.globals.get(name).cloned().unwrap_or_default()),
            Expr::Field(idx) => {
                let v = self.eval(idx)?;
                let i = self.to_num(&v) as usize;
                Ok(self.fields.get(i).cloned().unwrap_or_default())
            }
            Expr::Index(arr, sub) => {
                let v = self.eval(sub)?;
                let key = self.to_string_value(&v);
                Ok(self
                    .arrays
                    .get(arr)
                    .and_then(|m| m.get(&key))
                    .map(|c| c.value.clone())
                    .unwrap_or_default())
            }
            Expr::Assign(lv, op, rhs) => {
                let _g = self.session.enter("do_assign");
                let rv = self.eval(rhs)?;
                let newv = if op == "=" {
                    rv
                } else {
                    let old = self.read_lvalue(lv)?;
                    let (a, b) = (self.to_num(&old), self.to_num(&rv));
                    Value::Num(match op.as_str() {
                        "+=" => a + b,
                        "-=" => a - b,
                        "*=" => a * b,
                        "/=" => a / b,
                        "%=" => a % b,
                        other => return Err(format!("bad assign op {other}")),
                    })
                };
                self.write_lvalue(lv, newv.clone())?;
                Ok(newv)
            }
            Expr::Binary(op, lhs, rhs) => self.eval_binary(op, lhs, rhs),
            Expr::Unary(op, inner) => {
                let v = self.eval(inner)?;
                match op.as_str() {
                    "!" => Ok(Value::Num(f64::from(!self.truthy(&v)))),
                    "-" => Ok(Value::Num(-self.to_num(&v))),
                    other => Err(format!("bad unary {other}")),
                }
            }
            Expr::Incr {
                lvalue,
                delta,
                postfix,
            } => {
                let old_value = self.read_lvalue(lvalue)?;
                let old = self.to_num(&old_value);
                let new = old + delta;
                self.write_lvalue(lvalue, Value::Num(new))?;
                Ok(Value::Num(if *postfix { old } else { new }))
            }
            Expr::Match(target, re, negated) => {
                let tv = self.eval(target)?;
                let text = self.to_string_value(&tv);
                let hit = self.regex_match(re, &text)?;
                Ok(Value::Num(f64::from(hit != *negated)))
            }
            Expr::Call(name, args) => self.call(name, args),
            Expr::In(key, arr) => {
                let kv = self.eval(key)?;
                let k = self.to_string_value(&kv);
                let present = self.arrays.get(arr).is_some_and(|m| m.contains_key(&k));
                Ok(Value::Num(f64::from(present)))
            }
        }
    }

    fn eval_binary(&mut self, op: &str, lhs: &Expr, rhs: &Expr) -> Result<Value, String> {
        if op == "&&" {
            let l = self.eval(lhs)?;
            if !self.truthy(&l) {
                return Ok(Value::Num(0.0));
            }
            let r = self.eval(rhs)?;
            return Ok(Value::Num(f64::from(self.truthy(&r))));
        }
        if op == "||" {
            let l = self.eval(lhs)?;
            if self.truthy(&l) {
                return Ok(Value::Num(1.0));
            }
            let r = self.eval(rhs)?;
            return Ok(Value::Num(f64::from(self.truthy(&r))));
        }
        let l = self.eval(lhs)?;
        let r = self.eval(rhs)?;
        match op {
            "concat" => {
                let _g = self.session.enter("do_concat");
                let a = self.to_string_value(&l);
                let b = self.to_string_value(&r);
                let mut s = String::with_capacity(a.len() + b.len());
                s.push_str(&a);
                s.push_str(&b);
                Ok(Value::Str(self.mkstr(s)))
            }
            "+" | "-" | "*" | "/" | "%" => {
                let (a, b) = (self.to_num(&l), self.to_num(&r));
                Ok(Value::Num(match op {
                    "+" => a + b,
                    "-" => a - b,
                    "*" => a * b,
                    "/" => a / b,
                    _ => a % b,
                }))
            }
            "<" | "<=" | ">" | ">=" | "==" | "!=" => {
                let result = match (&l, &r) {
                    (Value::Str(a), Value::Str(b)) => compare(op, &***a, &***b),
                    _ => {
                        let (a, b) = (self.to_num(&l), self.to_num(&r));
                        compare(op, &a, &b)
                    }
                };
                Ok(Value::Num(f64::from(result)))
            }
            other => Err(format!("bad binary op {other}")),
        }
    }

    fn call(&mut self, name: &str, args: &[Expr]) -> Result<Value, String> {
        if name == "gsub" || name == "sub" {
            return self.substitute(name == "gsub", args);
        }
        let vals: Vec<Value> = args
            .iter()
            .map(|a| self.eval(a))
            .collect::<Result<_, _>>()?;
        match name {
            "length" => {
                let s = if vals.is_empty() {
                    self.to_string_value(&self.fields[0].clone())
                } else {
                    self.to_string_value(&vals[0])
                };
                Ok(Value::Num(s.len() as f64))
            }
            "substr" => {
                let _g = self.session.enter("do_substr");
                let s = self.to_string_value(&vals[0]);
                let start = (self.to_num(vals.get(1).unwrap_or(&Value::Num(1.0))) as usize)
                    .saturating_sub(1);
                let len = vals
                    .get(2)
                    .map_or(usize::MAX, |v| self.to_num(v).max(0.0) as usize);
                let sub: String = s.chars().skip(start).take(len).collect();
                Ok(Value::Str(self.mkstr(sub)))
            }
            "index" => {
                let hay = self.to_string_value(&vals[0]);
                let needle = self.to_string_value(&vals[1]);
                Ok(Value::Num(
                    hay.find(needle.as_str()).map_or(0.0, |i| i as f64 + 1.0),
                ))
            }
            "split" => {
                let _g = self.session.enter("do_split");
                let s = self.to_string_value(&vals[0]);
                let Expr::Var(arr_name) = &args[1] else {
                    return Err("split needs an array name".to_owned());
                };
                let sep = vals.get(2).map(|v| self.to_string_value(v));
                let parts: Vec<String> = match &sep {
                    Some(sep) if !sep.is_empty() => {
                        s.split(sep.as_str()).map(str::to_owned).collect()
                    }
                    _ => s.split_whitespace().map(str::to_owned).collect(),
                };
                let n = parts.len();
                self.arrays.insert(arr_name.clone(), HashMap::new());
                for (i, p) in parts.into_iter().enumerate() {
                    let v = Value::Str(self.mkstr(p));
                    self.array_insert(arr_name, (i + 1).to_string(), v);
                }
                Ok(Value::Num(n as f64))
            }
            "toupper" | "tolower" => {
                let _g = self.session.enter("do_case");
                let s = self.to_string_value(&vals[0]);
                let out = if name == "toupper" {
                    s.to_uppercase()
                } else {
                    s.to_lowercase()
                };
                Ok(Value::Str(self.mkstr(out)))
            }
            "sprintf" => {
                let _g = self.session.enter("do_sprintf");
                let fmt = self.to_string_value(&vals[0]);
                let out = self.format(&fmt, &vals[1..]);
                Ok(Value::Str(self.mkstr(out)))
            }
            "int" => Ok(Value::Num(self.to_num(&vals[0]).trunc())),
            other => Err(format!("unknown function {other}")),
        }
    }

    /// `sub(/re/, repl [, target])` and `gsub`: replace the first (or
    /// every) match in the target (default `$0`), returning the count.
    fn substitute(&mut self, global: bool, args: &[Expr]) -> Result<Value, String> {
        let _g = self.session.enter("do_gsub");
        let Some(Expr::Regex(re)) = args.first() else {
            return Err("sub/gsub need a regex first argument".to_owned());
        };
        let replacement = {
            let v = self.eval(args.get(1).ok_or("sub/gsub need a replacement")?)?;
            self.to_string_value(&v)
        };
        let target = match args.get(2) {
            Some(Expr::Var(n)) => Lvalue::Var(n.clone()),
            Some(Expr::Field(i)) => Lvalue::Field(i.clone()),
            Some(Expr::Index(n, i)) => Lvalue::Index(n.clone(), i.clone()),
            Some(other) => return Err(format!("sub/gsub target must be an lvalue, got {other:?}")),
            None => Lvalue::Field(Box::new(Expr::Num(0.0))),
        };
        if !self.regex_cache.contains_key(re) {
            let compiled = Regex::compile(re)?;
            self.regex_cache.insert(re.clone(), compiled);
        }
        let regex = self.regex_cache[re].clone();
        let old = self.read_lvalue(&target)?;
        let mut rest = self.to_string_value(&old);
        let mut out = String::with_capacity(rest.len());
        let mut count = 0u64;
        loop {
            match regex.find(&rest) {
                // Zero-width matches are skipped to guarantee progress.
                Some((a, b)) if b > a => {
                    let chars: Vec<char> = rest.chars().collect();
                    out.extend(&chars[..a]);
                    out.push_str(&replacement);
                    count += 1;
                    rest = chars[b..].iter().collect();
                    self.session.work(rest.len() as u64 / 4 + 1);
                    if !global || rest.is_empty() {
                        break;
                    }
                }
                _ => break,
            }
        }
        out.push_str(&rest);
        let newv = Value::Str(self.mkstr(out));
        self.write_lvalue(&target, newv)?;
        Ok(Value::Num(count as f64))
    }

    /// Minimal printf-style formatting: `%s`, `%d`, `%x`, `%f`, `%%`.
    fn format(&mut self, fmt: &str, args: &[Value]) -> String {
        let mut out = String::new();
        let mut ai = 0;
        let mut chars = fmt.chars().peekable();
        while let Some(c) = chars.next() {
            if c != '%' {
                out.push(c);
                continue;
            }
            match chars.next() {
                Some('%') => out.push('%'),
                Some('s') => {
                    let v = args.get(ai).cloned().unwrap_or_default();
                    out.push_str(&self.to_string_value(&v));
                    ai += 1;
                }
                Some('d') => {
                    let v = args.get(ai).cloned().unwrap_or_default();
                    out.push_str(&(self.to_num(&v) as i64).to_string());
                    ai += 1;
                }
                Some('x') => {
                    let v = args.get(ai).cloned().unwrap_or_default();
                    out.push_str(&format!("{:x}", self.to_num(&v) as i64));
                    ai += 1;
                }
                Some('f') => {
                    let v = args.get(ai).cloned().unwrap_or_default();
                    out.push_str(&format!("{:.6}", self.to_num(&v)));
                    ai += 1;
                }
                Some(other) => out.push(other),
                None => {}
            }
        }
        out
    }

    fn regex_match(&mut self, pattern: &str, text: &str) -> Result<bool, String> {
        if !self.regex_cache.contains_key(pattern) {
            let re = Regex::compile(pattern)?;
            self.regex_cache.insert(pattern.to_owned(), re);
        }
        self.session.work(text.len() as u64 / 2 + 4);
        Ok(self.regex_cache[pattern].is_match(text))
    }

    fn read_lvalue(&mut self, lv: &Lvalue) -> Result<Value, String> {
        match lv {
            Lvalue::Var(n) => Ok(self.globals.get(n).cloned().unwrap_or_default()),
            Lvalue::Field(ie) => {
                let v = self.eval(ie)?;
                let i = self.to_num(&v) as usize;
                Ok(self.fields.get(i).cloned().unwrap_or_default())
            }
            Lvalue::Index(arr, sub) => {
                let v = self.eval(sub)?;
                let key = self.to_string_value(&v);
                Ok(self
                    .arrays
                    .get(arr)
                    .and_then(|m| m.get(&key))
                    .map(|c| c.value.clone())
                    .unwrap_or_default())
            }
        }
    }

    fn write_lvalue(&mut self, lv: &Lvalue, value: Value) -> Result<(), String> {
        match lv {
            Lvalue::Var(n) => {
                self.globals.insert(n.clone(), value);
            }
            Lvalue::Field(ie) => {
                let v = self.eval(ie)?;
                let i = self.to_num(&v) as usize;
                while self.fields.len() <= i {
                    self.fields.push(Value::Uninit);
                }
                self.fields[i] = value;
            }
            Lvalue::Index(arr, sub) => {
                let v = self.eval(sub)?;
                let key = self.to_string_value(&v);
                self.array_insert(arr, key, value);
            }
        }
        Ok(())
    }

    fn array_insert(&mut self, arr: &str, key: String, value: Value) {
        let map = self.arrays.entry(arr.to_owned()).or_default();
        if let Some(cell) = map.get_mut(&key) {
            cell.value = value;
        } else {
            let _g = self.session.enter("array_node");
            let _m = self.session.enter("emalloc");
            let node = self.session.traced((), (key.len() + 16) as u32);
            map.insert(key, Cell { _node: node, value });
        }
    }

    /// AWK truthiness: nonzero number or nonempty string.
    fn truthy(&self, v: &Value) -> bool {
        match v {
            Value::Uninit => false,
            Value::Num(n) => *n != 0.0,
            Value::Str(s) => !s.is_empty(),
        }
    }

    fn to_num(&self, v: &Value) -> f64 {
        match v {
            Value::Uninit => 0.0,
            Value::Num(n) => *n,
            Value::Str(s) => {
                // AWK parses a numeric prefix.
                let t = s.trim();
                let end = t
                    .char_indices()
                    .take_while(|(i, c)| {
                        c.is_ascii_digit() || *c == '.' || (*i == 0 && (*c == '-' || *c == '+'))
                    })
                    .map(|(i, c)| i + c.len_utf8())
                    .last()
                    .unwrap_or(0);
                t[..end].parse().unwrap_or(0.0)
            }
        }
    }

    fn to_string_value(&self, v: &Value) -> String {
        match v {
            Value::Uninit => String::new(),
            Value::Num(n) => num_to_string(*n),
            Value::Str(s) => (***s).clone(),
        }
    }

    /// Output accumulated so far (for tests).
    pub fn output(&self) -> &str {
        &self.output
    }
}

fn compare<T: PartialOrd + PartialEq>(op: &str, a: &T, b: &T) -> bool {
    match op {
        "<" => a < b,
        "<=" => a <= b,
        ">" => a > b,
        ">=" => a >= b,
        "==" => a == b,
        "!=" => a != b,
        _ => false,
    }
}

/// AWK number formatting: integers print without a decimal point.
pub fn num_to_string(n: f64) -> String {
    if n.fract() == 0.0 && n.abs() < 1e15 {
        format!("{}", n as i64)
    } else {
        format!("{n}")
    }
}

#[cfg(test)]
mod tests {
    use super::super::parser::parse;
    use super::*;
    use lifepred_trace::TraceSession;

    fn run(src: &str, input: &str) -> String {
        let s = TraceSession::new("awk-test");
        let prog = parse(src).expect("parse");
        let mut interp = Interp::new(&s);
        interp.run(&prog, input).expect("run")
    }

    #[test]
    fn counts_records() {
        let out = run("{ n++ }\nEND { print n }", "a\nb\nc\n");
        assert_eq!(out, "3\n");
    }

    #[test]
    fn fields_and_concat() {
        let out = run(r#"{ print $2 "-" $1 }"#, "hello world\nfoo bar\n");
        assert_eq!(out, "world-hello\nbar-foo\n");
    }

    #[test]
    fn arrays_and_for_in() {
        let out = run(
            "{ c[$1]++ }\nEND { for (k in c) print k, c[k] }",
            "b\na\nb\n",
        );
        assert_eq!(out, "a 1\nb 2\n");
    }

    #[test]
    fn paragraph_fill() {
        let src = r#"
{ line = line " " $1 }
length(line) > 20 { print line; line = "" }
END { if (length(line) > 0) print line }
"#;
        let out = run(src, "aaaa\nbbbb\ncccc\ndddd\neeee\nffff\n");
        assert!(out.lines().count() >= 2);
        for l in out.lines() {
            assert!(l.len() <= 26, "line too long: {l}");
        }
    }

    #[test]
    fn regex_patterns_filter() {
        let out = run("/^[0-9]+$/ { n++ }\nEND { print n }", "12\nx\n9\n");
        assert_eq!(out, "2\n");
    }

    #[test]
    fn builtins() {
        assert_eq!(run("{ print length($1) }", "hello\n"), "5\n");
        assert_eq!(run("{ print substr($1, 2, 3) }", "hello\n"), "ell\n");
        assert_eq!(run("{ print index($1, \"ll\") }", "hello\n"), "3\n");
        assert_eq!(run("{ print toupper($1) }", "hey\n"), "HEY\n");
        assert_eq!(
            run("{ n = split($0, parts); print n, parts[2] }", "a b c\n"),
            "3 b\n"
        );
        assert_eq!(run("{ print sprintf(\"%s=%d\", $1, 42) }", "x\n"), "x=42\n");
    }

    #[test]
    fn arithmetic_and_comparison() {
        assert_eq!(run("{ print $1 + $2 * 2 }", "1 3\n"), "7\n");
        assert_eq!(run("$1 > 5 { print }", "3\n9\n"), "9\n");
        assert_eq!(run("{ print ($1 == \"a\") }", "a\n"), "1\n");
    }

    #[test]
    fn control_flow() {
        let out = run(
            "{ for (i = 0; i < 3; i++) s += i; while (j < 2) j++; print s, j }",
            "x\n",
        );
        assert_eq!(out, "3 2\n");
    }

    #[test]
    fn printf_formats_without_newline() {
        let out = run(r#"{ printf "%s=%d;", $1, $2 * 2 }"#, "a 1\nb 2\n");
        assert_eq!(out, "a=2;b=4;");
    }

    #[test]
    fn sub_replaces_first_only() {
        let out = run(r#"{ n = sub(/o/, "0"); print n, $0 }"#, "foo\n");
        assert_eq!(out, "1 f0o\n");
    }

    #[test]
    fn gsub_replaces_all_and_counts() {
        let out = run(r#"{ n = gsub(/o/, "0"); print n, $0 }"#, "foo boo\n");
        assert_eq!(out, "4 f00 b00\n");
    }

    #[test]
    fn gsub_on_named_variable() {
        let out = run(
            r##"{ x = $0; gsub(/[0-9]+/, "#", x); print x }"##,
            "a1b22c333\n",
        );
        assert_eq!(out, "a#b#c#\n");
    }

    #[test]
    fn gsub_with_no_match_returns_zero() {
        let out = run(r#"{ print gsub(/zz/, "!") }"#, "abc\n");
        assert_eq!(out, "0\n");
    }

    #[test]
    fn next_skips_later_rules() {
        let out = run("$1 == \"skip\" { next }\n{ print $1 }", "a\nskip\nb\n");
        assert_eq!(out, "a\nb\n");
    }

    #[test]
    fn delete_and_in() {
        let out = run(
            "BEGIN { a[\"x\"] = 1; delete a[\"x\"]; print (\"x\" in a) }",
            "",
        );
        assert_eq!(out, "0\n");
    }

    #[test]
    fn string_allocations_are_traced() {
        let s = TraceSession::new("awk-alloc");
        let prog = parse(r#"{ line = line " " $1 }"#).expect("parse");
        let mut interp = Interp::new(&s);
        interp.run(&prog, "one two\nthree\n").expect("run");
        drop(interp);
        let t = s.finish();
        assert!(t.stats().total_objects > 6);
        // Field strings die by the next record: check some short-lived
        // records exist.
        let end = t.end_clock();
        assert!(t.records().iter().any(|r| r.lifetime(end) < 200));
    }
}
