//! Streaming `.lpt` synthesis from the server simulation.
//!
//! [`generate_lpt`] turns a [`SimConfig`]-shaped run into a trace file
//! of (close to) a requested event count without ever holding the
//! trace in memory. The `.lpt` records section stores each object's
//! death, which is only known when the simulation frees it — so the
//! deterministic simulation is simply run three times:
//!
//! 1. **census** — count objects/events, track live maxima, and fill
//!    a compact death table (absolute death seq as `u32`, death-clock
//!    delta as `u32` with a hash-map overflow for the long-lived
//!    tail);
//! 2. **records** — re-run, emitting one
//!    [`AllocationRecord`] per birth with its death looked up in the
//!    table;
//! 3. **events** — re-run, emitting the alloc/free event stream.
//!
//! Peak memory is the death table: 8 bytes per object, about a tenth
//! of the file being written. Everything else is streamed through
//! [`StreamTraceWriter`]'s 64 KiB scratch buffer.

use super::sim::{run_sim, AllocSink, SimConfig, Site, SITES};
use lifepred_trace::{AllocationRecord, ChainTable, FunctionRegistry, ObjectId, TraceStats};
use lifepred_tracefile::{StreamMeta, StreamTraceWriter, TraceFileError};
use std::collections::HashMap;
use std::io::{Seek, Write};

/// Death seq sentinel: the object is never freed.
const IMMORTAL: u32 = u32::MAX;

/// What [`generate_lpt`] wrote.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SynthSummary {
    /// Alloc + free events in the events section.
    pub events: u64,
    /// Allocation records (= objects = allocs).
    pub objects: u64,
    /// Total bytes allocated over the run (= final clock).
    pub total_bytes: u64,
    /// Objects never freed.
    pub immortal: u64,
    /// Maximum bytes simultaneously live.
    pub max_live_bytes: u64,
}

/// The census pass: sizes the trace and learns every object's death.
struct Census {
    births: u64,
    frees: u64,
    clock: u64,
    /// Death event seq per birth index ([`IMMORTAL`] when leaked).
    death_seq: Vec<u32>,
    /// `death_clock - birth_clock` per birth index, `u32::MAX`
    /// meaning "see `delta_overflow`".
    death_delta: Vec<u32>,
    delta_overflow: HashMap<u64, u64>,
    /// Live objects only: token → (size, birth clock).
    live: HashMap<u64, (u32, u64)>,
    live_bytes: u64,
    max_live_bytes: u64,
    max_live_objects: u64,
}

impl Census {
    fn new() -> Census {
        Census {
            births: 0,
            frees: 0,
            clock: 0,
            death_seq: Vec::new(),
            death_delta: Vec::new(),
            delta_overflow: HashMap::new(),
            live: HashMap::new(),
            live_bytes: 0,
            max_live_bytes: 0,
            max_live_objects: 0,
        }
    }

    fn seq(&self) -> u64 {
        self.births + self.frees
    }
}

impl AllocSink for Census {
    fn alloc(&mut self, _site: Site, size: u32) -> Result<u64, TraceFileError> {
        if self.seq() + 1 >= u64::from(u32::MAX) {
            return Err(TraceFileError::Malformed {
                section: "events",
                detail: "synthetic trace exceeds the u32 death-table seq limit".to_owned(),
            });
        }
        let token = self.births;
        self.births += 1;
        self.death_seq.push(IMMORTAL);
        self.death_delta.push(0);
        self.live.insert(token, (size, self.clock));
        self.clock += u64::from(size);
        self.live_bytes += u64::from(size);
        self.max_live_bytes = self.max_live_bytes.max(self.live_bytes);
        self.max_live_objects = self.max_live_objects.max(self.live.len() as u64);
        Ok(token)
    }

    fn free(&mut self, token: u64) -> Result<(), TraceFileError> {
        let (size, birth_clock) = self.live.remove(&token).expect("sim frees live tokens");
        let seq = self.seq();
        self.frees += 1;
        self.live_bytes -= u64::from(size);
        let index = usize::try_from(token).expect("birth index fits usize");
        self.death_seq[index] = seq as u32;
        let delta = self.clock - birth_clock;
        match u32::try_from(delta) {
            Ok(d) if d != u32::MAX => self.death_delta[index] = d,
            _ => {
                self.death_delta[index] = u32::MAX;
                self.delta_overflow.insert(token, delta);
            }
        }
        Ok(())
    }
}

/// The records pass: re-runs the sim, writing one record per birth.
struct RecordPass<'a, W: Write + Seek> {
    writer: &'a mut StreamTraceWriter<W>,
    census: &'a Census,
    chain_of: &'a [lifepred_trace::ChainId],
    births: u64,
    frees: u64,
    clock: u64,
}

impl<W: Write + Seek> AllocSink for RecordPass<'_, W> {
    fn alloc(&mut self, site: Site, size: u32) -> Result<u64, TraceFileError> {
        let token = self.births;
        let seq = self.births + self.frees;
        let index = usize::try_from(token).expect("birth index fits usize");
        let death_seq = self.census.death_seq[index];
        let (death_seq, death_clock) = if death_seq == IMMORTAL {
            (None, None)
        } else {
            let delta = match self.census.death_delta[index] {
                u32::MAX => self.census.delta_overflow[&token],
                d => u64::from(d),
            };
            (Some(u64::from(death_seq)), Some(self.clock + delta))
        };
        self.writer.write_record(&AllocationRecord {
            object: ObjectId::from_index(token),
            size,
            chain: self.chain_of[site as usize],
            birth_clock: self.clock,
            death_clock,
            birth_seq: seq,
            death_seq,
            refs: 0,
            first_ref_clock: None,
            last_ref_clock: None,
        })?;
        self.births += 1;
        self.clock += u64::from(size);
        Ok(token)
    }

    fn free(&mut self, _token: u64) -> Result<(), TraceFileError> {
        self.frees += 1;
        Ok(())
    }
}

/// The events pass: re-runs the sim, writing the event stream.
struct EventPass<'a, W: Write + Seek> {
    writer: &'a mut StreamTraceWriter<W>,
    births: u64,
}

impl<W: Write + Seek> AllocSink for EventPass<'_, W> {
    fn alloc(&mut self, _site: Site, size: u32) -> Result<u64, TraceFileError> {
        self.writer.write_alloc(size)?;
        let token = self.births;
        self.births += 1;
        Ok(token)
    }

    fn free(&mut self, token: u64) -> Result<(), TraceFileError> {
        self.writer.write_free(token)
    }
}

/// Interns the server's call chains, returning `(registry, chains,
/// chain id per [`SITES`] index)`.
fn intern_sites() -> (FunctionRegistry, ChainTable, Vec<lifepred_trace::ChainId>) {
    let mut registry = FunctionRegistry::new();
    let mut chains = ChainTable::new();
    let chain_of = SITES
        .iter()
        .map(|site| {
            let frames: Vec<_> = site
                .frames()
                .iter()
                .map(|name| registry.intern(name))
                .collect();
            chains.intern(&frames)
        })
        .collect();
    (registry, chains, chain_of)
}

/// Streams a synthetic server trace shaped by `config` into `sink`.
///
/// The file decodes with every reader in `lifepred-tracefile`
/// (iterator, chunked, and mapped). Peak memory is ~8 bytes per
/// object regardless of file size.
///
/// # Errors
///
/// I/O errors from `sink`, or a run so long it overflows the `u32`
/// death table (≥ 2³²−1 events).
pub fn generate_lpt<W: Write + Seek>(
    config: &SimConfig,
    sink: W,
) -> Result<(SynthSummary, W), TraceFileError> {
    let mut census = Census::new();
    run_sim(config, &mut census)?;
    debug_assert!(census.live.len() as u64 == census.births - census.frees);

    let (registry, chains, chain_of) = intern_sites();
    let stats = TraceStats {
        total_bytes: census.clock,
        total_objects: census.births,
        max_live_bytes: census.max_live_bytes,
        max_live_objects: census.max_live_objects,
        ..TraceStats::default()
    };
    let name = format!("server:synth-{}ev-seed{}", census.seq(), config.seed);
    let meta = StreamMeta {
        name: &name,
        stats,
        end_clock: census.clock,
        end_seq: census.seq(),
    };
    let mut writer = StreamTraceWriter::new(sink, &meta, &registry, &chains)?;

    writer.begin_records(census.births)?;
    let mut records = RecordPass {
        writer: &mut writer,
        census: &census,
        chain_of: &chain_of,
        births: 0,
        frees: 0,
        clock: 0,
    };
    run_sim(config, &mut records)?;
    writer.end_records()?;

    writer.begin_events(census.seq())?;
    let mut events = EventPass {
        writer: &mut writer,
        births: 0,
    };
    run_sim(config, &mut events)?;
    writer.end_events()?;

    let summary = SynthSummary {
        events: census.seq(),
        objects: census.births,
        total_bytes: census.clock,
        immortal: census.births - census.frees,
        max_live_bytes: census.max_live_bytes,
    };
    Ok((summary, writer.finish()?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use lifepred_tracefile::{trace_from_bytes, MappedTrace, TraceMap};
    use std::io::Cursor;

    fn small_config() -> SimConfig {
        SimConfig {
            requests: 3_000,
            connections: 16,
            sessions: 128,
            seed: 9,
        }
    }

    #[test]
    fn generated_traces_decode_and_match_the_summary() {
        let (summary, sink) =
            generate_lpt(&small_config(), Cursor::new(Vec::new())).expect("generate");
        let bytes = sink.into_inner();
        let trace = trace_from_bytes(&bytes).expect("decode");
        assert_eq!(trace.records().len() as u64, summary.objects);
        assert_eq!(trace.end_seq(), summary.events);
        assert_eq!(trace.stats().total_bytes, summary.total_bytes);
        assert_eq!(trace.stats().max_live_bytes, summary.max_live_bytes);
        let immortal = trace.records().iter().filter(|r| r.is_immortal()).count() as u64;
        assert_eq!(immortal, summary.immortal);
        // The sim leaks exactly one object: the routing table.
        assert_eq!(immortal, 1);
    }

    #[test]
    fn generated_traces_satisfy_the_mapped_reader() {
        let (summary, sink) =
            generate_lpt(&small_config(), Cursor::new(Vec::new())).expect("generate");
        let mapped =
            MappedTrace::from_map(TraceMap::from_vec(sink.into_inner())).expect("mapped open");
        assert_eq!(mapped.record_count(), summary.objects);
        assert_eq!(mapped.event_count(), summary.events);
    }

    #[test]
    fn for_events_lands_near_the_target() {
        let config = SimConfig::for_events(100_000, 3);
        let (summary, _) = generate_lpt(&config, Cursor::new(Vec::new())).expect("generate");
        let err = summary.events.abs_diff(100_000) as f64 / 100_000.0;
        assert!(err < 0.2, "{} events for a 100k target", summary.events);
    }
}
