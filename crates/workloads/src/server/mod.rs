//! SERVER: a high-QPS request/response allocator workload.
//!
//! The paper's five programs are batch jobs; modern allocator stress
//! lives in long-running servers, where the lifetime signal the paper
//! exploits is even sharper: per-request buffers die in microseconds
//! while session state and connection buffers live for thousands of
//! requests. This sixth workload family simulates such a server
//! deterministically — per-connection read buffers that grow by
//! doubling, bimodal request/response bodies, a session cache with TTL
//! churn, slab-shaped burst batches, and batched access-log flushes —
//! over eight fixed allocation sites (see [`sim::Site`]).
//!
//! The same simulation has two faces:
//!
//! * [`Server`] records it into a
//!   [`TraceSession`](lifepred_trace::TraceSession) like every other
//!   workload, so the predictor pipeline and `lifepred run` treat it
//!   as family number six;
//! * [`synth::generate_lpt`] streams it straight into a `.lpt` file
//!   via [`StreamTraceWriter`](lifepred_tracefile::StreamTraceWriter),
//!   which is how `lifepred gen` produces 10⁸-event traces for decode
//!   benchmarking without materializing a trace in memory.

pub mod sim;
pub mod synth;

use crate::Workload;
use lifepred_trace::{ObjectId, TraceSession};
use lifepred_tracefile::TraceFileError;
use sim::{run_sim, AllocSink, SimConfig, Site};

/// The SERVER workload.
#[derive(Debug, Default, Clone)]
pub struct Server;

/// Request counts for the two inputs: training first.
const INPUTS: &[(&str, u64)] = &[("light-qps", 2_000), ("heavy-qps", 10_000)];

impl Workload for Server {
    fn name(&self) -> &'static str {
        "server"
    }

    fn description(&self) -> &'static str {
        "Serves a deterministic stream of requests through a simulated \
         network server: growing per-connection buffers, bimodal \
         request/response bodies, a TTL-churned session cache, slab \
         bursts and batched log flushes."
    }

    fn inputs(&self) -> Vec<String> {
        INPUTS.iter().map(|(name, _)| (*name).to_owned()).collect()
    }

    fn run(&self, input: usize, session: &TraceSession) {
        let requests = INPUTS[input].1;
        let config = SimConfig {
            requests,
            connections: 32,
            sessions: 256,
            seed: 0xbeef + input as u64,
        };
        let mut sink = SessionSink { session };
        run_sim(&config, &mut sink).expect("session sinks never fail");
    }
}

/// Adapts a [`TraceSession`] to the simulation's [`AllocSink`].
///
/// Session object ids are consecutive birth indices, so the sink's
/// tokens are simply the ids' indices — no table needed.
struct SessionSink<'a> {
    session: &'a TraceSession,
}

impl AllocSink for SessionSink<'_> {
    fn alloc(&mut self, site: Site, size: u32) -> Result<u64, TraceFileError> {
        // Re-enter the site's chain so the recorded trace carries the
        // same call chains the synthetic writer interns statically.
        let mut guards: Vec<_> = site
            .frames()
            .iter()
            .map(|name| self.session.enter(name))
            .collect();
        let id = self.session.alloc(size);
        // The shadow stack pops LIFO; a Vec drops front-to-back.
        while let Some(guard) = guards.pop() {
            drop(guard);
        }
        Ok(id.index())
    }

    fn free(&mut self, token: u64) -> Result<(), TraceFileError> {
        self.session.free(ObjectId::from_index(token));
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record;
    use lifepred_trace::shared_registry;

    #[test]
    fn recorded_server_traces_have_the_expected_shape() {
        let trace = record(&Server, 0, shared_registry());
        let stats = trace.stats();
        assert!(stats.total_objects > 2_000, "{stats:?}");
        // Exactly one immortal object: the routing table.
        let immortal = trace.records().iter().filter(|r| r.is_immortal()).count();
        assert_eq!(immortal, 1);
        // Bimodal lifetimes: most objects die young (within ~64 KiB of
        // allocation), a solid minority live much longer.
        let end = trace.end_clock();
        let short = trace
            .records()
            .iter()
            .filter(|r| r.lifetime(end) < 64 * 1024)
            .count();
        let long = trace.records().len() - short;
        assert!(
            short * 10 > trace.records().len() * 5,
            "short-lived majority"
        );
        assert!(long * 50 > trace.records().len(), "long tail exists");
    }

    #[test]
    fn session_and_synth_faces_agree_on_event_counts() {
        let config = SimConfig {
            requests: 1_000,
            connections: 32,
            sessions: 256,
            seed: 0xbeef,
        };
        let session = lifepred_trace::TraceSession::new("server:parity");
        let mut sink = SessionSink { session: &session };
        run_sim(&config, &mut sink).expect("session run");
        let recorded = session.finish();

        let (summary, _) =
            synth::generate_lpt(&config, std::io::Cursor::new(Vec::new())).expect("synth run");
        assert_eq!(recorded.records().len() as u64, summary.objects);
        assert_eq!(recorded.end_seq(), summary.events);
        assert_eq!(recorded.stats().total_bytes, summary.total_bytes);
        assert_eq!(recorded.stats().max_live_bytes, summary.max_live_bytes);
    }
}
