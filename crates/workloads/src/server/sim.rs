//! The deterministic request/response simulation.
//!
//! One simulation drives both faces of the `server` workload: recorded
//! into a [`TraceSession`](lifepred_trace::TraceSession) it is the
//! sixth workload family, and replayed into the streaming sinks of
//! [`synth`](super::synth) it generates multi-gigabyte `.lpt` files
//! without materializing a trace. That dual use imposes one hard rule:
//! the allocation/free sequence must be a pure function of
//! [`SimConfig`] — same config, same seed, byte-identical behavior on
//! every pass. The simulation therefore keeps all of its state in
//! index-addressed `Vec`s (never iterating a hash map) and draws
//! randomness from its own splitmix64 generator rather than an
//! external crate whose stream might shift under us.

use lifepred_tracefile::TraceFileError;

/// Where the simulation's allocations land.
///
/// Tokens are birth indices: the `n`-th successful [`alloc`]
/// (zero-based) must return `n`, which is how the event stream's
/// birth-order back-references are produced for free. Errors are
/// [`TraceFileError`] so streaming sinks can propagate I/O failures;
/// in-memory sinks never fail.
///
/// [`alloc`]: AllocSink::alloc
pub trait AllocSink {
    /// Records an allocation of `size` bytes at `site`; returns the
    /// object's birth index.
    fn alloc(&mut self, site: Site, size: u32) -> Result<u64, TraceFileError>;

    /// Records the death of a previously allocated object.
    fn free(&mut self, token: u64) -> Result<(), TraceFileError>;
}

/// The allocation sites of the server, each with a fixed call chain.
///
/// Six sites spanning the lifetime spectrum: per-request buffers die
/// within their request, log records die at the next batch flush,
/// session state dies on TTL expiry, connection buffers live until
/// teardown, and the routing table is immortal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Site {
    /// Per-connection read buffer, reallocated as requests outgrow it.
    ConnBuf,
    /// Request parse scratch; dies at end of request (bimodal sizes).
    RequestParse,
    /// Response body; dies at end of request (bimodal sizes).
    ResponseBody,
    /// Session object, dies when its TTL expires.
    SessionObj,
    /// One entry in a session's cache, dies with the session.
    SessionEntry,
    /// Uniform slab-burst object (batch work), dies at end of burst.
    SlabBurst,
    /// Access-log record, freed at the next batch flush.
    LogRecord,
    /// The routing table, allocated once and never freed.
    RouteTable,
}

/// Every site, in a fixed order (indexable by `site as usize`).
pub const SITES: &[Site] = &[
    Site::ConnBuf,
    Site::RequestParse,
    Site::ResponseBody,
    Site::SessionObj,
    Site::SessionEntry,
    Site::SlabBurst,
    Site::LogRecord,
    Site::RouteTable,
];

impl Site {
    /// The call chain under which this site allocates, outermost first.
    pub fn frames(self) -> &'static [&'static str] {
        match self {
            Site::ConnBuf => &["server_main", "conn_loop", "grow_conn_buf", "xmalloc"],
            Site::RequestParse => &["server_main", "conn_loop", "parse_request", "xmalloc"],
            Site::ResponseBody => &["server_main", "conn_loop", "render_response", "xmalloc"],
            Site::SessionObj => &["server_main", "conn_loop", "session_create", "xmalloc"],
            Site::SessionEntry => &[
                "server_main",
                "conn_loop",
                "session_create",
                "cache_insert",
                "xmalloc",
            ],
            Site::SlabBurst => &["server_main", "batch_worker", "slab_fill", "xmalloc"],
            Site::LogRecord => &["server_main", "conn_loop", "access_log", "xmalloc"],
            Site::RouteTable => &["server_main", "load_routes", "xmalloc"],
        }
    }
}

/// Shape of one simulated serving run.
#[derive(Debug, Clone, Copy)]
pub struct SimConfig {
    /// Requests to serve.
    pub requests: u64,
    /// Concurrent connections the requests are spread over.
    pub connections: usize,
    /// Session-cache slots (each churns on a TTL).
    pub sessions: usize,
    /// Seed for the simulation's private RNG.
    pub seed: u64,
}

impl SimConfig {
    /// A config sized so the event stream lands near `target_events`
    /// (the exact count comes out of the census pass).
    pub fn for_events(target_events: u64, seed: u64) -> SimConfig {
        SimConfig {
            requests: (target_events / EVENTS_PER_REQUEST_ESTIMATE).max(1),
            connections: 64,
            sessions: 512,
            seed,
        }
    }
}

/// Long-run average events per request (allocs + frees), used to turn
/// an event target into a request count.
pub const EVENTS_PER_REQUEST_ESTIMATE: u64 = 11;

/// A touched session is evicted with probability 1/this.
const SESSION_TTL: u64 = 64;
/// Cache entries carried by each session.
const SESSION_ENTRIES: usize = 4;
/// A slab burst fires every this many requests...
const BURST_EVERY: u64 = 16;
/// ...allocating this many uniform objects.
const BURST_OBJECTS: usize = 32;
/// Log records are freed in batches of this size.
const LOG_BATCH: usize = 32;
/// Connection read buffers start here and double as needed.
const CONN_BUF_MIN: u32 = 1 << 10;
/// Hard cap on a connection buffer (and on bimodal long tails).
const CONN_BUF_MAX: u32 = 1 << 16;

/// splitmix64 — tiny, deterministic, and ours, so the stream can never
/// shift under a dependency upgrade.
#[derive(Debug, Clone)]
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`; `bound` must be nonzero.
    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound
    }
}

/// A live session: its object token plus its cache-entry tokens.
#[derive(Debug)]
struct Session {
    object: u64,
    entries: [u64; SESSION_ENTRIES],
}

/// Runs the serving simulation, feeding every allocation and free to
/// `sink`.
///
/// # Errors
///
/// Only errors surfaced by the sink (I/O on the streaming paths).
pub fn run_sim(config: &SimConfig, sink: &mut dyn AllocSink) -> Result<(), TraceFileError> {
    let mut rng = Rng(config.seed ^ 0x5eed_5eed_5eed_5eed);
    let connections = config.connections.max(1);
    let sessions = config.sessions.max(1);

    // Immortal: the routing table, sized to the deployment.
    sink.alloc(Site::RouteTable, 16 * 1024)?;

    // Per-connection read buffers live until teardown, growing by
    // doubling when a request outgrows them.
    let mut conn_caps: Vec<u32> = Vec::with_capacity(connections);
    let mut conn_bufs: Vec<u64> = Vec::with_capacity(connections);
    for _ in 0..connections {
        conn_caps.push(CONN_BUF_MIN);
        conn_bufs.push(sink.alloc(Site::ConnBuf, CONN_BUF_MIN)?);
    }

    let mut slots: Vec<Option<Session>> = (0..sessions).map(|_| None).collect();
    let mut log_batch: Vec<u64> = Vec::with_capacity(LOG_BATCH);

    for request in 0..config.requests {
        // Bimodal request size: mostly small, a heavy tail of larges.
        let request_bytes = if rng.below(10) < 8 {
            64 + rng.below(448) as u32
        } else {
            2_048 + rng.below(u64::from(CONN_BUF_MAX / 4)) as u32
        };

        // Grow the connection's read buffer if the request outgrew it.
        let conn = rng.below(connections as u64) as usize;
        if conn_caps[conn] < request_bytes {
            let mut cap = conn_caps[conn];
            while cap < request_bytes {
                cap = (cap * 2).min(CONN_BUF_MAX);
                if cap == CONN_BUF_MAX {
                    break;
                }
            }
            sink.free(conn_bufs[conn])?;
            conn_caps[conn] = cap.max(request_bytes);
            conn_bufs[conn] = sink.alloc(Site::ConnBuf, conn_caps[conn])?;
        }

        // Parse scratch and response body: born and dead in-request.
        let parse = sink.alloc(Site::RequestParse, request_bytes.max(64))?;
        let response_bytes = if rng.below(10) < 9 {
            128 + rng.below(1_900) as u32
        } else {
            8_192 + rng.below(u64::from(CONN_BUF_MAX - 8_192)) as u32
        };
        let response = sink.alloc(Site::ResponseBody, response_bytes)?;

        // Session cache with TTL churn: each touch of an occupied
        // slot expires it with probability 1/TTL, so sessions live
        // ~TTL·sessions requests — the long-lived population.
        let slot = rng.below(sessions as u64) as usize;
        if slots[slot].is_some() && rng.below(SESSION_TTL) == 0 {
            let dead = slots[slot].take().expect("checked is_some");
            for entry in dead.entries {
                sink.free(entry)?;
            }
            sink.free(dead.object)?;
        }
        if slots[slot].is_none() {
            let object = sink.alloc(Site::SessionObj, 256 + rng.below(256) as u32)?;
            let mut entries = [0u64; SESSION_ENTRIES];
            for entry in &mut entries {
                *entry = sink.alloc(Site::SessionEntry, 48 + rng.below(80) as u32)?;
            }
            slots[slot] = Some(Session { object, entries });
        }

        // Slab-shaped burst: a batch job allocates a run of uniform
        // objects and frees them together, FIFO.
        if request % BURST_EVERY == 0 {
            let mut slab = [0u64; BURST_OBJECTS];
            for obj in &mut slab {
                *obj = sink.alloc(Site::SlabBurst, 48)?;
            }
            for obj in slab {
                sink.free(obj)?;
            }
        }

        // Access log, flushed (freed) a batch at a time.
        log_batch.push(sink.alloc(Site::LogRecord, 80 + rng.below(120) as u32)?);
        if log_batch.len() == LOG_BATCH {
            for token in log_batch.drain(..) {
                sink.free(token)?;
            }
        }

        sink.free(response)?;
        sink.free(parse)?;
    }

    // Teardown: drain the log, evict every session, close every
    // connection. The routing table is deliberately leaked (immortal).
    for token in log_batch.drain(..) {
        sink.free(token)?;
    }
    for slot in &mut slots {
        if let Some(dead) = slot.take() {
            for entry in dead.entries {
                sink.free(entry)?;
            }
            sink.free(dead.object)?;
        }
    }
    for token in conn_bufs {
        sink.free(token)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Counts events and checks token discipline.
    #[derive(Default)]
    struct Counter {
        births: u64,
        frees: u64,
        live: std::collections::HashSet<u64>,
    }

    impl AllocSink for Counter {
        fn alloc(&mut self, _site: Site, size: u32) -> Result<u64, TraceFileError> {
            assert!(size > 0);
            let token = self.births;
            self.births += 1;
            self.live.insert(token);
            Ok(token)
        }

        fn free(&mut self, token: u64) -> Result<(), TraceFileError> {
            assert!(self.live.remove(&token), "free of dead token {token}");
            self.frees += 1;
            Ok(())
        }
    }

    #[test]
    fn the_sim_is_deterministic() {
        let config = SimConfig {
            requests: 2_000,
            connections: 8,
            sessions: 64,
            seed: 7,
        };
        let mut log_a = Vec::new();
        let mut log_b = Vec::new();
        struct Recorder<'a>(&'a mut Vec<(bool, u64, u32)>, u64);
        impl AllocSink for Recorder<'_> {
            fn alloc(&mut self, site: Site, size: u32) -> Result<u64, TraceFileError> {
                self.0.push((true, site as u64, size));
                self.1 += 1;
                Ok(self.1 - 1)
            }
            fn free(&mut self, token: u64) -> Result<(), TraceFileError> {
                self.0.push((false, token, 0));
                Ok(())
            }
        }
        run_sim(&config, &mut Recorder(&mut log_a, 0)).expect("run a");
        run_sim(&config, &mut Recorder(&mut log_b, 0)).expect("run b");
        assert_eq!(log_a, log_b);
        assert!(log_a.len() as u64 > config.requests);
    }

    #[test]
    fn tokens_are_never_double_freed_and_most_die() {
        let config = SimConfig {
            requests: 5_000,
            connections: 16,
            sessions: 128,
            seed: 42,
        };
        let mut counter = Counter::default();
        run_sim(&config, &mut counter).expect("run");
        // Only the routing table survives teardown.
        assert_eq!(counter.live.len(), 1);
        assert_eq!(counter.births, counter.frees + 1);
        // The event-count estimate used by `for_events` is honest to
        // within 20% on a run this long.
        let events = counter.births + counter.frees;
        let estimate = config.requests * EVENTS_PER_REQUEST_ESTIMATE;
        let err = events.abs_diff(estimate) as f64 / events as f64;
        assert!(err < 0.2, "estimate off by {:.0}%", err * 100.0);
    }
}
