//! PostScript tokenizer.

/// A scanned PostScript token.
#[derive(Debug, Clone, PartialEq)]
pub enum PsToken {
    /// Integer literal.
    Int(i64),
    /// Real literal.
    Real(f64),
    /// Executable name (`moveto`).
    Name(String),
    /// Literal name (`/box`).
    LitName(String),
    /// String literal `(...)` (nesting supported).
    Str(String),
    /// `{` — begin procedure body.
    ProcOpen,
    /// `}` — end procedure body.
    ProcClose,
    /// `[` — begin array.
    ArrayOpen,
    /// `]` — end array.
    ArrayClose,
}

/// Scans PostScript source into tokens.
///
/// # Errors
///
/// Returns a message on unterminated strings or malformed numbers.
pub fn scan(src: &str) -> Result<Vec<PsToken>, String> {
    let b: Vec<char> = src.chars().collect();
    let mut out = Vec::new();
    let mut i = 0;
    while i < b.len() {
        let c = b[i];
        match c {
            ' ' | '\t' | '\r' | '\n' => i += 1,
            '%' => {
                while i < b.len() && b[i] != '\n' {
                    i += 1;
                }
            }
            '(' => {
                i += 1;
                let mut depth = 1;
                let mut s = String::new();
                while i < b.len() && depth > 0 {
                    match b[i] {
                        '(' => {
                            depth += 1;
                            s.push('(');
                        }
                        ')' => {
                            depth -= 1;
                            if depth > 0 {
                                s.push(')');
                            }
                        }
                        '\\' if i + 1 < b.len() => {
                            i += 1;
                            s.push(match b[i] {
                                'n' => '\n',
                                't' => '\t',
                                other => other,
                            });
                        }
                        other => s.push(other),
                    }
                    i += 1;
                }
                if depth > 0 {
                    return Err("unterminated string".to_owned());
                }
                out.push(PsToken::Str(s));
            }
            '{' => {
                out.push(PsToken::ProcOpen);
                i += 1;
            }
            '}' => {
                out.push(PsToken::ProcClose);
                i += 1;
            }
            '[' => {
                out.push(PsToken::ArrayOpen);
                i += 1;
            }
            ']' => {
                out.push(PsToken::ArrayClose);
                i += 1;
            }
            '/' => {
                i += 1;
                let start = i;
                while i < b.len() && !is_delim(b[i]) {
                    i += 1;
                }
                out.push(PsToken::LitName(b[start..i].iter().collect()));
            }
            _ => {
                let start = i;
                while i < b.len() && !is_delim(b[i]) {
                    i += 1;
                }
                let word: String = b[start..i].iter().collect();
                out.push(classify(&word)?);
            }
        }
    }
    Ok(out)
}

fn is_delim(c: char) -> bool {
    c.is_whitespace() || "(){}[]/%".contains(c)
}

fn classify(word: &str) -> Result<PsToken, String> {
    if word.is_empty() {
        return Err("empty token".to_owned());
    }
    let first = word.chars().next().expect("nonempty");
    if first.is_ascii_digit() || first == '-' || first == '.' {
        if let Ok(i) = word.parse::<i64>() {
            return Ok(PsToken::Int(i));
        }
        if let Ok(r) = word.parse::<f64>() {
            return Ok(PsToken::Real(r));
        }
        if first == '-' || first == '.' {
            // A lone `-` style operator name.
            return Ok(PsToken::Name(word.to_owned()));
        }
        return Err(format!("malformed number {word}"));
    }
    Ok(PsToken::Name(word.to_owned()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scans_numbers_names_and_literals() {
        let toks = scan("12 3.5 -4 moveto /box (hi)").expect("scan");
        assert_eq!(
            toks,
            vec![
                PsToken::Int(12),
                PsToken::Real(3.5),
                PsToken::Int(-4),
                PsToken::Name("moveto".into()),
                PsToken::LitName("box".into()),
                PsToken::Str("hi".into()),
            ]
        );
    }

    #[test]
    fn nested_strings_and_escapes() {
        let toks = scan(r"(a(b)c) (x\n)").expect("scan");
        assert_eq!(toks[0], PsToken::Str("a(b)c".into()));
        assert_eq!(toks[1], PsToken::Str("x\n".into()));
        assert!(scan("(oops").is_err());
    }

    #[test]
    fn procs_and_arrays() {
        let toks = scan("{ dup mul } [1 2]").expect("scan");
        assert_eq!(toks[0], PsToken::ProcOpen);
        assert_eq!(toks[3], PsToken::ProcClose);
        assert_eq!(toks[4], PsToken::ArrayOpen);
        assert_eq!(toks[7], PsToken::ArrayClose);
    }

    #[test]
    fn comments_ignored() {
        let toks = scan("1 % comment\n2").expect("scan");
        assert_eq!(toks, vec![PsToken::Int(1), PsToken::Int(2)]);
    }
}
