//! The PostScript executor: operand stack, dictionary stack, operators.

use super::graphics::{rasterize, Matrix, Path};
use super::scanner::PsToken;
use lifepred_trace::{TraceSession, Traced};
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

/// A traced PostScript composite: the allocation node plus payload.
#[derive(Debug)]
pub struct Composite<T> {
    /// The traced allocation standing for the C object header+body.
    pub node: Traced<()>,
    /// The payload.
    pub body: RefCell<T>,
}

/// One cached glyph: the bitmap and its metrics node.
type Glyph = (Traced<Vec<u8>>, Traced<(f32, f32)>);

/// A PostScript object.
#[derive(Debug, Clone)]
pub enum Obj {
    /// Integer.
    Int(i64),
    /// Real.
    Real(f64),
    /// Boolean.
    Bool(bool),
    /// Executable name.
    Name(String),
    /// Literal name (`/x`).
    LitName(String),
    /// String (traced).
    Str(Rc<Composite<String>>),
    /// Array (traced).
    Array(Rc<Composite<Vec<Obj>>>),
    /// Procedure body (traced token list).
    Proc(Rc<Composite<Vec<PsToken>>>),
    /// Dictionary (traced).
    Dict(Rc<Composite<HashMap<String, Obj>>>),
    /// Array-construction mark.
    Mark,
}

/// Graphics state saved by `gsave`.
#[derive(Debug, Clone, Copy)]
struct GState {
    ctm: Matrix,
    line_width: f64,
    gray: f64,
    font_size: f64,
}

impl Default for GState {
    fn default() -> Self {
        GState {
            ctm: Matrix::identity(),
            line_width: 1.0,
            gray: 0.0,
            font_size: 12.0,
        }
    }
}

/// Summary of one interpretation run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PageStats {
    /// `showpage` executions.
    pub pages: u64,
    /// Path paint operations (stroke/fill).
    pub paints: u64,
    /// Glyphs rendered by `show`.
    pub glyphs_shown: u64,
}

/// The PostScript interpreter.
#[derive(Debug)]
pub struct PsInterp<'s> {
    session: &'s TraceSession,
    stack: Vec<Obj>,
    dicts: Vec<Rc<Composite<HashMap<String, Obj>>>>,
    gstate: GState,
    gstack: Vec<GState>,
    path: Path,
    /// Font cache: one large bitmap plus a small metrics node per
    /// (glyph, font size), long-lived — the bitmaps are the paper's
    /// "about 5000 6-kilobyte objects" class.
    glyph_cache: HashMap<(char, u32), Glyph>,
    /// Page display list: rasterized spans, freed at `showpage`.
    page_spans: Vec<Traced<(u32, u32)>>,
    /// Page text layout: glyph advances, freed at `showpage`.
    page_advances: Vec<Traced<(u32, f32)>>,
    stats: PageStats,
}

/// Bytes per cached glyph bitmap (≈ the 6 KB objects the paper calls
/// out as too large for 4 KB arenas).
const GLYPH_BYTES: u32 = 6 * 1024;

impl<'s> PsInterp<'s> {
    /// Creates an interpreter with an empty user dictionary.
    pub fn new(session: &'s TraceSession) -> Self {
        let userdict = alloc_dict(session, 64);
        PsInterp {
            session,
            stack: Vec::new(),
            dicts: vec![userdict],
            gstate: GState::default(),
            gstack: Vec::new(),
            path: Path::new(),
            glyph_cache: HashMap::new(),
            page_spans: Vec::new(),
            page_advances: Vec::new(),
            stats: PageStats::default(),
        }
    }

    /// Executes a whole program.
    ///
    /// # Errors
    ///
    /// Returns a message on type errors, stack underflow, unknown
    /// names, or malformed procedure nesting.
    pub fn run(&mut self, tokens: &[PsToken]) -> Result<PageStats, String> {
        let _g = self.session.enter("ps_run");
        let mut i = 0;
        while i < tokens.len() {
            i = self.exec_token(tokens, i)?;
        }
        Ok(self.stats)
    }

    /// Executes the token at `i`, returning the next index.
    fn exec_token(&mut self, tokens: &[PsToken], i: usize) -> Result<usize, String> {
        match &tokens[i] {
            PsToken::Int(v) => {
                self.stack.push(Obj::Int(*v));
                Ok(i + 1)
            }
            PsToken::Real(v) => {
                self.stack.push(Obj::Real(*v));
                Ok(i + 1)
            }
            PsToken::Str(s) => {
                self.stack
                    .push(Obj::Str(alloc_str(self.session, s.clone())));
                Ok(i + 1)
            }
            PsToken::LitName(n) => {
                self.stack.push(Obj::LitName(n.clone()));
                Ok(i + 1)
            }
            PsToken::ProcOpen => {
                let (body, next) = collect_proc(tokens, i + 1)?;
                let node = {
                    let _g = self.session.enter("proc_alloc");
                    let _m = self.session.enter("gs_alloc");
                    self.session.traced((), (body.len() * 8 + 8) as u32)
                };
                self.stack.push(Obj::Proc(Rc::new(Composite {
                    node,
                    body: RefCell::new(body),
                })));
                Ok(next)
            }
            PsToken::ProcClose => Err("unmatched }".to_owned()),
            PsToken::ArrayOpen => {
                self.stack.push(Obj::Mark);
                Ok(i + 1)
            }
            PsToken::ArrayClose => {
                let mut items = Vec::new();
                loop {
                    match self.stack.pop() {
                        Some(Obj::Mark) => break,
                        Some(o) => items.push(o),
                        None => return Err("] without [".to_owned()),
                    }
                }
                items.reverse();
                self.stack
                    .push(Obj::Array(alloc_array(self.session, items)));
                Ok(i + 1)
            }
            PsToken::Name(n) => {
                self.exec_name(n)?;
                Ok(i + 1)
            }
        }
    }

    /// Runs a procedure body.
    fn exec_proc(&mut self, proc: &Rc<Composite<Vec<PsToken>>>) -> Result<(), String> {
        let body = proc.body.borrow().clone();
        Traced::touch(&proc.node, body.len() as u64 / 2 + 1);
        let mut i = 0;
        while i < body.len() {
            i = self.exec_token(&body, i)?;
        }
        Ok(())
    }

    fn lookup(&self, name: &str) -> Option<Obj> {
        for d in self.dicts.iter().rev() {
            if let Some(o) = d.body.borrow().get(name) {
                return Some(o.clone());
            }
        }
        None
    }

    fn exec_name(&mut self, name: &str) -> Result<(), String> {
        if let Some(obj) = self.lookup(name) {
            return match obj {
                Obj::Proc(p) => self.exec_proc(&p),
                other => {
                    self.stack.push(other);
                    Ok(())
                }
            };
        }
        self.operator(name)
    }

    fn pop(&mut self) -> Result<Obj, String> {
        self.stack.pop().ok_or_else(|| "stack underflow".to_owned())
    }

    fn pop_num(&mut self) -> Result<f64, String> {
        match self.pop()? {
            Obj::Int(i) => Ok(i as f64),
            Obj::Real(r) => Ok(r),
            other => Err(format!("expected number, got {other:?}")),
        }
    }

    fn pop_int(&mut self) -> Result<i64, String> {
        match self.pop()? {
            Obj::Int(i) => Ok(i),
            Obj::Real(r) => Ok(r as i64),
            other => Err(format!("expected int, got {other:?}")),
        }
    }

    fn pop_bool(&mut self) -> Result<bool, String> {
        match self.pop()? {
            Obj::Bool(b) => Ok(b),
            other => Err(format!("expected bool, got {other:?}")),
        }
    }

    fn pop_proc(&mut self) -> Result<Rc<Composite<Vec<PsToken>>>, String> {
        match self.pop()? {
            Obj::Proc(p) => Ok(p),
            other => Err(format!("expected proc, got {other:?}")),
        }
    }

    fn pop_name(&mut self) -> Result<String, String> {
        match self.pop()? {
            Obj::LitName(n) | Obj::Name(n) => Ok(n),
            other => Err(format!("expected name, got {other:?}")),
        }
    }

    fn push_num(&mut self, v: f64) {
        if v.fract() == 0.0 && v.abs() < 1e15 {
            self.stack.push(Obj::Int(v as i64));
        } else {
            self.stack.push(Obj::Real(v));
        }
    }

    #[allow(clippy::too_many_lines)]
    fn operator(&mut self, name: &str) -> Result<(), String> {
        match name {
            // --- stack manipulation ---
            "dup" => {
                let top = self.pop()?;
                self.stack.push(top.clone());
                self.stack.push(top);
            }
            "pop" => {
                self.pop()?;
            }
            "exch" => {
                let b = self.pop()?;
                let a = self.pop()?;
                self.stack.push(b);
                self.stack.push(a);
            }
            "index" => {
                let n = self.pop_int()? as usize;
                let len = self.stack.len();
                if n >= len {
                    return Err("index out of range".to_owned());
                }
                let item = self.stack[len - 1 - n].clone();
                self.stack.push(item);
            }
            "copy" => {
                let n = self.pop_int()? as usize;
                let len = self.stack.len();
                if n > len {
                    return Err("copy out of range".to_owned());
                }
                for k in len - n..len {
                    self.stack.push(self.stack[k].clone());
                }
            }
            "roll" => {
                let j = self.pop_int()?;
                let n = self.pop_int()? as usize;
                let len = self.stack.len();
                if n > len {
                    return Err("roll out of range".to_owned());
                }
                if n > 0 {
                    let slice = &mut self.stack[len - n..];
                    let j = j.rem_euclid(n as i64) as usize;
                    slice.rotate_right(j);
                }
            }
            "clear" => self.stack.clear(),
            "count" => {
                let n = self.stack.len() as i64;
                self.stack.push(Obj::Int(n));
            }
            // --- arithmetic ---
            "add" | "sub" | "mul" | "div" | "mod" | "idiv" => {
                let b = self.pop_num()?;
                let a = self.pop_num()?;
                let v = match name {
                    "add" => a + b,
                    "sub" => a - b,
                    "mul" => a * b,
                    "div" => {
                        if b == 0.0 {
                            return Err("division by zero".to_owned());
                        }
                        a / b
                    }
                    "mod" => {
                        if b == 0.0 {
                            return Err("mod by zero".to_owned());
                        }
                        ((a as i64) % (b as i64)) as f64
                    }
                    _ => {
                        if b == 0.0 {
                            return Err("idiv by zero".to_owned());
                        }
                        ((a as i64) / (b as i64)) as f64
                    }
                };
                self.push_num(v);
                self.session.work(2);
            }
            "neg" => {
                let a = self.pop_num()?;
                self.push_num(-a);
            }
            "abs" => {
                let a = self.pop_num()?;
                self.push_num(a.abs());
            }
            "round" => {
                let a = self.pop_num()?;
                self.push_num(a.round());
            }
            "sqrt" => {
                let a = self.pop_num()?;
                self.stack.push(Obj::Real(a.sqrt()));
            }
            "truncate" => {
                let a = self.pop_num()?;
                self.push_num(a.trunc());
            }
            // --- comparison / logic ---
            "eq" | "ne" | "lt" | "le" | "gt" | "ge" => {
                let b = self.pop_num()?;
                let a = self.pop_num()?;
                let v = match name {
                    "eq" => a == b,
                    "ne" => a != b,
                    "lt" => a < b,
                    "le" => a <= b,
                    "gt" => a > b,
                    _ => a >= b,
                };
                self.stack.push(Obj::Bool(v));
            }
            "and" | "or" => {
                let b = self.pop_bool()?;
                let a = self.pop_bool()?;
                self.stack
                    .push(Obj::Bool(if name == "and" { a && b } else { a || b }));
            }
            "not" => {
                let a = self.pop_bool()?;
                self.stack.push(Obj::Bool(!a));
            }
            "true" => self.stack.push(Obj::Bool(true)),
            "false" => self.stack.push(Obj::Bool(false)),
            // --- control ---
            "if" => {
                let p = self.pop_proc()?;
                let c = self.pop_bool()?;
                if c {
                    self.exec_proc(&p)?;
                }
            }
            "ifelse" => {
                let pf = self.pop_proc()?;
                let pt = self.pop_proc()?;
                let c = self.pop_bool()?;
                self.exec_proc(if c { &pt } else { &pf })?;
            }
            "repeat" => {
                let p = self.pop_proc()?;
                let n = self.pop_int()?;
                for _ in 0..n.max(0) {
                    self.exec_proc(&p)?;
                }
            }
            "for" => {
                let p = self.pop_proc()?;
                let limit = self.pop_num()?;
                let step = self.pop_num()?;
                let init = self.pop_num()?;
                if step == 0.0 {
                    return Err("for with zero step".to_owned());
                }
                let mut v = init;
                while (step > 0.0 && v <= limit) || (step < 0.0 && v >= limit) {
                    self.push_num(v);
                    self.exec_proc(&p)?;
                    v += step;
                }
            }
            "forall" => {
                let p = self.pop_proc()?;
                match self.pop()? {
                    Obj::Array(a) => {
                        let items = a.body.borrow().clone();
                        Traced::touch(&a.node, items.len() as u64);
                        for item in items {
                            self.stack.push(item);
                            self.exec_proc(&p)?;
                        }
                    }
                    Obj::Str(s) => {
                        let text = s.body.borrow().clone();
                        Traced::touch(&s.node, text.len() as u64);
                        for ch in text.chars() {
                            self.stack.push(Obj::Int(ch as i64));
                            self.exec_proc(&p)?;
                        }
                    }
                    other => return Err(format!("forall over {other:?}")),
                }
            }
            "exec" => {
                let p = self.pop_proc()?;
                self.exec_proc(&p)?;
            }
            // --- definitions / dictionaries ---
            "def" => {
                let value = self.pop()?;
                let key = self.pop_name()?;
                let d = self.dicts.last().expect("dict stack nonempty");
                Traced::touch(&d.node, 2);
                d.body.borrow_mut().insert(key, value);
            }
            "load" => {
                let key = self.pop_name()?;
                let v = self
                    .lookup(&key)
                    .ok_or_else(|| format!("undefined name {key}"))?;
                self.stack.push(v);
            }
            "dict" => {
                let n = self.pop_int()? as usize;
                self.stack.push(Obj::Dict(alloc_dict(self.session, n)));
            }
            "begin" => match self.pop()? {
                Obj::Dict(d) => self.dicts.push(d),
                other => return Err(format!("begin expects dict, got {other:?}")),
            },
            "end" => {
                if self.dicts.len() <= 1 {
                    return Err("end with empty dict stack".to_owned());
                }
                self.dicts.pop();
            }
            "known" => {
                let key = self.pop_name()?;
                match self.pop()? {
                    Obj::Dict(d) => {
                        let present = d.body.borrow().contains_key(&key);
                        self.stack.push(Obj::Bool(present));
                    }
                    other => return Err(format!("known expects dict, got {other:?}")),
                }
            }
            // --- arrays / strings ---
            "array" => {
                let n = self.pop_int()? as usize;
                self.stack
                    .push(Obj::Array(alloc_array(self.session, vec![Obj::Int(0); n])));
            }
            "length" => match self.pop()? {
                Obj::Array(a) => {
                    let n = a.body.borrow().len();
                    self.stack.push(Obj::Int(n as i64));
                }
                Obj::Str(s) => {
                    let n = s.body.borrow().len();
                    self.stack.push(Obj::Int(n as i64));
                }
                Obj::Dict(d) => {
                    let n = d.body.borrow().len();
                    self.stack.push(Obj::Int(n as i64));
                }
                other => return Err(format!("length of {other:?}")),
            },
            "get" => {
                let idx = self.pop_int()? as usize;
                match self.pop()? {
                    Obj::Array(a) => {
                        let v = a
                            .body
                            .borrow()
                            .get(idx)
                            .cloned()
                            .ok_or("get out of range")?;
                        Traced::touch(&a.node, 1);
                        self.stack.push(v);
                    }
                    Obj::Str(s) => {
                        let b = s
                            .body
                            .borrow()
                            .as_bytes()
                            .get(idx)
                            .copied()
                            .ok_or("get out of range")?;
                        self.stack.push(Obj::Int(i64::from(b)));
                    }
                    other => return Err(format!("get from {other:?}")),
                }
            }
            "put" => {
                let value = self.pop()?;
                let idx = self.pop_int()? as usize;
                match self.pop()? {
                    Obj::Array(a) => {
                        let mut body = a.body.borrow_mut();
                        if idx >= body.len() {
                            return Err("put out of range".to_owned());
                        }
                        Traced::touch(&a.node, 1);
                        body[idx] = value;
                    }
                    other => return Err(format!("put into {other:?}")),
                }
            }
            "string" => {
                let n = self.pop_int()? as usize;
                self.stack
                    .push(Obj::Str(alloc_str(self.session, " ".repeat(n))));
            }
            // --- graphics state ---
            "gsave" => self.gstack.push(self.gstate),
            "grestore" => {
                self.gstate = self.gstack.pop().unwrap_or_default();
            }
            "translate" => {
                let y = self.pop_num()?;
                let x = self.pop_num()?;
                self.gstate.ctm = self.gstate.ctm.translate(x, y);
            }
            "scale" => {
                let y = self.pop_num()?;
                let x = self.pop_num()?;
                self.gstate.ctm = self.gstate.ctm.scale(x, y);
            }
            "rotate" => {
                let d = self.pop_num()?;
                self.gstate.ctm = self.gstate.ctm.rotate(d);
            }
            "setlinewidth" => {
                self.gstate.line_width = self.pop_num()?;
            }
            "setgray" => {
                self.gstate.gray = self.pop_num()?;
            }
            // --- path construction ---
            "newpath" => self.path.clear(),
            "moveto" => {
                let y = self.pop_num()?;
                let x = self.pop_num()?;
                let (tx, ty) = self.gstate.ctm.apply(x, y);
                self.path.move_to(self.session, tx, ty);
            }
            "lineto" => {
                let y = self.pop_num()?;
                let x = self.pop_num()?;
                let (tx, ty) = self.gstate.ctm.apply(x, y);
                self.path.line_to(self.session, tx, ty);
            }
            "rlineto" | "rmoveto" => {
                let dy = self.pop_num()?;
                let dx = self.pop_num()?;
                let (cx, cy) = self
                    .path
                    .current_point()
                    .ok_or("rlineto with no current point")?;
                // Relative moves transform the delta only.
                let (tx, ty) = self.gstate.ctm.apply(dx, dy);
                let (ox, oy) = self.gstate.ctm.apply(0.0, 0.0);
                let p = (cx + tx - ox, cy + ty - oy);
                if name == "rlineto" {
                    self.path.line_to(self.session, p.0, p.1);
                } else {
                    self.path.move_to(self.session, p.0, p.1);
                }
            }
            "curveto" => {
                let y3 = self.pop_num()?;
                let x3 = self.pop_num()?;
                let y2 = self.pop_num()?;
                let x2 = self.pop_num()?;
                let y1 = self.pop_num()?;
                let x1 = self.pop_num()?;
                let (tx1, ty1) = self.gstate.ctm.apply(x1, y1);
                let (tx2, ty2) = self.gstate.ctm.apply(x2, y2);
                let (tx3, ty3) = self.gstate.ctm.apply(x3, y3);
                self.path
                    .curve_to(self.session, tx1, ty1, tx2, ty2, tx3, ty3);
            }
            "closepath" => self.path.close(self.session),
            // --- painting (NODISPLAY) ---
            "stroke" | "fill" => {
                let _g = self.session.enter(if name == "stroke" {
                    "do_stroke"
                } else {
                    "do_fill"
                });
                let chords = self.path.flatten(self.session);
                let out = rasterize(self.session, &chords, self.gstate.line_width);
                self.page_spans.extend(out.spans);
                self.path.clear();
                self.stats.paints += 1;
            }
            // --- text ---
            "show" => {
                let s = match self.pop()? {
                    Obj::Str(s) => s,
                    other => return Err(format!("show expects string, got {other:?}")),
                };
                let text = s.body.borrow().clone();
                self.show_text(&text);
            }
            "stringwidth" => {
                let s = match self.pop()? {
                    Obj::Str(s) => s,
                    other => return Err(format!("stringwidth expects string, got {other:?}")),
                };
                let w = s.body.borrow().len() as f64 * 6.0;
                self.push_num(w);
                self.push_num(0.0);
            }
            "showpage" => {
                let _g = self.session.enter("showpage");
                // Emit page bands, then drop the page display list —
                // spans and advances die here (NODISPLAY).
                for _ in 0..8 {
                    let _m = self.session.enter("gs_alloc");
                    let band = self.session.traced(vec![0u8; 2048], 2048);
                    Traced::touch(&band, 16);
                }
                self.page_spans.clear();
                self.page_advances.clear();
                self.path.clear();
                self.stats.pages += 1;
                self.session.work(2000);
            }
            "selectfont" => {
                let size = self.pop_num()?;
                self.pop_name()?;
                self.gstate.font_size = size.max(1.0);
            }
            "findfont" | "setfont" | "scalefont" => {
                // Font machinery is a no-op beyond consuming operands.
                if name != "findfont" {
                    self.pop()?;
                }
                if name == "findfont" {
                    self.pop_name()?;
                    self.stack.push(Obj::Int(0)); // dummy font object
                }
            }
            other => return Err(format!("unknown operator {other}")),
        }
        Ok(())
    }

    /// Renders text: each new glyph allocates a large cached bitmap;
    /// every glyph allocates a small short-lived advance record.
    fn show_text(&mut self, text: &str) {
        let _g = self.session.enter("show_text");
        let size_key = self.gstate.font_size.round() as u32;
        for ch in text.chars() {
            if !self.glyph_cache.contains_key(&(ch, size_key)) {
                let _g2 = self.session.enter("build_glyph");
                let bitmap = {
                    let _m = self.session.enter("gs_alloc");
                    self.session
                        .traced(vec![0u8; GLYPH_BYTES as usize], GLYPH_BYTES)
                };
                Traced::touch(&bitmap, 64);
                // Width/height metrics: the same 16-byte struct shape
                // the rasterizer churns through, but cached forever.
                let metrics = alloc_struct(self.session, (6.0f32, 9.0f32));
                self.glyph_cache.insert((ch, size_key), (bitmap, metrics));
            }
            let advance = {
                let _m = self.session.enter("gs_alloc");
                self.session.traced((ch as u32, 6.0f32), 12)
            };
            Traced::touch(&advance, 1);
            self.page_advances.push(advance);
            self.stats.glyphs_shown += 1;
        }
        self.session.work(text.len() as u64 * 3);
    }

    /// Operand-stack depth (for tests).
    pub fn stack_depth(&self) -> usize {
        self.stack.len()
    }
}

/// Allocates a small fixed-shape struct through the shared low-level
/// layer (the rasterizer's spans take the same path, so short chains
/// cannot tell cached metrics from transient spans).
fn alloc_struct<T>(session: &TraceSession, value: T) -> Traced<T> {
    let _g = session.enter("alloc_struct");
    let _m = session.enter("gs_alloc");
    session.traced(value, 16)
}

fn alloc_str(session: &TraceSession, s: String) -> Rc<Composite<String>> {
    let _g = session.enter("str_alloc");
    let _m = session.enter("gs_alloc");
    let node = session.traced((), s.len().max(1) as u32);
    Traced::touch(&node, s.len() as u64 / 4 + 1);
    Rc::new(Composite {
        node,
        body: RefCell::new(s),
    })
}

fn alloc_array(session: &TraceSession, items: Vec<Obj>) -> Rc<Composite<Vec<Obj>>> {
    let _g = session.enter("array_alloc");
    let _m = session.enter("gs_alloc");
    let node = session.traced((), (items.len() * 8 + 8) as u32);
    Rc::new(Composite {
        node,
        body: RefCell::new(items),
    })
}

fn alloc_dict(session: &TraceSession, capacity: usize) -> Rc<Composite<HashMap<String, Obj>>> {
    let _g = session.enter("dict_alloc");
    let _m = session.enter("gs_alloc");
    let node = session.traced((), (capacity.max(4) * 16) as u32);
    Rc::new(Composite {
        node,
        body: RefCell::new(HashMap::new()),
    })
}

/// Collects a procedure body starting after a `{`, handling nesting.
fn collect_proc(tokens: &[PsToken], mut i: usize) -> Result<(Vec<PsToken>, usize), String> {
    let mut depth = 1;
    let mut body = Vec::new();
    while i < tokens.len() {
        match &tokens[i] {
            PsToken::ProcOpen => {
                depth += 1;
                body.push(tokens[i].clone());
            }
            PsToken::ProcClose => {
                depth -= 1;
                if depth == 0 {
                    return Ok((body, i + 1));
                }
                body.push(tokens[i].clone());
            }
            t => body.push(t.clone()),
        }
        i += 1;
    }
    Err("unterminated procedure".to_owned())
}

#[cfg(test)]
mod tests {
    use super::super::scanner::scan;
    use super::*;
    use lifepred_trace::TraceSession;

    fn run(src: &str) -> (PageStats, Vec<f64>) {
        let s = TraceSession::new("ps-test");
        let toks = scan(src).expect("scan");
        let mut interp = PsInterp::new(&s);
        let stats = interp.run(&toks).expect("run");
        let nums = interp
            .stack
            .iter()
            .map(|o| match o {
                Obj::Int(i) => *i as f64,
                Obj::Real(r) => *r,
                Obj::Bool(b) => f64::from(*b),
                _ => f64::NAN,
            })
            .collect();
        (stats, nums)
    }

    #[test]
    fn arithmetic_and_stack_ops() {
        let (_, st) = run("3 4 add 2 mul 5 sub");
        assert_eq!(st, vec![9.0]);
        let (_, st) = run("1 2 exch");
        assert_eq!(st, vec![2.0, 1.0]);
        let (_, st) = run("1 2 3 3 -1 roll");
        assert_eq!(st, vec![2.0, 3.0, 1.0]);
        let (_, st) = run("7 dup");
        assert_eq!(st, vec![7.0, 7.0]);
    }

    #[test]
    fn def_and_procedures() {
        let (_, st) = run("/sq { dup mul } def 9 sq");
        assert_eq!(st, vec![81.0]);
    }

    #[test]
    fn control_flow() {
        let (_, st) = run("0 1 1 4 { add } for"); // 0+1+2+3+4
        assert_eq!(st, vec![10.0]);
        let (_, st) = run("true { 1 } { 2 } ifelse");
        assert_eq!(st, vec![1.0]);
        let (_, st) = run("0 5 { 1 add } repeat");
        assert_eq!(st, vec![5.0]);
    }

    #[test]
    fn arrays_and_forall() {
        let (_, st) = run("0 [1 2 3] { add } forall");
        assert_eq!(st, vec![6.0]);
        let (_, st) = run("[10 20 30] 1 get");
        assert_eq!(st, vec![20.0]);
    }

    #[test]
    fn dictionaries() {
        let (_, st) = run("4 dict begin /x 42 def x end");
        assert_eq!(st, vec![42.0]);
    }

    #[test]
    fn paths_paint_and_pages() {
        let (stats, _) = run(
            "newpath 0 0 moveto 100 0 lineto 100 100 lineto closepath stroke \
             newpath 10 10 moveto 20 30 40 50 60 10 curveto fill showpage",
        );
        assert_eq!(stats.paints, 2);
        assert_eq!(stats.pages, 1);
    }

    #[test]
    fn show_populates_glyph_cache() {
        let s = TraceSession::new("ps-glyphs");
        let toks = scan("(hello hello) show").expect("scan");
        let mut interp = PsInterp::new(&s);
        let stats = interp.run(&toks).expect("run");
        assert_eq!(stats.glyphs_shown, 11);
        // 'h','e','l','o',' ' = 5 distinct glyph bitmaps (one size).
        assert_eq!(interp.glyph_cache.len(), 5);
        drop(interp);
        let t = s.finish();
        let big = t.records().iter().filter(|r| r.size >= 6 * 1024).count();
        assert_eq!(big, 5, "one 6 KB bitmap per distinct glyph");
    }

    #[test]
    fn transforms_compose() {
        let (_, st) = run("72 72 translate 2 2 scale 10 10 moveto 0 0 lineto count");
        assert_eq!(st.last(), Some(&0.0));
    }

    #[test]
    fn errors_are_reported() {
        let s = TraceSession::new("ps-err");
        let mut interp = PsInterp::new(&s);
        assert!(interp.run(&scan("1 0 div").expect("scan")).is_err());
        let mut interp2 = PsInterp::new(&s);
        assert!(interp2.run(&scan("frobnicate").expect("scan")).is_err());
        let mut interp3 = PsInterp::new(&s);
        assert!(interp3.run(&scan("pop").expect("scan")).is_err());
    }
}
