//! GHOST: a PostScript-subset interpreter run in NODISPLAY mode.
//!
//! Scanner → operand/dictionary-stack executor → path construction,
//! flattening and span "rasterization" with a glyph cache whose
//! bitmaps are deliberately ~6 KB: the paper observes GhostScript
//! allocating about 5000 such objects, too large for its 4 KB arenas.
//! Inputs are generated documents (a reference-manual-like and a
//! thesis-like text with figures), interpreted without display.

mod graphics;
mod interp;
mod scanner;

pub use graphics::{rasterize, Matrix, Path, Seg};
pub use interp::{Obj, PageStats, PsInterp};
pub use scanner::{scan, PsToken};

use crate::input;
use crate::Workload;
use lifepred_trace::TraceSession;

/// The GHOST workload.
#[derive(Debug, Default, Clone)]
pub struct Ghost;

impl Workload for Ghost {
    fn name(&self) -> &'static str {
        "ghost"
    }

    fn description(&self) -> &'static str {
        "A PostScript interpreter executing generated documents (a \
         reference manual and a thesis) with the NODISPLAY option: \
         pages are interpreted, paths flattened and rasterized into \
         spans, text rendered through a glyph cache, but nothing is \
         displayed."
    }

    fn inputs(&self) -> Vec<String> {
        vec!["manual".to_owned(), "thesis".to_owned()]
    }

    fn run(&self, input_idx: usize, session: &TraceSession) {
        let _main = session.enter("ghost_main");
        // Page volume is kept below the 32 KB lifetime threshold so
        // page display lists (spans, advances) count as short-lived,
        // as GhostScript's do in the paper.
        let doc = match input_idx {
            0 => generate_document(3001, 32, 7),
            _ => generate_document(4001, 150, 8),
        };
        let tokens = scan(&doc).expect("generated documents scan");
        let mut interp = PsInterp::new(session);
        let stats = interp.run(&tokens).expect("generated documents run");
        session.work(stats.pages * 100);
    }
}

/// Generates a PostScript document with `pages` pages of text
/// paragraphs, rules, boxes and curve figures.
pub fn generate_document(seed: u64, pages: usize, paragraphs_per_page: usize) -> String {
    use rand::Rng;
    let mut r = input::rng(seed);
    let vocab = input::words(seed ^ 0xd0c, 400);
    let mut doc = String::from(
        "% generated document\n\
         /box { newpath moveto dup 0 rlineto dup 0 exch rlineto neg 0 rlineto closepath } def\n\
         /rule { newpath moveto 0 rlineto stroke } def\n\
         /fig { gsave translate 0.5 setgray newpath 0 0 moveto } def\n\
         /endfig { stroke grestore } def\n",
    );
    for _page in 0..pages {
        doc.push_str("gsave 72 72 translate\n");
        // Text paragraphs in a handful of font sizes (headings, body,
        // footnotes) — each (glyph, size) pair caches its own bitmap.
        let sizes = [10, 12, 14, 18, 24];
        for p in 0..paragraphs_per_page {
            let size = sizes[r.gen_range(0..sizes.len())];
            let words = r.gen_range(6..16);
            let mut text = String::new();
            for w in 0..words {
                if w > 0 {
                    text.push(' ');
                }
                text.push_str(&vocab[r.gen_range(0..vocab.len())]);
            }
            doc.push_str(&format!(
                "/Body {size} selectfont 0 {} moveto ({text}) show\n",
                p * 12
            ));
        }
        // A horizontal rule and some boxes.
        doc.push_str("400 0 720 rule\n");
        let boxes = r.gen_range(1..3);
        for _ in 0..boxes {
            let (w, x, y) = (
                r.gen_range(20..120),
                r.gen_range(0..400),
                r.gen_range(0..700),
            );
            doc.push_str(&format!("{w} {x} {y} box stroke\n"));
        }
        // A curve figure drawn with a loop.
        let n = r.gen_range(3..7);
        doc.push_str(&format!(
            "100 300 fig 1 1 {n} {{ dup 10 mul exch 7 mul 60 80 100 120 \
             curveto }} for endfig\n"
        ));
        // A starburst with rotation.
        doc.push_str(
            "gsave 200 400 translate 1 1 6 { pop 60 rotate newpath 0 0 moveto \
             80 0 lineto stroke } for grestore\n",
        );
        doc.push_str("grestore showpage\n");
    }
    doc
}

#[cfg(test)]
mod tests {
    use super::*;
    use lifepred_trace::TraceSession;

    #[test]
    fn generated_document_runs_clean() {
        let s = TraceSession::new("ghost-doc");
        let doc = generate_document(1, 2, 10);
        let toks = scan(&doc).expect("scan");
        let mut interp = PsInterp::new(&s);
        let stats = interp.run(&toks).expect("run");
        assert_eq!(stats.pages, 2);
        assert!(stats.paints > 10);
        assert!(stats.glyphs_shown > 100);
    }

    #[test]
    fn workload_has_large_and_small_objects() {
        let s = TraceSession::new("ghost-wl");
        Ghost.run(0, &s);
        let t = s.finish();
        let big = t.records().iter().filter(|r| r.size >= 4096).count();
        let small = t.records().iter().filter(|r| r.size < 64).count();
        assert!(big > 20, "want many >4KB glyph bitmaps, got {big}");
        assert!(small > 1000, "want many small objects, got {small}");
    }

    #[test]
    fn documents_are_deterministic() {
        assert_eq!(generate_document(7, 2, 5), generate_document(7, 2, 5));
    }
}
