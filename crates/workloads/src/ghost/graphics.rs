//! Path construction, flattening and NODISPLAY rasterization.

use lifepred_trace::{TraceSession, Traced};

/// A 2-D affine transform (PostScript CTM).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Matrix {
    /// `[a b c d tx ty]` such that `x' = a·x + c·y + tx`.
    pub m: [f64; 6],
}

impl Default for Matrix {
    fn default() -> Self {
        Matrix::identity()
    }
}

impl Matrix {
    /// The identity transform.
    pub fn identity() -> Matrix {
        Matrix {
            m: [1.0, 0.0, 0.0, 1.0, 0.0, 0.0],
        }
    }

    /// Applies the transform to a point.
    pub fn apply(&self, x: f64, y: f64) -> (f64, f64) {
        (
            self.m[0] * x + self.m[2] * y + self.m[4],
            self.m[1] * x + self.m[3] * y + self.m[5],
        )
    }

    /// Post-multiplies a translation.
    pub fn translate(&self, tx: f64, ty: f64) -> Matrix {
        let (ax, ay) = self.apply(tx, ty);
        let mut m = self.m;
        m[4] = ax;
        m[5] = ay;
        Matrix { m }
    }

    /// Post-multiplies a scale.
    pub fn scale(&self, sx: f64, sy: f64) -> Matrix {
        let mut m = self.m;
        m[0] *= sx;
        m[1] *= sx;
        m[2] *= sy;
        m[3] *= sy;
        Matrix { m }
    }

    /// Post-multiplies a rotation (degrees).
    pub fn rotate(&self, degrees: f64) -> Matrix {
        let r = degrees.to_radians();
        let (s, c) = (r.sin(), r.cos());
        let [a, b, cc, d, tx, ty] = self.m;
        Matrix {
            m: [
                a * c + cc * s,
                b * c + d * s,
                -a * s + cc * c,
                -b * s + d * c,
                tx,
                ty,
            ],
        }
    }
}

/// One path segment, allocated per construction operator like the C
/// original's segment nodes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Seg {
    /// Begin a subpath.
    Move(f64, f64),
    /// Straight line.
    Line(f64, f64),
    /// Cubic Bézier (control, control, end).
    Curve(f64, f64, f64, f64, f64, f64),
    /// Close the current subpath.
    Close,
}

/// The current path: a list of individually-allocated segment nodes.
#[derive(Debug, Default)]
pub struct Path {
    segs: Vec<Traced<Seg>>,
    current: Option<(f64, f64)>,
    start: Option<(f64, f64)>,
}

/// Size charged per segment node (point pair + type + link, as in the
/// C implementation).
const SEG_BYTES: u32 = 24;

impl Path {
    /// An empty path.
    pub fn new() -> Path {
        Path::default()
    }

    /// Number of segments.
    pub fn len(&self) -> usize {
        self.segs.len()
    }

    /// Whether the path is empty.
    pub fn is_empty(&self) -> bool {
        self.segs.is_empty()
    }

    /// The current point, if any.
    pub fn current_point(&self) -> Option<(f64, f64)> {
        self.current
    }

    fn push(&mut self, session: &TraceSession, seg: Seg) {
        let _g = session.enter("path_segment");
        let _m = session.enter("gs_alloc");
        self.segs.push(session.traced(seg, SEG_BYTES));
    }

    /// `moveto`.
    pub fn move_to(&mut self, session: &TraceSession, x: f64, y: f64) {
        self.push(session, Seg::Move(x, y));
        self.current = Some((x, y));
        self.start = Some((x, y));
    }

    /// `lineto`.
    pub fn line_to(&mut self, session: &TraceSession, x: f64, y: f64) {
        self.push(session, Seg::Line(x, y));
        self.current = Some((x, y));
    }

    /// `curveto`.
    #[allow(clippy::too_many_arguments)]
    pub fn curve_to(
        &mut self,
        session: &TraceSession,
        x1: f64,
        y1: f64,
        x2: f64,
        y2: f64,
        x3: f64,
        y3: f64,
    ) {
        self.push(session, Seg::Curve(x1, y1, x2, y2, x3, y3));
        self.current = Some((x3, y3));
    }

    /// `closepath`.
    pub fn close(&mut self, session: &TraceSession) {
        self.push(session, Seg::Close);
        self.current = self.start;
    }

    /// Flattens curves into chords and returns the polyline — a fresh
    /// storm of short-lived segment allocations, as in GhostScript's
    /// flattening pass.
    pub fn flatten(&self, session: &TraceSession) -> Vec<Traced<(f64, f64)>> {
        let _g = session.enter("flatten_path");
        let mut out: Vec<Traced<(f64, f64)>> = Vec::new();
        let mut cur = (0.0, 0.0);
        let mut start = (0.0, 0.0);
        let mut emit = |session: &TraceSession, p: (f64, f64)| {
            let _m = session.enter("gs_alloc");
            out.push(session.traced(p, 16));
        };
        for seg in &self.segs {
            match **seg {
                Seg::Move(x, y) => {
                    cur = (x, y);
                    start = cur;
                    emit(session, cur);
                }
                Seg::Line(x, y) => {
                    cur = (x, y);
                    emit(session, cur);
                }
                Seg::Curve(x1, y1, x2, y2, x3, y3) => {
                    // Fixed 8-chord flattening (de Casteljau samples).
                    const STEPS: usize = 8;
                    for i in 1..=STEPS {
                        let t = i as f64 / STEPS as f64;
                        let u = 1.0 - t;
                        let px = u * u * u * cur.0
                            + 3.0 * u * u * t * x1
                            + 3.0 * u * t * t * x2
                            + t * t * t * x3;
                        let py = u * u * u * cur.1
                            + 3.0 * u * u * t * y1
                            + 3.0 * u * t * t * y2
                            + t * t * t * y3;
                        emit(session, (px, py));
                    }
                    cur = (x3, y3);
                }
                Seg::Close => {
                    emit(session, start);
                    cur = start;
                }
            }
        }
        out
    }

    /// Clears the path, freeing its segment nodes.
    pub fn clear(&mut self) {
        self.segs.clear();
        self.current = None;
        self.start = None;
    }
}

/// The product of rasterizing one painted path.
#[derive(Debug)]
pub struct RasterOutput {
    /// Device-space bounding box `(x0, y0, x1, y1)`.
    pub bbox: (f64, f64, f64, f64),
    /// Scanline spans, kept in the page display list until `showpage`
    /// (NODISPLAY still builds the bands before discarding them).
    pub spans: Vec<Traced<(u32, u32)>>,
}

/// "Rasterizes" a flattened path under NODISPLAY: walks the chords and
/// produces scanline span buffers — the compute-but-don't-show mode
/// the paper ran GhostScript in. The caller parks the spans in the
/// page display list, so their lifetime runs to the next `showpage`.
pub fn rasterize(
    session: &TraceSession,
    chords: &[Traced<(f64, f64)>],
    width: f64,
) -> RasterOutput {
    let _g = session.enter("rasterize");
    let mut bbox = (
        f64::INFINITY,
        f64::INFINITY,
        f64::NEG_INFINITY,
        f64::NEG_INFINITY,
    );
    for c in chords {
        let (x, y) = **c;
        Traced::touch(c, 1);
        bbox.0 = bbox.0.min(x);
        bbox.1 = bbox.1.min(y);
        bbox.2 = bbox.2.max(x);
        bbox.3 = bbox.3.max(y);
    }
    if chords.is_empty() {
        return RasterOutput {
            bbox: (0.0, 0.0, 0.0, 0.0),
            spans: Vec::new(),
        };
    }
    // One span buffer per scanline touched.
    let lines = ((bbox.3 - bbox.1).abs().ceil() as usize).clamp(1, 256);
    let mut spans = Vec::with_capacity(lines);
    for i in 0..lines {
        let _s = session.enter("alloc_struct");
        let _m = session.enter("gs_alloc");
        let span = session.traced((i as u32, 0u32), 16);
        Traced::touch(&span, 1);
        spans.push(span);
    }
    session.work(lines as u64 * (2.0 + width) as u64);
    RasterOutput { bbox, spans }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lifepred_trace::TraceSession;

    #[test]
    fn matrix_transforms() {
        let m = Matrix::identity().translate(10.0, 5.0).scale(2.0, 3.0);
        assert_eq!(m.apply(1.0, 1.0), (12.0, 8.0));
        let r = Matrix::identity().rotate(90.0);
        let (x, y) = r.apply(1.0, 0.0);
        assert!((x - 0.0).abs() < 1e-9 && (y - 1.0).abs() < 1e-9);
    }

    #[test]
    fn path_construction_allocates_segments() {
        let s = TraceSession::new("path");
        let mut p = Path::new();
        p.move_to(&s, 0.0, 0.0);
        p.line_to(&s, 10.0, 0.0);
        p.curve_to(&s, 10.0, 5.0, 5.0, 10.0, 0.0, 10.0);
        p.close(&s);
        assert_eq!(p.len(), 4);
        assert_eq!(p.current_point(), Some((0.0, 0.0)));
        let chords = p.flatten(&s);
        // move + line + 8 curve chords + close-return.
        assert_eq!(chords.len(), 11);
        let t = s.finish();
        assert!(t.stats().total_objects >= 15);
    }

    #[test]
    fn rasterize_reports_bbox() {
        let s = TraceSession::new("raster");
        let mut p = Path::new();
        p.move_to(&s, 1.0, 2.0);
        p.line_to(&s, 11.0, 22.0);
        let chords = p.flatten(&s);
        let out = rasterize(&s, &chords, 1.0);
        assert_eq!(out.bbox, (1.0, 2.0, 11.0, 22.0));
        assert!(!out.spans.is_empty());
    }

    #[test]
    fn clear_frees_segments() {
        let s = TraceSession::new("clear");
        let mut p = Path::new();
        p.move_to(&s, 0.0, 0.0);
        p.line_to(&s, 1.0, 1.0);
        p.clear();
        assert!(p.is_empty());
        let t = s.finish();
        assert!(t.records().iter().all(|r| !r.is_immortal()));
    }
}
