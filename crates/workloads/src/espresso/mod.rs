//! ESPRESSO: two-level logic minimization on cube covers.
//!
//! A working miniature of the espresso loop: parse a PLA, complement
//! the ON-set by Shannon cofactoring to get the OFF-set, then iterate
//! EXPAND / IRREDUNDANT / REDUCE until the cover stops improving.
//! Tautology checking and complementation recurse over cofactors,
//! allocating storms of short-lived cubes — the allocation profile the
//! paper measured in espresso 2.3.

mod cube;

pub use cube::{cube_alloc, Cube, DC, ONE, ZERO};

use crate::input;
use crate::Workload;
use lifepred_trace::TraceSession;
use rand::Rng;

/// The ESPRESSO workload.
#[derive(Debug, Default, Clone)]
pub struct Espresso;

impl Workload for Espresso {
    fn name(&self) -> &'static str {
        "espresso"
    }

    fn description(&self) -> &'static str {
        "Minimizes two-level boolean covers with the espresso loop \
         (expand / irredundant / reduce over cube covers, OFF-set by \
         recursive complementation); inputs are generated PLA truth \
         tables."
    }

    fn inputs(&self) -> Vec<String> {
        vec!["pla-8var".to_owned(), "pla-11var".to_owned()]
    }

    fn run(&self, input: usize, session: &TraceSession) {
        let _main = session.enter("espresso_main");
        let plas = match input {
            0 => vec![
                generate_pla(21, 10, 80),
                generate_pla(22, 9, 60),
                generate_pla(23, 11, 90),
            ],
            _ => vec![
                generate_pla(91, 11, 120),
                generate_pla(92, 10, 90),
                generate_pla(93, 11, 140),
                generate_pla(94, 12, 110),
            ],
        };
        for pla in plas {
            let _ = minimize_pla(session, &pla);
        }
    }
}

/// Generates a PLA description with `terms` random product terms.
pub fn generate_pla(seed: u64, nvars: usize, terms: usize) -> String {
    let mut r = input::rng(seed);
    let mut out = format!(".i {nvars}\n.o 1\n");
    for _ in 0..terms {
        for _ in 0..nvars {
            out.push(match r.gen_range(0..4) {
                0 => '0',
                1 => '1',
                _ => '-',
            });
        }
        out.push_str(" 1\n");
    }
    out.push_str(".e\n");
    out
}

/// Parses a single-output PLA; returns the ON-set cover.
///
/// # Errors
///
/// Returns a message on malformed input.
pub fn parse_pla(session: &TraceSession, text: &str) -> Result<Vec<Cube>, String> {
    let _g = session.enter("parse_pla");
    let mut nvars = None;
    let mut cover = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(rest) = line.strip_prefix(".i ") {
            nvars = Some(rest.trim().parse::<usize>().map_err(|e| e.to_string())?);
        } else if line.starts_with(".o") || line == ".e" {
            continue;
        } else {
            let mut parts = line.split_whitespace();
            let pattern = parts.next().ok_or("missing pattern")?;
            let output = parts.next().unwrap_or("1");
            if output != "1" {
                continue;
            }
            let n = nvars.ok_or("pattern before .i")?;
            if pattern.len() != n {
                return Err(format!("pattern {pattern} is not {n} wide"));
            }
            let cube = Cube::parse(session, pattern).ok_or_else(|| format!("bad {pattern}"))?;
            cover.push(cube);
        }
    }
    Ok(cover)
}

/// Statistics of one minimization run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MinimizeResult {
    /// Cubes in the input cover.
    pub cubes_in: usize,
    /// Cubes in the minimized cover.
    pub cubes_out: usize,
    /// Literals in the minimized cover.
    pub literals_out: usize,
}

/// Parses and minimizes a PLA, verifying the result covers the input.
///
/// # Errors
///
/// Propagates parse errors.
pub fn minimize_pla(session: &TraceSession, text: &str) -> Result<MinimizeResult, String> {
    let on_set = parse_pla(session, text)?;
    Ok(minimize(session, on_set))
}

/// The espresso loop over an ON-set cover.
pub fn minimize(session: &TraceSession, on_set: Vec<Cube>) -> MinimizeResult {
    let _g = session.enter("minimize");
    let cubes_in = on_set.len();
    if on_set.is_empty() {
        return MinimizeResult {
            cubes_in,
            cubes_out: 0,
            literals_out: 0,
        };
    }
    let n = on_set[0].width();
    let off_set = complement(session, &on_set, n);
    session.work(off_set.len() as u64 * 10);

    let mut cover: Vec<Cube> = on_set.iter().map(|c| c.clone_in(session)).collect();
    let mut best = cover_cost(&cover);
    for _pass in 0..3 {
        cover = expand(session, cover, &off_set);
        cover = irredundant(session, cover);
        let cost = cover_cost(&cover);
        if cost >= best && _pass > 0 {
            break;
        }
        best = cost;
        cover = reduce(session, cover);
    }
    cover = expand(session, cover, &off_set);
    cover = irredundant(session, cover);

    debug_assert!(
        on_set.iter().all(|c| covered_by(session, c, &cover)),
        "minimized cover must still cover the ON-set"
    );

    MinimizeResult {
        cubes_in,
        cubes_out: cover.len(),
        literals_out: cover.iter().map(Cube::literals).sum(),
    }
}

fn cover_cost(cover: &[Cube]) -> (usize, usize) {
    (cover.len(), cover.iter().map(Cube::literals).sum())
}

/// Complements a cover by recursive Shannon expansion — espresso's
/// COMPLEMENT, the allocation-heaviest phase.
pub fn complement(session: &TraceSession, cover: &[Cube], n: usize) -> Vec<Cube> {
    let _g = session.enter("complement");
    if cover.is_empty() {
        return vec![Cube::universe(session, n)];
    }
    if cover.iter().any(Cube::is_universe) {
        return Vec::new();
    }
    let var = most_binate_var(cover, n);
    let mut result = Vec::new();
    for phase in [ZERO, ONE] {
        let cof = cofactor(session, cover, var, phase);
        let sub = complement(session, &cof, n);
        for cube in sub {
            // AND the sub-complement with the splitting literal.
            if cube.var(var) == DC {
                result.push(cube.with_var(session, var, phase));
            } else if cube.var(var) == phase {
                result.push(cube);
            }
        }
    }
    session.work(result.len() as u64 * 4);
    result
}

/// The variable appearing in the most cubes in both phases.
fn most_binate_var(cover: &[Cube], n: usize) -> usize {
    let mut best = 0;
    let mut best_score = -1i64;
    for v in 0..n {
        let zeros = cover.iter().filter(|c| c.var(v) == ZERO).count() as i64;
        let ones = cover.iter().filter(|c| c.var(v) == ONE).count() as i64;
        let score = zeros.min(ones) * 1000 + zeros + ones;
        if score > best_score {
            best_score = score;
            best = v;
        }
    }
    best
}

/// Cofactor of a cover with respect to `var = phase`.
pub fn cofactor(session: &TraceSession, cover: &[Cube], var: usize, phase: u8) -> Vec<Cube> {
    let _g = session.enter("cofactor");
    let mut out = Vec::new();
    for cube in cover {
        let v = cube.var(var);
        if v == DC {
            out.push(cube.clone_in(session));
        } else if v == phase {
            out.push(cube.with_var(session, var, DC));
        }
    }
    out
}

/// Cofactor of a cover with respect to a whole cube.
fn cube_cofactor(session: &TraceSession, cover: &[Cube], against: &Cube) -> Vec<Cube> {
    let _g = session.enter("cube_cofactor");
    let mut out = Vec::new();
    for cube in cover {
        if !cube.intersects(against) {
            continue;
        }
        let mut vars = Vec::with_capacity(cube.width());
        for i in 0..cube.width() {
            if against.var(i) != DC {
                vars.push(DC);
            } else {
                vars.push(cube.var(i));
            }
        }
        out.push(cube_alloc(session, vars));
    }
    out
}

/// Recursive tautology check: does the cover contain every minterm?
pub fn tautology(session: &TraceSession, cover: &[Cube], n: usize) -> bool {
    let _g = session.enter("tautology");
    if cover.iter().any(Cube::is_universe) {
        return true;
    }
    if cover.is_empty() {
        return false;
    }
    // A variable-free / all-DC-free quick test: if some variable never
    // appears as DC or in one phase, the cover can't be a tautology.
    let var = most_binate_var(cover, n);
    let zeros = cofactor(session, cover, var, ZERO);
    if !tautology(session, &zeros, n) {
        return false;
    }
    let ones = cofactor(session, cover, var, ONE);
    tautology(session, &ones, n)
}

/// Whether `cube` is covered by `cover` (container check via
/// tautology of the cofactor).
pub fn covered_by(session: &TraceSession, cube: &Cube, cover: &[Cube]) -> bool {
    let _g = session.enter("covered_by");
    if cover.iter().any(|c| c.covers(cube)) {
        return true;
    }
    let cof = cube_cofactor(session, cover, cube);
    tautology(session, &cof, cube.width())
}

/// EXPAND: raise literals to don't-care while staying off the OFF-set,
/// then drop cubes covered by the newly expanded cube.
pub fn expand(session: &TraceSession, cover: Vec<Cube>, off_set: &[Cube]) -> Vec<Cube> {
    let _g = session.enter("expand");
    let mut result: Vec<Cube> = Vec::with_capacity(cover.len());
    for cube in &cover {
        let mut current = cube.clone_in(session);
        for v in 0..current.width() {
            if current.var(v) == DC {
                continue;
            }
            let raised = current.with_var(session, v, DC);
            let hits_off = off_set.iter().any(|off| raised.intersects(off));
            if !hits_off {
                current = raised;
            }
        }
        session.work(off_set.len() as u64);
        if !result.iter().any(|r: &Cube| r.covers(&current)) {
            result.retain(|r| !current.covers(r));
            result.push(current);
        }
    }
    result
}

/// IRREDUNDANT: remove cubes covered by the union of the others.
pub fn irredundant(session: &TraceSession, cover: Vec<Cube>) -> Vec<Cube> {
    let _g = session.enter("irredundant");
    let mut keep: Vec<Cube> = cover;
    let mut i = 0;
    while i < keep.len() {
        let cube = keep[i].clone_in(session);
        let rest: Vec<Cube> = keep
            .iter()
            .enumerate()
            .filter(|&(j, _)| j != i)
            .map(|(_, c)| c.clone_in(session))
            .collect();
        if covered_by(session, &cube, &rest) {
            keep.remove(i);
        } else {
            i += 1;
        }
    }
    keep
}

/// REDUCE: shrink cubes so a later EXPAND can escape local minima.
///
/// As in espresso, each cube is reduced against the *current* cover
/// (earlier cubes in their already-reduced form), which keeps the
/// cover's function unchanged: a point leaves a cube only while some
/// other cube in the current cover still holds it.
pub fn reduce(session: &TraceSession, cover: Vec<Cube>) -> Vec<Cube> {
    let _g = session.enter("reduce");
    let mut current: Vec<Cube> = cover;
    for i in 0..current.len() {
        let mut cube = current[i].clone_in(session);
        let rest: Vec<Cube> = current
            .iter()
            .enumerate()
            .filter(|&(j, _)| j != i)
            .map(|(_, c)| c.clone_in(session))
            .collect();
        for v in 0..cube.width() {
            if cube.var(v) != DC {
                continue;
            }
            // Lower var to 1 if the 0-half is covered by the rest.
            let zero_half = cube.with_var(session, v, ZERO);
            if covered_by(session, &zero_half, &rest) {
                cube = cube.with_var(session, v, ONE);
            }
        }
        current[i] = cube;
    }
    current
}

#[cfg(test)]
mod tests {
    use super::*;
    use lifepred_trace::TraceSession;

    fn s() -> TraceSession {
        TraceSession::new("espresso-test")
    }

    fn cover(session: &TraceSession, patterns: &[&str]) -> Vec<Cube> {
        patterns
            .iter()
            .map(|p| Cube::parse(session, p).expect("valid"))
            .collect()
    }

    #[test]
    fn complement_of_empty_is_universe() {
        let s = s();
        let c = complement(&s, &[], 3);
        assert_eq!(c.len(), 1);
        assert!(c[0].is_universe());
    }

    #[test]
    fn complement_of_universe_is_empty() {
        let s = s();
        let f = cover(&s, &["---"]);
        assert!(complement(&s, &f, 3).is_empty());
    }

    #[test]
    fn complement_of_single_literal() {
        let s = s();
        let f = cover(&s, &["1--"]);
        let c = complement(&s, &f, 3);
        assert_eq!(c.len(), 1);
        assert_eq!(c[0].pattern(), "0--");
    }

    #[test]
    fn tautology_detection() {
        let s = s();
        let t = cover(&s, &["1--", "0--"]);
        assert!(tautology(&s, &t, 3));
        let not_t = cover(&s, &["1--", "01-"]);
        assert!(!tautology(&s, &not_t, 3));
    }

    #[test]
    fn covered_by_union() {
        let s = s();
        // "11-" is covered by the union of "1-0","1-1" even though
        // neither alone covers it... actually each half covers it; use
        // a real union case: "1--" covered by {"10-","11-"}.
        let target = Cube::parse(&s, "1--").expect("valid");
        let by = cover(&s, &["10-", "11-"]);
        assert!(covered_by(&s, &target, &by));
        let not_by = cover(&s, &["10-"]);
        assert!(!covered_by(&s, &target, &not_by));
    }

    #[test]
    fn minimize_merges_adjacent_minterms() {
        let s = s();
        // f = x·y + x·y' = x
        let on = cover(&s, &["11", "10"]);
        let r = minimize(&s, on);
        assert_eq!(r.cubes_out, 1);
        assert_eq!(r.literals_out, 1);
    }

    #[test]
    fn minimize_preserves_coverage_on_generated_pla() {
        let s = s();
        let pla = generate_pla(5, 6, 20);
        let r = minimize_pla(&s, &pla).expect("parse");
        assert!(r.cubes_out <= r.cubes_in);
        assert!(r.cubes_out >= 1);
    }

    #[test]
    fn parse_rejects_bad_width() {
        let s = s();
        assert!(parse_pla(&s, ".i 3\n.o 1\n01 1\n").is_err());
    }

    #[test]
    fn workload_allocates_heavily() {
        let s = s();
        Espresso.run(0, &s);
        let t = s.finish();
        assert!(
            t.stats().total_objects > 5_000,
            "objects: {}",
            t.stats().total_objects
        );
        // Many distinct chains from the recursive phases.
        assert!(t.chains().len() > 20);
    }
}
