//! Traced cubes: the carrier data structure of two-level minimization.

use lifepred_trace::{TraceSession, Traced};

/// A literal position in a cube: 0, 1 or don't-care.
pub const ZERO: u8 = 0;
/// Positive literal.
pub const ONE: u8 = 1;
/// Don't-care.
pub const DC: u8 = 2;

/// A product term over `n` boolean variables, one byte per variable.
///
/// Every cube owns a traced byte vector, mirroring how the original
/// espresso mallocs each cube; cube size varies with the input's
/// variable count, exercising the size component of allocation sites.
#[derive(Debug)]
pub struct Cube {
    vars: Traced<Vec<u8>>,
}

/// The single allocation layer all cubes pass through.
pub fn cube_alloc(session: &TraceSession, vars: Vec<u8>) -> Cube {
    let _g = session.enter("cube_alloc");
    let size = vars.len().max(1) as u32;
    let traced = session.traced(vars, size);
    Traced::touch(&traced, traced.len() as u64);
    Cube { vars: traced }
}

impl Cube {
    /// The universal cube (all don't-cares) over `n` variables.
    pub fn universe(session: &TraceSession, n: usize) -> Cube {
        cube_alloc(session, vec![DC; n])
    }

    /// Builds a cube from explicit literals.
    pub fn from_vars(session: &TraceSession, vars: Vec<u8>) -> Cube {
        debug_assert!(vars.iter().all(|&v| v <= DC));
        cube_alloc(session, vars)
    }

    /// Parses a PLA pattern like `01-0-`.
    ///
    /// Returns `None` if a character is not `0`, `1` or `-`.
    pub fn parse(session: &TraceSession, pattern: &str) -> Option<Cube> {
        let mut vars = Vec::with_capacity(pattern.len());
        for ch in pattern.chars() {
            vars.push(match ch {
                '0' => ZERO,
                '1' => ONE,
                '-' => DC,
                _ => return None,
            });
        }
        Some(cube_alloc(session, vars))
    }

    /// Number of variables.
    pub fn width(&self) -> usize {
        self.vars.len()
    }

    /// The literal at position `i`.
    pub fn var(&self, i: usize) -> u8 {
        self.vars[i]
    }

    /// Number of non-don't-care literals.
    pub fn literals(&self) -> usize {
        self.vars.iter().filter(|&&v| v != DC).count()
    }

    /// Whether the cube is the universal cube.
    pub fn is_universe(&self) -> bool {
        self.vars.iter().all(|&v| v == DC)
    }

    /// Deep copy (fresh traced allocation).
    pub fn clone_in(&self, session: &TraceSession) -> Cube {
        let _g = session.enter("cube_copy");
        cube_alloc(session, self.vars.to_vec())
    }

    /// A copy with position `i` set to `value`.
    pub fn with_var(&self, session: &TraceSession, i: usize, value: u8) -> Cube {
        let mut vars = self.vars.to_vec();
        vars[i] = value;
        cube_alloc(session, vars)
    }

    /// Whether `self` covers `other` (every minterm of `other` is in
    /// `self`).
    pub fn covers(&self, other: &Cube) -> bool {
        self.vars
            .iter()
            .zip(other.vars.iter())
            .all(|(&a, &b)| a == DC || a == b)
    }

    /// The intersection of two cubes, or `None` if they are disjoint.
    pub fn intersect(&self, session: &TraceSession, other: &Cube) -> Option<Cube> {
        let _g = session.enter("cube_intersect");
        let mut vars = Vec::with_capacity(self.vars.len());
        for (&a, &b) in self.vars.iter().zip(other.vars.iter()) {
            match (a, b) {
                (DC, v) | (v, DC) => vars.push(v),
                (x, y) if x == y => vars.push(x),
                _ => return None,
            }
        }
        Some(cube_alloc(session, vars))
    }

    /// Whether two cubes share at least one minterm.
    pub fn intersects(&self, other: &Cube) -> bool {
        self.vars
            .iter()
            .zip(other.vars.iter())
            .all(|(&a, &b)| a == DC || b == DC || a == b)
    }

    /// Renders the cube as a PLA pattern.
    pub fn pattern(&self) -> String {
        self.vars
            .iter()
            .map(|&v| match v {
                ZERO => '0',
                ONE => '1',
                _ => '-',
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lifepred_trace::TraceSession;

    fn s() -> TraceSession {
        TraceSession::new("cube-test")
    }

    #[test]
    fn parse_and_pattern_roundtrip() {
        let s = s();
        let c = Cube::parse(&s, "01-0-").expect("valid");
        assert_eq!(c.pattern(), "01-0-");
        assert_eq!(c.width(), 5);
        assert_eq!(c.literals(), 3);
        assert!(Cube::parse(&s, "01x").is_none());
    }

    #[test]
    fn covering() {
        let s = s();
        let big = Cube::parse(&s, "1--").expect("valid");
        let small = Cube::parse(&s, "10-").expect("valid");
        assert!(big.covers(&small));
        assert!(!small.covers(&big));
        assert!(Cube::universe(&s, 3).covers(&big));
    }

    #[test]
    fn intersection() {
        let s = s();
        let a = Cube::parse(&s, "1--").expect("valid");
        let b = Cube::parse(&s, "-0-").expect("valid");
        let i = a.intersect(&s, &b).expect("overlap");
        assert_eq!(i.pattern(), "10-");
        let c = Cube::parse(&s, "0--").expect("valid");
        assert!(a.intersect(&s, &c).is_none());
        assert!(!a.intersects(&c));
        assert!(a.intersects(&b));
    }

    #[test]
    fn with_var_replaces_one_position() {
        let s = s();
        let a = Cube::parse(&s, "---").expect("valid");
        let b = a.with_var(&s, 1, ONE);
        assert_eq!(b.pattern(), "-1-");
        assert_eq!(a.pattern(), "---", "original untouched");
    }
}
