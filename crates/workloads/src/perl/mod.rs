//! PERL: a report extraction and printing language.
//!
//! Lexer → parser → evaluator with perl's SV/HE allocation discipline.
//! Following the paper, the two inputs are **two distinct programs on
//! distinct data** — a record-sorting report and a paragraph-filling
//! formatter — which is exactly why the paper's PERL shows weak *true*
//! prediction (different scripts exercise different allocation sites).

mod interp;
mod lexer;
mod parser;

pub use interp::{PerlInterp, Scalar};
pub use lexer::{lex, Tok};
pub use parser::{parse, PExpr, PStmt};

use crate::input;
use crate::Workload;
use lifepred_trace::TraceSession;

/// Training script: sort the contents of a file by key.
const SORT_SCRIPT: &str = r#"
while (<>) {
    @f = split(/ /, $_);
    $key = $f[0];
    $seen{$key} = $_;
    $count{$key}++;
    $tmp = $f[1] . " " . $f[0];
    $width{length($tmp)}++;
    $lines++;
}
foreach $k (sort keys %seen) {
    print $k . " " . $count{$k} . " " . $seen{$k} . "\n";
}
print "total " . $lines . "\n";
"#;

/// Test script: format the words of a dictionary into filled
/// paragraphs and report a length histogram.
const FILL_SCRIPT: &str = r#"
$line = "";
while (<>) {
    if ($_ =~ /^[a-z]/) {
        $line = $line . " " . $_;
        $len{length($_)}++;
        $words++;
    }
    if (length($line) > 60) {
        push(@paras, $line);
        $line = "";
        $paragraphs++;
    }
}
foreach $p (@paras) {
    print $p . "\n";
}
foreach $k (sort keys %len) {
    print $k . ":" . $len{$k} . " ";
}
print "\nwords " . $words . " paragraphs " . $paragraphs . "\n";
"#;

/// The PERL workload.
#[derive(Debug, Default, Clone)]
pub struct Perl;

impl Workload for Perl {
    fn name(&self) -> &'static str {
        "perl"
    }

    fn description(&self) -> &'static str {
        "A report extraction and printing language; the two inputs are \
         two distinct programs on distinct data — one sorts the \
         records of a file, the other formats dictionary words into \
         filled paragraphs."
    }

    fn inputs(&self) -> Vec<String> {
        vec!["sort-records".to_owned(), "fill-paragraphs".to_owned()]
    }

    fn run(&self, input_idx: usize, session: &TraceSession) {
        let _main = session.enter("perl_main");
        let (script, data) = match input_idx {
            0 => (SORT_SCRIPT, input::field_lines(5001, 9_000, 4)),
            _ => {
                let mut d = input::dictionary(6001, 25_000);
                d.push_str(&input::dictionary(6002, 12_000));
                (FILL_SCRIPT, d)
            }
        };
        let program = parse(script).expect("built-in scripts parse");
        let mut interp = PerlInterp::new(session, &data);
        let out = interp.run(&program).expect("built-in scripts run");
        session.work(out.len() as u64 / 4);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lifepred_trace::TraceSession;

    #[test]
    fn builtin_scripts_parse() {
        parse(SORT_SCRIPT).expect("sort script");
        parse(FILL_SCRIPT).expect("fill script");
    }

    #[test]
    fn sort_script_produces_sorted_report() {
        let s = TraceSession::new("perl-sort");
        let program = parse(SORT_SCRIPT).expect("parse");
        let mut interp = PerlInterp::new(&s, "30 b\n10 a\n20 c\n10 z\n");
        let out = interp.run(&program).expect("run");
        let lines: Vec<&str> = out.lines().collect();
        assert!(lines[0].starts_with("10 2"));
        assert!(lines[1].starts_with("20 1"));
        assert!(lines[2].starts_with("30 1"));
        assert_eq!(lines[3], "total 4");
    }

    #[test]
    fn fill_script_fills_paragraphs() {
        let s = TraceSession::new("perl-fill");
        let program = parse(FILL_SCRIPT).expect("parse");
        let words = "alpha\nbeta\ngamma\ndelta\nepsilon\nzeta\neta\ntheta\niota\nkappa\n".repeat(4);
        let mut interp = PerlInterp::new(&s, &words);
        let out = interp.run(&program).expect("run");
        assert!(out.lines().count() >= 3);
        assert!(out.contains("words 40"));
    }

    #[test]
    fn workload_traces_heavily() {
        let s = TraceSession::new("perl-wl");
        Perl.run(0, &s);
        let t = s.finish();
        assert!(
            t.stats().total_objects > 50_000,
            "objects {}",
            t.stats().total_objects
        );
    }
}
