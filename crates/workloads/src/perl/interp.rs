//! Evaluator for the PERL-subset report language.
//!
//! Scalars follow perl's SV discipline: every string value is a traced
//! heap allocation (`sv_new`), hash entries add a traced HE node,
//! array lists reallocate traced AV bodies as they grow.

use super::parser::{PExpr, PStmt};
use crate::regexlite::Regex;
use lifepred_trace::{TraceSession, Traced};
use std::collections::HashMap;
use std::rc::Rc;

/// A traced shared string (an "SV").
pub type Sv = Rc<Traced<String>>;

/// A scalar value.
#[derive(Debug, Clone, Default)]
pub enum Scalar {
    /// Undefined.
    #[default]
    Undef,
    /// Numeric.
    Num(f64),
    /// String.
    Str(Sv),
}

/// A hash entry: traced HE node + value.
#[derive(Debug)]
struct Entry {
    _node: Traced<()>,
    value: Scalar,
}

/// The interpreter.
#[derive(Debug)]
pub struct PerlInterp<'s> {
    session: &'s TraceSession,
    scalars: HashMap<String, Scalar>,
    arrays: HashMap<String, Vec<Scalar>>,
    hashes: HashMap<String, HashMap<String, Entry>>,
    regex_cache: HashMap<String, Regex>,
    input: Vec<String>,
    input_pos: usize,
    output: String,
    last_flag: bool,
}

impl<'s> PerlInterp<'s> {
    /// Creates an interpreter whose `<>` reads lines of `input`.
    pub fn new(session: &'s TraceSession, input: &str) -> Self {
        PerlInterp {
            session,
            scalars: HashMap::new(),
            arrays: HashMap::new(),
            hashes: HashMap::new(),
            regex_cache: HashMap::new(),
            input: input.lines().map(str::to_owned).collect(),
            input_pos: 0,
            output: String::new(),
            last_flag: false,
        }
    }

    /// Runs a parsed program, returning its output.
    ///
    /// # Errors
    ///
    /// Returns a message on runtime errors.
    pub fn run(&mut self, program: &[PStmt]) -> Result<String, String> {
        let _g = self.session.enter("perl_run");
        for stmt in program {
            self.exec(stmt)?;
        }
        Ok(std::mem::take(&mut self.output))
    }

    /// Allocates a traced string SV.
    fn sv_new(&self, s: String) -> Sv {
        let _g = self.session.enter("sv_new");
        let _m = self.session.enter("safemalloc");
        let size = s.len().max(1) as u32;
        let t = self.session.traced(s, size);
        Traced::touch(&t, (t.len() / 4 + 1) as u64);
        Rc::new(t)
    }

    fn exec(&mut self, stmt: &PStmt) -> Result<(), String> {
        if self.last_flag {
            return Ok(());
        }
        match stmt {
            PStmt::Expr(e) => {
                self.eval(e)?;
                Ok(())
            }
            PStmt::Print(args) => {
                let _g = self.session.enter("do_print");
                for a in args {
                    let v = self.eval(a)?;
                    let s = self.stringify(&v);
                    self.output.push_str(&s);
                }
                self.session.work(8);
                Ok(())
            }
            PStmt::Push(arr, e) => {
                let _g = self.session.enter("av_push");
                let v = self.eval(e)?;
                let list = self.arrays.entry(arr.clone()).or_default();
                list.push(v);
                // Simulate AV body reallocation on power-of-two growth.
                if list.len().is_power_of_two() {
                    let _m = self.session.enter("safemalloc");
                    let body = self.session.traced((), (list.len() * 8) as u32);
                    Traced::touch(&body, list.len() as u64 / 2 + 1);
                }
                Ok(())
            }
            PStmt::If(arms, otherwise) => {
                for (cond, body) in arms {
                    let v = self.eval(cond)?;
                    if self.truthy(&v) {
                        for s in body {
                            self.exec(s)?;
                        }
                        return Ok(());
                    }
                }
                if let Some(body) = otherwise {
                    for s in body {
                        self.exec(s)?;
                    }
                }
                Ok(())
            }
            PStmt::While(cond, body) => {
                loop {
                    let v = self.eval(cond)?;
                    if !self.truthy(&v) || self.last_flag {
                        break;
                    }
                    for s in body {
                        self.exec(s)?;
                    }
                }
                self.last_flag = false;
                Ok(())
            }
            PStmt::Foreach(var, list, body) => {
                let items = self.eval_list(list)?;
                for item in items {
                    self.scalars.insert(var.clone(), item);
                    for s in body {
                        self.exec(s)?;
                    }
                    if self.last_flag {
                        break;
                    }
                }
                self.last_flag = false;
                Ok(())
            }
            PStmt::Last => {
                self.last_flag = true;
                Ok(())
            }
        }
    }

    /// Evaluates an expression in list context.
    fn eval_list(&mut self, e: &PExpr) -> Result<Vec<Scalar>, String> {
        match e {
            PExpr::ArrayAll(a) => Ok(self.arrays.get(a).cloned().unwrap_or_default()),
            PExpr::Keys(h) => {
                let _g = self.session.enter("hv_keys");
                let mut keys: Vec<String> = self
                    .hashes
                    .get(h)
                    .map_or_else(Vec::new, |m| m.keys().cloned().collect());
                keys.sort();
                Ok(keys
                    .into_iter()
                    .map(|k| Scalar::Str(self.sv_new(k)))
                    .collect())
            }
            PExpr::Sort(inner) => {
                let _g = self.session.enter("do_sort");
                let mut items = self.eval_list(inner)?;
                let mut strs: Vec<String> = items.drain(..).map(|v| self.stringify(&v)).collect();
                self.session.work(strs.len() as u64 * 4);
                strs.sort();
                Ok(strs
                    .into_iter()
                    .map(|s| Scalar::Str(self.sv_new(s)))
                    .collect())
            }
            PExpr::Reverse(inner) => {
                let mut items = self.eval_list(inner)?;
                items.reverse();
                Ok(items)
            }
            PExpr::Split(re, target) => {
                let _g = self.session.enter("do_split");
                let tv = self.eval(target)?;
                let text = self.stringify(&tv);
                let regex = self.compile(re)?;
                let mut parts = Vec::new();
                let mut rest: &str = &text;
                loop {
                    match regex.find(rest) {
                        Some((a, b)) if b > a || a < rest.len() => {
                            let (a, b) = char_to_byte_range(rest, a, b.max(a + 1));
                            parts.push(rest[..a].to_owned());
                            rest = &rest[b..];
                        }
                        _ => {
                            parts.push(rest.to_owned());
                            break;
                        }
                    }
                }
                Ok(parts
                    .into_iter()
                    .map(|p| Scalar::Str(self.sv_new(p)))
                    .collect())
            }
            single => Ok(vec![self.eval(single)?]),
        }
    }

    #[allow(clippy::too_many_lines)]
    fn eval(&mut self, e: &PExpr) -> Result<Scalar, String> {
        match e {
            PExpr::Num(n) => Ok(Scalar::Num(*n)),
            PExpr::Str(s) => Ok(Scalar::Str(self.sv_new(s.clone()))),
            PExpr::Scalar(name) => Ok(self.scalars.get(name).cloned().unwrap_or_default()),
            PExpr::ArrayElem(name, idx) => {
                let iv = self.eval(idx)?;
                let i = self.numify(&iv) as usize;
                Ok(self
                    .arrays
                    .get(name)
                    .and_then(|a| a.get(i))
                    .cloned()
                    .unwrap_or_default())
            }
            PExpr::HashElem(name, key) => {
                let kv = self.eval(key)?;
                let k = self.stringify(&kv);
                Ok(self
                    .hashes
                    .get(name)
                    .and_then(|m| m.get(&k))
                    .map(|e| e.value.clone())
                    .unwrap_or_default())
            }
            PExpr::ArrayAll(name) => {
                // Scalar context: element count.
                Ok(Scalar::Num(self.arrays.get(name).map_or(0, Vec::len) as f64))
            }
            PExpr::Diamond => {
                let _g = self.session.enter("read_line");
                if self.input_pos >= self.input.len() {
                    return Ok(Scalar::Undef);
                }
                let line = self.input[self.input_pos].clone();
                self.input_pos += 1;
                let sv = Scalar::Str(self.sv_new(line));
                self.scalars.insert("_".to_owned(), sv.clone());
                Ok(sv)
            }
            PExpr::Assign(lv, op, rhs) => {
                let _g = self.session.enter("sv_assign");
                let rv = self.eval(rhs)?;
                let newv = match op.as_str() {
                    "=" => {
                        // `@arr = LIST` when lhs denotes a whole array.
                        if let PExpr::ArrayAll(name) = &**lv {
                            let items = self.eval_list(rhs)?;
                            let n = items.len();
                            self.arrays.insert(name.clone(), items);
                            return Ok(Scalar::Num(n as f64));
                        }
                        rv
                    }
                    ".=" => {
                        let old = self.read_lv(lv)?;
                        let mut s = self.stringify(&old);
                        s.push_str(&self.stringify(&rv));
                        Scalar::Str(self.sv_new(s))
                    }
                    "+=" => {
                        let old = self.read_lv(lv)?;
                        Scalar::Num(self.numify(&old) + self.numify(&rv))
                    }
                    "-=" => {
                        let old = self.read_lv(lv)?;
                        Scalar::Num(self.numify(&old) - self.numify(&rv))
                    }
                    other => return Err(format!("bad assign op {other}")),
                };
                self.write_lv(lv, newv.clone())?;
                Ok(newv)
            }
            PExpr::Binary(op, a, b) => self.binary(op, a, b),
            PExpr::Unary(op, inner) => {
                let v = self.eval(inner)?;
                match op.as_str() {
                    "!" => Ok(Scalar::Num(f64::from(!self.truthy(&v)))),
                    "-" => Ok(Scalar::Num(-self.numify(&v))),
                    other => Err(format!("bad unary {other}")),
                }
            }
            PExpr::Incr(target, delta, postfix) => {
                let old_value = self.read_lv(target)?;
                let old = self.numify(&old_value);
                let new = old + delta;
                self.write_lv(target, Scalar::Num(new))?;
                Ok(Scalar::Num(if *postfix { old } else { new }))
            }
            PExpr::Match(target, re, neg) => {
                let tv = self.eval(target)?;
                let text = self.stringify(&tv);
                let regex = self.compile(re)?;
                self.session.work(text.len() as u64 / 2 + 4);
                Ok(Scalar::Num(f64::from(regex.is_match(&text) != *neg)))
            }
            PExpr::Substitute(target, re, rep) => {
                let _g = self.session.enter("do_subst");
                let tv = self.read_lv(target)?;
                let text = self.stringify(&tv);
                let regex = self.compile(re)?;
                let out = match regex.find(&text) {
                    Some((a, b)) => {
                        let (a, b) = char_to_byte_range(&text, a, b);
                        let mut s = String::with_capacity(text.len());
                        s.push_str(&text[..a]);
                        s.push_str(rep);
                        s.push_str(&text[b..]);
                        self.write_lv(target, Scalar::Str(self.sv_new(s.clone())))?;
                        1.0
                    }
                    None => 0.0,
                };
                Ok(Scalar::Num(out))
            }
            PExpr::Call(name, args) => self.call(name, args),
            PExpr::Keys(_) | PExpr::Sort(_) | PExpr::Reverse(_) | PExpr::Split(..) => {
                // Scalar context: count.
                Ok(Scalar::Num(self.eval_list(e)?.len() as f64))
            }
            PExpr::Join(sep, list) => {
                let _g = self.session.enter("do_join");
                let sv = self.eval(sep)?;
                let sep = self.stringify(&sv);
                let items = self.eval_list(list)?;
                let joined = items
                    .iter()
                    .map(|v| self.stringify(v))
                    .collect::<Vec<_>>()
                    .join(&sep);
                Ok(Scalar::Str(self.sv_new(joined)))
            }
        }
    }

    fn binary(&mut self, op: &str, a: &PExpr, b: &PExpr) -> Result<Scalar, String> {
        if op == "&&" {
            let l = self.eval(a)?;
            if !self.truthy(&l) {
                return Ok(Scalar::Num(0.0));
            }
            let r = self.eval(b)?;
            return Ok(Scalar::Num(f64::from(self.truthy(&r))));
        }
        if op == "||" {
            let l = self.eval(a)?;
            if self.truthy(&l) {
                return Ok(Scalar::Num(1.0));
            }
            let r = self.eval(b)?;
            return Ok(Scalar::Num(f64::from(self.truthy(&r))));
        }
        let l = self.eval(a)?;
        let r = self.eval(b)?;
        match op {
            "." => {
                let _g = self.session.enter("sv_concat");
                let mut s = self.stringify(&l);
                s.push_str(&self.stringify(&r));
                Ok(Scalar::Str(self.sv_new(s)))
            }
            "+" | "-" | "*" | "/" | "%" => {
                let (x, y) = (self.numify(&l), self.numify(&r));
                Ok(Scalar::Num(match op {
                    "+" => x + y,
                    "-" => x - y,
                    "*" => x * y,
                    "/" => {
                        if y == 0.0 {
                            return Err("division by zero".to_owned());
                        }
                        x / y
                    }
                    _ => x % y,
                }))
            }
            "==" | "!=" | "<" | "<=" | ">" | ">=" => {
                let (x, y) = (self.numify(&l), self.numify(&r));
                let v = match op {
                    "==" => x == y,
                    "!=" => x != y,
                    "<" => x < y,
                    "<=" => x <= y,
                    ">" => x > y,
                    _ => x >= y,
                };
                Ok(Scalar::Num(f64::from(v)))
            }
            "eq" | "ne" | "lt" | "gt" | "le" | "ge" => {
                let (x, y) = (self.stringify(&l), self.stringify(&r));
                let v = match op {
                    "eq" => x == y,
                    "ne" => x != y,
                    "lt" => x < y,
                    "gt" => x > y,
                    "le" => x <= y,
                    _ => x >= y,
                };
                Ok(Scalar::Num(f64::from(v)))
            }
            other => Err(format!("bad binary op {other}")),
        }
    }

    fn call(&mut self, name: &str, args: &[PExpr]) -> Result<Scalar, String> {
        match name {
            "length" => {
                let v = self.eval(&args[0])?;
                Ok(Scalar::Num(self.stringify(&v).len() as f64))
            }
            "chop" => {
                let v = self.read_lv(&args[0])?;
                let mut s = self.stringify(&v);
                s.pop();
                let sv = Scalar::Str(self.sv_new(s));
                self.write_lv(&args[0], sv.clone())?;
                Ok(sv)
            }
            "substr" => {
                let _g = self.session.enter("do_substr");
                let v = self.eval(&args[0])?;
                let s = self.stringify(&v);
                let sv = self.eval(&args[1])?;
                let start = self.numify(&sv).max(0.0) as usize;
                let len = if args.len() > 2 {
                    let lv = self.eval(&args[2])?;
                    self.numify(&lv).max(0.0) as usize
                } else {
                    usize::MAX
                };
                let sub: String = s.chars().skip(start).take(len).collect();
                Ok(Scalar::Str(self.sv_new(sub)))
            }
            "uc" | "lc" => {
                let v = self.eval(&args[0])?;
                let s = self.stringify(&v);
                let out = if name == "uc" {
                    s.to_uppercase()
                } else {
                    s.to_lowercase()
                };
                Ok(Scalar::Str(self.sv_new(out)))
            }
            "scalar" => {
                let n = self.eval_list(&args[0])?.len();
                Ok(Scalar::Num(n as f64))
            }
            "int" => {
                let v = self.eval(&args[0])?;
                Ok(Scalar::Num(self.numify(&v).trunc()))
            }
            other => Err(format!("unknown function {other}")),
        }
    }

    fn read_lv(&mut self, lv: &PExpr) -> Result<Scalar, String> {
        self.eval(lv)
    }

    fn write_lv(&mut self, lv: &PExpr, v: Scalar) -> Result<(), String> {
        match lv {
            PExpr::Scalar(n) => {
                self.scalars.insert(n.clone(), v);
                Ok(())
            }
            PExpr::HashElem(h, key) => {
                let kv = self.eval(key)?;
                let k = self.stringify(&kv);
                let map = self.hashes.entry(h.clone()).or_default();
                if let Some(entry) = map.get_mut(&k) {
                    entry.value = v;
                } else {
                    let _g = self.session.enter("hv_store");
                    let _m = self.session.enter("safemalloc");
                    let node = self.session.traced((), (k.len() + 24) as u32);
                    map.insert(
                        k,
                        Entry {
                            _node: node,
                            value: v,
                        },
                    );
                }
                Ok(())
            }
            PExpr::ArrayElem(a, idx) => {
                let iv = self.eval(idx)?;
                let i = self.numify(&iv) as usize;
                let arr = self.arrays.entry(a.clone()).or_default();
                if arr.len() <= i {
                    arr.resize(i + 1, Scalar::Undef);
                }
                arr[i] = v;
                Ok(())
            }
            other => Err(format!("cannot assign to {other:?}")),
        }
    }

    fn compile(&mut self, pattern: &str) -> Result<Regex, String> {
        if let Some(r) = self.regex_cache.get(pattern) {
            return Ok(r.clone());
        }
        let r = Regex::compile(pattern)?;
        self.regex_cache.insert(pattern.to_owned(), r.clone());
        Ok(r)
    }

    fn truthy(&self, v: &Scalar) -> bool {
        match v {
            Scalar::Undef => false,
            Scalar::Num(n) => *n != 0.0,
            Scalar::Str(s) => !s.is_empty() && &***s != "0",
        }
    }

    fn numify(&self, v: &Scalar) -> f64 {
        match v {
            Scalar::Undef => 0.0,
            Scalar::Num(n) => *n,
            Scalar::Str(s) => {
                let t = s.trim();
                let end = t
                    .char_indices()
                    .take_while(|(i, c)| {
                        c.is_ascii_digit() || *c == '.' || (*i == 0 && (*c == '-' || *c == '+'))
                    })
                    .map(|(i, c)| i + c.len_utf8())
                    .last()
                    .unwrap_or(0);
                t[..end].parse().unwrap_or(0.0)
            }
        }
    }

    fn stringify(&self, v: &Scalar) -> String {
        match v {
            Scalar::Undef => String::new(),
            Scalar::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 1e15 {
                    format!("{}", *n as i64)
                } else {
                    format!("{n}")
                }
            }
            Scalar::Str(s) => (***s).clone(),
        }
    }
}

/// Converts a char-indexed range from [`Regex::find`] to byte indices.
fn char_to_byte_range(text: &str, a: usize, b: usize) -> (usize, usize) {
    let mut idx = text.char_indices().map(|(i, _)| i).chain([text.len()]);
    let abyte = idx.clone().nth(a).unwrap_or(text.len());
    let bbyte = idx.nth(b).unwrap_or(text.len());
    (abyte, bbyte)
}

#[cfg(test)]
mod tests {
    use super::super::parser::parse;
    use super::*;
    use lifepred_trace::TraceSession;

    fn run(src: &str, input: &str) -> String {
        let s = TraceSession::new("perl-test");
        let prog = parse(src).expect("parse");
        let mut interp = PerlInterp::new(&s, input);
        interp.run(&prog).expect("run")
    }

    #[test]
    fn while_diamond_reads_lines() {
        let out = run("while (<>) { $n++; } print $n;", "a\nb\nc\n");
        assert_eq!(out, "3");
    }

    #[test]
    fn split_and_array_access() {
        let out = run(
            "while (<>) { @f = split(/ /, $_); print $f[1] . \"-\"; }",
            "a b\nc d\n",
        );
        assert_eq!(out, "b-d-");
    }

    #[test]
    fn hashes_and_sorted_keys() {
        let out = run(
            "while (<>) { $c{$_}++; } foreach $k (sort keys %c) { print $k . \":\" . $c{$k} . \" \"; }",
            "b\na\nb\n",
        );
        assert_eq!(out, "a:1 b:2 ");
    }

    #[test]
    fn string_ops() {
        assert_eq!(run("$x = \"he\" . \"llo\"; print length($x);", ""), "5");
        assert_eq!(run("$x = \"hello\"; print substr($x, 1, 3);", ""), "ell");
        assert_eq!(run("$x = \"Hi\"; print uc($x) . lc($x);", ""), "HIhi");
        assert_eq!(run("$x = \"hey\\n\"; chop($x); print $x;", ""), "hey");
    }

    #[test]
    fn match_and_substitute() {
        assert_eq!(
            run("$x = \"foo123\"; if ($x =~ /[0-9]+/) { print \"y\"; }", ""),
            "y"
        );
        assert_eq!(run("$_ = \"aXc\"; s/X/b/; print $_;", ""), "abc");
    }

    #[test]
    fn join_and_push() {
        let out = run(
            "push(@a, \"x\"); push(@a, \"y\"); print join(\"-\", @a);",
            "",
        );
        assert_eq!(out, "x-y");
    }

    #[test]
    fn foreach_reverse() {
        let out = run(
            "@a = split(/ /, \"1 2 3\"); foreach $i (reverse @a) { print $i; }",
            "",
        );
        assert_eq!(out, "321");
    }

    #[test]
    fn numeric_and_string_comparison() {
        assert_eq!(run("if (10 > 9) { print \"n\"; }", ""), "n");
        assert_eq!(run("if (\"10\" lt \"9\") { print \"s\"; }", ""), "s");
    }

    #[test]
    fn last_exits_loop() {
        let out = run(
            "while (<>) { $n++; if ($n == 2) { last; } } print $n;",
            "a\nb\nc\nd\n",
        );
        assert_eq!(out, "2");
    }

    #[test]
    fn allocations_are_traced() {
        let s = TraceSession::new("perl-alloc");
        let prog = parse("while (<>) { @f = split(/ /, $_); $c{$f[0]}++; }").expect("parse");
        let mut interp = PerlInterp::new(&s, "a 1\nb 2\na 3\n");
        interp.run(&prog).expect("run");
        drop(interp);
        let t = s.finish();
        assert!(t.stats().total_objects > 15);
    }
}
