//! Tokenizer for the PERL-subset report language.

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// `$name`.
    Scalar(String),
    /// `@name`.
    Array(String),
    /// `%name`.
    Hash(String),
    /// Numeric literal.
    Num(f64),
    /// String literal (no interpolation).
    Str(String),
    /// `/pattern/`.
    Regex(String),
    /// `s/pattern/replacement/`.
    Subst(String, String),
    /// Bare identifier / keyword.
    Ident(String),
    /// `<>` — read a line.
    Diamond,
    /// `(`.
    LParen,
    /// `)`.
    RParen,
    /// `{`.
    LBrace,
    /// `}`.
    RBrace,
    /// `[`.
    LBracket,
    /// `]`.
    RBracket,
    /// `;`.
    Semi,
    /// `,`.
    Comma,
    /// Any operator (`.`, `=~`, `==`, `.=`, ...).
    Op(String),
}

/// Tokenizes a script.
///
/// # Errors
///
/// Returns a message on unterminated strings/regexes or stray
/// characters.
pub fn lex(src: &str) -> Result<Vec<Tok>, String> {
    let b: Vec<char> = src.chars().collect();
    let mut out = Vec::new();
    let mut i = 0;
    while i < b.len() {
        let c = b[i];
        match c {
            ' ' | '\t' | '\r' | '\n' => i += 1,
            '#' => {
                while i < b.len() && b[i] != '\n' {
                    i += 1;
                }
            }
            '$' | '@' | '%' => {
                i += 1;
                let start = i;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == '_') {
                    i += 1;
                }
                if start == i {
                    if c == '$' && b.get(i) == Some(&'_') {
                        // unreachable: '_' consumed above
                    }
                    return Err(format!("dangling sigil {c}"));
                }
                let name: String = b[start..i].iter().collect();
                out.push(match c {
                    '$' => Tok::Scalar(name),
                    '@' => Tok::Array(name),
                    _ => Tok::Hash(name),
                });
            }
            '"' | '\'' => {
                let quote = c;
                i += 1;
                let mut s = String::new();
                while i < b.len() && b[i] != quote {
                    if b[i] == '\\' && i + 1 < b.len() {
                        i += 1;
                        s.push(match b[i] {
                            'n' => '\n',
                            't' => '\t',
                            other => other,
                        });
                    } else {
                        s.push(b[i]);
                    }
                    i += 1;
                }
                if i >= b.len() {
                    return Err("unterminated string".to_owned());
                }
                i += 1;
                out.push(Tok::Str(s));
            }
            '<' if b.get(i + 1) == Some(&'>') => {
                out.push(Tok::Diamond);
                i += 2;
            }
            '/' if regex_position(&out) => {
                let (pat, next) = read_until_slash(&b, i + 1)?;
                i = next;
                out.push(Tok::Regex(pat));
            }
            's' if b.get(i + 1) == Some(&'/') && word_boundary(&b, i) => {
                let (pat, next) = read_until_slash(&b, i + 2)?;
                let (rep, next2) = read_until_slash(&b, next)?;
                i = next2;
                out.push(Tok::Subst(pat, rep));
            }
            '0'..='9' => {
                let start = i;
                while i < b.len() && (b[i].is_ascii_digit() || b[i] == '.') {
                    i += 1;
                }
                let text: String = b[start..i].iter().collect();
                out.push(Tok::Num(
                    text.parse().map_err(|_| format!("bad number {text}"))?,
                ));
            }
            'a'..='z' | 'A'..='Z' | '_' => {
                let start = i;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == '_') {
                    i += 1;
                }
                out.push(Tok::Ident(b[start..i].iter().collect()));
            }
            '(' => {
                out.push(Tok::LParen);
                i += 1;
            }
            ')' => {
                out.push(Tok::RParen);
                i += 1;
            }
            '{' => {
                out.push(Tok::LBrace);
                i += 1;
            }
            '}' => {
                out.push(Tok::RBrace);
                i += 1;
            }
            '[' => {
                out.push(Tok::LBracket);
                i += 1;
            }
            ']' => {
                out.push(Tok::RBracket);
                i += 1;
            }
            ';' => {
                out.push(Tok::Semi);
                i += 1;
            }
            ',' => {
                out.push(Tok::Comma);
                i += 1;
            }
            _ => {
                let two: String = b[i..(i + 2).min(b.len())].iter().collect();
                let ops2 = [
                    "==", "!=", "<=", ">=", "&&", "||", "=~", "!~", ".=", "+=", "-=", "++", "--",
                ];
                if ops2.contains(&two.as_str()) {
                    out.push(Tok::Op(two));
                    i += 2;
                } else if "+-*/%<>=!.".contains(c) {
                    out.push(Tok::Op(c.to_string()));
                    i += 1;
                } else {
                    return Err(format!("unexpected character {c:?}"));
                }
            }
        }
    }
    Ok(out)
}

fn word_boundary(b: &[char], i: usize) -> bool {
    i == 0 || !(b[i - 1].is_ascii_alphanumeric() || b[i - 1] == '_' || b[i - 1] == '$')
}

fn read_until_slash(b: &[char], mut i: usize) -> Result<(String, usize), String> {
    let mut s = String::new();
    while i < b.len() && b[i] != '/' {
        if b[i] == '\\' && b.get(i + 1) == Some(&'/') {
            s.push('/');
            i += 2;
        } else {
            s.push(b[i]);
            i += 1;
        }
    }
    if i >= b.len() {
        return Err("unterminated regex".to_owned());
    }
    Ok((s, i + 1))
}

/// `/` is a regex start unless a value precedes it (then division).
fn regex_position(out: &[Tok]) -> bool {
    !matches!(
        out.last(),
        Some(Tok::Num(_))
            | Some(Tok::Scalar(_))
            | Some(Tok::RParen)
            | Some(Tok::RBracket)
            | Some(Tok::Str(_))
            | Some(Tok::Ident(_))
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigils() {
        let t = lex("$x @list %hash").expect("lex");
        assert_eq!(
            t,
            vec![
                Tok::Scalar("x".into()),
                Tok::Array("list".into()),
                Tok::Hash("hash".into()),
            ]
        );
    }

    #[test]
    fn diamond_and_regex() {
        let t = lex("while (<>) { $_ =~ /^[a-z]/; }").expect("lex");
        assert!(t.contains(&Tok::Diamond));
        assert!(t.contains(&Tok::Regex("^[a-z]".into())));
        assert!(t.contains(&Tok::Op("=~".into())));
    }

    #[test]
    fn substitution() {
        let t = lex("s/foo/bar/").expect("lex");
        assert_eq!(t, vec![Tok::Subst("foo".into(), "bar".into())]);
        // `s` as part of a word is not a substitution.
        let t2 = lex("words").expect("lex");
        assert_eq!(t2, vec![Tok::Ident("words".into())]);
    }

    #[test]
    fn strings_and_concat() {
        let t = lex(r#"$x = $x . " " . 'lit';"#).expect("lex");
        assert!(t.contains(&Tok::Op(".".into())));
        assert!(t.contains(&Tok::Str(" ".into())));
        assert!(t.contains(&Tok::Str("lit".into())));
    }

    #[test]
    fn division_vs_regex() {
        let t = lex("$x = $y / 2").expect("lex");
        assert!(t.contains(&Tok::Op("/".into())));
    }

    #[test]
    fn errors() {
        assert!(lex("\"oops").is_err());
        assert!(lex("$").is_err());
        assert!(lex("/never ending").is_err());
    }
}
