//! Parser for the PERL-subset report language.

use super::lexer::{lex, Tok};

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub enum PExpr {
    /// Numeric literal.
    Num(f64),
    /// String literal.
    Str(String),
    /// `$x`.
    Scalar(String),
    /// `$a[expr]`.
    ArrayElem(String, Box<PExpr>),
    /// `$h{expr}`.
    HashElem(String, Box<PExpr>),
    /// `@a` in list context.
    ArrayAll(String),
    /// `keys %h`.
    Keys(String),
    /// `sort LIST`.
    Sort(Box<PExpr>),
    /// `reverse LIST`.
    Reverse(Box<PExpr>),
    /// `split(/re/, expr)`.
    Split(String, Box<PExpr>),
    /// `join(expr, LIST)`.
    Join(Box<PExpr>, Box<PExpr>),
    /// `length(expr)`, `chop($x)`, `substr`, `uc`, `lc`, `scalar(@a)`.
    Call(String, Vec<PExpr>),
    /// `<>` — next input line or undef.
    Diamond,
    /// Assignment `lv op rhs` (`=`, `.=`, `+=`, `-=`).
    Assign(Box<PExpr>, String, Box<PExpr>),
    /// Binary operator.
    Binary(String, Box<PExpr>, Box<PExpr>),
    /// Unary `!`/`-`.
    Unary(String, Box<PExpr>),
    /// `++$x` / `$x++` (and `--`).
    Incr(Box<PExpr>, f64, bool),
    /// `expr =~ /re/` (or `!~`).
    Match(Box<PExpr>, String, bool),
    /// `$x =~ s/re/rep/`.
    Substitute(Box<PExpr>, String, String),
}

/// A statement.
#[derive(Debug, Clone, PartialEq)]
pub enum PStmt {
    /// Expression statement.
    Expr(PExpr),
    /// `print LIST;`.
    Print(Vec<PExpr>),
    /// `push(@a, expr);`.
    Push(String, PExpr),
    /// `if (...) {...} elsif ... else {...}`.
    If(Vec<(PExpr, Vec<PStmt>)>, Option<Vec<PStmt>>),
    /// `while (cond) {...}`.
    While(PExpr, Vec<PStmt>),
    /// `foreach $v (LIST) {...}`.
    Foreach(String, PExpr, Vec<PStmt>),
    /// `last;`.
    Last,
}

/// Parses a script into statements.
///
/// # Errors
///
/// Returns a message on lexical or syntax errors.
pub fn parse(src: &str) -> Result<Vec<PStmt>, String> {
    let toks = lex(src)?;
    let mut p = P { toks, pos: 0 };
    let mut stmts = Vec::new();
    while p.peek().is_some() {
        stmts.push(p.stmt()?);
    }
    Ok(stmts)
}

struct P {
    toks: Vec<Tok>,
    pos: usize,
}

impl P {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, t: &Tok) -> bool {
        if self.peek() == Some(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: &Tok) -> Result<(), String> {
        if self.eat(t) {
            Ok(())
        } else {
            Err(format!("expected {t:?}, found {:?}", self.peek()))
        }
    }

    fn eat_op(&mut self, op: &str) -> bool {
        if matches!(self.peek(), Some(Tok::Op(o)) if o == op) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn block(&mut self) -> Result<Vec<PStmt>, String> {
        self.expect(&Tok::LBrace)?;
        let mut stmts = Vec::new();
        while self.peek() != Some(&Tok::RBrace) {
            if self.peek().is_none() {
                return Err("unterminated block".to_owned());
            }
            stmts.push(self.stmt()?);
        }
        self.expect(&Tok::RBrace)?;
        Ok(stmts)
    }

    fn stmt(&mut self) -> Result<PStmt, String> {
        while self.eat(&Tok::Semi) {}
        match self.peek().cloned() {
            Some(Tok::Ident(kw)) => match kw.as_str() {
                "if" => {
                    self.pos += 1;
                    let mut arms = Vec::new();
                    self.expect(&Tok::LParen)?;
                    let cond = self.expr()?;
                    self.expect(&Tok::RParen)?;
                    arms.push((cond, self.block()?));
                    let mut otherwise = None;
                    loop {
                        match self.peek() {
                            Some(Tok::Ident(k)) if k == "elsif" => {
                                self.pos += 1;
                                self.expect(&Tok::LParen)?;
                                let c = self.expr()?;
                                self.expect(&Tok::RParen)?;
                                arms.push((c, self.block()?));
                            }
                            Some(Tok::Ident(k)) if k == "else" => {
                                self.pos += 1;
                                otherwise = Some(self.block()?);
                                break;
                            }
                            _ => break,
                        }
                    }
                    Ok(PStmt::If(arms, otherwise))
                }
                "while" => {
                    self.pos += 1;
                    self.expect(&Tok::LParen)?;
                    let cond = self.expr()?;
                    self.expect(&Tok::RParen)?;
                    Ok(PStmt::While(cond, self.block()?))
                }
                "foreach" | "for" => {
                    self.pos += 1;
                    let var = match self.next() {
                        Some(Tok::Scalar(v)) => v,
                        other => return Err(format!("foreach expects $var, got {other:?}")),
                    };
                    self.expect(&Tok::LParen)?;
                    let list = self.expr()?;
                    self.expect(&Tok::RParen)?;
                    Ok(PStmt::Foreach(var, list, self.block()?))
                }
                "print" => {
                    self.pos += 1;
                    let mut args = Vec::new();
                    while !matches!(self.peek(), Some(Tok::Semi) | None) {
                        args.push(self.expr()?);
                        if !self.eat(&Tok::Comma) {
                            break;
                        }
                    }
                    self.expect(&Tok::Semi)?;
                    Ok(PStmt::Print(args))
                }
                "push" => {
                    self.pos += 1;
                    self.expect(&Tok::LParen)?;
                    let arr = match self.next() {
                        Some(Tok::Array(a)) => a,
                        other => return Err(format!("push expects @array, got {other:?}")),
                    };
                    self.expect(&Tok::Comma)?;
                    let v = self.expr()?;
                    self.expect(&Tok::RParen)?;
                    self.expect(&Tok::Semi)?;
                    Ok(PStmt::Push(arr, v))
                }
                "last" => {
                    self.pos += 1;
                    self.expect(&Tok::Semi)?;
                    Ok(PStmt::Last)
                }
                _ => {
                    let e = self.expr()?;
                    self.expect(&Tok::Semi)?;
                    Ok(PStmt::Expr(e))
                }
            },
            _ => {
                let e = self.expr()?;
                self.expect(&Tok::Semi)?;
                Ok(PStmt::Expr(e))
            }
        }
    }

    // Precedence: assign < || < && < comparison < match < concat(.)
    // < additive < multiplicative < unary < postfix < primary.
    fn expr(&mut self) -> Result<PExpr, String> {
        let lhs = self.or_expr()?;
        for op in ["=", ".=", "+=", "-="] {
            if self.eat_op(op) {
                let rhs = self.expr()?;
                return Ok(PExpr::Assign(Box::new(lhs), op.to_owned(), Box::new(rhs)));
            }
        }
        Ok(lhs)
    }

    fn or_expr(&mut self) -> Result<PExpr, String> {
        let mut lhs = self.and_expr()?;
        while self.eat_op("||") {
            let rhs = self.and_expr()?;
            lhs = PExpr::Binary("||".into(), Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<PExpr, String> {
        let mut lhs = self.cmp_expr()?;
        while self.eat_op("&&") {
            let rhs = self.cmp_expr()?;
            lhs = PExpr::Binary("&&".into(), Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn cmp_expr(&mut self) -> Result<PExpr, String> {
        let lhs = self.match_expr()?;
        // Numeric comparisons as operators; string ones as idents.
        for op in ["==", "!=", "<=", ">=", "<", ">"] {
            if self.eat_op(op) {
                let rhs = self.match_expr()?;
                return Ok(PExpr::Binary(op.to_owned(), Box::new(lhs), Box::new(rhs)));
            }
        }
        if let Some(Tok::Ident(id)) = self.peek() {
            let id = id.clone();
            if ["eq", "ne", "lt", "gt", "le", "ge"].contains(&id.as_str()) {
                self.pos += 1;
                let rhs = self.match_expr()?;
                return Ok(PExpr::Binary(id, Box::new(lhs), Box::new(rhs)));
            }
        }
        Ok(lhs)
    }

    fn match_expr(&mut self) -> Result<PExpr, String> {
        let lhs = self.concat_expr()?;
        for (op, neg) in [("=~", false), ("!~", true)] {
            if self.eat_op(op) {
                return match self.next() {
                    Some(Tok::Regex(re)) => Ok(PExpr::Match(Box::new(lhs), re, neg)),
                    Some(Tok::Subst(re, rep)) if !neg => {
                        Ok(PExpr::Substitute(Box::new(lhs), re, rep))
                    }
                    other => Err(format!("=~ expects regex, got {other:?}")),
                };
            }
        }
        Ok(lhs)
    }

    fn concat_expr(&mut self) -> Result<PExpr, String> {
        let mut lhs = self.add_expr()?;
        while self.eat_op(".") {
            let rhs = self.add_expr()?;
            lhs = PExpr::Binary(".".into(), Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn add_expr(&mut self) -> Result<PExpr, String> {
        let mut lhs = self.mul_expr()?;
        loop {
            if self.eat_op("+") {
                let rhs = self.mul_expr()?;
                lhs = PExpr::Binary("+".into(), Box::new(lhs), Box::new(rhs));
            } else if self.eat_op("-") {
                let rhs = self.mul_expr()?;
                lhs = PExpr::Binary("-".into(), Box::new(lhs), Box::new(rhs));
            } else {
                return Ok(lhs);
            }
        }
    }

    fn mul_expr(&mut self) -> Result<PExpr, String> {
        let mut lhs = self.unary_expr()?;
        loop {
            if self.eat_op("*") {
                let rhs = self.unary_expr()?;
                lhs = PExpr::Binary("*".into(), Box::new(lhs), Box::new(rhs));
            } else if self.eat_op("/") {
                let rhs = self.unary_expr()?;
                lhs = PExpr::Binary("/".into(), Box::new(lhs), Box::new(rhs));
            } else if self.eat_op("%") {
                let rhs = self.unary_expr()?;
                lhs = PExpr::Binary("%".into(), Box::new(lhs), Box::new(rhs));
            } else {
                return Ok(lhs);
            }
        }
    }

    fn unary_expr(&mut self) -> Result<PExpr, String> {
        if self.eat_op("!") {
            return Ok(PExpr::Unary("!".into(), Box::new(self.unary_expr()?)));
        }
        if self.eat_op("-") {
            return Ok(PExpr::Unary("-".into(), Box::new(self.unary_expr()?)));
        }
        if self.eat_op("++") {
            let t = self.postfix_expr()?;
            return Ok(PExpr::Incr(Box::new(t), 1.0, false));
        }
        if self.eat_op("--") {
            let t = self.postfix_expr()?;
            return Ok(PExpr::Incr(Box::new(t), -1.0, false));
        }
        self.postfix_expr()
    }

    fn postfix_expr(&mut self) -> Result<PExpr, String> {
        let e = self.primary()?;
        if self.eat_op("++") {
            return Ok(PExpr::Incr(Box::new(e), 1.0, true));
        }
        if self.eat_op("--") {
            return Ok(PExpr::Incr(Box::new(e), -1.0, true));
        }
        Ok(e)
    }

    fn primary(&mut self) -> Result<PExpr, String> {
        match self.next() {
            Some(Tok::Num(n)) => Ok(PExpr::Num(n)),
            Some(Tok::Str(s)) => Ok(PExpr::Str(s)),
            Some(Tok::Diamond) => Ok(PExpr::Diamond),
            Some(Tok::Regex(re)) => {
                // Bare regex matches $_.
                Ok(PExpr::Match(Box::new(PExpr::Scalar("_".into())), re, false))
            }
            Some(Tok::Subst(re, rep)) => Ok(PExpr::Substitute(
                Box::new(PExpr::Scalar("_".into())),
                re,
                rep,
            )),
            Some(Tok::Scalar(name)) => {
                if self.eat(&Tok::LBracket) {
                    let idx = self.expr()?;
                    self.expect(&Tok::RBracket)?;
                    Ok(PExpr::ArrayElem(name, Box::new(idx)))
                } else if self.eat(&Tok::LBrace) {
                    let key = self.hash_key()?;
                    self.expect(&Tok::RBrace)?;
                    Ok(PExpr::HashElem(name, Box::new(key)))
                } else {
                    Ok(PExpr::Scalar(name))
                }
            }
            Some(Tok::Array(name)) => Ok(PExpr::ArrayAll(name)),
            Some(Tok::LParen) => {
                let e = self.expr()?;
                self.expect(&Tok::RParen)?;
                Ok(e)
            }
            Some(Tok::Ident(id)) => match id.as_str() {
                "keys" => match self.next() {
                    Some(Tok::Hash(h)) => Ok(PExpr::Keys(h)),
                    other => Err(format!("keys expects %hash, got {other:?}")),
                },
                "sort" => {
                    let inner = self.primary()?;
                    Ok(PExpr::Sort(Box::new(inner)))
                }
                "reverse" => {
                    let inner = self.primary()?;
                    Ok(PExpr::Reverse(Box::new(inner)))
                }
                "split" => {
                    self.expect(&Tok::LParen)?;
                    let re = match self.next() {
                        Some(Tok::Regex(r)) => r,
                        Some(Tok::Str(s)) => regex_escape(&s),
                        other => return Err(format!("split expects regex, got {other:?}")),
                    };
                    self.expect(&Tok::Comma)?;
                    let target = self.expr()?;
                    self.expect(&Tok::RParen)?;
                    Ok(PExpr::Split(re, Box::new(target)))
                }
                "join" => {
                    self.expect(&Tok::LParen)?;
                    let sep = self.expr()?;
                    self.expect(&Tok::Comma)?;
                    let list = self.expr()?;
                    self.expect(&Tok::RParen)?;
                    Ok(PExpr::Join(Box::new(sep), Box::new(list)))
                }
                "length" | "chop" | "substr" | "uc" | "lc" | "scalar" | "int" => {
                    self.expect(&Tok::LParen)?;
                    let mut args = Vec::new();
                    if self.peek() != Some(&Tok::RParen) {
                        loop {
                            args.push(self.expr()?);
                            if !self.eat(&Tok::Comma) {
                                break;
                            }
                        }
                    }
                    self.expect(&Tok::RParen)?;
                    Ok(PExpr::Call(id, args))
                }
                other => Err(format!("unknown identifier {other}")),
            },
            other => Err(format!("unexpected token {other:?}")),
        }
    }

    /// Hash keys may be bare words (`$h{word}`) or expressions.
    fn hash_key(&mut self) -> Result<PExpr, String> {
        if let Some(Tok::Ident(w)) = self.peek() {
            // Bare word key only if immediately followed by `}`.
            if self.toks.get(self.pos + 1) == Some(&Tok::RBrace) {
                let w = w.clone();
                self.pos += 1;
                return Ok(PExpr::Str(w));
            }
        }
        self.expr()
    }
}

/// Escapes a literal string for use as a regex (split with a string
/// separator).
fn regex_escape(s: &str) -> String {
    let mut out = String::new();
    for c in s.chars() {
        if "[](){}*+?.^$/\\".contains(c) {
            out.push('\\');
        }
        out.push(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_while_diamond() {
        let p = parse("while (<>) { $n = $n + 1; }").expect("parse");
        assert!(matches!(&p[0], PStmt::While(PExpr::Diamond, _)));
    }

    #[test]
    fn parses_hash_and_array_access() {
        let p = parse("$seen{$k} = $f[0];").expect("parse");
        let PStmt::Expr(PExpr::Assign(lhs, _, rhs)) = &p[0] else {
            panic!("want assign, got {p:?}")
        };
        assert!(matches!(&**lhs, PExpr::HashElem(h, _) if h == "seen"));
        assert!(matches!(&**rhs, PExpr::ArrayElem(a, _) if a == "f"));
    }

    #[test]
    fn parses_foreach_sort_keys() {
        let p = parse("foreach $k (sort keys %h) { print $k; }").expect("parse");
        let PStmt::Foreach(v, list, body) = &p[0] else {
            panic!()
        };
        assert_eq!(v, "k");
        assert!(matches!(list, PExpr::Sort(_)));
        assert_eq!(body.len(), 1);
    }

    #[test]
    fn parses_split_and_join() {
        let p = parse("@f = split(/ /, $_); $s = join(\":\", @f);").expect("parse");
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn parses_match_and_substitute() {
        let p = parse("if ($_ =~ /^[a-z]/) { $_ =~ s/a/b/; }").expect("parse");
        let PStmt::If(arms, _) = &p[0] else { panic!() };
        assert!(matches!(&arms[0].0, PExpr::Match(..)));
        assert!(matches!(&arms[0].1[0], PStmt::Expr(PExpr::Substitute(..))));
    }

    #[test]
    fn string_comparisons() {
        let p = parse("if ($a eq $b) { print 1; }").expect("parse");
        let PStmt::If(arms, _) = &p[0] else { panic!() };
        assert!(matches!(&arms[0].0, PExpr::Binary(op, _, _) if op == "eq"));
    }

    #[test]
    fn syntax_errors() {
        assert!(parse("$x = ;").is_err());
        assert!(parse("foreach x () {}").is_err());
        assert!(parse("push($x, 1);").is_err());
    }
}
