//! The five allocation-intensive workloads of the paper, rebuilt.
//!
//! The paper instruments CFRAC, ESPRESSO, GAWK, GhostScript and PERL —
//! 1990s C programs we cannot ship — so this crate provides
//! from-scratch Rust mini-implementations of the same program classes,
//! each instrumented against a
//! [`lifepred_trace::TraceSession`]:
//!
//! * [`cfrac`] — continued-fraction integer factoring over our own
//!   arbitrary-precision arithmetic;
//! * [`espresso`] — a cube-based two-level logic minimizer
//!   (expand / irredundant / reduce loop);
//! * [`gawk`] — an AWK-subset interpreter (lexer, parser, evaluator,
//!   field splitting, associative arrays);
//! * [`ghost`] — a PostScript-subset interpreter (scanner, operand and
//!   dictionary stacks, path construction and flattening, NODISPLAY
//!   rasterization, a glyph cache with large bitmaps);
//! * [`perl`] — a report-extraction language (line processing, hashes,
//!   sorting, a small regex engine, paragraph filling).
//!
//! A sixth family extends the set beyond the paper's batch jobs:
//!
//! * [`server`] — a deterministic high-QPS request/response server
//!   (per-connection buffers, TTL-churned session caches, slab bursts,
//!   bimodal short/long lifetimes). Its simulation doubles as the
//!   streaming generator behind `lifepred gen`
//!   ([`server::synth::generate_lpt`]), which writes 10⁸-event `.lpt`
//!   files without materializing a trace.
//!
//! Every workload offers at least two deterministic, generated inputs:
//! input 0 trains the predictor, the last input is the larger test run
//! (the paper reports results for the largest input). Each workload
//! brackets its functions with shadow-stack guards so allocation sites
//! carry realistic layered call-chains (`xmalloc`-style wrappers
//! included, deliberately).
//!
//! # Examples
//!
//! ```
//! use lifepred_workloads::{all_workloads, record};
//! use lifepred_trace::shared_registry;
//!
//! let workloads = all_workloads();
//! let cfrac = &workloads[0];
//! let trace = record(cfrac.as_ref(), 0, shared_registry());
//! assert!(trace.stats().total_objects > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cfrac;
pub mod espresso;
pub mod gawk;
pub mod ghost;
pub mod input;
pub mod perl;
pub mod regexlite;
pub mod server;

use lifepred_trace::{SharedRegistry, Trace, TraceSession};

/// A traced program with a fixed set of generated inputs.
pub trait Workload {
    /// Short program name (matches the paper's, lower-case).
    fn name(&self) -> &'static str;

    /// One-paragraph description for Table 1.
    fn description(&self) -> &'static str;

    /// Names of the available inputs, smallest (training) first.
    /// Always at least two, so *true prediction* is meaningful.
    fn inputs(&self) -> Vec<String>;

    /// Runs the program on input `input`, recording into `session`.
    ///
    /// # Panics
    ///
    /// Panics if `input >= self.inputs().len()`.
    fn run(&self, input: usize, session: &TraceSession);
}

/// All six workloads: the paper's five in its order, then `server`.
pub fn all_workloads() -> Vec<Box<dyn Workload>> {
    vec![
        Box::new(cfrac::Cfrac),
        Box::new(espresso::Espresso),
        Box::new(gawk::Gawk),
        Box::new(ghost::Ghost),
        Box::new(perl::Perl),
        Box::new(server::Server),
    ]
}

/// Looks a workload up by name.
pub fn by_name(name: &str) -> Option<Box<dyn Workload>> {
    all_workloads().into_iter().find(|w| w.name() == name)
}

/// Runs `workload` on input `input` under a fresh session sharing
/// `registry`, returning the finished trace.
///
/// Sharing one registry between the training and test run of a
/// workload is what lets sites map across runs (true prediction).
pub fn record(workload: &dyn Workload, input: usize, registry: SharedRegistry) -> Trace {
    let session = TraceSession::with_registry(
        &format!("{}:{}", workload.name(), workload.inputs()[input]),
        registry,
    );
    workload.run(input, &session);
    session.finish()
}

/// The training/test pair for a workload: input 0 and the last input.
pub fn train_test_traces(workload: &dyn Workload, registry: SharedRegistry) -> (Trace, Trace) {
    let n = workload.inputs().len();
    assert!(n >= 2, "workloads must provide at least two inputs");
    let train = record(workload, 0, registry.clone());
    let test = record(workload, n - 1, registry);
    (train, test)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_workloads_in_paper_order_then_server() {
        let names: Vec<&str> = all_workloads().iter().map(|w| w.name()).collect();
        assert_eq!(
            names,
            vec!["cfrac", "espresso", "gawk", "ghost", "perl", "server"]
        );
    }

    #[test]
    fn every_workload_has_two_inputs() {
        for w in all_workloads() {
            assert!(w.inputs().len() >= 2, "{} must have >= 2 inputs", w.name());
            assert!(!w.description().is_empty());
        }
    }

    #[test]
    fn by_name_finds_workloads() {
        assert!(by_name("gawk").is_some());
        assert!(by_name("nosuch").is_none());
    }
}
