//! A small backtracking regular-expression engine, shared by the
//! `gawk` and `perl` workloads.
//!
//! Supported syntax: literal characters, `.`, character classes
//! `[a-z0-9]` (with leading `^` negation), postfix `*`, `+`, `?`,
//! and anchors `^` / `$`. This covers the field-validation and
//! word-matching patterns the report scripts use.

/// One compiled regex element.
#[derive(Debug, Clone, PartialEq)]
enum Piece {
    Char(char),
    Any,
    Class {
        negated: bool,
        ranges: Vec<(char, char)>,
    },
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Repeat {
    One,
    Star,
    Plus,
    Opt,
}

/// A compiled pattern.
#[derive(Debug, Clone, PartialEq)]
pub struct Regex {
    anchored_start: bool,
    anchored_end: bool,
    items: Vec<(Piece, Repeat)>,
}

impl Regex {
    /// Compiles `pattern`.
    ///
    /// # Errors
    ///
    /// Returns a message on malformed syntax (e.g. unterminated class,
    /// leading repeat).
    pub fn compile(pattern: &str) -> Result<Regex, String> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut i = 0;
        let anchored_start = chars.first() == Some(&'^');
        if anchored_start {
            i = 1;
        }
        let mut items: Vec<(Piece, Repeat)> = Vec::new();
        let mut anchored_end = false;
        while i < chars.len() {
            let c = chars[i];
            if c == '$' && i == chars.len() - 1 {
                anchored_end = true;
                i += 1;
                continue;
            }
            let piece = match c {
                '.' => {
                    i += 1;
                    Piece::Any
                }
                '[' => {
                    i += 1;
                    let negated = chars.get(i) == Some(&'^');
                    if negated {
                        i += 1;
                    }
                    let mut ranges = Vec::new();
                    while i < chars.len() && chars[i] != ']' {
                        let lo = chars[i];
                        if chars.get(i + 1) == Some(&'-')
                            && chars.get(i + 2).is_some_and(|&c| c != ']')
                        {
                            ranges.push((lo, chars[i + 2]));
                            i += 3;
                        } else {
                            ranges.push((lo, lo));
                            i += 1;
                        }
                    }
                    if i >= chars.len() {
                        return Err("unterminated character class".to_owned());
                    }
                    i += 1; // ']'
                    Piece::Class { negated, ranges }
                }
                '\\' => {
                    i += 1;
                    let lit = *chars.get(i).ok_or("trailing backslash")?;
                    i += 1;
                    Piece::Char(lit)
                }
                '*' | '+' | '?' => return Err(format!("repeat {c:?} with nothing to repeat")),
                other => {
                    i += 1;
                    Piece::Char(other)
                }
            };
            let repeat = match chars.get(i) {
                Some('*') => {
                    i += 1;
                    Repeat::Star
                }
                Some('+') => {
                    i += 1;
                    Repeat::Plus
                }
                Some('?') => {
                    i += 1;
                    Repeat::Opt
                }
                _ => Repeat::One,
            };
            items.push((piece, repeat));
        }
        Ok(Regex {
            anchored_start,
            anchored_end,
            items,
        })
    }

    /// Whether the pattern matches anywhere in `text` (or at the
    /// anchors, if anchored).
    pub fn is_match(&self, text: &str) -> bool {
        self.find(text).is_some()
    }

    /// The byte range of the leftmost match, if any.
    pub fn find(&self, text: &str) -> Option<(usize, usize)> {
        let chars: Vec<char> = text.chars().collect();
        let starts: Vec<usize> = if self.anchored_start {
            vec![0]
        } else {
            (0..=chars.len()).collect()
        };
        for start in starts {
            if let Some(end) = self.match_items(&chars, start, 0) {
                return Some((start, end));
            }
        }
        None
    }

    fn match_items(&self, text: &[char], pos: usize, item: usize) -> Option<usize> {
        if item == self.items.len() {
            if self.anchored_end && pos != text.len() {
                return None;
            }
            return Some(pos);
        }
        let (piece, repeat) = &self.items[item];
        match repeat {
            Repeat::One => {
                if pos < text.len() && piece_matches(piece, text[pos]) {
                    self.match_items(text, pos + 1, item + 1)
                } else {
                    None
                }
            }
            Repeat::Opt => {
                if pos < text.len() && piece_matches(piece, text[pos]) {
                    if let Some(end) = self.match_items(text, pos + 1, item + 1) {
                        return Some(end);
                    }
                }
                self.match_items(text, pos, item + 1)
            }
            Repeat::Star | Repeat::Plus => {
                let min = usize::from(*repeat == Repeat::Plus);
                // Greedy: consume as much as possible, then backtrack.
                let mut max = pos;
                while max < text.len() && piece_matches(piece, text[max]) {
                    max += 1;
                }
                let taken_min = pos + min;
                if max < taken_min {
                    return None;
                }
                let mut p = max;
                loop {
                    if let Some(end) = self.match_items(text, p, item + 1) {
                        return Some(end);
                    }
                    if p == taken_min {
                        return None;
                    }
                    p -= 1;
                }
            }
        }
    }
}

fn piece_matches(piece: &Piece, c: char) -> bool {
    match piece {
        Piece::Char(l) => *l == c,
        Piece::Any => true,
        Piece::Class { negated, ranges } => {
            let inside = ranges.iter().any(|&(lo, hi)| c >= lo && c <= hi);
            inside != *negated
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(pat: &str, text: &str) -> bool {
        Regex::compile(pat).expect("compile").is_match(text)
    }

    #[test]
    fn literals_match_substrings() {
        assert!(m("abc", "xxabcxx"));
        assert!(!m("abc", "ab"));
    }

    #[test]
    fn anchors() {
        assert!(m("^ab", "abc"));
        assert!(!m("^bc", "abc"));
        assert!(m("bc$", "abc"));
        assert!(!m("ab$", "abc"));
        assert!(m("^abc$", "abc"));
        assert!(!m("^abc$", "abcd"));
    }

    #[test]
    fn classes_and_ranges() {
        assert!(m("[a-z]+", "HELLO there"));
        assert!(!m("^[a-z]+$", "HELLO"));
        assert!(m("[0-9][0-9]*", "x42"));
        assert!(m("[^0-9]", "a"));
        assert!(!m("[^0-9]", "7"));
    }

    #[test]
    fn repeats() {
        assert!(m("ab*c", "ac"));
        assert!(m("ab*c", "abbbc"));
        assert!(m("ab+c", "abc"));
        assert!(!m("ab+c", "ac"));
        assert!(m("ab?c", "ac"));
        assert!(m("ab?c", "abc"));
    }

    #[test]
    fn dot_and_backtracking() {
        assert!(m("a.*z", "a---z"));
        assert!(m("a.*zz", "azzz"));
        assert!(m(".*b.*c", "xbyc"));
    }

    #[test]
    fn find_returns_leftmost_range() {
        let r = Regex::compile("b+").expect("compile");
        assert_eq!(r.find("aabbbc"), Some((2, 5)));
        assert_eq!(r.find("none"), None);
    }

    #[test]
    fn compile_errors() {
        assert!(Regex::compile("[abc").is_err());
        assert!(Regex::compile("*x").is_err());
        assert!(Regex::compile("x\\").is_err());
    }

    #[test]
    fn escaped_metacharacters() {
        assert!(m("a\\.b", "a.b"));
        assert!(!m("a\\.b", "axb"));
    }
}
