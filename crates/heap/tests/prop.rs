//! Property-based tests over random alloc/free interleavings.

use lifepred_heap::{Addr, ArenaAllocator, ArenaConfig, BsdMalloc, FirstFit};
use proptest::prelude::*;

/// A random allocator script: sizes to allocate, with frees of random
/// live objects interleaved.
#[derive(Debug, Clone)]
enum Op {
    Alloc(u32),
    /// Free the live object at `index % live.len()`.
    Free(usize),
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            (1u32..2000).prop_map(Op::Alloc),
            (0usize..1000).prop_map(Op::Free),
        ],
        1..400,
    )
}

proptest! {
    /// First-fit never corrupts its block structure, and frees return
    /// all space.
    #[test]
    fn firstfit_structure_holds(script in ops()) {
        let mut heap = FirstFit::new();
        let mut live: Vec<Addr> = Vec::new();
        for op in script {
            match op {
                Op::Alloc(size) => live.push(heap.alloc(size)),
                Op::Free(i) if !live.is_empty() => {
                    let addr = live.swap_remove(i % live.len());
                    heap.free(addr);
                }
                Op::Free(_) => {}
            }
            heap.check_invariants();
        }
        prop_assert_eq!(heap.live_blocks(), live.len());
        for addr in live {
            heap.free(addr);
        }
        heap.check_invariants();
        prop_assert_eq!(heap.live_blocks(), 0);
    }

    /// Live first-fit allocations never overlap.
    #[test]
    fn firstfit_allocations_disjoint(sizes in proptest::collection::vec(1u32..500, 1..100)) {
        let mut heap = FirstFit::new();
        let mut regions: Vec<(u64, u64)> = Vec::new();
        for &size in &sizes {
            let a = heap.alloc(size);
            regions.push((a.0, a.0 + u64::from(size)));
        }
        regions.sort_unstable();
        for w in regions.windows(2) {
            prop_assert!(w[0].1 <= w[1].0, "overlap: {:?} vs {:?}", w[0], w[1]);
        }
    }

    /// BSD never hands out the same chunk twice while it is live, and
    /// heap growth is monotone.
    #[test]
    fn bsd_unique_live_chunks(script in ops()) {
        let mut heap = BsdMalloc::new();
        let mut live: Vec<Addr> = Vec::new();
        let mut max_seen = 0;
        for op in script {
            match op {
                Op::Alloc(size) => {
                    let a = heap.alloc(size);
                    prop_assert!(!live.contains(&a), "chunk {a} handed out twice");
                    live.push(a);
                }
                Op::Free(i) if !live.is_empty() => {
                    let addr = live.swap_remove(i % live.len());
                    heap.free(addr);
                }
                Op::Free(_) => {}
            }
            prop_assert!(heap.heap_bytes() >= max_seen);
            max_seen = heap.heap_bytes();
        }
        prop_assert_eq!(heap.live_blocks(), live.len());
    }

    /// Arena live counts exactly track outstanding arena objects, for
    /// any prediction pattern.
    #[test]
    fn arena_live_count_conservation(
        script in ops(),
        predictions in proptest::collection::vec(any::<bool>(), 400),
    ) {
        let mut heap = ArenaAllocator::new(ArenaConfig { arena_count: 4, arena_size: 1024 });
        let mut live: Vec<Addr> = Vec::new();
        let mut arena_live = 0u64;
        let mut pi = 0;
        for op in script {
            match op {
                Op::Alloc(size) => {
                    let predicted = predictions[pi % predictions.len()];
                    pi += 1;
                    let a = heap.alloc(size, predicted);
                    if heap.is_arena_addr(a) {
                        arena_live += 1;
                    }
                    live.push(a);
                }
                Op::Free(i) if !live.is_empty() => {
                    let addr = live.swap_remove(i % live.len());
                    if heap.is_arena_addr(addr) {
                        arena_live -= 1;
                    }
                    heap.free(addr);
                }
                Op::Free(_) => {}
            }
            prop_assert_eq!(heap.arena_live_objects(), arena_live);
        }
    }

    /// Arena addresses and general-heap addresses never collide.
    #[test]
    fn arena_address_spaces_disjoint(sizes in proptest::collection::vec(1u32..512, 1..200)) {
        let mut heap = ArenaAllocator::new(ArenaConfig::default());
        let mut arena_addrs = Vec::new();
        let mut general_addrs = Vec::new();
        for (i, &size) in sizes.iter().enumerate() {
            let a = heap.alloc(size, i % 2 == 0);
            if heap.is_arena_addr(a) {
                arena_addrs.push(a);
            } else {
                general_addrs.push(a);
            }
        }
        for a in &arena_addrs {
            prop_assert!(!general_addrs.contains(a));
        }
    }
}
