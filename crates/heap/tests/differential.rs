//! Differential-equality proof: the indexed [`FirstFit`] is observably
//! identical to the seed's linear scan ([`LinearFirstFit`]).
//!
//! Both heaps are driven in lockstep — randomized operation scripts
//! (including invalid frees) plus the event streams of all five
//! workload traces — asserting, operation by operation, identical
//! placements, and at the end identical [`OpCounts`] (`search_steps`
//! included, the Table 9 cost-model input) and `max_heap_bytes` (the
//! Table 8 measure). Any divergence in the index's answer, in the
//! order-statistic `search_steps` reconstruction, or in the
//! invalid-free handling fails here.

use lifepred_heap::reference::LinearFirstFit;
use lifepred_heap::{Addr, FirstFit};
use lifepred_trace::{shared_registry, EventKind, Trace};
use lifepred_workloads::{all_workloads, record};
use proptest::prelude::*;

/// Drives both implementations through the same alloc/free sequence,
/// checking placements at every step and the aggregate observables at
/// the end.
struct Lockstep {
    indexed: FirstFit,
    linear: LinearFirstFit,
    ops: u64,
}

impl Lockstep {
    fn new() -> Lockstep {
        Lockstep {
            indexed: FirstFit::new(),
            linear: LinearFirstFit::new(),
            ops: 0,
        }
    }

    fn alloc(&mut self, size: u32) -> Addr {
        self.ops += 1;
        let a = self.indexed.alloc(size);
        let b = self.linear.alloc(size);
        assert_eq!(
            a, b,
            "placement diverged at op {} (size {size}): indexed {a}, linear {b}",
            self.ops
        );
        a
    }

    fn free(&mut self, addr: Addr) {
        self.ops += 1;
        self.indexed.free(addr);
        self.linear.free(addr);
    }

    fn finish(self) {
        assert_eq!(
            self.indexed.counts(),
            self.linear.counts(),
            "OpCounts diverged after {} ops",
            self.ops
        );
        assert_eq!(
            self.indexed.max_heap_bytes(),
            self.linear.max_heap_bytes(),
            "max_heap_bytes diverged after {} ops",
            self.ops
        );
        assert_eq!(self.indexed.heap_bytes(), self.linear.heap_bytes());
        assert_eq!(self.indexed.live_blocks(), self.linear.live_blocks());
        self.indexed.check_invariants();
    }
}

/// Replays `trace`'s event stream through both heaps in lockstep.
fn diff_replay(trace: &Trace) {
    let mut step = Lockstep::new();
    let mut slots: Vec<Option<Addr>> = vec![None; trace.records().len()];
    for event in trace.events() {
        match event.kind {
            EventKind::Alloc => {
                let size = trace.records()[event.record].size;
                slots[event.record] = Some(step.alloc(size));
            }
            EventKind::Free => {
                let addr = slots[event.record].take().expect("freed before alloc");
                step.free(addr);
            }
        }
    }
    step.finish();
}

/// All five workload traces (the paper's suite) replay identically —
/// the acceptance gate of the indexed search. Training inputs keep
/// this affordable; the randomized scripts below cover the shapes the
/// workloads do not reach.
#[test]
fn all_five_workload_traces_replay_identically() {
    let workloads = all_workloads();
    assert_eq!(workloads.len(), 5, "the paper's suite has five programs");
    for w in workloads {
        let registry = shared_registry();
        let trace = record(w.as_ref(), 0, registry);
        assert!(
            trace.records().len() > 1000,
            "{}: trace too small to exercise the index",
            w.name()
        );
        diff_replay(&trace);
    }
}

/// A deterministic churn/fragmentation stress: interleaved short- and
/// long-lived objects with size variety forces wrapping searches,
/// splits, coalesces and heap growth.
#[test]
fn fragmentation_stress_replays_identically() {
    let mut step = Lockstep::new();
    let mut live: Vec<Addr> = Vec::new();
    let mut keepers: Vec<Addr> = Vec::new();
    let mut x = 0x9e3779b97f4a7c15u64;
    for i in 0..20_000u32 {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let r = (x >> 33) as u32;
        match r % 7 {
            0..=2 => live.push(step.alloc(r % 900 + 1)),
            3 => keepers.push(step.alloc(r % 6000 + 1)),
            4..=5 if !live.is_empty() => {
                let idx = (r as usize) % live.len();
                step.free(live.swap_remove(idx));
            }
            6 if i % 11 == 0 && !keepers.is_empty() => {
                let idx = (r as usize) % keepers.len();
                step.free(keepers.swap_remove(idx));
            }
            _ => live.push(step.alloc(r % 64 + 1)),
        }
    }
    for a in live.into_iter().chain(keepers) {
        step.free(a);
    }
    step.finish();
}

#[derive(Debug, Clone)]
enum Op {
    Alloc(u32),
    /// Free the live object at `index % live.len()`.
    Free(usize),
    /// Free an address that was never (or is no longer) allocated.
    InvalidFree(u64),
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            (1u32..3000).prop_map(Op::Alloc),
            (0usize..1000).prop_map(Op::Free),
            (0u64..1 << 20).prop_map(Op::InvalidFree),
        ],
        1..500,
    )
}

proptest! {
    /// Randomized scripts — allocations, frees of random live objects,
    /// and invalid frees — never diverge.
    #[test]
    fn random_scripts_replay_identically(script in ops()) {
        let mut step = Lockstep::new();
        let mut live: Vec<Addr> = Vec::new();
        let mut freed: Vec<Addr> = Vec::new();
        for op in script {
            match op {
                Op::Alloc(size) => live.push(step.alloc(size)),
                Op::Free(i) if !live.is_empty() => {
                    let addr = live.swap_remove(i % live.len());
                    step.free(addr);
                    freed.push(addr);
                }
                Op::Free(_) => {}
                Op::InvalidFree(raw) => {
                    // Either a wild address or a double free of a
                    // previously released object; both must be counted
                    // no-ops on both sides.
                    if raw % 2 == 0 && !freed.is_empty() {
                        let addr = freed[(raw as usize / 2) % freed.len()];
                        step.free(addr);
                    } else {
                        step.free(Addr(raw));
                    }
                }
            }
        }
        for addr in live {
            step.free(addr);
        }
        step.finish();
    }
}
