//! Operation counts gathered by the simulated allocators.

/// Counters of the primitive operations each simulated allocator
/// performed; the cost model multiplies these by per-operation
/// instruction estimates to produce Table 9.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpCounts {
    /// Allocation requests served.
    pub allocs: u64,
    /// Deallocation requests served.
    pub frees: u64,
    /// Deallocation requests ignored because the address was not a
    /// live allocation (never allocated, already free, or mid-block) —
    /// a corrupted trace cannot poison the heap structures.
    pub frees_invalid: u64,
    /// Free-list blocks examined during first-fit searches.
    pub search_steps: u64,
    /// Block splits performed.
    pub splits: u64,
    /// Coalesce operations performed at free time.
    pub coalesces: u64,
    /// Heap page extensions.
    pub page_grows: u64,
    /// BSD bucket-list pops (fast-path allocations).
    pub bucket_pops: u64,
    /// BSD page carves (slow-path allocations that split a fresh page
    /// into chunks).
    pub page_carves: u64,
    /// Allocations served from a short-lived arena (bump pointer).
    pub arena_allocs: u64,
    /// Frees that only decremented an arena's live count.
    pub arena_frees: u64,
    /// Arena resets (an exhausted arena chain found an empty arena).
    pub arena_resets: u64,
    /// Arena slots examined while scanning for an empty arena.
    pub arena_scan_steps: u64,
    /// Allocations predicted short-lived that nevertheless went to the
    /// general heap (no empty arena, or object too large).
    pub arena_overflows: u64,
}

impl OpCounts {
    /// Sums two count sets (used when an allocator embeds another,
    /// e.g. the arena allocator's first-fit fallback).
    pub fn merged(&self, other: &OpCounts) -> OpCounts {
        OpCounts {
            allocs: self.allocs + other.allocs,
            frees: self.frees + other.frees,
            frees_invalid: self.frees_invalid + other.frees_invalid,
            search_steps: self.search_steps + other.search_steps,
            splits: self.splits + other.splits,
            coalesces: self.coalesces + other.coalesces,
            page_grows: self.page_grows + other.page_grows,
            bucket_pops: self.bucket_pops + other.bucket_pops,
            page_carves: self.page_carves + other.page_carves,
            arena_allocs: self.arena_allocs + other.arena_allocs,
            arena_frees: self.arena_frees + other.arena_frees,
            arena_resets: self.arena_resets + other.arena_resets,
            arena_scan_steps: self.arena_scan_steps + other.arena_scan_steps,
            arena_overflows: self.arena_overflows + other.arena_overflows,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merged_adds_fieldwise() {
        let a = OpCounts {
            allocs: 1,
            search_steps: 10,
            ..OpCounts::default()
        };
        let b = OpCounts {
            allocs: 2,
            coalesces: 5,
            ..OpCounts::default()
        };
        let m = a.merged(&b);
        assert_eq!(m.allocs, 3);
        assert_eq!(m.search_steps, 10);
        assert_eq!(m.coalesces, 5);
    }
}
