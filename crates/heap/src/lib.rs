//! Simulated storage allocators and the trace-replay harness.
//!
//! The paper evaluates lifetime prediction by *trace-driven
//! simulation*: allocation event streams are fed to deterministic
//! models of three allocators —
//!
//! * [`FirstFit`]: Knuth's first-fit with boundary tags, a roving
//!   pointer, splitting and immediate coalescing, grown in 8 KB pages
//!   (the paper's baseline and the arena allocator's general heap);
//! * [`BsdMalloc`]: the 4.2BSD power-of-two bucket allocator (the CPU
//!   baseline of Table 9);
//! * [`ArenaAllocator`]: Hanson-style short-lived arenas (16 × 4 KB by
//!   default) driven by a trained
//!   [`ShortLivedSet`](lifepred_core::ShortLivedSet), falling back to
//!   first-fit for everything else.
//!
//! Allocators operate on a synthetic address space — no real memory is
//! touched — so heap sizes, fragmentation and operation counts are
//! exactly reproducible. The `replay_*` functions drive a whole
//! [`Trace`](lifepred_trace::Trace) through an allocator and produce
//! the numbers behind Tables 7 and 8; the cost functions
//! ([`firstfit_costs`], [`bsd_costs`], [`arena_costs`]) convert
//! operation counts into the per-operation instruction estimates of
//! Table 9.
//!
//! # Examples
//!
//! ```
//! use lifepred_heap::{replay_firstfit, ReplayConfig};
//! use lifepred_trace::TraceSession;
//!
//! let s = TraceSession::new("demo");
//! let id = s.alloc(100);
//! s.free(id);
//! let trace = s.finish();
//! let report = replay_firstfit(&trace, &ReplayConfig::default());
//! assert!(report.max_heap_bytes >= 100);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arena;
mod bsd;
mod costmodel;
mod counts;
mod firstfit;
mod index;
mod obs;
pub mod reference;
mod replay;

pub use arena::{ArenaAllocator, ArenaConfig};
pub use bsd::BsdMalloc;
pub use costmodel::{arena_costs, bsd_costs, firstfit_costs, CostReport, PredictorKind};
pub use counts::OpCounts;
pub use firstfit::FirstFit;
pub use index::IndexStats;
pub use obs::ReplayObs;
pub use replay::{
    prediction_bitmap, replay_arena, replay_arena_chunks, replay_arena_chunks_observed,
    replay_arena_online, replay_arena_online_chunks, replay_arena_online_chunks_observed,
    replay_arena_online_stream, replay_arena_online_stream_observed, replay_arena_stream,
    replay_arena_stream_observed, replay_bsd, replay_bsd_chunks, replay_bsd_chunks_observed,
    replay_bsd_stream, replay_bsd_stream_observed, replay_firstfit, replay_firstfit_chunks,
    replay_firstfit_chunks_observed, replay_firstfit_stream, replay_firstfit_stream_observed,
    site_fingerprints, OnlineReplayReport, ReplayConfig, ReplayEvent, ReplayMeta, ReplayReport,
    ReplayStreamError,
};

/// A simulated heap address (bytes from the bottom of the simulated
/// address space).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Addr(pub u64);

impl std::fmt::Display for Addr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "0x{:x}", self.0)
    }
}
