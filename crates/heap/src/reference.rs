//! The seed's linear first-fit scan, retained verbatim as a
//! differential oracle.
//!
//! [`LinearFirstFit`] is the paper-faithful O(free blocks) roving scan
//! that [`FirstFit`](crate::FirstFit) replaced with an indexed search.
//! It exists so the equivalence claim stays *testable* forever:
//! `tests/differential.rs` replays randomized traces and all five
//! workload traces through both implementations and asserts identical
//! placements, [`OpCounts`] and high-water marks, and
//! `benches/replay.rs` uses it as the "before" side of the recorded
//! speedup. It is not part of the simulation API proper — use
//! [`FirstFit`](crate::FirstFit).

use crate::counts::OpCounts;
use crate::firstfit::{ALIGN, HEADER, MIN_SPLIT, PAGE};
use crate::Addr;
use std::collections::BTreeMap;

#[derive(Debug, Clone, Copy)]
struct Block {
    size: u64,
    free: bool,
}

/// The pre-index first-fit heap: identical observable behaviour to
/// [`FirstFit`](crate::FirstFit), linear search cost.
#[derive(Debug, Clone)]
pub struct LinearFirstFit {
    blocks: BTreeMap<u64, Block>,
    base: u64,
    brk: u64,
    max_brk: u64,
    rover: u64,
    counts: OpCounts,
}

impl Default for LinearFirstFit {
    fn default() -> Self {
        LinearFirstFit::new()
    }
}

impl LinearFirstFit {
    /// Creates an empty heap based at address 0.
    pub fn new() -> Self {
        LinearFirstFit::with_base(0)
    }

    /// Creates an empty heap based at `base`.
    pub fn with_base(base: u64) -> Self {
        LinearFirstFit {
            blocks: BTreeMap::new(),
            base,
            brk: base,
            max_brk: base,
            rover: base,
            counts: OpCounts::default(),
        }
    }

    /// Allocates `size` bytes, returning the user address.
    pub fn alloc(&mut self, size: u32) -> Addr {
        self.counts.allocs += 1;
        let need = Self::block_size(size);

        if let Some(addr) = self.search(need) {
            return self.place(addr, need);
        }
        let addr = self.grow_for(need);
        self.place(addr, need)
    }

    /// Frees the block at `addr`, coalescing with free neighbours.
    /// Invalid addresses are counted no-ops, exactly as in
    /// [`FirstFit::free`](crate::FirstFit::free).
    pub fn free(&mut self, addr: Addr) {
        let Some(start) = addr.0.checked_sub(HEADER) else {
            self.counts.frees_invalid += 1;
            return;
        };
        match self.blocks.get_mut(&start) {
            Some(block) if !block.free => block.free = true,
            _ => {
                self.counts.frees_invalid += 1;
                return;
            }
        }
        self.counts.frees += 1;
        let mut start = start;
        let mut size = self.blocks[&start].size;

        // Coalesce with the next block.
        let next = start + size;
        if let Some(&Block {
            size: nsize,
            free: true,
        }) = self.blocks.get(&next)
        {
            self.blocks.remove(&next);
            size += nsize;
            self.blocks.get_mut(&start).expect("block exists").size = size;
            self.counts.coalesces += 1;
            if self.rover == next {
                self.rover = start;
            }
        }
        // Coalesce with the previous block.
        if let Some((
            &paddr,
            &Block {
                size: psize,
                free: true,
            },
        )) = self.blocks.range(..start).next_back()
        {
            if paddr + psize == start {
                self.blocks.remove(&start);
                self.blocks.get_mut(&paddr).expect("block exists").size = psize + size;
                self.counts.coalesces += 1;
                if self.rover == start {
                    self.rover = paddr;
                }
                start = paddr;
            }
        }
        let _ = start;
    }

    /// Current heap extent in bytes.
    pub fn heap_bytes(&self) -> u64 {
        self.brk - self.base
    }

    /// High-water heap extent in bytes.
    pub fn max_heap_bytes(&self) -> u64 {
        self.max_brk - self.base
    }

    /// Operation counters.
    pub fn counts(&self) -> &OpCounts {
        &self.counts
    }

    /// Number of currently allocated blocks.
    pub fn live_blocks(&self) -> usize {
        self.blocks.values().filter(|b| !b.free).count()
    }

    fn block_size(size: u32) -> u64 {
        let need = u64::from(size) + HEADER;
        let rounded = need.div_ceil(ALIGN) * ALIGN;
        rounded.max(MIN_SPLIT)
    }

    /// First-fit search from the roving pointer, wrapping once — the
    /// paper's linear free-list walk.
    fn search(&mut self, need: u64) -> Option<u64> {
        let rover = self.rover;
        let mut found = None;
        for (&addr, block) in self.blocks.range(rover..) {
            if block.free {
                self.counts.search_steps += 1;
                if block.size >= need {
                    found = Some(addr);
                    break;
                }
            }
        }
        if found.is_none() {
            for (&addr, block) in self.blocks.range(..rover) {
                if block.free {
                    self.counts.search_steps += 1;
                    if block.size >= need {
                        found = Some(addr);
                        break;
                    }
                }
            }
        }
        found
    }

    /// Allocates `need` bytes from the free block at `addr`, splitting
    /// if the remainder is usable.
    fn place(&mut self, addr: u64, need: u64) -> Addr {
        let block = self.blocks[&addr];
        debug_assert!(block.free && block.size >= need);
        if block.size - need >= MIN_SPLIT {
            self.blocks.insert(
                addr + need,
                Block {
                    size: block.size - need,
                    free: true,
                },
            );
            self.blocks.insert(
                addr,
                Block {
                    size: need,
                    free: false,
                },
            );
            self.counts.splits += 1;
        } else {
            self.blocks.get_mut(&addr).expect("block exists").free = false;
        }
        // Resume the next search after this block.
        self.rover = addr + need;
        if self.blocks.range(self.rover..).next().is_none() {
            self.rover = self.base;
        }
        Addr(addr + HEADER)
    }

    /// Extends the heap until its topmost free block holds `need`
    /// bytes, returning that block's address.
    fn grow_for(&mut self, need: u64) -> u64 {
        let top = self.blocks.iter().next_back().map(|(&a, b)| (a, *b));
        let (start, existing) = match top {
            Some((addr, block)) if block.free && addr + block.size == self.brk => {
                (addr, block.size)
            }
            _ => (self.brk, 0),
        };
        let missing = need - existing;
        let grow = missing.div_ceil(PAGE) * PAGE;
        self.counts.page_grows += grow / PAGE;
        self.brk += grow;
        self.max_brk = self.max_brk.max(self.brk);
        self.blocks.insert(
            start,
            Block {
                size: existing + grow,
                free: true,
            },
        );
        start
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_reference_basic_roundtrip() {
        let mut h = LinearFirstFit::new();
        let a = h.alloc(100);
        let b = h.alloc(50);
        h.free(a);
        h.free(b);
        assert_eq!(h.live_blocks(), 0);
        assert_eq!(h.heap_bytes(), PAGE);
    }

    #[test]
    fn linear_reference_counts_invalid_frees() {
        let mut h = LinearFirstFit::new();
        let a = h.alloc(8);
        h.free(a);
        h.free(a);
        assert_eq!(h.counts().frees, 1);
        assert_eq!(h.counts().frees_invalid, 1);
    }
}
