//! The Table 9 instruction-count cost model.
//!
//! The paper measured BSD and first-fit with the QP profiling tool and
//! *modeled* the arena variants by multiplying operation counts by
//! per-operation instruction estimates on a RISC (SPARC) target. We do
//! the same: the estimates below use the paper's published constants
//! where given (18 instructions to attempt a prediction, 10 of which
//! walk the length-4 chain; 3 instructions per call for call-chain
//! encryption) and defensible RISC estimates for the allocator paths.

use crate::replay::ReplayReport;

/// BSD fast path: bucket index + list pop + header write.
const BSD_POP: f64 = 50.0;
/// Extra cost of carving a page into chunks (amortized per carve).
const BSD_CARVE: f64 = 120.0;
/// BSD free: header read + list push.
const BSD_FREE: f64 = 17.0;

/// First-fit fixed allocation overhead (entry, size rounding, tag
/// writes).
const FF_ALLOC_BASE: f64 = 35.0;
/// Cost per free block examined during the search.
const FF_SEARCH_STEP: f64 = 4.0;
/// Cost of splitting a block.
const FF_SPLIT: f64 = 10.0;
/// Cost of an sbrk page extension.
const FF_GROW: f64 = 30.0;
/// First-fit free fixed overhead (tag reads/writes, list relink).
const FF_FREE_BASE: f64 = 45.0;
/// Cost per coalesce performed.
const FF_COALESCE: f64 = 12.0;

/// Arena bump allocation: space check, pointer and count increments.
const ARENA_BUMP: f64 = 11.0;
/// Resetting an exhausted arena.
const ARENA_RESET: f64 = 20.0;
/// Examining one arena while scanning for an empty one.
const ARENA_SCAN_STEP: f64 = 3.0;
/// Arena free: address-range classification + count decrement.
const ARENA_FREE: f64 = 8.0;
/// Address-range check paid by frees routed to the general heap.
const ADDR_CHECK: f64 = 3.0;

/// Paper: "the determination of whether an allocation is short-lived
/// takes approximately 18 instructions, including the 10 to determine
/// the length-4 call-chain".
const PREDICT_LEN4: f64 = 18.0;
/// Hash-table lookup component of prediction (18 − 10).
const PREDICT_LOOKUP: f64 = 8.0;
/// Paper: call-chain encryption costs ~3 instructions per function
/// call, charged per allocation as `3 × calls / allocs`.
const CCE_PER_CALL: f64 = 3.0;

/// Which site-identification strategy the arena allocator pays for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PredictorKind {
    /// Walk the last four frame pointers at each allocation.
    Len4,
    /// Maintain an XOR key at every function call (Carter's scheme).
    Cce,
}

/// Modeled per-operation instruction costs for one allocator run —
/// one cell group of Table 9.
#[derive(Debug, Clone, PartialEq)]
pub struct CostReport {
    /// Allocator (and predictor) label.
    pub allocator: String,
    /// Average instructions per allocation.
    pub alloc_instr: f64,
    /// Average instructions per free.
    pub free_instr: f64,
}

impl CostReport {
    /// Instructions per alloc+free pair (the paper's "a+f" column).
    pub fn total(&self) -> f64 {
        self.alloc_instr + self.free_instr
    }
}

fn per(num: f64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num / den as f64
    }
}

/// Costs of a [`replay_bsd`](crate::replay_bsd) run.
pub fn bsd_costs(r: &ReplayReport) -> CostReport {
    CostReport {
        allocator: "bsd".to_owned(),
        alloc_instr: BSD_POP + per(BSD_CARVE * r.counts.page_carves as f64, r.counts.allocs),
        free_instr: BSD_FREE,
    }
}

/// Costs of a [`replay_firstfit`](crate::replay_firstfit) run.
pub fn firstfit_costs(r: &ReplayReport) -> CostReport {
    let c = &r.counts;
    let variable = FF_SEARCH_STEP * c.search_steps as f64
        + FF_SPLIT * c.splits as f64
        + FF_GROW * c.page_grows as f64;
    CostReport {
        allocator: "first-fit".to_owned(),
        alloc_instr: FF_ALLOC_BASE + per(variable, c.allocs),
        free_instr: FF_FREE_BASE + per(FF_COALESCE * c.coalesces as f64, c.frees),
    }
}

/// Costs of a [`replay_arena`](crate::replay_arena) run under the given
/// predictor strategy.
///
/// Every allocation pays the prediction attempt; arena allocations then
/// take the bump path while the rest take the embedded first-fit path.
/// Frees route by an address check into either a count decrement or a
/// first-fit free.
pub fn arena_costs(r: &ReplayReport, kind: PredictorKind) -> CostReport {
    let c = &r.counts;
    // The merged counters mix arena and general-heap operations; the
    // search/split/grow/coalesce counters only ever come from the
    // embedded first-fit heap.
    let general_allocs = c.allocs - c.arena_allocs;
    let general_frees = c.frees - c.arena_frees;

    let predict_per_alloc = match kind {
        PredictorKind::Len4 => PREDICT_LEN4,
        PredictorKind::Cce => {
            PREDICT_LOOKUP + per(CCE_PER_CALL * r.function_calls as f64, c.allocs)
        }
    };

    let alloc_total = predict_per_alloc * c.allocs as f64
        + ARENA_BUMP * c.arena_allocs as f64
        + ARENA_RESET * c.arena_resets as f64
        + ARENA_SCAN_STEP * c.arena_scan_steps as f64
        + FF_ALLOC_BASE * general_allocs as f64
        + FF_SEARCH_STEP * c.search_steps as f64
        + FF_SPLIT * c.splits as f64
        + FF_GROW * c.page_grows as f64;

    let free_total = ARENA_FREE * c.arena_frees as f64
        + (ADDR_CHECK + FF_FREE_BASE) * general_frees as f64
        + FF_COALESCE * c.coalesces as f64;

    CostReport {
        allocator: match kind {
            PredictorKind::Len4 => "arena (len-4)".to_owned(),
            PredictorKind::Cce => "arena (cce)".to_owned(),
        },
        alloc_instr: per(alloc_total, c.allocs),
        free_instr: per(free_total, c.frees),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counts::OpCounts;

    fn report(counts: OpCounts, arena_allocs: u64, function_calls: u64) -> ReplayReport {
        ReplayReport {
            program: "t".into(),
            allocator: "arena".into(),
            total_allocs: counts.allocs,
            total_bytes: 0,
            arena_allocs,
            arena_bytes: 0,
            max_heap_bytes: 0,
            counts,
            function_calls,
        }
    }

    #[test]
    fn bsd_fast_path_near_constant() {
        let c = OpCounts {
            allocs: 1000,
            frees: 1000,
            bucket_pops: 990,
            page_carves: 10,
            ..OpCounts::default()
        };
        let cost = bsd_costs(&report(c, 0, 0));
        assert!((cost.alloc_instr - 51.2).abs() < 0.01);
        assert_eq!(cost.free_instr, 17.0);
        assert!((cost.total() - 68.2).abs() < 0.01);
    }

    #[test]
    fn firstfit_cost_rises_with_search_length() {
        let short = OpCounts {
            allocs: 100,
            frees: 100,
            search_steps: 100, // 1 step per alloc
            ..OpCounts::default()
        };
        let long = OpCounts {
            allocs: 100,
            frees: 100,
            search_steps: 3000, // 30 steps per alloc
            ..OpCounts::default()
        };
        let cheap = firstfit_costs(&report(short, 0, 0));
        let dear = firstfit_costs(&report(long, 0, 0));
        assert!(dear.alloc_instr > cheap.alloc_instr + 100.0);
    }

    #[test]
    fn successful_prediction_beats_firstfit() {
        // 98% arena hits, like GAWK in the paper.
        let c = OpCounts {
            allocs: 1000,
            frees: 1000,
            arena_allocs: 980,
            arena_frees: 980,
            arena_resets: 20,
            arena_scan_steps: 40,
            search_steps: 60,
            ..OpCounts::default()
        };
        let arena = arena_costs(&report(c, 980, 5000), PredictorKind::Len4);
        // ~18 + 11 = within a few instructions of the paper's 29.
        assert!(
            arena.alloc_instr > 25.0 && arena.alloc_instr < 35.0,
            "alloc {}",
            arena.alloc_instr
        );
        assert!(arena.free_instr < 15.0, "free {}", arena.free_instr);
    }

    #[test]
    fn cce_cost_scales_with_call_to_alloc_ratio() {
        let c = OpCounts {
            allocs: 1000,
            frees: 1000,
            arena_allocs: 1000,
            arena_frees: 1000,
            ..OpCounts::default()
        };
        let few_calls = arena_costs(&report(c, 1000, 1000), PredictorKind::Cce);
        let many_calls = arena_costs(&report(c, 1000, 30_000), PredictorKind::Cce);
        assert!(many_calls.alloc_instr > few_calls.alloc_instr + 50.0);
    }

    #[test]
    fn zero_division_guarded() {
        let cost = arena_costs(&report(OpCounts::default(), 0, 0), PredictorKind::Len4);
        assert_eq!(cost.alloc_instr, 0.0);
        assert_eq!(cost.free_instr, 0.0);
    }
}
