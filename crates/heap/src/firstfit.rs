//! Knuth's first-fit allocator with boundary tags and a roving pointer.
//!
//! Since PR 5 the allocation path is answered by a size-segregated
//! free-block index ([`FreeIndex`]) in O(log n) instead of the paper's
//! linear scan, while every observable — placements, heap growth and
//! the [`OpCounts`] the Table 9 cost model consumes — stays
//! byte-identical to the linear implementation (retained as
//! [`reference::LinearFirstFit`](crate::reference::LinearFirstFit) and
//! proven equivalent by `tests/differential.rs`).

use crate::counts::OpCounts;
use crate::index::{FreeIndex, IndexStats};
use crate::Addr;
use std::collections::BTreeMap;

/// Per-object header bytes (size + status word, boundary tag style).
pub const HEADER: u64 = 8;
/// Allocation alignment.
pub(crate) const ALIGN: u64 = 8;
/// Smallest splittable remainder (header plus one aligned word).
pub(crate) const MIN_SPLIT: u64 = 16;
/// Heap growth quantum — an early-90s `sbrk` page multiple.
pub const PAGE: u64 = 8192;

#[derive(Debug, Clone, Copy)]
pub(crate) struct Block {
    pub(crate) size: u64,
    pub(crate) free: bool,
}

/// A simulated first-fit heap (Knuth, TAOCP vol. 1 §2.5), the paper's
/// baseline allocator and the general heap backing the arena
/// allocator.
///
/// Enhancements per Knuth: boundary tags give O(1) coalescing at free
/// time, and a *roving pointer* resumes each search where the previous
/// one ended so small blocks don't accumulate at the front of the free
/// list. The heap grows in `PAGE`-byte (8 KB) increments.
///
/// The search itself runs on a log2 size-class index with an
/// address-order-statistic set (`src/index.rs`): placements and
/// all [`OpCounts`] — including `search_steps`, the number of free
/// blocks the paper's *linear* scan would have examined — are
/// identical to the linear implementation, only the wall-clock cost
/// per allocation drops from O(free blocks) to O(log n).
///
/// Freeing an address that is not a live allocation of this heap
/// (never allocated, already freed, or pointing into the middle of a
/// block) is a **documented no-op** counted in
/// [`OpCounts::frees_invalid`], so a corrupted trace cannot poison the
/// index or the boundary tags.
///
/// # Examples
///
/// ```
/// use lifepred_heap::FirstFit;
///
/// let mut heap = FirstFit::new();
/// let a = heap.alloc(100);
/// let b = heap.alloc(200);
/// heap.free(a);
/// heap.free(b);
/// assert_eq!(heap.live_blocks(), 0);
/// assert!(heap.max_heap_bytes() >= 300);
/// ```
#[derive(Debug, Clone)]
pub struct FirstFit {
    /// Every block (allocated and free), keyed by start address; the
    /// blocks exactly tile `[base, brk)`.
    blocks: BTreeMap<u64, Block>,
    /// Size-segregated index over the free blocks only.
    index: FreeIndex,
    base: u64,
    brk: u64,
    max_brk: u64,
    rover: u64,
    counts: OpCounts,
}

impl Default for FirstFit {
    fn default() -> Self {
        FirstFit::new()
    }
}

impl FirstFit {
    /// Creates an empty heap based at address 0.
    pub fn new() -> Self {
        FirstFit::with_base(0)
    }

    /// Creates an empty heap based at `base` (used when another
    /// allocator owns a disjoint part of the address space).
    pub fn with_base(base: u64) -> Self {
        FirstFit {
            blocks: BTreeMap::new(),
            index: FreeIndex::new(),
            base,
            brk: base,
            max_brk: base,
            rover: base,
            counts: OpCounts::default(),
        }
    }

    /// Allocates `size` bytes, returning the user address.
    pub fn alloc(&mut self, size: u32) -> Addr {
        self.counts.allocs += 1;
        let need = Self::block_size(size);

        if let Some(addr) = self.search(need) {
            return self.place(addr, need);
        }
        // No fit: grow the heap so the topmost free region fits `need`.
        let addr = self.grow_for(need);
        self.place(addr, need)
    }

    /// Frees the block at `addr` (a value previously returned by
    /// [`FirstFit::alloc`]), coalescing with free neighbours.
    ///
    /// An `addr` that is not a live allocation of this heap — never
    /// allocated, already freed, or not a block boundary — is ignored
    /// and counted in [`OpCounts::frees_invalid`], so replaying a
    /// corrupted trace cannot corrupt the heap structures.
    pub fn free(&mut self, addr: Addr) {
        let Some(start) = addr.0.checked_sub(HEADER) else {
            self.counts.frees_invalid += 1;
            return;
        };
        match self.blocks.get_mut(&start) {
            Some(block) if !block.free => block.free = true,
            _ => {
                self.counts.frees_invalid += 1;
                return;
            }
        }
        self.counts.frees += 1;
        let mut start = start;
        let mut size = self.blocks[&start].size;
        self.index.insert(start, size);

        // Coalesce with the next block.
        let next = start + size;
        if let Some(&Block {
            size: nsize,
            free: true,
        }) = self.blocks.get(&next)
        {
            self.blocks.remove(&next);
            self.index.remove(next, nsize);
            self.index.resize(start, size, size + nsize);
            size += nsize;
            self.blocks.get_mut(&start).expect("block exists").size = size;
            self.counts.coalesces += 1;
            if self.rover == next {
                self.rover = start;
            }
        }
        // Coalesce with the previous block.
        if let Some((
            &paddr,
            &Block {
                size: psize,
                free: true,
            },
        )) = self.blocks.range(..start).next_back()
        {
            if paddr + psize == start {
                self.blocks.remove(&start);
                self.index.remove(start, size);
                self.index.resize(paddr, psize, psize + size);
                self.blocks.get_mut(&paddr).expect("block exists").size = psize + size;
                self.counts.coalesces += 1;
                if self.rover == start {
                    self.rover = paddr;
                }
                start = paddr;
            }
        }
        let _ = start;
    }

    /// Current heap extent in bytes.
    pub fn heap_bytes(&self) -> u64 {
        self.brk - self.base
    }

    /// High-water heap extent in bytes (Table 8's measure).
    pub fn max_heap_bytes(&self) -> u64 {
        self.max_brk - self.base
    }

    /// Operation counters.
    pub fn counts(&self) -> &OpCounts {
        &self.counts
    }

    /// Work counters of the free-block index (no linear-scan
    /// counterpart; exported as `lifepred_sim_*` metrics).
    pub fn index_stats(&self) -> IndexStats {
        self.index.stats()
    }

    /// Number of currently allocated blocks.
    pub fn live_blocks(&self) -> usize {
        self.blocks.values().filter(|b| !b.free).count()
    }

    /// Bytes in allocated blocks, headers included.
    pub fn live_bytes(&self) -> u64 {
        self.blocks
            .values()
            .filter(|b| !b.free)
            .map(|b| b.size)
            .sum()
    }

    pub(crate) fn block_size(size: u32) -> u64 {
        let need = u64::from(size) + HEADER;
        let rounded = need.div_ceil(ALIGN) * ALIGN;
        rounded.max(MIN_SPLIT)
    }

    /// First-fit search from the roving pointer, wrapping once — the
    /// indexed answer to the paper's linear scan.
    ///
    /// `search_steps` is charged with the number of free blocks the
    /// linear scan *would have examined*: every free block from the
    /// rover up to and including the found block (wrapping through the
    /// heap top), or every free block when nothing fits. Both figures
    /// fall out of order statistics over the free-block addresses, so
    /// the Table 9 instruction model sees exactly the seed's numbers.
    fn search(&mut self, need: u64) -> Option<u64> {
        let rover = self.rover;
        let (found, wrapped) = match self.index.find_at_or_after(rover, need) {
            Some(hit) => (Some(hit), false),
            // Nothing at or above the rover fits; wrap to the base.
            // (A fitting block above the rover cannot exist, so the
            // unbounded second probe finds only below-rover blocks.)
            None => (self.index.find_at_or_after(self.base, need), true),
        };
        match found {
            Some((addr, _size)) => {
                let examined = if wrapped {
                    // All free blocks at/above the rover failed, then
                    // the linear scan re-starts at the base.
                    (self.index.len() - self.index.rank(rover)) + self.index.rank(addr) + 1
                } else {
                    // Free blocks in [rover, addr].
                    self.index.rank(addr) + 1 - self.index.rank(rover)
                };
                self.counts.search_steps += examined as u64;
                Some(addr)
            }
            None => {
                // The linear scan examines every free block once
                // before giving up and growing the heap.
                self.counts.search_steps += self.index.len() as u64;
                None
            }
        }
    }

    /// Allocates `need` bytes from the free block at `addr`, splitting
    /// if the remainder is usable.
    fn place(&mut self, addr: u64, need: u64) -> Addr {
        let block = self.blocks[&addr];
        debug_assert!(block.free && block.size >= need);
        self.index.remove(addr, block.size);
        if block.size - need >= MIN_SPLIT {
            self.blocks.insert(
                addr + need,
                Block {
                    size: block.size - need,
                    free: true,
                },
            );
            self.index.insert(addr + need, block.size - need);
            self.blocks.insert(
                addr,
                Block {
                    size: need,
                    free: false,
                },
            );
            self.counts.splits += 1;
        } else {
            self.blocks.get_mut(&addr).expect("block exists").free = false;
        }
        // Resume the next search after this block.
        self.rover = addr + need;
        if self.blocks.range(self.rover..).next().is_none() {
            self.rover = self.base;
        }
        Addr(addr + HEADER)
    }

    /// Extends the heap until its topmost free block holds `need`
    /// bytes, returning that block's address.
    fn grow_for(&mut self, need: u64) -> u64 {
        // Is the topmost block free? Then extend it, else append.
        let top = self.blocks.iter().next_back().map(|(&a, b)| (a, *b));
        let (start, existing) = match top {
            Some((addr, block)) if block.free && addr + block.size == self.brk => {
                (addr, block.size)
            }
            _ => (self.brk, 0),
        };
        let missing = need - existing;
        let grow = missing.div_ceil(PAGE) * PAGE;
        self.counts.page_grows += grow / PAGE;
        self.brk += grow;
        self.max_brk = self.max_brk.max(self.brk);
        self.blocks.insert(
            start,
            Block {
                size: existing + grow,
                free: true,
            },
        );
        if existing > 0 {
            self.index.resize(start, existing, existing + grow);
        } else {
            self.index.insert(start, grow);
        }
        start
    }

    /// Verifies the structural invariants of the heap; used by tests.
    ///
    /// # Panics
    ///
    /// Panics if blocks do not exactly tile `[base, brk)`, two free
    /// blocks are adjacent, or the free-block index disagrees with the
    /// boundary-tag map.
    pub fn check_invariants(&self) {
        let mut expected = self.base;
        let mut prev_free = false;
        for (&addr, block) in &self.blocks {
            assert_eq!(addr, expected, "gap or overlap at 0x{addr:x}");
            assert!(block.size > 0, "empty block at 0x{addr:x}");
            assert!(
                !(prev_free && block.free),
                "uncoalesced free blocks at 0x{addr:x}"
            );
            prev_free = block.free;
            expected = addr + block.size;
        }
        assert_eq!(expected, self.brk, "blocks do not reach brk");
        assert!(self.max_brk >= self.brk);
        self.index.check_consistency(
            self.blocks
                .iter()
                .filter(|(_, b)| b.free)
                .map(|(&a, b)| (a, b.size)),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_roundtrip() {
        let mut h = FirstFit::new();
        let a = h.alloc(100);
        let b = h.alloc(50);
        assert_ne!(a, b);
        h.check_invariants();
        h.free(a);
        h.free(b);
        h.check_invariants();
        assert_eq!(h.live_blocks(), 0);
        // Everything coalesced back into one block.
        assert_eq!(h.blocks.len(), 1);
    }

    #[test]
    fn reuses_freed_space() {
        let mut h = FirstFit::new();
        let a = h.alloc(1000);
        h.free(a);
        let before = h.max_heap_bytes();
        for _ in 0..100 {
            let x = h.alloc(1000);
            h.free(x);
        }
        assert_eq!(h.max_heap_bytes(), before, "heap should not grow");
    }

    #[test]
    fn grows_in_pages() {
        let mut h = FirstFit::new();
        let _ = h.alloc(1);
        assert_eq!(h.heap_bytes(), PAGE);
        let _ = h.alloc(3 * PAGE as u32);
        assert_eq!(h.heap_bytes() % PAGE, 0);
    }

    #[test]
    fn splits_large_blocks() {
        let mut h = FirstFit::new();
        let a = h.alloc(4000);
        h.free(a);
        let _b = h.alloc(100);
        assert!(h.counts().splits >= 1);
        h.check_invariants();
    }

    #[test]
    fn coalesces_both_neighbours() {
        let mut h = FirstFit::new();
        let a = h.alloc(100);
        let b = h.alloc(100);
        let c = h.alloc(100);
        h.free(a);
        h.free(c);
        h.free(b); // coalesces with both a and c
        h.check_invariants();
        assert!(h.counts().coalesces >= 2);
    }

    #[test]
    fn double_free_is_a_counted_noop() {
        let mut h = FirstFit::new();
        let a = h.alloc(8);
        h.free(a);
        let snapshot = *h.counts();
        h.free(a); // second free: ignored, counted
        assert_eq!(h.counts().frees, snapshot.frees);
        assert_eq!(h.counts().frees_invalid, snapshot.frees_invalid + 1);
        h.check_invariants();
    }

    #[test]
    fn invalid_frees_are_counted_noops() {
        let mut h = FirstFit::new();
        let a = h.alloc(64);
        // Never-allocated address way above the heap.
        h.free(Addr(1 << 30));
        // Mid-block address (not a block boundary).
        h.free(Addr(a.0 + 8));
        // Address below the header offset (would underflow).
        h.free(Addr(HEADER - 1));
        assert_eq!(h.counts().frees_invalid, 3);
        assert_eq!(h.counts().frees, 0);
        h.check_invariants();
        // The heap still works and the live block is intact.
        h.free(a);
        assert_eq!(h.counts().frees, 1);
        assert_eq!(h.live_blocks(), 0);
        h.check_invariants();
    }

    #[test]
    fn addresses_are_aligned() {
        let mut h = FirstFit::new();
        for size in [1u32, 7, 13, 100, 255] {
            let a = h.alloc(size);
            assert_eq!(a.0 % ALIGN, 0, "unaligned address for size {size}");
        }
    }

    #[test]
    fn index_counters_advance() {
        let mut h = FirstFit::new();
        let a = h.alloc(100);
        h.free(a);
        let _ = h.alloc(100); // served from the index
        let stats = h.index_stats();
        assert!(stats.bin_hits >= 1, "{stats:?}");
        assert!(stats.bitmap_scans >= 1, "{stats:?}");
    }

    #[test]
    fn interleaved_stress_preserves_invariants() {
        let mut h = FirstFit::new();
        let mut live = Vec::new();
        let mut x = 12345u64;
        for i in 0..2000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let r = (x >> 33) as usize;
            if live.is_empty() || !r.is_multiple_of(3) {
                live.push(h.alloc((r % 500 + 1) as u32));
            } else {
                let idx = r % live.len();
                h.free(live.swap_remove(idx));
            }
            if i % 256 == 0 {
                h.check_invariants();
            }
        }
        for a in live {
            h.free(a);
        }
        h.check_invariants();
        assert_eq!(h.live_blocks(), 0);
    }
}
