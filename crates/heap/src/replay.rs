//! Trace-driven simulation: replaying traces through the allocators.
//!
//! Three entry points per allocator:
//!
//! * the [`Trace`]-based functions ([`replay_firstfit`] & co.) take a
//!   fully materialized trace,
//! * the `_chunks` variants ([`replay_firstfit_chunks`] & co.) take
//!   any [`ChunkSource`] of structure-of-arrays event batches — e.g.
//!   the slab-buffered chunk decoder of an `.lpt` trace file — and
//!   are the hot path every other entry point funnels into, and
//! * the `_stream` variants take any fallible iterator of
//!   [`ReplayEvent`]s, batching it internally.
//!
//! All paths produce bit-identical [`ReplayReport`]s for the same
//! event sequence; the chunked core merely removes per-event dispatch
//! (enum construction, `Result` wraps, iterator-adaptor calls) from
//! the loop.

use crate::arena::{ArenaAllocator, ArenaConfig};
use crate::bsd::BsdMalloc;
use crate::counts::OpCounts;
use crate::firstfit::FirstFit;
use crate::obs::{ObsCtx, ReplayObs};
use crate::Addr;
use lifepred_adaptive::{EpochConfig, LearnerStats, OnlineLearner};
use lifepred_core::{ShortLivedSet, SiteConfig, SiteExtractor};
use lifepred_obs::{EpochSample, Timer};
use lifepred_trace::{
    ChunkEvent, ChunkSource, EventChunk, Trace, TraceChunks, CHUNK_EVENTS, POOLED_CHUNK_EVENTS,
};
use std::collections::VecDeque;
use std::convert::Infallible;
use std::fmt;

/// Configuration for a replay run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplayConfig {
    /// Arena geometry for [`replay_arena`].
    pub arena: ArenaConfig,
}

/// One allocator demand in a replayable event stream.
///
/// `record` is the object's birth-order index — the index its
/// [`AllocationRecord`](lifepred_trace::AllocationRecord) has in
/// [`Trace::records`] — which keys all per-object replay state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplayEvent {
    /// Object `record` is allocated with `size` bytes.
    Alloc {
        /// Birth-order record index.
        record: usize,
        /// Requested size in bytes.
        size: u32,
    },
    /// Object `record` is freed.
    Free {
        /// Birth-order record index.
        record: usize,
    },
}

/// Identity of the traced run, carried into the [`ReplayReport`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReplayMeta {
    /// Program name from the trace.
    pub program: String,
    /// Function calls in the original execution (amortizes call-chain
    /// encryption cost in Table 9).
    pub function_calls: u64,
}

impl ReplayMeta {
    /// The metadata of a materialized trace.
    pub fn of(trace: &Trace) -> ReplayMeta {
        ReplayMeta {
            program: trace.name().to_owned(),
            function_calls: trace.stats().function_calls,
        }
    }
}

/// Why a streaming replay stopped early.
#[derive(Debug)]
pub enum ReplayStreamError<E> {
    /// The event source itself failed (e.g. a corrupt trace file).
    Source(E),
    /// The events decoded fine but do not form a valid alloc/free
    /// sequence.
    Corrupt(String),
}

impl<E: fmt::Display> fmt::Display for ReplayStreamError<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplayStreamError::Source(e) => write!(f, "event source failed: {e}"),
            ReplayStreamError::Corrupt(detail) => write!(f, "invalid event stream: {detail}"),
        }
    }
}

impl<E: fmt::Debug + fmt::Display> std::error::Error for ReplayStreamError<E> {}

/// Results of replaying one trace through one allocator — the raw
/// material for Tables 7, 8 and 9.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayReport {
    /// Program name from the trace.
    pub program: String,
    /// Which allocator produced this report.
    pub allocator: String,
    /// Allocations replayed.
    pub total_allocs: u64,
    /// Bytes allocated.
    pub total_bytes: u64,
    /// Allocations served from the arena area (zero for the
    /// non-predicting allocators).
    pub arena_allocs: u64,
    /// Bytes served from the arena area.
    pub arena_bytes: u64,
    /// High-water heap size, arena area included where applicable.
    pub max_heap_bytes: u64,
    /// Operation counters for the cost model.
    pub counts: OpCounts,
    /// Function calls in the original execution (amortizes call-chain
    /// encryption cost in Table 9).
    pub function_calls: u64,
}

impl ReplayReport {
    /// Percentage of allocations that landed in arenas (Table 7).
    pub fn arena_alloc_pct(&self) -> f64 {
        pct(self.arena_allocs, self.total_allocs)
    }

    /// Percentage of bytes that landed in arenas (Table 7).
    pub fn arena_byte_pct(&self) -> f64 {
        pct(self.arena_bytes, self.total_bytes)
    }

    /// Percentage of allocations served by the general heap.
    pub fn non_arena_alloc_pct(&self) -> f64 {
        100.0 - self.arena_alloc_pct()
    }

    /// Percentage of bytes served by the general heap.
    pub fn non_arena_byte_pct(&self) -> f64 {
        100.0 - self.arena_byte_pct()
    }
}

fn pct(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        100.0 * num as f64 / den as f64
    }
}

/// Per-object address slots, grown as allocations stream in.
#[derive(Debug, Clone, Copy)]
enum Slot {
    Unborn,
    Live(Addr),
    Dead,
}

#[derive(Debug, Default)]
struct SlotTable {
    slots: Vec<Slot>,
}

impl SlotTable {
    fn born<E>(&mut self, record: usize, addr: Addr) -> Result<(), ReplayStreamError<E>> {
        if record >= self.slots.len() {
            self.slots.resize(record + 1, Slot::Unborn);
        }
        match self.slots[record] {
            Slot::Unborn => {
                self.slots[record] = Slot::Live(addr);
                Ok(())
            }
            _ => Err(ReplayStreamError::Corrupt(format!(
                "object {record} allocated twice"
            ))),
        }
    }

    fn died<E>(&mut self, record: usize) -> Result<Addr, ReplayStreamError<E>> {
        match self.slots.get(record) {
            Some(&Slot::Live(addr)) => {
                self.slots[record] = Slot::Dead;
                Ok(addr)
            }
            _ => Err(ReplayStreamError::Corrupt(format!(
                "free before alloc of object {record}"
            ))),
        }
    }
}

/// Adapts any fallible [`ReplayEvent`] iterator into a [`ChunkSource`]
/// so the iterator-based `_stream` entry points share the batched
/// replay core.
struct IterChunks<I, E> {
    iter: I,
    /// An error met mid-batch; delivered on the *next* refill so the
    /// events decoded before it are still replayed first (matching the
    /// per-event streaming order exactly).
    pending: Option<E>,
}

impl<I, E> IterChunks<I, E> {
    fn new(iter: I) -> IterChunks<I, E> {
        IterChunks {
            iter,
            pending: None,
        }
    }
}

impl<I, E> ChunkSource for IterChunks<I, E>
where
    I: Iterator<Item = Result<ReplayEvent, E>>,
{
    type Error = E;

    fn next_chunk(&mut self, chunk: &mut EventChunk) -> Result<bool, E> {
        chunk.clear();
        if let Some(e) = self.pending.take() {
            return Err(e);
        }
        while chunk.len() < CHUNK_EVENTS {
            match self.iter.next() {
                Some(Ok(ReplayEvent::Alloc { record, size })) => {
                    chunk.push_alloc(record as u64, size);
                }
                Some(Ok(ReplayEvent::Free { record })) => chunk.push_free(record as u64),
                Some(Err(e)) => {
                    if chunk.is_empty() {
                        return Err(e);
                    }
                    self.pending = Some(e);
                    break;
                }
                None => break,
            }
        }
        Ok(!chunk.is_empty())
    }
}

/// Replays an event stream through the first-fit allocator (the
/// paper's baseline for Table 8).
///
/// # Errors
///
/// [`ReplayStreamError::Source`] if the iterator yields an error;
/// [`ReplayStreamError::Corrupt`] on a double alloc/free or a free of
/// a never-allocated object.
pub fn replay_firstfit_stream<E>(
    meta: &ReplayMeta,
    events: impl IntoIterator<Item = Result<ReplayEvent, E>>,
    config: &ReplayConfig,
) -> Result<ReplayReport, ReplayStreamError<E>> {
    firstfit_stream_impl(meta, IterChunks::new(events.into_iter()), config, None)
}

/// Replays a batched event stream through the first-fit allocator —
/// the high-throughput path behind [`replay_firstfit_stream`].
///
/// # Errors
///
/// See [`replay_firstfit_stream`].
pub fn replay_firstfit_chunks<S: ChunkSource>(
    meta: &ReplayMeta,
    source: S,
    config: &ReplayConfig,
) -> Result<ReplayReport, ReplayStreamError<S::Error>> {
    firstfit_stream_impl(meta, source, config, None)
}

/// [`replay_firstfit_chunks`], additionally recording every event into
/// the `lifepred_sim_*` metrics of `obs`.
///
/// # Errors
///
/// See [`replay_firstfit_stream`].
pub fn replay_firstfit_chunks_observed<S: ChunkSource>(
    meta: &ReplayMeta,
    source: S,
    config: &ReplayConfig,
    obs: &ReplayObs,
) -> Result<ReplayReport, ReplayStreamError<S::Error>> {
    firstfit_stream_impl(meta, source, config, Some(ObsCtx::new(obs)))
}

/// [`replay_firstfit_stream`], additionally recording every event into
/// the `lifepred_sim_*` metrics of `obs`.
///
/// # Errors
///
/// See [`replay_firstfit_stream`].
pub fn replay_firstfit_stream_observed<E>(
    meta: &ReplayMeta,
    events: impl IntoIterator<Item = Result<ReplayEvent, E>>,
    config: &ReplayConfig,
    obs: &ReplayObs,
) -> Result<ReplayReport, ReplayStreamError<E>> {
    firstfit_stream_impl(
        meta,
        IterChunks::new(events.into_iter()),
        config,
        Some(ObsCtx::new(obs)),
    )
}

fn firstfit_stream_impl<S: ChunkSource>(
    meta: &ReplayMeta,
    mut source: S,
    _config: &ReplayConfig,
    mut ctx: Option<ObsCtx<'_>>,
) -> Result<ReplayReport, ReplayStreamError<S::Error>> {
    let mut heap = FirstFit::new();
    let mut slots = SlotTable::default();
    let (mut total_allocs, mut total_bytes) = (0u64, 0u64);
    let mut chunk = EventChunk::with_capacity(POOLED_CHUNK_EVENTS);
    let mut refills = 0u64;
    loop {
        let decoded = {
            let _span = lifepred_flight::span(lifepred_flight::catalog::REPLAY_DECODE);
            source.next_chunk(&mut chunk)
        };
        match decoded {
            Ok(true) => refills += 1,
            Ok(false) => break,
            Err(e) => return Err(ReplayStreamError::Source(e)),
        }
        let _place =
            lifepred_flight::span_arg(lifepred_flight::catalog::REPLAY_PLACE, chunk.len() as u64);
        for event in chunk.events() {
            let timer = Timer::start();
            match event {
                ChunkEvent::Alloc { record, size } => {
                    total_allocs += 1;
                    total_bytes += u64::from(size);
                    slots.born(record, heap.alloc(size))?;
                    if let Some(ctx) = ctx.as_mut() {
                        ctx.on_alloc(record, size, false, timer);
                    }
                }
                ChunkEvent::Free { record } => {
                    let addr = slots.died(record)?;
                    heap.free(addr);
                    if let Some(ctx) = ctx.as_mut() {
                        ctx.on_free(record, timer);
                    }
                }
            }
        }
    }
    if let Some(mut ctx) = ctx {
        ctx.set_heap_stats(heap.index_stats(), heap.counts().frees_invalid);
        ctx.set_batch_refills(refills);
        let _span = lifepred_flight::span(lifepred_flight::catalog::REPLAY_OBS_FLUSH);
        ctx.flush();
    }
    Ok(ReplayReport {
        program: meta.program.clone(),
        allocator: "first-fit".to_owned(),
        total_allocs,
        total_bytes,
        arena_allocs: 0,
        arena_bytes: 0,
        max_heap_bytes: heap.max_heap_bytes(),
        counts: *heap.counts(),
        function_calls: meta.function_calls,
    })
}

/// Replays an event stream through the BSD bucket allocator (the
/// Table 9 CPU baseline).
///
/// # Errors
///
/// See [`replay_firstfit_stream`].
pub fn replay_bsd_stream<E>(
    meta: &ReplayMeta,
    events: impl IntoIterator<Item = Result<ReplayEvent, E>>,
    config: &ReplayConfig,
) -> Result<ReplayReport, ReplayStreamError<E>> {
    bsd_stream_impl(meta, IterChunks::new(events.into_iter()), config, None)
}

/// Replays a batched event stream through the BSD bucket allocator —
/// the high-throughput path behind [`replay_bsd_stream`].
///
/// # Errors
///
/// See [`replay_firstfit_stream`].
pub fn replay_bsd_chunks<S: ChunkSource>(
    meta: &ReplayMeta,
    source: S,
    config: &ReplayConfig,
) -> Result<ReplayReport, ReplayStreamError<S::Error>> {
    bsd_stream_impl(meta, source, config, None)
}

/// [`replay_bsd_chunks`], additionally recording every event into the
/// `lifepred_sim_*` metrics of `obs`.
///
/// # Errors
///
/// See [`replay_firstfit_stream`].
pub fn replay_bsd_chunks_observed<S: ChunkSource>(
    meta: &ReplayMeta,
    source: S,
    config: &ReplayConfig,
    obs: &ReplayObs,
) -> Result<ReplayReport, ReplayStreamError<S::Error>> {
    bsd_stream_impl(meta, source, config, Some(ObsCtx::new(obs)))
}

/// [`replay_bsd_stream`], additionally recording every event into the
/// `lifepred_sim_*` metrics of `obs`.
///
/// # Errors
///
/// See [`replay_firstfit_stream`].
pub fn replay_bsd_stream_observed<E>(
    meta: &ReplayMeta,
    events: impl IntoIterator<Item = Result<ReplayEvent, E>>,
    config: &ReplayConfig,
    obs: &ReplayObs,
) -> Result<ReplayReport, ReplayStreamError<E>> {
    bsd_stream_impl(
        meta,
        IterChunks::new(events.into_iter()),
        config,
        Some(ObsCtx::new(obs)),
    )
}

fn bsd_stream_impl<S: ChunkSource>(
    meta: &ReplayMeta,
    mut source: S,
    _config: &ReplayConfig,
    mut ctx: Option<ObsCtx<'_>>,
) -> Result<ReplayReport, ReplayStreamError<S::Error>> {
    let mut heap = BsdMalloc::new();
    let mut slots = SlotTable::default();
    let (mut total_allocs, mut total_bytes) = (0u64, 0u64);
    let mut chunk = EventChunk::with_capacity(POOLED_CHUNK_EVENTS);
    let mut refills = 0u64;
    loop {
        let decoded = {
            let _span = lifepred_flight::span(lifepred_flight::catalog::REPLAY_DECODE);
            source.next_chunk(&mut chunk)
        };
        match decoded {
            Ok(true) => refills += 1,
            Ok(false) => break,
            Err(e) => return Err(ReplayStreamError::Source(e)),
        }
        let _place =
            lifepred_flight::span_arg(lifepred_flight::catalog::REPLAY_PLACE, chunk.len() as u64);
        for event in chunk.events() {
            let timer = Timer::start();
            match event {
                ChunkEvent::Alloc { record, size } => {
                    total_allocs += 1;
                    total_bytes += u64::from(size);
                    slots.born(record, heap.alloc(size))?;
                    if let Some(ctx) = ctx.as_mut() {
                        ctx.on_alloc(record, size, false, timer);
                    }
                }
                ChunkEvent::Free { record } => {
                    let addr = slots.died(record)?;
                    heap.free(addr);
                    if let Some(ctx) = ctx.as_mut() {
                        ctx.on_free(record, timer);
                    }
                }
            }
        }
    }
    if let Some(mut ctx) = ctx {
        // The BSD heap has no free index; only the refill count is new.
        ctx.set_batch_refills(refills);
        let _span = lifepred_flight::span(lifepred_flight::catalog::REPLAY_OBS_FLUSH);
        ctx.flush();
    }
    Ok(ReplayReport {
        program: meta.program.clone(),
        allocator: "bsd".to_owned(),
        total_allocs,
        total_bytes,
        arena_allocs: 0,
        arena_bytes: 0,
        max_heap_bytes: heap.max_heap_bytes(),
        counts: *heap.counts(),
        function_calls: meta.function_calls,
    })
}

/// Replays an event stream through the lifetime-predicting arena
/// allocator — the simulation behind Tables 7 and 8.
///
/// `predicted[record]` says whether the predictor marked that object
/// short-lived (the hash-table lookup the deployed allocator would
/// perform at each allocation).
///
/// # Errors
///
/// See [`replay_firstfit_stream`]; additionally, an allocation whose
/// record index has no entry in `predicted` is reported as corrupt.
pub fn replay_arena_stream<E>(
    meta: &ReplayMeta,
    events: impl IntoIterator<Item = Result<ReplayEvent, E>>,
    predicted: &[bool],
    config: &ReplayConfig,
) -> Result<ReplayReport, ReplayStreamError<E>> {
    arena_stream_impl(
        meta,
        IterChunks::new(events.into_iter()),
        predicted,
        config,
        None,
    )
}

/// Replays a batched event stream through the arena allocator — the
/// high-throughput path behind [`replay_arena_stream`].
///
/// # Errors
///
/// See [`replay_arena_stream`].
pub fn replay_arena_chunks<S: ChunkSource>(
    meta: &ReplayMeta,
    source: S,
    predicted: &[bool],
    config: &ReplayConfig,
) -> Result<ReplayReport, ReplayStreamError<S::Error>> {
    arena_stream_impl(meta, source, predicted, config, None)
}

/// [`replay_arena_chunks`], additionally recording every event into
/// the `lifepred_sim_*` metrics of `obs`.
///
/// # Errors
///
/// See [`replay_arena_stream`].
pub fn replay_arena_chunks_observed<S: ChunkSource>(
    meta: &ReplayMeta,
    source: S,
    predicted: &[bool],
    config: &ReplayConfig,
    obs: &ReplayObs,
) -> Result<ReplayReport, ReplayStreamError<S::Error>> {
    let ctx = ObsCtx::with_records_hint(obs, predicted.len());
    arena_stream_impl(meta, source, predicted, config, Some(ctx))
}

/// [`replay_arena_stream`], additionally recording every event into
/// the `lifepred_sim_*` metrics of `obs`.
///
/// # Errors
///
/// See [`replay_arena_stream`].
pub fn replay_arena_stream_observed<E>(
    meta: &ReplayMeta,
    events: impl IntoIterator<Item = Result<ReplayEvent, E>>,
    predicted: &[bool],
    config: &ReplayConfig,
    obs: &ReplayObs,
) -> Result<ReplayReport, ReplayStreamError<E>> {
    let ctx = ObsCtx::with_records_hint(obs, predicted.len());
    arena_stream_impl(
        meta,
        IterChunks::new(events.into_iter()),
        predicted,
        config,
        Some(ctx),
    )
}

fn arena_stream_impl<S: ChunkSource>(
    meta: &ReplayMeta,
    mut source: S,
    predicted: &[bool],
    config: &ReplayConfig,
    mut ctx: Option<ObsCtx<'_>>,
) -> Result<ReplayReport, ReplayStreamError<S::Error>> {
    let mut heap = ArenaAllocator::new(config.arena);
    let mut slots = SlotTable::default();
    let (mut total_allocs, mut total_bytes) = (0u64, 0u64);
    let (mut arena_allocs, mut arena_bytes) = (0u64, 0u64);
    let mut chunk = EventChunk::with_capacity(POOLED_CHUNK_EVENTS);
    let mut refills = 0u64;
    loop {
        let decoded = {
            let _span = lifepred_flight::span(lifepred_flight::catalog::REPLAY_DECODE);
            source.next_chunk(&mut chunk)
        };
        match decoded {
            Ok(true) => refills += 1,
            Ok(false) => break,
            Err(e) => return Err(ReplayStreamError::Source(e)),
        }
        let _place =
            lifepred_flight::span_arg(lifepred_flight::catalog::REPLAY_PLACE, chunk.len() as u64);
        for event in chunk.events() {
            let timer = Timer::start();
            match event {
                ChunkEvent::Alloc { record, size } => {
                    total_allocs += 1;
                    total_bytes += u64::from(size);
                    let short = *predicted.get(record).ok_or_else(|| {
                        ReplayStreamError::Corrupt(format!(
                            "object {record} has no prediction ({} known)",
                            predicted.len()
                        ))
                    })?;
                    let addr = heap.alloc(size, short);
                    let in_arena = heap.is_arena_addr(addr);
                    if in_arena {
                        arena_allocs += 1;
                        arena_bytes += u64::from(size);
                    }
                    slots.born(record, addr)?;
                    if let Some(ctx) = ctx.as_mut() {
                        ctx.on_alloc(record, size, in_arena, timer);
                    }
                }
                ChunkEvent::Free { record } => {
                    let addr = slots.died(record)?;
                    heap.free(addr);
                    if let Some(ctx) = ctx.as_mut() {
                        ctx.on_free(record, timer);
                    }
                }
            }
        }
    }
    if let Some(mut ctx) = ctx {
        let counts = heap.counts();
        ctx.set_heap_stats(heap.general_heap().index_stats(), counts.frees_invalid);
        ctx.set_batch_refills(refills);
        let _span = lifepred_flight::span(lifepred_flight::catalog::REPLAY_OBS_FLUSH);
        ctx.flush();
    }
    Ok(ReplayReport {
        program: meta.program.clone(),
        allocator: "arena".to_owned(),
        total_allocs,
        total_bytes,
        arena_allocs,
        arena_bytes,
        max_heap_bytes: heap.max_heap_bytes(),
        counts: heap.counts(),
        function_calls: meta.function_calls,
    })
}

/// Results of an **online** arena replay: the allocator-level numbers
/// plus the counters of the learner that made every prediction while
/// the trace was running.
#[derive(Debug, Clone, PartialEq)]
pub struct OnlineReplayReport {
    /// Allocator-level results (allocator name `arena-online`).
    pub replay: ReplayReport,
    /// Counters of the self-training predictor.
    pub learner: LearnerStats,
}

/// Per-object bookkeeping for the online replay.
#[derive(Debug, Clone, Copy)]
struct OnlineObj {
    key: u64,
    size: u32,
    birth: u64,
    predicted: bool,
    reported: bool,
    live: bool,
}

/// Pushes one timeline sample describing the learner and arena state
/// at an epoch boundary of an observed online replay.
fn push_epoch_sample(
    obs: &ReplayObs,
    learner: &OnlineLearner,
    heap: &ArenaAllocator,
    live_arena_bytes: u64,
) {
    let stats = learner.stats();
    let used = heap.arena_used_bytes();
    let total = heap.config().total_bytes();
    obs.timeline.push(EpochSample {
        epoch: stats.epochs,
        clock_bytes: learner.clock(),
        generation: learner.generation(),
        short_sites: stats.short_sites,
        sites: stats.sites,
        live_bytes: live_arena_bytes,
        max_heap_bytes: heap.max_heap_bytes(),
        utilization_pct: if total == 0 {
            0.0
        } else {
            100.0 * used as f64 / total as f64
        },
        // Bump-pointer bytes consumed by objects that are already dead
        // but whose arena has not drained and reset yet.
        fragmentation_pct: if used == 0 {
            0.0
        } else {
            100.0 * used.saturating_sub(live_arena_bytes) as f64 / used as f64
        },
        mispredictions: stats.mispredictions,
        demotions: stats.demotions,
    });
}

/// Replays an event stream through the arena allocator with **no
/// offline training**: an [`OnlineLearner`] decides every prediction
/// as the trace runs and keeps correcting itself from the lifetimes it
/// observes.
///
/// `sites[record]` is the site fingerprint
/// ([`SiteKey::fingerprint`](lifepred_core::SiteKey::fingerprint)) of
/// that object's allocation site — the online analogue of the
/// `predicted` bitmap of [`replay_arena_stream`].
///
/// A predicted-short object still live after `epoch.threshold` bytes
/// of allocation pins its arena; the replay reports it to the learner
/// at that moment (an aging queue, mirroring the runtime allocator's
/// epoch scan), demoting its site long before the free arrives.
///
/// # Errors
///
/// See [`replay_firstfit_stream`]; additionally, an allocation whose
/// record index has no entry in `sites` is reported as corrupt.
pub fn replay_arena_online_stream<E>(
    meta: &ReplayMeta,
    events: impl IntoIterator<Item = Result<ReplayEvent, E>>,
    sites: &[u64],
    epoch: &EpochConfig,
    config: &ReplayConfig,
) -> Result<OnlineReplayReport, ReplayStreamError<E>> {
    arena_online_stream_impl(
        meta,
        IterChunks::new(events.into_iter()),
        sites,
        epoch,
        config,
        None,
    )
}

/// Replays a batched event stream through the arena allocator with the
/// online learner deciding every prediction — the high-throughput path
/// behind [`replay_arena_online_stream`].
///
/// # Errors
///
/// See [`replay_arena_online_stream`].
pub fn replay_arena_online_chunks<S: ChunkSource>(
    meta: &ReplayMeta,
    source: S,
    sites: &[u64],
    epoch: &EpochConfig,
    config: &ReplayConfig,
) -> Result<OnlineReplayReport, ReplayStreamError<S::Error>> {
    arena_online_stream_impl(meta, source, sites, epoch, config, None)
}

/// [`replay_arena_online_chunks`], additionally recording every event
/// into the `lifepred_sim_*` metrics of `obs`.
///
/// # Errors
///
/// See [`replay_arena_online_stream`].
pub fn replay_arena_online_chunks_observed<S: ChunkSource>(
    meta: &ReplayMeta,
    source: S,
    sites: &[u64],
    epoch: &EpochConfig,
    config: &ReplayConfig,
    obs: &ReplayObs,
) -> Result<OnlineReplayReport, ReplayStreamError<S::Error>> {
    let ctx = ObsCtx::with_records_hint(obs, sites.len());
    arena_online_stream_impl(meta, source, sites, epoch, config, Some(ctx))
}

/// [`replay_arena_online_stream`], additionally recording every event
/// into the `lifepred_sim_*` metrics of `obs` — including one
/// `lifepred_sim_epochs` timeline sample per learner epoch tick.
///
/// # Errors
///
/// See [`replay_arena_online_stream`].
pub fn replay_arena_online_stream_observed<E>(
    meta: &ReplayMeta,
    events: impl IntoIterator<Item = Result<ReplayEvent, E>>,
    sites: &[u64],
    epoch: &EpochConfig,
    config: &ReplayConfig,
    obs: &ReplayObs,
) -> Result<OnlineReplayReport, ReplayStreamError<E>> {
    let ctx = ObsCtx::with_records_hint(obs, sites.len());
    arena_online_stream_impl(
        meta,
        IterChunks::new(events.into_iter()),
        sites,
        epoch,
        config,
        Some(ctx),
    )
}

fn arena_online_stream_impl<S: ChunkSource>(
    meta: &ReplayMeta,
    mut source: S,
    sites: &[u64],
    epoch: &EpochConfig,
    config: &ReplayConfig,
    mut ctx: Option<ObsCtx<'_>>,
) -> Result<OnlineReplayReport, ReplayStreamError<S::Error>> {
    let mut learner = OnlineLearner::new(*epoch);
    let mut heap = ArenaAllocator::new(config.arena);
    let mut slots = SlotTable::default();
    let mut objs: Vec<Option<OnlineObj>> = Vec::new();
    // Predicted objects in birth order; the front is always the oldest,
    // so aging is O(1) amortized.
    let mut aging: VecDeque<usize> = VecDeque::new();
    let threshold = epoch.threshold;
    let (mut total_allocs, mut total_bytes) = (0u64, 0u64);
    let (mut arena_allocs, mut arena_bytes) = (0u64, 0u64);
    // Observed-mode timeline state: the next clock reading at which a
    // sample is due, and the bytes currently live in the arena area.
    let mut next_tick = epoch.epoch_bytes;
    let mut live_arena_bytes = 0u64;
    let mut chunk = EventChunk::with_capacity(POOLED_CHUNK_EVENTS);
    let mut refills = 0u64;
    loop {
        let decoded = {
            let _span = lifepred_flight::span(lifepred_flight::catalog::REPLAY_DECODE);
            source.next_chunk(&mut chunk)
        };
        match decoded {
            Ok(true) => refills += 1,
            Ok(false) => break,
            Err(e) => return Err(ReplayStreamError::Source(e)),
        }
        let _place =
            lifepred_flight::span_arg(lifepred_flight::catalog::REPLAY_PLACE, chunk.len() as u64);
        for event in chunk.events() {
            let timer = Timer::start();
            match event {
                ChunkEvent::Alloc { record, size } => {
                    total_allocs += 1;
                    total_bytes += u64::from(size);
                    let key = *sites.get(record).ok_or_else(|| {
                        ReplayStreamError::Corrupt(format!(
                            "object {record} has no site fingerprint ({} known)",
                            sites.len()
                        ))
                    })?;
                    let birth = learner.clock();
                    let predicted = learner.record_alloc(key, u64::from(size));
                    let addr = heap.alloc(size, predicted);
                    let in_arena = heap.is_arena_addr(addr);
                    if in_arena {
                        arena_allocs += 1;
                        arena_bytes += u64::from(size);
                    }
                    slots.born(record, addr)?;
                    if record >= objs.len() {
                        objs.resize(record + 1, None);
                    }
                    objs[record] = Some(OnlineObj {
                        key,
                        size,
                        birth,
                        predicted,
                        reported: false,
                        live: true,
                    });
                    if predicted {
                        aging.push_back(record);
                    }
                    // Aging scan: a predicted object still live past the
                    // threshold pins its arena — report it once.
                    while let Some(&oldest) = aging.front() {
                        let obj = objs[oldest].as_mut().expect("aging entry was allocated");
                        if learner.clock().saturating_sub(obj.birth) < threshold {
                            break;
                        }
                        aging.pop_front();
                        if obj.live && !obj.reported {
                            obj.reported = true;
                            learner.note_pinned(obj.key, u64::from(obj.size));
                        }
                    }
                    if let Some(ctx) = ctx.as_mut() {
                        if in_arena {
                            live_arena_bytes += u64::from(size);
                        }
                        ctx.on_alloc(record, size, in_arena, timer);
                        if learner.clock() >= next_tick {
                            push_epoch_sample(ctx.obs(), &learner, &heap, live_arena_bytes);
                            lifepred_flight::instant(
                                lifepred_flight::catalog::REPLAY_EPOCH,
                                learner.clock(),
                            );
                            while next_tick <= learner.clock() {
                                next_tick = next_tick.saturating_add(epoch.epoch_bytes);
                            }
                        }
                    }
                }
                ChunkEvent::Free { record } => {
                    let addr = slots.died(record)?;
                    heap.free(addr);
                    let obj = objs[record].as_mut().expect("slot table guards liveness");
                    obj.live = false;
                    // A pinning misprediction was already reported by the
                    // aging scan; don't count its free a second time.
                    let counts_as_misprediction = obj.predicted && !obj.reported;
                    learner.record_free(
                        obj.key,
                        u64::from(obj.size),
                        obj.birth,
                        counts_as_misprediction,
                    );
                    if let Some(ctx) = ctx.as_mut() {
                        if heap.is_arena_addr(addr) {
                            live_arena_bytes = live_arena_bytes.saturating_sub(u64::from(obj.size));
                        }
                        ctx.on_free(record, timer);
                    }
                }
            }
        }
    }
    if let Some(mut ctx) = ctx {
        let counts = heap.counts();
        ctx.set_heap_stats(heap.general_heap().index_stats(), counts.frees_invalid);
        ctx.set_batch_refills(refills);
        let _span = lifepred_flight::span(lifepred_flight::catalog::REPLAY_OBS_FLUSH);
        ctx.flush();
    }
    Ok(OnlineReplayReport {
        replay: ReplayReport {
            program: meta.program.clone(),
            allocator: "arena-online".to_owned(),
            total_allocs,
            total_bytes,
            arena_allocs,
            arena_bytes,
            max_heap_bytes: heap.max_heap_bytes(),
            counts: heap.counts(),
            function_calls: meta.function_calls,
        },
        learner: learner.stats(),
    })
}

/// Unwraps a stream-replay result for the in-memory path, where the
/// source is infallible and a malformed sequence is a caller bug.
fn expect_valid<T>(result: Result<T, ReplayStreamError<Infallible>>) -> T {
    match result {
        Ok(report) => report,
        Err(ReplayStreamError::Source(e)) => match e {},
        Err(ReplayStreamError::Corrupt(detail)) => panic!("{detail}"),
    }
}

/// Replays `trace` through the first-fit allocator (the paper's
/// baseline for Table 8).
pub fn replay_firstfit(trace: &Trace, config: &ReplayConfig) -> ReplayReport {
    expect_valid(replay_firstfit_chunks(
        &ReplayMeta::of(trace),
        TraceChunks::new(trace),
        config,
    ))
}

/// Replays `trace` through the BSD bucket allocator (the Table 9 CPU
/// baseline).
pub fn replay_bsd(trace: &Trace, config: &ReplayConfig) -> ReplayReport {
    expect_valid(replay_bsd_chunks(
        &ReplayMeta::of(trace),
        TraceChunks::new(trace),
        config,
    ))
}

/// Computes the per-record prediction bitmap `replay_arena*` consults:
/// `result[i]` is the database's verdict for `trace.records()[i]`.
pub fn prediction_bitmap(trace: &Trace, db: &ShortLivedSet) -> Vec<bool> {
    let mut extractor = SiteExtractor::new(trace, *db.config());
    trace
        .records()
        .iter()
        .map(|r| db.predicts(&extractor.site_of(r)))
        .collect()
}

/// Replays `trace` through the lifetime-predicting arena allocator,
/// consulting the trained database `db` for every allocation — the
/// simulation behind Tables 7 and 8.
pub fn replay_arena(trace: &Trace, db: &ShortLivedSet, config: &ReplayConfig) -> ReplayReport {
    let predicted = prediction_bitmap(trace, db);
    expect_valid(replay_arena_chunks(
        &ReplayMeta::of(trace),
        TraceChunks::new(trace),
        &predicted,
        config,
    ))
}

/// Computes the per-record site fingerprints `replay_arena_online*`
/// consults: `result[i]` identifies `trace.records()[i]`'s site under
/// `sites` as a stable `u64`.
pub fn site_fingerprints(trace: &Trace, sites: &SiteConfig) -> Vec<u64> {
    let mut extractor = SiteExtractor::new(trace, *sites);
    trace
        .records()
        .iter()
        .map(|r| extractor.site_of(r).fingerprint())
        .collect()
}

/// Replays `trace` through the arena allocator with the online learner
/// deciding (and correcting) every prediction — no offline training
/// run, no frozen database.
pub fn replay_arena_online(
    trace: &Trace,
    sites: &SiteConfig,
    epoch: &EpochConfig,
    config: &ReplayConfig,
) -> OnlineReplayReport {
    let fingerprints = site_fingerprints(trace, sites);
    expect_valid(replay_arena_online_chunks(
        &ReplayMeta::of(trace),
        TraceChunks::new(trace),
        &fingerprints,
        epoch,
        config,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use lifepred_core::{train, Profile, SiteConfig, TrainConfig, DEFAULT_THRESHOLD};
    use lifepred_trace::{EventKind, TraceSession};

    /// Adapts a materialized trace into the stream-event shape, for
    /// exercising the iterator-based `_stream` entry points.
    fn trace_events(trace: &Trace) -> impl Iterator<Item = Result<ReplayEvent, Infallible>> + '_ {
        trace.events().into_iter().map(|e| {
            Ok(match e.kind {
                EventKind::Alloc => ReplayEvent::Alloc {
                    record: e.record,
                    size: trace.records()[e.record].size,
                },
                EventKind::Free => ReplayEvent::Free { record: e.record },
            })
        })
    }

    /// Mostly short-lived allocations from one site plus a set of
    /// long-lived allocations from another.
    fn workload() -> Trace {
        let s = TraceSession::new("replay-test");
        let mut kept = Vec::new();
        {
            let _g = s.enter("long_site");
            for _ in 0..20 {
                kept.push(s.alloc(128));
            }
        }
        {
            let _g = s.enter("short_site");
            for _ in 0..2000 {
                let a = s.alloc(48);
                let b = s.alloc(16);
                s.free(a);
                s.free(b);
            }
        }
        for id in kept {
            s.free(id);
        }
        s.finish()
    }

    fn trained(trace: &Trace) -> ShortLivedSet {
        let p = Profile::build(trace, &SiteConfig::default(), DEFAULT_THRESHOLD);
        train(&p, &TrainConfig::default())
    }

    #[test]
    fn firstfit_replay_counts_everything() {
        let t = workload();
        let r = replay_firstfit(&t, &ReplayConfig::default());
        assert_eq!(r.total_allocs, t.stats().total_objects);
        assert_eq!(r.counts.allocs, r.total_allocs);
        assert_eq!(r.counts.frees, r.total_allocs); // everything freed
        assert_eq!(r.arena_allocs, 0);
        assert!(r.max_heap_bytes > 0);
    }

    #[test]
    fn arena_replay_puts_short_objects_in_arenas() {
        let t = workload();
        let db = trained(&t);
        let r = replay_arena(&t, &db, &ReplayConfig::default());
        // The 4000 short-lived allocations dominate.
        assert!(
            r.arena_alloc_pct() > 95.0,
            "arena alloc pct {}",
            r.arena_alloc_pct()
        );
        assert!(r.arena_byte_pct() > 90.0);
        assert!(r.counts.arena_resets > 0, "arenas must recycle");
    }

    #[test]
    fn empty_database_degenerates_to_firstfit_heap() {
        let t = workload();
        let db = ShortLivedSet::empty(SiteConfig::default(), DEFAULT_THRESHOLD);
        let ra = replay_arena(&t, &db, &ReplayConfig::default());
        let rf = replay_firstfit(&t, &ReplayConfig::default());
        assert_eq!(ra.arena_allocs, 0);
        // Same general-heap demands, plus the 64 KB arena area.
        assert_eq!(
            ra.max_heap_bytes,
            rf.max_heap_bytes + ReplayConfig::default().arena.total_bytes()
        );
    }

    #[test]
    fn arena_heap_can_beat_firstfit_for_large_heaps() {
        // Interleave short-lived objects with long-lived ones so the
        // first-fit heap fragments, then compare high-water marks.
        let s = TraceSession::new("frag");
        let mut kept = Vec::new();
        {
            let _g = s.enter("mix");
            for i in 0..3000 {
                let short = s.alloc(256);
                if i % 10 == 0 {
                    let _g2 = s.enter("keeper");
                    kept.push(s.alloc(64));
                }
                s.free(short);
            }
        }
        for id in kept {
            s.free(id);
        }
        let t = s.finish();
        let db = trained(&t);
        let ra = replay_arena(&t, &db, &ReplayConfig::default());
        let rf = replay_firstfit(&t, &ReplayConfig::default());
        // The short-lived objects all fit in the arena area, so the
        // general heap only holds the long-lived survivors.
        assert!(ra.counts.arena_allocs > 0);
        assert!(
            ra.max_heap_bytes <= rf.max_heap_bytes + ReplayConfig::default().arena.total_bytes()
        );
    }

    #[test]
    fn bsd_replay_reuses_buckets() {
        let t = workload();
        let r = replay_bsd(&t, &ReplayConfig::default());
        assert!(r.counts.bucket_pops > r.counts.page_carves);
    }

    #[test]
    fn percentages_are_consistent() {
        let t = workload();
        let db = trained(&t);
        let r = replay_arena(&t, &db, &ReplayConfig::default());
        assert!((r.arena_alloc_pct() + r.non_arena_alloc_pct() - 100.0).abs() < 1e-9);
        assert!((r.arena_byte_pct() + r.non_arena_byte_pct() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn stream_replay_matches_trace_replay() {
        let t = workload();
        let meta = ReplayMeta::of(&t);
        let cfg = ReplayConfig::default();
        let stream = replay_firstfit_stream(&meta, trace_events(&t), &cfg).expect("valid");
        assert_eq!(stream, replay_firstfit(&t, &cfg));
        let stream = replay_bsd_stream(&meta, trace_events(&t), &cfg).expect("valid");
        assert_eq!(stream, replay_bsd(&t, &cfg));
        let db = trained(&t);
        let predicted = prediction_bitmap(&t, &db);
        let stream = replay_arena_stream(&meta, trace_events(&t), &predicted, &cfg).expect("valid");
        assert_eq!(stream, replay_arena(&t, &db, &cfg));
    }

    fn small_epoch() -> EpochConfig {
        EpochConfig {
            threshold: 4096,
            epoch_bytes: 8192,
            ..EpochConfig::default()
        }
    }

    #[test]
    fn online_replay_learns_short_sites_mid_trace() {
        let t = workload();
        let r = replay_arena_online(
            &t,
            &SiteConfig::default(),
            &small_epoch(),
            &ReplayConfig::default(),
        );
        assert_eq!(r.replay.allocator, "arena-online");
        assert_eq!(r.replay.total_allocs, t.stats().total_objects);
        // The short-lived site is learned after a warmup and routed to
        // arenas from then on.
        assert!(r.learner.promotions >= 1, "{:?}", r.learner);
        assert!(
            r.replay.arena_alloc_pct() > 50.0,
            "arena alloc pct {}",
            r.replay.arena_alloc_pct()
        );
        // Warmup means online coverage trails the offline oracle.
        let offline = replay_arena(&t, &trained(&t), &ReplayConfig::default());
        assert!(r.replay.arena_allocs <= offline.arena_allocs);
    }

    #[test]
    fn online_replay_demotes_drifting_site() {
        // A site that is short-lived for a while, then starts holding
        // objects across the threshold: the learner must demote it.
        let s = TraceSession::new("drift");
        {
            let _g = s.enter("drifter");
            for _ in 0..2000 {
                let a = s.alloc(64);
                s.free(a);
            }
        }
        let mut kept = Vec::new();
        {
            let _g = s.enter("drifter");
            for _ in 0..40 {
                kept.push(s.alloc(64));
                // Unrelated traffic ages the kept objects.
                let _g2 = s.enter("noise");
                for _ in 0..8 {
                    let n = s.alloc(512);
                    s.free(n);
                }
            }
        }
        for id in kept {
            s.free(id);
        }
        let t = s.finish();
        let r = replay_arena_online(
            &t,
            &SiteConfig::default(),
            &small_epoch(),
            &ReplayConfig::default(),
        );
        assert!(r.learner.promotions >= 1, "{:?}", r.learner);
        assert!(r.learner.mispredictions >= 1, "{:?}", r.learner);
        assert!(r.learner.demotions >= 1, "{:?}", r.learner);
    }

    #[test]
    fn online_replay_needs_no_second_pass_state() {
        // Stream and trace paths agree bit-for-bit, like the offline
        // replays.
        let t = workload();
        let sites = site_fingerprints(&t, &SiteConfig::default());
        let meta = ReplayMeta::of(&t);
        let cfg = ReplayConfig::default();
        let epoch = small_epoch();
        let stream = replay_arena_online_stream(&meta, trace_events(&t), &sites, &epoch, &cfg)
            .expect("valid");
        assert_eq!(
            stream,
            replay_arena_online(&t, &SiteConfig::default(), &epoch, &cfg)
        );
    }

    #[test]
    fn observed_replay_matches_unobserved_and_fills_metrics() {
        let t = workload();
        let meta = ReplayMeta::of(&t);
        let cfg = ReplayConfig::default();
        let registry = lifepred_obs::Registry::new();
        let obs = ReplayObs::register(&registry);
        let db = trained(&t);
        let predicted = prediction_bitmap(&t, &db);
        let observed =
            replay_arena_stream_observed(&meta, trace_events(&t), &predicted, &cfg, &obs)
                .expect("valid");
        assert_eq!(
            observed,
            replay_arena(&t, &db, &cfg),
            "obs must not perturb"
        );
        let snap = registry.snapshot();
        assert_eq!(
            snap.counter("lifepred_sim_allocs_total"),
            Some(observed.total_allocs)
        );
        assert_eq!(
            snap.counter("lifepred_sim_arena_allocs_total"),
            Some(observed.arena_allocs)
        );
        assert_eq!(
            snap.counter("lifepred_sim_frees_total"),
            Some(observed.total_allocs),
            "this workload frees everything"
        );
        let sizes = snap.histogram("lifepred_sim_size_bytes").expect("sizes");
        assert_eq!(sizes.count, observed.total_allocs);
        assert_eq!(sizes.sum, observed.total_bytes);
        let lifetimes = snap
            .histogram("lifepred_sim_lifetime_bytes")
            .expect("lifetimes");
        assert_eq!(lifetimes.count, observed.total_allocs);
        // The 4000 short-lived objects die within a few hundred bytes;
        // the 20 keepers live across the whole 2000-iteration churn.
        assert!(
            lifetimes.quantile(0.5) < 4096,
            "{}",
            lifetimes.quantile(0.5)
        );
        assert!(lifetimes.max > 100_000, "{}", lifetimes.max);
        // Offline replays have no epochs.
        let timeline = snap.timeline("lifepred_sim_epochs").expect("timeline");
        assert!(timeline.is_empty());
    }

    #[test]
    fn observed_online_replay_fills_epoch_timeline() {
        let t = workload();
        let sites = site_fingerprints(&t, &SiteConfig::default());
        let meta = ReplayMeta::of(&t);
        let cfg = ReplayConfig::default();
        let epoch = small_epoch();
        let registry = lifepred_obs::Registry::new();
        let obs = ReplayObs::register(&registry);
        let observed = replay_arena_online_stream_observed(
            &meta,
            trace_events(&t),
            &sites,
            &epoch,
            &cfg,
            &obs,
        )
        .expect("valid");
        assert_eq!(
            observed,
            replay_arena_online(&t, &SiteConfig::default(), &epoch, &cfg),
            "obs must not perturb the learner"
        );
        let snap = registry.snapshot();
        let timeline = snap.timeline("lifepred_sim_epochs").expect("timeline");
        assert!(!timeline.is_empty(), "epoch ticks must leave samples");
        let first = timeline.first().expect("sample");
        let last = timeline.last().expect("sample");
        assert!(last.clock_bytes > first.clock_bytes, "clock advances");
        assert!(last.epoch >= first.epoch, "epochs only grow");
        assert_eq!(
            last.max_heap_bytes, observed.replay.max_heap_bytes,
            "final sample sees the final high-water mark"
        );
        assert!(
            timeline.iter().any(|s| s.short_sites > 0),
            "the short site shows up in some sample"
        );
        for s in timeline {
            assert!((0.0..=100.0).contains(&s.utilization_pct), "{s:?}");
            assert!((0.0..=100.0).contains(&s.fragmentation_pct), "{s:?}");
        }
    }

    #[test]
    fn online_replay_rejects_missing_fingerprints() {
        let meta = ReplayMeta::default();
        let events: Vec<Result<ReplayEvent, Infallible>> =
            vec![Ok(ReplayEvent::Alloc { record: 0, size: 8 })];
        assert!(matches!(
            replay_arena_online_stream(
                &meta,
                events,
                &[],
                &EpochConfig::default(),
                &ReplayConfig::default()
            ),
            Err(ReplayStreamError::Corrupt(_))
        ));
    }

    #[test]
    fn stream_replay_rejects_bad_sequences() {
        let meta = ReplayMeta::default();
        let cfg = ReplayConfig::default();
        let double_alloc: Vec<Result<ReplayEvent, Infallible>> = vec![
            Ok(ReplayEvent::Alloc { record: 0, size: 8 }),
            Ok(ReplayEvent::Alloc { record: 0, size: 8 }),
        ];
        assert!(matches!(
            replay_firstfit_stream(&meta, double_alloc, &cfg),
            Err(ReplayStreamError::Corrupt(_))
        ));
        let free_first: Vec<Result<ReplayEvent, Infallible>> =
            vec![Ok(ReplayEvent::Free { record: 3 })];
        assert!(matches!(
            replay_bsd_stream(&meta, free_first, &cfg),
            Err(ReplayStreamError::Corrupt(_))
        ));
        let unpredicted: Vec<Result<ReplayEvent, Infallible>> =
            vec![Ok(ReplayEvent::Alloc { record: 0, size: 8 })];
        assert!(matches!(
            replay_arena_stream(&meta, unpredicted, &[], &cfg),
            Err(ReplayStreamError::Corrupt(_))
        ));
    }

    #[test]
    fn stream_replay_propagates_source_errors() {
        let meta = ReplayMeta::default();
        let events: Vec<Result<ReplayEvent, &str>> = vec![
            Ok(ReplayEvent::Alloc { record: 0, size: 8 }),
            Err("disk on fire"),
        ];
        match replay_firstfit_stream(&meta, events, &ReplayConfig::default()) {
            Err(ReplayStreamError::Source(e)) => assert_eq!(e, "disk on fire"),
            other => panic!("expected source error, got {other:?}"),
        }
    }
}
