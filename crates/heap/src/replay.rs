//! Trace-driven simulation: replaying traces through the allocators.

use crate::arena::{ArenaAllocator, ArenaConfig};
use crate::bsd::BsdMalloc;
use crate::counts::OpCounts;
use crate::firstfit::FirstFit;
use crate::Addr;
use lifepred_core::{ShortLivedSet, SiteExtractor};
use lifepred_trace::{EventKind, Trace};

/// Configuration for a replay run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplayConfig {
    /// Arena geometry for [`replay_arena`].
    pub arena: ArenaConfig,
}

/// Results of replaying one trace through one allocator — the raw
/// material for Tables 7, 8 and 9.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayReport {
    /// Program name from the trace.
    pub program: String,
    /// Which allocator produced this report.
    pub allocator: String,
    /// Allocations replayed.
    pub total_allocs: u64,
    /// Bytes allocated.
    pub total_bytes: u64,
    /// Allocations served from the arena area (zero for the
    /// non-predicting allocators).
    pub arena_allocs: u64,
    /// Bytes served from the arena area.
    pub arena_bytes: u64,
    /// High-water heap size, arena area included where applicable.
    pub max_heap_bytes: u64,
    /// Operation counters for the cost model.
    pub counts: OpCounts,
    /// Function calls in the original execution (amortizes call-chain
    /// encryption cost in Table 9).
    pub function_calls: u64,
}

impl ReplayReport {
    /// Percentage of allocations that landed in arenas (Table 7).
    pub fn arena_alloc_pct(&self) -> f64 {
        pct(self.arena_allocs, self.total_allocs)
    }

    /// Percentage of bytes that landed in arenas (Table 7).
    pub fn arena_byte_pct(&self) -> f64 {
        pct(self.arena_bytes, self.total_bytes)
    }

    /// Percentage of allocations served by the general heap.
    pub fn non_arena_alloc_pct(&self) -> f64 {
        100.0 - self.arena_alloc_pct()
    }

    /// Percentage of bytes served by the general heap.
    pub fn non_arena_byte_pct(&self) -> f64 {
        100.0 - self.arena_byte_pct()
    }
}

fn pct(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        100.0 * num as f64 / den as f64
    }
}

/// Replays `trace` through the first-fit allocator (the paper's
/// baseline for Table 8).
pub fn replay_firstfit(trace: &Trace, _config: &ReplayConfig) -> ReplayReport {
    let mut heap = FirstFit::new();
    let mut addrs: Vec<Option<Addr>> = vec![None; trace.records().len()];
    for event in trace.events() {
        match event.kind {
            EventKind::Alloc => {
                addrs[event.record] = Some(heap.alloc(trace.records()[event.record].size));
            }
            EventKind::Free => {
                let addr = addrs[event.record].take().expect("free before alloc");
                heap.free(addr);
            }
        }
    }
    ReplayReport {
        program: trace.name().to_owned(),
        allocator: "first-fit".to_owned(),
        total_allocs: trace.stats().total_objects,
        total_bytes: trace.stats().total_bytes,
        arena_allocs: 0,
        arena_bytes: 0,
        max_heap_bytes: heap.max_heap_bytes(),
        counts: *heap.counts(),
        function_calls: trace.stats().function_calls,
    }
}

/// Replays `trace` through the BSD bucket allocator (the Table 9 CPU
/// baseline).
pub fn replay_bsd(trace: &Trace, _config: &ReplayConfig) -> ReplayReport {
    let mut heap = BsdMalloc::new();
    let mut addrs: Vec<Option<Addr>> = vec![None; trace.records().len()];
    for event in trace.events() {
        match event.kind {
            EventKind::Alloc => {
                addrs[event.record] = Some(heap.alloc(trace.records()[event.record].size));
            }
            EventKind::Free => {
                let addr = addrs[event.record].take().expect("free before alloc");
                heap.free(addr);
            }
        }
    }
    ReplayReport {
        program: trace.name().to_owned(),
        allocator: "bsd".to_owned(),
        total_allocs: trace.stats().total_objects,
        total_bytes: trace.stats().total_bytes,
        arena_allocs: 0,
        arena_bytes: 0,
        max_heap_bytes: heap.max_heap_bytes(),
        counts: *heap.counts(),
        function_calls: trace.stats().function_calls,
    }
}

/// Replays `trace` through the lifetime-predicting arena allocator,
/// consulting the trained database `db` for every allocation — the
/// simulation behind Tables 7 and 8.
pub fn replay_arena(trace: &Trace, db: &ShortLivedSet, config: &ReplayConfig) -> ReplayReport {
    let mut heap = ArenaAllocator::new(config.arena);
    // Precompute per-record predictions: this is the hash-table lookup
    // the deployed allocator would perform at each allocation.
    let mut extractor = SiteExtractor::new(trace, *db.config());
    let predicted: Vec<bool> = trace
        .records()
        .iter()
        .map(|r| db.predicts(&extractor.site_of(r)))
        .collect();

    let mut addrs: Vec<Option<Addr>> = vec![None; trace.records().len()];
    let (mut arena_allocs, mut arena_bytes) = (0u64, 0u64);
    for event in trace.events() {
        match event.kind {
            EventKind::Alloc => {
                let size = trace.records()[event.record].size;
                let addr = heap.alloc(size, predicted[event.record]);
                if heap.is_arena_addr(addr) {
                    arena_allocs += 1;
                    arena_bytes += u64::from(size);
                }
                addrs[event.record] = Some(addr);
            }
            EventKind::Free => {
                let addr = addrs[event.record].take().expect("free before alloc");
                heap.free(addr);
            }
        }
    }
    ReplayReport {
        program: trace.name().to_owned(),
        allocator: "arena".to_owned(),
        total_allocs: trace.stats().total_objects,
        total_bytes: trace.stats().total_bytes,
        arena_allocs,
        arena_bytes,
        max_heap_bytes: heap.max_heap_bytes(),
        counts: heap.counts(),
        function_calls: trace.stats().function_calls,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lifepred_core::{train, Profile, SiteConfig, TrainConfig, DEFAULT_THRESHOLD};
    use lifepred_trace::TraceSession;

    /// Mostly short-lived allocations from one site plus a set of
    /// long-lived allocations from another.
    fn workload() -> Trace {
        let s = TraceSession::new("replay-test");
        let mut kept = Vec::new();
        {
            let _g = s.enter("long_site");
            for _ in 0..20 {
                kept.push(s.alloc(128));
            }
        }
        {
            let _g = s.enter("short_site");
            for _ in 0..2000 {
                let a = s.alloc(48);
                let b = s.alloc(16);
                s.free(a);
                s.free(b);
            }
        }
        for id in kept {
            s.free(id);
        }
        s.finish()
    }

    fn trained(trace: &Trace) -> ShortLivedSet {
        let p = Profile::build(trace, &SiteConfig::default(), DEFAULT_THRESHOLD);
        train(&p, &TrainConfig::default())
    }

    #[test]
    fn firstfit_replay_counts_everything() {
        let t = workload();
        let r = replay_firstfit(&t, &ReplayConfig::default());
        assert_eq!(r.total_allocs, t.stats().total_objects);
        assert_eq!(r.counts.allocs, r.total_allocs);
        assert_eq!(r.counts.frees, r.total_allocs); // everything freed
        assert_eq!(r.arena_allocs, 0);
        assert!(r.max_heap_bytes > 0);
    }

    #[test]
    fn arena_replay_puts_short_objects_in_arenas() {
        let t = workload();
        let db = trained(&t);
        let r = replay_arena(&t, &db, &ReplayConfig::default());
        // The 4000 short-lived allocations dominate.
        assert!(
            r.arena_alloc_pct() > 95.0,
            "arena alloc pct {}",
            r.arena_alloc_pct()
        );
        assert!(r.arena_byte_pct() > 90.0);
        assert!(r.counts.arena_resets > 0, "arenas must recycle");
    }

    #[test]
    fn empty_database_degenerates_to_firstfit_heap() {
        let t = workload();
        let db = ShortLivedSet::empty(SiteConfig::default(), DEFAULT_THRESHOLD);
        let ra = replay_arena(&t, &db, &ReplayConfig::default());
        let rf = replay_firstfit(&t, &ReplayConfig::default());
        assert_eq!(ra.arena_allocs, 0);
        // Same general-heap demands, plus the 64 KB arena area.
        assert_eq!(
            ra.max_heap_bytes,
            rf.max_heap_bytes + ReplayConfig::default().arena.total_bytes()
        );
    }

    #[test]
    fn arena_heap_can_beat_firstfit_for_large_heaps() {
        // Interleave short-lived objects with long-lived ones so the
        // first-fit heap fragments, then compare high-water marks.
        let s = TraceSession::new("frag");
        let mut kept = Vec::new();
        {
            let _g = s.enter("mix");
            for i in 0..3000 {
                let short = s.alloc(256);
                if i % 10 == 0 {
                    let _g2 = s.enter("keeper");
                    kept.push(s.alloc(64));
                }
                s.free(short);
            }
        }
        for id in kept {
            s.free(id);
        }
        let t = s.finish();
        let db = trained(&t);
        let ra = replay_arena(&t, &db, &ReplayConfig::default());
        let rf = replay_firstfit(&t, &ReplayConfig::default());
        // The short-lived objects all fit in the arena area, so the
        // general heap only holds the long-lived survivors.
        assert!(ra.counts.arena_allocs > 0);
        assert!(
            ra.max_heap_bytes <= rf.max_heap_bytes + ReplayConfig::default().arena.total_bytes()
        );
    }

    #[test]
    fn bsd_replay_reuses_buckets() {
        let t = workload();
        let r = replay_bsd(&t, &ReplayConfig::default());
        assert!(r.counts.bucket_pops > r.counts.page_carves);
    }

    #[test]
    fn percentages_are_consistent() {
        let t = workload();
        let db = trained(&t);
        let r = replay_arena(&t, &db, &ReplayConfig::default());
        assert!((r.arena_alloc_pct() + r.non_arena_alloc_pct() - 100.0).abs() < 1e-9);
        assert!((r.arena_byte_pct() + r.non_arena_byte_pct() - 100.0).abs() < 1e-9);
    }
}
