//! The 4.2BSD power-of-two bucket allocator.

use crate::counts::OpCounts;
use crate::Addr;
use std::collections::HashMap;

/// Per-object header bytes (the classic BSD `union overhead`).
const HEADER: u64 = 4;
/// Smallest bucket (bytes, header included).
const MIN_BUCKET: u64 = 16;
/// Page size used when carving buckets.
const PAGE: u64 = 4096;

/// A simulated 4.2BSD `malloc`: requests round up to a power of two
/// (header included), each size class keeps a free list, pages are
/// carved into chunks on demand, and memory is never coalesced or
/// returned.
///
/// This is the Table 9 CPU baseline: very fast (bucket pop / push) but
/// memory-hungry.
///
/// # Examples
///
/// ```
/// use lifepred_heap::BsdMalloc;
///
/// let mut heap = BsdMalloc::new();
/// let a = heap.alloc(10);
/// heap.free(a);
/// let b = heap.alloc(12); // same bucket: reuses the chunk
/// assert_eq!(a, b);
/// ```
#[derive(Debug, Clone, Default)]
pub struct BsdMalloc {
    /// Free chunks per bucket index (bucket = MIN_BUCKET << index).
    free_lists: Vec<Vec<u64>>,
    /// Live chunk → bucket index (simulates reading the header).
    live: HashMap<u64, usize>,
    brk: u64,
    max_brk: u64,
    counts: OpCounts,
}

impl BsdMalloc {
    /// Creates an empty heap.
    pub fn new() -> Self {
        BsdMalloc::default()
    }

    fn bucket_index(size: u32) -> usize {
        let need = (u64::from(size) + HEADER).max(MIN_BUCKET);
        let bucket = need.next_power_of_two();
        (bucket.trailing_zeros() - MIN_BUCKET.trailing_zeros()) as usize
    }

    fn bucket_bytes(index: usize) -> u64 {
        MIN_BUCKET << index
    }

    /// Allocates `size` bytes.
    pub fn alloc(&mut self, size: u32) -> Addr {
        self.counts.allocs += 1;
        let idx = Self::bucket_index(size);
        if self.free_lists.len() <= idx {
            self.free_lists.resize_with(idx + 1, Vec::new);
        }
        if let Some(addr) = self.free_lists[idx].pop() {
            self.counts.bucket_pops += 1;
            self.live.insert(addr, idx);
            return Addr(addr + HEADER);
        }
        // Carve a fresh page (or a single chunk, if larger than a page).
        self.counts.page_carves += 1;
        let bucket = Self::bucket_bytes(idx);
        let grow = bucket.max(PAGE);
        let start = self.brk;
        self.brk += grow;
        self.max_brk = self.max_brk.max(self.brk);
        let chunks = (grow / bucket).max(1);
        for i in (1..chunks).rev() {
            self.free_lists[idx].push(start + i * bucket);
        }
        self.live.insert(start, idx);
        Addr(start + HEADER)
    }

    /// Frees a chunk returned by [`BsdMalloc::alloc`].
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not a live allocation of this heap.
    pub fn free(&mut self, addr: Addr) {
        self.counts.frees += 1;
        let start = addr.0 - HEADER;
        let idx = self
            .live
            .remove(&start)
            .expect("free of unknown or dead address");
        self.free_lists[idx].push(start);
    }

    /// Current heap extent in bytes.
    pub fn heap_bytes(&self) -> u64 {
        self.brk
    }

    /// High-water heap extent in bytes.
    pub fn max_heap_bytes(&self) -> u64 {
        self.max_brk
    }

    /// Operation counters.
    pub fn counts(&self) -> &OpCounts {
        &self.counts
    }

    /// Number of live allocations.
    pub fn live_blocks(&self) -> usize {
        self.live.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_rounding() {
        assert_eq!(BsdMalloc::bucket_index(1), 0); // 16
        assert_eq!(BsdMalloc::bucket_index(12), 0); // 12+4 = 16
        assert_eq!(BsdMalloc::bucket_index(13), 1); // 17 -> 32
        assert_eq!(BsdMalloc::bucket_index(28), 1); // 32
        assert_eq!(BsdMalloc::bucket_index(100), 3); // 104 -> 128
    }

    #[test]
    fn reuses_freed_chunks_lifo() {
        let mut h = BsdMalloc::new();
        let a = h.alloc(20);
        let b = h.alloc(20);
        h.free(b);
        h.free(a);
        assert_eq!(h.alloc(20), a);
        assert_eq!(h.alloc(20), b);
    }

    #[test]
    fn carving_fills_free_list() {
        let mut h = BsdMalloc::new();
        let _ = h.alloc(12); // 16-byte bucket: one carve yields 256 chunks
        assert_eq!(h.counts().page_carves, 1);
        for _ in 0..255 {
            let _ = h.alloc(12);
        }
        assert_eq!(h.counts().page_carves, 1, "page should cover 256 allocs");
        let _ = h.alloc(12);
        assert_eq!(h.counts().page_carves, 2);
    }

    #[test]
    fn never_shrinks() {
        let mut h = BsdMalloc::new();
        let addrs: Vec<_> = (0..100).map(|_| h.alloc(1000)).collect();
        let peak = h.heap_bytes();
        for a in addrs {
            h.free(a);
        }
        assert_eq!(h.heap_bytes(), peak);
        assert_eq!(h.live_blocks(), 0);
    }

    #[test]
    fn large_objects_get_own_extent() {
        let mut h = BsdMalloc::new();
        let a = h.alloc(10_000); // 10004 -> 16384 bucket
        assert!(h.heap_bytes() >= 16384);
        h.free(a);
        let b = h.alloc(9_000); // same bucket
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "unknown or dead")]
    fn double_free_panics() {
        let mut h = BsdMalloc::new();
        let a = h.alloc(8);
        h.free(a);
        h.free(a);
    }
}
