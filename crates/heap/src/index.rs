//! Size-segregated free-block index for the first-fit heap.
//!
//! The paper's first-fit allocator answers every allocation with a
//! linear roving-pointer scan over the free list — O(free blocks) per
//! request. [`FreeIndex`] answers the same query ("first free block at
//! address ≥ the rover with size ≥ n, wrapping once") in O(log n):
//!
//! * **log2 size-class bins** — free blocks are binned by
//!   ⌊log2(size)⌋ into 64 address-ordered maps, so a request only
//!   inspects bins that *can* hold a fitting block;
//! * **bin-occupancy bitmap** — one `u64` whose bit *b* says bin *b*
//!   is non-empty, so empty bins cost one mask instruction, not a
//!   probe;
//! * **address order statistics** — an [`OrderSet`] (a deterministic
//!   treap keyed by block address) over all free blocks, so the number
//!   of free blocks the *linear* scan would have examined between the
//!   rover and the found block is recoverable from two rank queries.
//!   That keeps `OpCounts::search_steps` — the input to the Table 9
//!   instruction-cost model — byte-identical to the paper's scan (see
//!   `FirstFit::search` and DESIGN.md §11).
//!
//! The index is an *auxiliary* structure: the boundary-tag block map in
//! `firstfit.rs` remains the source of truth, and
//! `FirstFit::check_invariants` cross-checks the two on every test run.

use std::collections::BTreeMap;

/// Number of log2 size classes (block sizes fit in a `u64`).
const BIN_COUNT: usize = 64;

/// Sentinel child index of the treap.
const NIL: u32 = u32::MAX;

/// Counters of the index's own work, exported as `lifepred_sim_*`
/// metrics by observed replays (they have no counterpart in the
/// paper's linear scan and therefore live outside
/// [`OpCounts`](crate::OpCounts)).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IndexStats {
    /// Searches satisfied from the size-class bins (every successful
    /// first-fit placement that did not require growing the heap).
    pub bin_hits: u64,
    /// Candidate size-class bins probed via the occupancy bitmap.
    pub bitmap_scans: u64,
}

impl IndexStats {
    /// Sums two stat sets (mirrors `OpCounts::merged`).
    pub fn merged(&self, other: &IndexStats) -> IndexStats {
        IndexStats {
            bin_hits: self.bin_hits + other.bin_hits,
            bitmap_scans: self.bitmap_scans + other.bitmap_scans,
        }
    }
}

/// The size class of a block: ⌊log2(size)⌋.
#[inline]
fn bin_of(size: u64) -> usize {
    debug_assert!(size > 0, "free blocks are never empty");
    (63 - size.leading_zeros()) as usize
}

/// An order-statistic set of `u64` keys: a treap whose priorities are
/// a hash of the key, so its shape is deterministic for a given key
/// set (replays stay reproducible) while remaining balanced in
/// expectation for non-adversarial inputs.
#[derive(Debug, Clone, Default)]
struct OrderSet {
    nodes: Vec<Node>,
    /// Recycled node slots.
    spare: Vec<u32>,
    root: u32,
}

#[derive(Debug, Clone, Copy)]
struct Node {
    key: u64,
    prio: u64,
    left: u32,
    right: u32,
    /// Subtree size, for rank queries.
    count: u32,
}

/// SplitMix64: the key-to-priority hash. Any fixed bijective mixer
/// works; this one is well distributed and dependency-free.
#[inline]
fn priority_of(key: u64) -> u64 {
    let mut z = key.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl OrderSet {
    fn new() -> OrderSet {
        OrderSet {
            nodes: Vec::new(),
            spare: Vec::new(),
            root: NIL,
        }
    }

    fn len(&self) -> usize {
        self.count(self.root) as usize
    }

    #[inline]
    fn count(&self, t: u32) -> u32 {
        if t == NIL {
            0
        } else {
            self.nodes[t as usize].count
        }
    }

    #[inline]
    fn pull(&mut self, t: u32) {
        let (l, r) = {
            let n = &self.nodes[t as usize];
            (n.left, n.right)
        };
        self.nodes[t as usize].count = 1 + self.count(l) + self.count(r);
    }

    /// Splits `t` into `(keys < key, keys >= key)`.
    fn split(&mut self, t: u32, key: u64) -> (u32, u32) {
        if t == NIL {
            return (NIL, NIL);
        }
        if self.nodes[t as usize].key < key {
            let right = self.nodes[t as usize].right;
            let (l, r) = self.split(right, key);
            self.nodes[t as usize].right = l;
            self.pull(t);
            (t, r)
        } else {
            let left = self.nodes[t as usize].left;
            let (l, r) = self.split(left, key);
            self.nodes[t as usize].left = r;
            self.pull(t);
            (l, t)
        }
    }

    /// Merges `l` and `r`; every key of `l` is below every key of `r`.
    fn merge(&mut self, l: u32, r: u32) -> u32 {
        if l == NIL {
            return r;
        }
        if r == NIL {
            return l;
        }
        if self.nodes[l as usize].prio >= self.nodes[r as usize].prio {
            let lr = self.nodes[l as usize].right;
            let m = self.merge(lr, r);
            self.nodes[l as usize].right = m;
            self.pull(l);
            l
        } else {
            let rl = self.nodes[r as usize].left;
            let m = self.merge(l, rl);
            self.nodes[r as usize].left = m;
            self.pull(r);
            r
        }
    }

    fn alloc_node(&mut self, key: u64) -> u32 {
        let node = Node {
            key,
            prio: priority_of(key),
            left: NIL,
            right: NIL,
            count: 1,
        };
        match self.spare.pop() {
            Some(i) => {
                self.nodes[i as usize] = node;
                i
            }
            None => {
                assert!(self.nodes.len() < NIL as usize, "order set full");
                self.nodes.push(node);
                (self.nodes.len() - 1) as u32
            }
        }
    }

    /// Inserts `key`; the caller guarantees it is absent (block start
    /// addresses are unique by construction).
    fn insert(&mut self, key: u64) {
        let (l, r) = self.split(self.root, key);
        debug_assert!(
            r == NIL || self.min_key(r) != key,
            "duplicate free address 0x{key:x}"
        );
        let n = self.alloc_node(key);
        let lm = self.merge(l, n);
        self.root = self.merge(lm, r);
    }

    /// Removes `key`; the caller guarantees it is present.
    fn remove(&mut self, key: u64) {
        let (l, rest) = self.split(self.root, key);
        // `key + 1` cannot overflow: keys are block addresses far below
        // u64::MAX (the arena base caps the simulated space at 2^40).
        let (mid, r) = self.split(rest, key + 1);
        debug_assert!(mid != NIL && self.nodes[mid as usize].count == 1);
        if mid != NIL {
            self.spare.push(mid);
        }
        self.root = self.merge(l, r);
    }

    /// Number of keys strictly below `key`.
    fn rank(&self, key: u64) -> usize {
        let mut t = self.root;
        let mut below = 0usize;
        while t != NIL {
            let n = &self.nodes[t as usize];
            if key <= n.key {
                t = n.left;
            } else {
                below += self.count(n.left) as usize + 1;
                t = n.right;
            }
        }
        below
    }

    /// Smallest key in subtree `t` (debug-assertion support; the call
    /// site is a `debug_assert!`, which still type-checks in release).
    fn min_key(&self, mut t: u32) -> u64 {
        loop {
            let n = &self.nodes[t as usize];
            if n.left == NIL {
                return n.key;
            }
            t = n.left;
        }
    }
}

/// The size-segregated, address-ordered free-block index.
#[derive(Debug, Clone)]
pub(crate) struct FreeIndex {
    /// Per size class: free blocks as address → size.
    bins: Vec<BTreeMap<u64, u64>>,
    /// Bit *b* set ⇔ `bins[b]` is non-empty.
    occupancy: u64,
    /// Address order statistics over all free blocks.
    order: OrderSet,
    stats: IndexStats,
}

impl FreeIndex {
    pub(crate) fn new() -> FreeIndex {
        FreeIndex {
            bins: vec![BTreeMap::new(); BIN_COUNT],
            occupancy: 0,
            order: OrderSet::new(),
            stats: IndexStats::default(),
        }
    }

    /// Total free blocks tracked.
    pub(crate) fn len(&self) -> usize {
        self.order.len()
    }

    /// Work counters (bin hits, bitmap scans).
    pub(crate) fn stats(&self) -> IndexStats {
        self.stats
    }

    /// Number of free blocks at addresses strictly below `addr`.
    pub(crate) fn rank(&self, addr: u64) -> usize {
        self.order.rank(addr)
    }

    /// Registers the free block `[addr, addr + size)`.
    pub(crate) fn insert(&mut self, addr: u64, size: u64) {
        let b = bin_of(size);
        let prev = self.bins[b].insert(addr, size);
        debug_assert!(prev.is_none(), "re-inserted free block 0x{addr:x}");
        self.occupancy |= 1 << b;
        self.order.insert(addr);
    }

    /// Forgets the free block at `addr` (its current size is `size`).
    pub(crate) fn remove(&mut self, addr: u64, size: u64) {
        let b = bin_of(size);
        let had = self.bins[b].remove(&addr);
        debug_assert_eq!(had, Some(size), "index out of sync at 0x{addr:x}");
        if self.bins[b].is_empty() {
            self.occupancy &= !(1 << b);
        }
        self.order.remove(addr);
    }

    /// Re-sizes the free block at `addr` in place (coalescing and heap
    /// growth change sizes without moving the block start).
    pub(crate) fn resize(&mut self, addr: u64, old_size: u64, new_size: u64) {
        let ob = bin_of(old_size);
        let nb = bin_of(new_size);
        if ob == nb {
            let slot = self.bins[ob].get_mut(&addr).expect("index out of sync");
            debug_assert_eq!(*slot, old_size);
            *slot = new_size;
            return;
        }
        let had = self.bins[ob].remove(&addr);
        debug_assert_eq!(had, Some(old_size), "index out of sync at 0x{addr:x}");
        if self.bins[ob].is_empty() {
            self.occupancy &= !(1 << ob);
        }
        self.bins[nb].insert(addr, new_size);
        self.occupancy |= 1 << nb;
    }

    /// First (lowest-address) free block at address ≥ `from` with size
    /// ≥ `need`, or `None`. Cost: one bin probe per occupied class ≥
    /// ⌊log2(need)⌋, each O(log n), plus a short bounded walk inside
    /// `need`'s own class (whose entries are within a factor 2 of
    /// `need`, so roughly half fit on average).
    pub(crate) fn find_at_or_after(&mut self, from: u64, need: u64) -> Option<(u64, u64)> {
        let nb = bin_of(need);
        let mut best: Option<(u64, u64)> = None;
        // Every block in a class above `need`'s fits; take each class's
        // first block at/after `from` and keep the lowest address.
        let mut mask = self.occupancy & (u64::MAX << nb) & !(1 << nb);
        while mask != 0 {
            let b = mask.trailing_zeros() as usize;
            mask &= mask - 1;
            self.stats.bitmap_scans += 1;
            if let Some((&addr, &size)) = self.bins[b].range(from..).next() {
                if best.is_none_or(|(ba, _)| addr < ba) {
                    best = Some((addr, size));
                }
            }
        }
        // `need`'s own class holds blocks both above and below `need`;
        // walk it in address order, stopping at the candidate from the
        // larger classes (beyond it, a fit can no longer win).
        if self.occupancy & (1 << nb) != 0 {
            self.stats.bitmap_scans += 1;
            for (&addr, &size) in self.bins[nb].range(from..) {
                if best.is_some_and(|(ba, _)| addr >= ba) {
                    break;
                }
                if size >= need {
                    best = Some((addr, size));
                    break;
                }
            }
        }
        if best.is_some() {
            self.stats.bin_hits += 1;
        }
        best
    }

    /// Panics unless the index exactly mirrors `free_blocks` (the
    /// boundary-tag map's free entries); used by
    /// `FirstFit::check_invariants`.
    pub(crate) fn check_consistency(&self, free_blocks: impl Iterator<Item = (u64, u64)>) {
        let mut expected = 0usize;
        for (addr, size) in free_blocks {
            expected += 1;
            let b = bin_of(size);
            assert_eq!(
                self.bins[b].get(&addr),
                Some(&size),
                "free block 0x{addr:x} (size {size}) missing from bin {b}"
            );
            assert_eq!(
                self.order.rank(addr + 1) - self.order.rank(addr),
                1,
                "free block 0x{addr:x} missing from the order set"
            );
        }
        let indexed: usize = self.bins.iter().map(BTreeMap::len).sum();
        assert_eq!(indexed, expected, "index holds stale blocks");
        assert_eq!(self.order.len(), expected, "order set holds stale blocks");
        for (b, bin) in self.bins.iter().enumerate() {
            assert_eq!(
                self.occupancy & (1 << b) != 0,
                !bin.is_empty(),
                "occupancy bit {b} out of sync"
            );
            for (&addr, &size) in bin {
                assert_eq!(bin_of(size), b, "block 0x{addr:x} in wrong bin");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bin_of_is_floor_log2() {
        assert_eq!(bin_of(1), 0);
        assert_eq!(bin_of(16), 4);
        assert_eq!(bin_of(31), 4);
        assert_eq!(bin_of(32), 5);
        assert_eq!(bin_of(u64::MAX), 63);
    }

    #[test]
    fn order_set_ranks_match_sorted_position() {
        let mut s = OrderSet::new();
        let keys = [40u64, 8, 96, 16, 72, 64, 24];
        for &k in &keys {
            s.insert(k);
        }
        let mut sorted = keys.to_vec();
        sorted.sort_unstable();
        for (i, &k) in sorted.iter().enumerate() {
            assert_eq!(s.rank(k), i, "rank of {k}");
            assert_eq!(s.rank(k + 1), i + 1, "rank past {k}");
        }
        assert_eq!(s.len(), keys.len());
        s.remove(64);
        assert_eq!(s.rank(96), 5);
        assert_eq!(s.len(), keys.len() - 1);
    }

    #[test]
    fn order_set_recycles_slots() {
        let mut s = OrderSet::new();
        for k in 0..100u64 {
            s.insert(k * 16);
        }
        for k in 0..100u64 {
            s.remove(k * 16);
        }
        let allocated = s.nodes.len();
        for k in 0..100u64 {
            s.insert(k * 16 + 8);
        }
        assert_eq!(s.nodes.len(), allocated, "slots must be recycled");
        assert_eq!(s.len(), 100);
    }

    #[test]
    fn find_prefers_lowest_address_not_best_fit() {
        let mut ix = FreeIndex::new();
        ix.insert(0, 4096); // big block at the bottom
        ix.insert(8192, 64); // snug block higher up
                             // First-fit from the base takes the big low block even though
                             // the high one fits more tightly.
        assert_eq!(ix.find_at_or_after(0, 64), Some((0, 4096)));
        // From above the big block, the snug one wins.
        assert_eq!(ix.find_at_or_after(4096, 64), Some((8192, 64)));
        assert_eq!(ix.find_at_or_after(8193, 64), None);
    }

    #[test]
    fn same_bin_smaller_blocks_are_skipped() {
        let mut ix = FreeIndex::new();
        // All three share bin 5 (sizes 32..63).
        ix.insert(0, 40);
        ix.insert(1000, 33);
        ix.insert(2000, 63);
        assert_eq!(ix.find_at_or_after(0, 48), Some((2000, 63)));
        assert_eq!(ix.find_at_or_after(0, 40), Some((0, 40)));
        assert_eq!(ix.find_at_or_after(1, 40), Some((2000, 63)));
    }

    #[test]
    fn resize_moves_between_bins() {
        let mut ix = FreeIndex::new();
        ix.insert(64, 48);
        ix.resize(64, 48, 130); // bin 5 -> bin 7
        assert_eq!(ix.find_at_or_after(0, 128), Some((64, 130)));
        assert_eq!(ix.len(), 1);
        ix.resize(64, 130, 140); // same bin
        assert_eq!(ix.find_at_or_after(0, 140), Some((64, 140)));
        ix.remove(64, 140);
        assert_eq!(ix.len(), 0);
        assert_eq!(ix.find_at_or_after(0, 1), None);
    }

    #[test]
    fn rank_counts_free_blocks_below() {
        let mut ix = FreeIndex::new();
        for addr in [16u64, 48, 96, 128] {
            ix.insert(addr, 16);
        }
        assert_eq!(ix.rank(0), 0);
        assert_eq!(ix.rank(48), 1);
        assert_eq!(ix.rank(49), 2);
        assert_eq!(ix.rank(1000), 4);
    }
}
