//! Hanson-style short-lived arenas driven by lifetime prediction.

use crate::counts::OpCounts;
use crate::firstfit::FirstFit;
use crate::Addr;

/// Base of the arena area in the simulated address space; far above
/// any first-fit heap so frees route by address, as in the paper
/// ("arenas are contiguous and not part of the general allocation
/// heap").
const ARENA_BASE: u64 = 1 << 40;

/// Alignment of objects inside an arena.
const ARENA_ALIGN: u32 = 8;

/// Arena-area geometry.
///
/// The paper's simulations use a 64 KB arena area — "twice the age of
/// the objects predicted as short-lived" — divided into sixteen 4 KB
/// arenas so one erroneously long-lived object pins only 4 KB.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArenaConfig {
    /// Number of arenas.
    pub arena_count: usize,
    /// Bytes per arena.
    pub arena_size: u32,
}

impl Default for ArenaConfig {
    fn default() -> Self {
        ArenaConfig {
            arena_count: 16,
            arena_size: 4096,
        }
    }
}

impl ArenaConfig {
    /// Total bytes of the arena area.
    ///
    /// # Panics
    ///
    /// Panics when `arena_count * arena_size` overflows `u64`: an
    /// impossible simulated geometry must fail loudly, not wrap into a
    /// tiny address range.
    pub fn total_bytes(&self) -> u64 {
        (self.arena_count as u64)
            .checked_mul(u64::from(self.arena_size))
            .expect("arena geometry overflows u64")
    }

    /// Parses a `COUNTxSIZE` geometry string (e.g. `16x4096`) — the
    /// spelling grid specs and CLI flags use. Both numbers must be
    /// positive; whitespace is not accepted.
    pub fn parse(text: &str) -> Option<ArenaConfig> {
        let (count, size) = text.split_once('x')?;
        let arena_count: usize = count.parse().ok().filter(|&n| n > 0)?;
        let arena_size: u32 = size.parse().ok().filter(|&n| n > 0)?;
        let config = ArenaConfig {
            arena_count,
            arena_size,
        };
        // Reject geometries `total_bytes` would panic on.
        (arena_count as u64).checked_mul(u64::from(arena_size))?;
        Some(config)
    }
}

impl std::fmt::Display for ArenaConfig {
    /// Renders the geometry in the same `COUNTxSIZE` form
    /// [`ArenaConfig::parse`] accepts.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}x{}", self.arena_count, self.arena_size)
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Arena {
    /// Bump offset ("alloc pointer").
    used: u32,
    /// Live objects in this arena ("count field").
    live: u32,
}

/// The lifetime-predicting allocator of §5.1: objects predicted
/// short-lived are bump-allocated into small fixed arenas with a live
/// count and **no per-object overhead**; everything else (and any
/// arena overflow) goes to an embedded [`FirstFit`] general heap.
///
/// The caller decides `predicted_short` per allocation — in the full
/// system that is a [`ShortLivedSet`](lifepred_core::ShortLivedSet)
/// lookup performed by the replay driver.
///
/// # Examples
///
/// ```
/// use lifepred_heap::{ArenaAllocator, ArenaConfig};
///
/// let mut heap = ArenaAllocator::new(ArenaConfig::default());
/// let a = heap.alloc(32, true); // predicted short-lived: arena
/// let b = heap.alloc(32, false); // general heap
/// assert!(heap.is_arena_addr(a));
/// assert!(!heap.is_arena_addr(b));
/// heap.free(a);
/// heap.free(b);
/// ```
#[derive(Debug, Clone)]
pub struct ArenaAllocator {
    config: ArenaConfig,
    arenas: Vec<Arena>,
    current: usize,
    fallback: FirstFit,
    counts: OpCounts,
}

impl ArenaAllocator {
    /// Creates an allocator with `config` arenas and an empty general
    /// heap.
    pub fn new(config: ArenaConfig) -> Self {
        assert!(config.arena_count > 0, "need at least one arena");
        assert!(config.arena_size > 0, "arenas must have nonzero size");
        ArenaAllocator {
            config,
            arenas: vec![Arena::default(); config.arena_count],
            current: 0,
            fallback: FirstFit::new(),
            counts: OpCounts::default(),
        }
    }

    /// The geometry in use.
    pub fn config(&self) -> &ArenaConfig {
        &self.config
    }

    /// Allocates `size` bytes; `predicted_short` is the prediction for
    /// this allocation's site.
    pub fn alloc(&mut self, size: u32, predicted_short: bool) -> Addr {
        // Checked rounding: a size within ARENA_ALIGN of u32::MAX must
        // overflow to the general heap, not wrap to a tiny request.
        let aligned = size
            .checked_next_multiple_of(ARENA_ALIGN)
            .unwrap_or(u32::MAX);
        if !predicted_short || aligned > self.config.arena_size {
            if predicted_short {
                // Predicted short but too large for any arena: the
                // paper's GHOST 6 KB objects take this path.
                self.counts.arena_overflows += 1;
            }
            return self.fallback.alloc(size);
        }
        // Fast path: bump the current arena.
        if self.arena_fits(self.current, aligned) {
            return self.bump(self.current, aligned);
        }
        // Scan for an arena with no live objects and reset it.
        if let Some(idx) = self.find_empty() {
            self.arenas[idx] = Arena::default();
            self.counts.arena_resets += 1;
            self.current = idx;
            return self.bump(idx, aligned);
        }
        // All arenas pinned: degenerate to the general allocator.
        self.counts.arena_overflows += 1;
        self.fallback.alloc(size)
    }

    /// Frees `addr`, routing by address range.
    ///
    /// # Panics
    ///
    /// Panics if a general-heap address is not a live allocation.
    pub fn free(&mut self, addr: Addr) {
        if self.is_arena_addr(addr) {
            let idx = ((addr.0 - ARENA_BASE) / u64::from(self.config.arena_size)) as usize;
            let arena = &mut self.arenas[idx];
            debug_assert!(arena.live > 0, "arena free with zero live count");
            arena.live -= 1;
            self.counts.arena_frees += 1;
            self.counts.frees += 1;
        } else {
            self.fallback.free(addr);
        }
    }

    /// Whether `addr` lies in the arena area.
    pub fn is_arena_addr(&self, addr: Addr) -> bool {
        // Wrapping subtraction folds the two range checks into one
        // compare with no overflowable `base + len` addition.
        addr.0.wrapping_sub(ARENA_BASE) < self.config.total_bytes()
    }

    /// High-water heap size: the general heap's high-water mark plus
    /// the whole arena area (Table 8 "include the 64-kilobyte arena
    /// area in the total").
    pub fn max_heap_bytes(&self) -> u64 {
        self.fallback
            .max_heap_bytes()
            .saturating_add(self.config.total_bytes())
    }

    /// Merged operation counters (arena side + general heap).
    pub fn counts(&self) -> OpCounts {
        self.counts.merged(self.fallback.counts())
    }

    /// The embedded general heap.
    pub fn general_heap(&self) -> &FirstFit {
        &self.fallback
    }

    /// Total live objects across all arenas.
    pub fn arena_live_objects(&self) -> u64 {
        self.arenas.iter().map(|a| u64::from(a.live)).sum()
    }

    /// Bytes currently consumed by arena bump pointers (dead objects
    /// included until their arena resets) — the numerator of arena-area
    /// utilization.
    pub fn arena_used_bytes(&self) -> u64 {
        self.arenas.iter().map(|a| u64::from(a.used)).sum()
    }

    fn arena_fits(&self, idx: usize, aligned: u32) -> bool {
        self.config.arena_size - self.arenas[idx].used >= aligned
    }

    fn bump(&mut self, idx: usize, aligned: u32) -> Addr {
        let arena = &mut self.arenas[idx];
        // idx * arena_size + used <= total_bytes (checked above), and
        // ARENA_BASE sits far below u64::MAX - total_bytes; checked
        // arithmetic documents that rather than trusting it silently.
        let addr = (idx as u64)
            .checked_mul(u64::from(self.config.arena_size))
            .and_then(|off| off.checked_add(u64::from(arena.used)))
            .and_then(|off| ARENA_BASE.checked_add(off))
            .expect("arena address overflows u64");
        arena.used += aligned;
        arena.live += 1;
        self.counts.arena_allocs += 1;
        self.counts.allocs += 1;
        Addr(addr)
    }

    fn find_empty(&mut self) -> Option<usize> {
        for (i, arena) in self.arenas.iter().enumerate() {
            self.counts.arena_scan_steps += 1;
            if arena.live == 0 {
                return Some(i);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> ArenaAllocator {
        ArenaAllocator::new(ArenaConfig {
            arena_count: 2,
            arena_size: 64,
        })
    }

    #[test]
    fn bump_allocation_is_contiguous() {
        let mut h = small();
        let a = h.alloc(8, true);
        let b = h.alloc(8, true);
        assert_eq!(b.0, a.0 + 8);
        assert_eq!(h.counts().arena_allocs, 2);
    }

    #[test]
    fn unpredicted_goes_to_general_heap() {
        let mut h = small();
        let a = h.alloc(8, false);
        assert!(!h.is_arena_addr(a));
        assert_eq!(h.counts().arena_allocs, 0);
        h.free(a);
    }

    #[test]
    fn oversized_predicted_objects_fall_back() {
        let mut h = small();
        let a = h.alloc(100, true); // > 64-byte arena
        assert!(!h.is_arena_addr(a));
        assert_eq!(h.counts().arena_overflows, 1);
    }

    #[test]
    fn exhausted_arena_resets_an_empty_one() {
        let mut h = small();
        // Fill arena 0 with dead objects.
        for _ in 0..8 {
            let a = h.alloc(8, true);
            h.free(a);
        }
        // Arena 0 is full but empty of live objects; next alloc that
        // doesn't fit triggers a scan-and-reset.
        let before = h.counts().arena_resets;
        let a = h.alloc(64, true);
        assert!(h.is_arena_addr(a));
        assert_eq!(h.counts().arena_resets, before + 1);
    }

    #[test]
    fn pinned_arenas_degenerate_to_general_heap() {
        let mut h = small();
        // One live object in each arena, both arenas full.
        let mut pins = Vec::new();
        for _ in 0..2 {
            pins.push(h.alloc(8, true));
            for _ in 0..7 {
                let a = h.alloc(8, true);
                h.free(a);
            }
        }
        // Both arenas pinned: this predicted-short alloc overflows.
        let a = h.alloc(64, true);
        assert!(!h.is_arena_addr(a));
        assert!(h.counts().arena_overflows >= 1);
        for p in pins {
            h.free(p);
        }
    }

    #[test]
    fn live_count_conservation() {
        let mut h = small();
        let mut live = Vec::new();
        for i in 0..6 {
            live.push(h.alloc(8, true));
            if i % 2 == 0 {
                let a = live.remove(0);
                h.free(a);
            }
        }
        assert_eq!(h.arena_live_objects(), live.len() as u64);
        for a in live {
            h.free(a);
        }
        assert_eq!(h.arena_live_objects(), 0);
    }

    #[test]
    fn max_heap_includes_arena_area() {
        let h = ArenaAllocator::new(ArenaConfig::default());
        assert_eq!(h.max_heap_bytes(), 64 * 1024);
    }

    #[test]
    fn default_geometry_matches_paper() {
        let c = ArenaConfig::default();
        assert_eq!(c.arena_count, 16);
        assert_eq!(c.arena_size, 4096);
        assert_eq!(c.total_bytes(), 64 * 1024);
    }
}
