//! Observability wiring for trace-driven replays.
//!
//! [`ReplayObs`] bundles the `lifepred_sim_*` metric handles an
//! observed replay (`replay_*_stream_observed`) records into: event
//! counters, the object-size and lifetime histograms (lifetimes in
//! allocated bytes, the paper's clock), the per-event wall-time
//! histogram (empty unless `lifepred-obs` is built with its `timing`
//! feature), and — for the online replay — one epoch-timeline sample
//! per learner tick.

use crate::index::IndexStats;
use lifepred_obs::{
    Counter, EpochTimeline, HistogramSnapshot, LogHistogram, Registry, Timer, TIMING_ENABLED,
};
use std::sync::Arc;

/// Metric handles for one replay run, registered under the
/// `lifepred_sim_*` names.
#[derive(Debug, Clone)]
pub struct ReplayObs {
    /// `lifepred_sim_allocs_total` — allocation events replayed.
    pub allocs_total: Arc<Counter>,
    /// `lifepred_sim_frees_total` — free events replayed.
    pub frees_total: Arc<Counter>,
    /// `lifepred_sim_arena_allocs_total` — allocations the simulated
    /// allocator served from its arena area.
    pub arena_allocs_total: Arc<Counter>,
    /// `lifepred_sim_size_bytes` — requested object sizes.
    pub size_bytes: Arc<LogHistogram>,
    /// `lifepred_sim_lifetime_bytes` — object lifetimes measured in
    /// bytes of allocation between birth and free.
    pub lifetime_bytes: Arc<LogHistogram>,
    /// `lifepred_sim_event_ns` — wall time per replayed event; stays
    /// empty unless `lifepred-obs` is built with its `timing` feature.
    pub event_ns: Arc<LogHistogram>,
    /// `lifepred_sim_epochs` — one sample per online-learner epoch
    /// tick (empty for the offline replays).
    pub timeline: Arc<EpochTimeline>,
    /// `lifepred_sim_index_bin_hits_total` — free-index searches
    /// answered from a size-class bin (first-fit heaps only; zero for
    /// the BSD replay).
    pub index_bin_hits_total: Arc<Counter>,
    /// `lifepred_sim_index_bitmap_scans_total` — occupancy-bitmap
    /// probes performed by the free index.
    pub index_bitmap_scans_total: Arc<Counter>,
    /// `lifepred_sim_batch_refills_total` — event-chunk refills the
    /// replay loop consumed (one per up-to-4096-event batch).
    pub batch_refills_total: Arc<Counter>,
    /// `lifepred_sim_frees_invalid_total` — free events ignored because
    /// their address was not a live allocation (corrupt traces).
    pub frees_invalid_total: Arc<Counter>,
}

impl ReplayObs {
    /// Registers (or re-fetches) the replay metric set in `registry`.
    pub fn register(registry: &Registry) -> ReplayObs {
        ReplayObs {
            allocs_total: registry.counter("lifepred_sim_allocs_total"),
            frees_total: registry.counter("lifepred_sim_frees_total"),
            arena_allocs_total: registry.counter("lifepred_sim_arena_allocs_total"),
            size_bytes: registry.histogram("lifepred_sim_size_bytes"),
            lifetime_bytes: registry.histogram("lifepred_sim_lifetime_bytes"),
            event_ns: registry.histogram("lifepred_sim_event_ns"),
            timeline: registry.timeline("lifepred_sim_epochs"),
            index_bin_hits_total: registry.counter("lifepred_sim_index_bin_hits_total"),
            index_bitmap_scans_total: registry.counter("lifepred_sim_index_bitmap_scans_total"),
            batch_refills_total: registry.counter("lifepred_sim_batch_refills_total"),
            frees_invalid_total: registry.counter("lifepred_sim_frees_invalid_total"),
        }
    }
}

/// Per-run recording state for one observed replay.
///
/// A replay is single-threaded and owns its `ObsCtx` exclusively, so
/// per-event recording goes into **plain local fields** — no atomics,
/// no TLS, no shared cache lines on the event loop — and the whole
/// batch is published into the shared [`ReplayObs`] handles once, by
/// [`ObsCtx::flush`] at end of stream. Final registry values are
/// identical to per-event publication; the per-event cost is a handful
/// of arithmetic ops plus one birth-clock store/load for exact
/// lifetimes, a few percent of replay throughput in the recorded
/// `results/BENCH_obs.json` measurement. Epoch-timeline samples are
/// the exception: they are rare (one per epoch) and pushed live via
/// [`ObsCtx::obs`].
#[derive(Debug)]
pub(crate) struct ObsCtx<'a> {
    obs: &'a ReplayObs,
    /// Birth clock per record index, filled on its alloc event. The
    /// clock itself is the size histogram's running byte sum — bytes
    /// allocated so far, exactly the paper's lifetime unit — so no
    /// separate counter is advanced per event.
    births: Vec<u64>,
    /// Allocations *not* served from the arena area — the rare branch
    /// in arena-friendly workloads; the totals are derived at flush
    /// time (`allocs` = size-histogram count, `arena` = allocs − this).
    general_allocs: u64,
    /// Frees whose record never allocated (malformed stream); frees =
    /// lifetime-histogram count + this.
    free_misses: u64,
    sizes: HistogramSnapshot,
    lifetimes: HistogramSnapshot,
    event_ns: HistogramSnapshot,
    /// End-of-run heap counters, set once by
    /// [`ObsCtx::set_heap_stats`] before the flush.
    index: IndexStats,
    frees_invalid: u64,
    batch_refills: u64,
}

impl<'a> ObsCtx<'a> {
    pub(crate) fn new(obs: &'a ReplayObs) -> ObsCtx<'a> {
        ObsCtx::with_records_hint(obs, 0)
    }

    /// Like [`ObsCtx::new`], pre-sizing the birth table for `records`
    /// objects so the event loop never pays a grow check.
    pub(crate) fn with_records_hint(obs: &'a ReplayObs, records: usize) -> ObsCtx<'a> {
        ObsCtx {
            obs,
            births: vec![0; records],
            general_allocs: 0,
            free_misses: 0,
            sizes: HistogramSnapshot::empty(),
            lifetimes: HistogramSnapshot::empty(),
            event_ns: HistogramSnapshot::empty(),
            index: IndexStats::default(),
            frees_invalid: 0,
            batch_refills: 0,
        }
    }

    /// Records one allocation event; `arena` says whether the simulated
    /// allocator served it from its arena area.
    #[inline]
    pub(crate) fn on_alloc(&mut self, record: usize, size: u32, arena: bool, timer: Timer) {
        if !arena {
            self.general_allocs += 1;
        }
        if record >= self.births.len() {
            self.births.resize(record + 1, 0);
        }
        self.births[record] = self.sizes.sum;
        self.sizes.record(u64::from(size));
        if TIMING_ENABLED {
            self.event_ns.record(timer.elapsed_ns());
        }
    }

    /// Records one free event, emitting the object's byte lifetime.
    #[inline]
    pub(crate) fn on_free(&mut self, record: usize, timer: Timer) {
        if let Some(&birth) = self.births.get(record) {
            self.lifetimes.record(self.sizes.sum.wrapping_sub(birth));
        } else {
            self.free_misses += 1;
        }
        if TIMING_ENABLED {
            self.event_ns.record(timer.elapsed_ns());
        }
    }

    pub(crate) fn obs(&self) -> &ReplayObs {
        self.obs
    }

    /// Records the simulated heap's end-of-run work counters: the
    /// free-index statistics and the invalid-free count.
    pub(crate) fn set_heap_stats(&mut self, index: IndexStats, frees_invalid: u64) {
        self.index = index;
        self.frees_invalid = frees_invalid;
    }

    /// Records how many event batches the replay loop consumed.
    pub(crate) fn set_batch_refills(&mut self, refills: u64) {
        self.batch_refills = refills;
    }

    /// Publishes the locally accumulated batch into the shared metric
    /// handles. Call exactly once, when the event stream ends.
    pub(crate) fn flush(self) {
        self.obs.allocs_total.add(self.sizes.count);
        self.obs
            .arena_allocs_total
            .add(self.sizes.count - self.general_allocs);
        self.obs
            .frees_total
            .add(self.lifetimes.count + self.free_misses);
        self.obs.size_bytes.absorb(&self.sizes);
        self.obs.lifetime_bytes.absorb(&self.lifetimes);
        self.obs.event_ns.absorb(&self.event_ns);
        self.obs.index_bin_hits_total.add(self.index.bin_hits);
        self.obs
            .index_bitmap_scans_total
            .add(self.index.bitmap_scans);
        self.obs.batch_refills_total.add(self.batch_refills);
        self.obs.frees_invalid_total.add(self.frees_invalid);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifetimes_are_measured_in_allocation_bytes() {
        let reg = Registry::new();
        let obs = ReplayObs::register(&reg);
        let mut ctx = ObsCtx::new(&obs);
        // Object 0 born at clock 0, object 1 at clock 100; freeing 0
        // after both lands a lifetime of 100 + 50 = 150 bytes.
        ctx.on_alloc(0, 100, true, Timer::start());
        ctx.on_alloc(1, 50, false, Timer::start());
        ctx.on_free(0, Timer::start());
        // Nothing is shared until the batch is flushed.
        assert_eq!(reg.snapshot().counter("lifepred_sim_allocs_total"), Some(0));
        ctx.flush();
        let snap = reg.snapshot();
        assert_eq!(snap.counter("lifepred_sim_allocs_total"), Some(2));
        assert_eq!(snap.counter("lifepred_sim_arena_allocs_total"), Some(1));
        assert_eq!(snap.counter("lifepred_sim_frees_total"), Some(1));
        let lifetimes = snap.histogram("lifepred_sim_lifetime_bytes").expect("hist");
        assert_eq!(lifetimes.count, 1);
        assert_eq!(lifetimes.sum, 150);
        let sizes = snap.histogram("lifepred_sim_size_bytes").expect("hist");
        assert_eq!(sizes.sum, 150);
    }
}
