//! Allocation tracing: the substrate the paper obtained from Larus' AE
//! abstract-execution tool.
//!
//! Instrumented workloads run against a [`TraceSession`], which keeps a
//! *shadow call-stack* and records, for every heap object, its
//! allocation site (the call-chain at birth plus the object size), its
//! lifetime measured in **bytes allocated** between birth and death
//! (the paper's clock), and the number of heap references made to it.
//!
//! The finished [`Trace`] is the unit of exchange for the rest of the
//! system: the predictor trains on traces, and the heap simulators
//! replay their event streams.
//!
//! # Examples
//!
//! ```
//! use lifepred_trace::TraceSession;
//!
//! let session = TraceSession::new("demo");
//! {
//!     let _main = session.enter("main");
//!     let obj = {
//!         let _f = session.enter("make_widget");
//!         session.alloc(24)
//!     };
//!     session.touch(obj, 10);
//!     session.free(obj);
//! }
//! let trace = session.finish();
//! assert_eq!(trace.records().len(), 1);
//! assert_eq!(trace.records()[0].lifetime(trace.end_clock()), 24);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod chain;
mod chunk;
mod events;
mod record;
mod registry;
mod session;
mod stats;

pub use chain::{eliminate_cycles, CallChain, ChainId, ChainTable};
pub use chunk::{
    ChunkEvent, ChunkSource, EventChunk, TraceChunks, CHUNK_EVENTS, POOLED_CHUNK_EVENTS,
};
pub use events::{Event, EventKind};
pub use record::{AllocationRecord, ObjectId};
pub use registry::{shared_registry, FnId, FunctionRegistry, SharedRegistry};
pub use session::{CallGuard, Trace, TraceSession, Traced};
pub use stats::TraceStats;
