//! The recording session: shadow stack + allocation recorder.

use crate::chain::{CallChain, ChainId, ChainTable};
use crate::record::{AllocationRecord, ObjectId};
use crate::registry::{FnId, FunctionRegistry, SharedRegistry};
use crate::stats::TraceStats;
use std::cell::RefCell;
use std::ops::{Deref, DerefMut};
use std::rc::Rc;

/// Instruction cost charged per traced function call (call + return +
/// frame bookkeeping on a RISC target).
const CALL_INSTRUCTIONS: u64 = 3;

/// Fraction of `work` instructions that are non-heap memory references
/// (stack and globals), expressed as a divisor.
const WORK_REF_DIVISOR: u64 = 4;

#[derive(Debug)]
struct Inner {
    name: String,
    stack: Vec<FnId>,
    chains: ChainTable,
    records: Vec<AllocationRecord>,
    clock: u64,
    seq: u64,
    live_bytes: u64,
    live_objects: u64,
    stats: TraceStats,
    finished: bool,
}

/// A single-threaded tracing session.
///
/// The session is a cheaply cloneable handle (the paper's programs are
/// sequential; so are our workloads). Workloads:
///
/// * bracket every function body with [`TraceSession::enter`], which
///   maintains the shadow call-stack;
/// * allocate with [`TraceSession::alloc`] (or the RAII
///   [`TraceSession::traced`] wrapper) and free with
///   [`TraceSession::free`];
/// * report heap references with [`TraceSession::touch`] and
///   computational work with [`TraceSession::work`].
///
/// [`TraceSession::finish`] produces the immutable [`Trace`].
///
/// # Examples
///
/// ```
/// use lifepred_trace::TraceSession;
///
/// let s = TraceSession::new("example");
/// let _g = s.enter("main");
/// let id = s.alloc(64);
/// s.free(id);
/// let trace = s.finish();
/// assert_eq!(trace.stats().total_bytes, 64);
/// ```
#[derive(Clone)]
pub struct TraceSession {
    inner: Rc<RefCell<Inner>>,
    registry: SharedRegistry,
}

impl std::fmt::Debug for TraceSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.borrow();
        f.debug_struct("TraceSession")
            .field("name", &inner.name)
            .field("objects", &inner.records.len())
            .field("clock", &inner.clock)
            .finish()
    }
}

impl TraceSession {
    /// Starts a session with a private function registry.
    pub fn new(name: &str) -> Self {
        TraceSession::with_registry(name, Rc::new(RefCell::new(FunctionRegistry::new())))
    }

    /// Starts a session sharing `registry` with other runs of the same
    /// program, so allocation sites map across runs (true prediction).
    pub fn with_registry(name: &str, registry: SharedRegistry) -> Self {
        TraceSession {
            inner: Rc::new(RefCell::new(Inner {
                name: name.to_owned(),
                stack: Vec::with_capacity(64),
                chains: ChainTable::new(),
                records: Vec::new(),
                clock: 0,
                seq: 0,
                live_bytes: 0,
                live_objects: 0,
                stats: TraceStats::default(),
                finished: false,
            })),
            registry,
        }
    }

    /// The shared function registry.
    pub fn registry(&self) -> &SharedRegistry {
        &self.registry
    }

    /// Pushes `function` onto the shadow stack, returning a guard that
    /// pops it when dropped.
    pub fn enter(&self, function: &str) -> CallGuard {
        let id = self.registry.borrow_mut().intern(function);
        let mut inner = self.inner.borrow_mut();
        inner.stack.push(id);
        inner.stats.function_calls += 1;
        inner.stats.instructions += CALL_INSTRUCTIONS;
        CallGuard {
            session: self.inner.clone(),
            expected: id,
        }
    }

    /// Records an allocation of `size` bytes at the current call-chain.
    ///
    /// Advances the byte clock by `size`, so an object freed with no
    /// intervening allocations has lifetime `size`.
    ///
    /// # Panics
    ///
    /// Panics if the session is already finished.
    pub fn alloc(&self, size: u32) -> ObjectId {
        let mut inner = self.inner.borrow_mut();
        assert!(!inner.finished, "alloc on a finished session");
        let chain = {
            let stack = std::mem::take(&mut inner.stack);
            let id = inner.chains.intern(&stack);
            inner.stack = stack;
            id
        };
        let object = ObjectId(inner.records.len() as u64);
        let record = AllocationRecord {
            object,
            size,
            chain,
            birth_clock: inner.clock,
            death_clock: None,
            birth_seq: inner.seq,
            death_seq: None,
            refs: 0,
            first_ref_clock: None,
            last_ref_clock: None,
        };
        inner.records.push(record);
        inner.seq += 1;
        inner.clock += u64::from(size);
        inner.live_bytes += u64::from(size);
        inner.live_objects += 1;
        inner.stats.total_bytes += u64::from(size);
        inner.stats.total_objects += 1;
        if inner.live_bytes > inner.stats.max_live_bytes {
            inner.stats.max_live_bytes = inner.live_bytes;
        }
        if inner.live_objects > inner.stats.max_live_objects {
            inner.stats.max_live_objects = inner.live_objects;
        }
        object
    }

    /// Records the deallocation of `object`.
    ///
    /// Frees after [`TraceSession::finish`] are ignored so that RAII
    /// wrappers may outlive the session.
    ///
    /// # Panics
    ///
    /// Panics on double free.
    pub fn free(&self, object: ObjectId) {
        let mut inner = self.inner.borrow_mut();
        if inner.finished {
            return;
        }
        let (clock, seq) = (inner.clock, inner.seq);
        let record = &mut inner.records[object.0 as usize];
        assert!(record.death_clock.is_none(), "double free of {object}");
        record.death_clock = Some(clock);
        record.death_seq = Some(seq);
        let size = u64::from(record.size);
        inner.seq += 1;
        inner.live_bytes -= size;
        inner.live_objects -= 1;
    }

    /// Records `n` heap references to `object` (counted as `n`
    /// instructions as well), stamping the object's first/last
    /// reference clocks with the current byte clock for liveness and
    /// drag analysis.
    pub fn touch(&self, object: ObjectId, n: u64) {
        let mut inner = self.inner.borrow_mut();
        if inner.finished {
            return;
        }
        let clock = inner.clock;
        let record = &mut inner.records[object.0 as usize];
        record.refs += n;
        if n > 0 {
            record.first_ref_clock.get_or_insert(clock);
            record.last_ref_clock = Some(clock);
        }
        inner.stats.heap_refs += n;
        inner.stats.instructions += n;
    }

    /// Records `n` virtual instructions of non-allocating work; a
    /// quarter of them are charged as non-heap memory references.
    pub fn work(&self, n: u64) {
        let mut inner = self.inner.borrow_mut();
        inner.stats.instructions += n;
        inner.stats.other_refs += n / WORK_REF_DIVISOR;
    }

    /// Wraps `value` in a [`Traced`] smart pointer that frees its
    /// record when dropped. `size` is the number of heap bytes the
    /// corresponding C allocation would have requested.
    pub fn traced<T>(&self, value: T, size: u32) -> Traced<T> {
        Traced {
            id: self.alloc(size),
            session: self.clone(),
            value: Some(value),
        }
    }

    /// Current byte clock (total bytes allocated so far).
    pub fn clock(&self) -> u64 {
        self.inner.borrow().clock
    }

    /// Number of objects allocated so far.
    pub fn objects(&self) -> u64 {
        self.inner.borrow().records.len() as u64
    }

    /// Current shadow-stack depth.
    pub fn depth(&self) -> usize {
        self.inner.borrow().stack.len()
    }

    /// Finishes the session, producing the immutable [`Trace`].
    ///
    /// Objects still live become *immortal* records whose lifetime runs
    /// to the end of the trace. Outstanding [`Traced`] values and
    /// clones of the session remain valid; their frees become no-ops.
    pub fn finish(&self) -> Trace {
        let mut inner = self.inner.borrow_mut();
        inner.finished = true;
        Trace {
            name: inner.name.clone(),
            registry: self.registry.borrow().clone(),
            chains: std::mem::take(&mut inner.chains),
            records: std::mem::take(&mut inner.records),
            stats: inner.stats,
            end_clock: inner.clock,
            end_seq: inner.seq,
        }
    }
}

/// RAII guard returned by [`TraceSession::enter`]; pops its frame from
/// the shadow stack on drop.
#[derive(Debug)]
pub struct CallGuard {
    session: Rc<RefCell<Inner>>,
    expected: FnId,
}

impl Drop for CallGuard {
    fn drop(&mut self) {
        let mut inner = self.session.borrow_mut();
        let popped = inner.stack.pop();
        debug_assert_eq!(
            popped,
            Some(self.expected),
            "shadow stack imbalance: popped {popped:?}, expected {:?}",
            self.expected
        );
    }
}

/// A traced smart pointer: owns `T` and frees its allocation record on
/// drop.
///
/// Follows the smart-pointer convention: all operations are associated
/// functions so they never shadow methods of `T`.
///
/// # Examples
///
/// ```
/// use lifepred_trace::{TraceSession, Traced};
///
/// let s = TraceSession::new("demo");
/// {
///     let v: Traced<Vec<u8>> = s.traced(vec![0u8; 32], 32);
///     Traced::touch(&v, 4);
///     assert_eq!(v.len(), 32); // Deref to the payload
/// } // dropped here => free event recorded
/// let trace = s.finish();
/// assert_eq!(trace.records()[0].refs, 4);
/// ```
pub struct Traced<T> {
    /// `None` only after `into_inner` extracted the payload.
    value: Option<T>,
    id: ObjectId,
    session: TraceSession,
}

impl<T> Traced<T> {
    /// The traced object's id.
    pub fn id(this: &Traced<T>) -> ObjectId {
        this.id
    }

    /// Records `n` heap references to the object.
    pub fn touch(this: &Traced<T>, n: u64) {
        this.session.touch(this.id, n);
    }

    /// Consumes the wrapper, freeing the trace record now and
    /// returning the payload.
    pub fn into_inner(mut this: Traced<T>) -> T {
        this.session.free(this.id);
        this.value.take().expect("payload already extracted")
    }
}

impl<T> Deref for Traced<T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.value.as_ref().expect("payload already extracted")
    }
}

impl<T> DerefMut for Traced<T> {
    fn deref_mut(&mut self) -> &mut T {
        self.value.as_mut().expect("payload already extracted")
    }
}

impl<T> Drop for Traced<T> {
    fn drop(&mut self) {
        if self.value.is_some() {
            self.session.free(self.id);
        }
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Traced<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Traced")
            .field("id", &self.id)
            .field("value", &self.value)
            .finish()
    }
}

/// A finished, immutable allocation trace.
#[derive(Debug, Clone)]
pub struct Trace {
    name: String,
    registry: FunctionRegistry,
    chains: ChainTable,
    records: Vec<AllocationRecord>,
    stats: TraceStats,
    end_clock: u64,
    end_seq: u64,
}

impl Trace {
    /// Reassembles a trace from its parts, e.g. when loading one from
    /// disk. The inverse of reading a trace's accessors.
    ///
    /// Callers must uphold the session invariants: records are in
    /// birth order, `records[i].object.index() == i`, every chain id
    /// resolves in `chains`, and every frame id resolves in
    /// `registry`. Deserializers validate these before calling.
    #[allow(clippy::too_many_arguments)]
    pub fn from_parts(
        name: String,
        registry: FunctionRegistry,
        chains: ChainTable,
        records: Vec<AllocationRecord>,
        stats: TraceStats,
        end_clock: u64,
        end_seq: u64,
    ) -> Trace {
        Trace {
            name,
            registry,
            chains,
            records,
            stats,
            end_clock,
            end_seq,
        }
    }

    /// The traced program's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Snapshot of the function registry at finish time.
    pub fn registry(&self) -> &FunctionRegistry {
        &self.registry
    }

    /// The interned call-chains referenced by the records.
    pub fn chains(&self) -> &ChainTable {
        &self.chains
    }

    /// Resolves a record's chain id.
    pub fn chain(&self, id: ChainId) -> &CallChain {
        self.chains.get(id)
    }

    /// All allocation records, in birth order.
    pub fn records(&self) -> &[AllocationRecord] {
        &self.records
    }

    /// Aggregate statistics (the paper's Table 2 row).
    pub fn stats(&self) -> &TraceStats {
        &self.stats
    }

    /// Byte clock at end of trace (== `stats().total_bytes`).
    pub fn end_clock(&self) -> u64 {
        self.end_clock
    }

    /// Event sequence count at end of trace.
    pub fn end_seq(&self) -> u64 {
        self.end_seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_birth_and_death_clocks() {
        let s = TraceSession::new("t");
        let a = s.alloc(10);
        let b = s.alloc(20);
        s.free(a); // clock is 30 now
        s.free(b);
        let t = s.finish();
        let (ra, rb) = (&t.records()[0], &t.records()[1]);
        assert_eq!(ra.birth_clock, 0);
        assert_eq!(ra.death_clock, Some(30));
        assert_eq!(ra.lifetime(t.end_clock()), 30);
        assert_eq!(rb.birth_clock, 10);
        assert_eq!(rb.lifetime(t.end_clock()), 20);
    }

    #[test]
    fn shadow_stack_shapes_chains() {
        let s = TraceSession::new("t");
        let obj;
        {
            let _a = s.enter("outer");
            let _b = s.enter("inner");
            obj = s.alloc(8);
        }
        assert_eq!(s.depth(), 0);
        let t = s.finish();
        let chain = t.chain(t.records()[0].chain);
        let reg = t.registry();
        assert_eq!(chain.display(reg).to_string(), "outer>inner");
        let _ = obj;
    }

    #[test]
    fn max_live_tracking() {
        let s = TraceSession::new("t");
        let a = s.alloc(100);
        let b = s.alloc(50);
        s.free(a);
        let _c = s.alloc(10);
        s.free(b);
        let t = s.finish();
        assert_eq!(t.stats().max_live_bytes, 150);
        assert_eq!(t.stats().max_live_objects, 2);
        assert_eq!(t.stats().total_bytes, 160);
        assert_eq!(t.stats().total_objects, 3);
    }

    #[test]
    fn immortal_objects_survive_finish() {
        let s = TraceSession::new("t");
        let _leaked = s.alloc(64);
        s.alloc(36); // also leaked
        let t = s.finish();
        assert!(t.records().iter().all(AllocationRecord::is_immortal));
        assert_eq!(t.records()[0].lifetime(t.end_clock()), 100);
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let s = TraceSession::new("t");
        let a = s.alloc(8);
        s.free(a);
        s.free(a);
    }

    #[test]
    fn traced_wrapper_frees_on_drop() {
        let s = TraceSession::new("t");
        {
            let w = s.traced(String::from("hello"), 6);
            Traced::touch(&w, 2);
            assert_eq!(&**w, "hello");
        }
        let t = s.finish();
        assert_eq!(t.records()[0].death_seq, Some(1));
        assert_eq!(t.records()[0].refs, 2);
    }

    #[test]
    fn frees_after_finish_are_ignored() {
        let s = TraceSession::new("t");
        let w = s.traced(7u32, 4);
        let t = s.finish();
        drop(w); // must not panic
        assert!(t.records()[0].is_immortal());
    }

    #[test]
    fn shared_registry_maps_sites_across_runs() {
        let reg = Rc::new(RefCell::new(FunctionRegistry::new()));
        let s1 = TraceSession::with_registry("run1", reg.clone());
        {
            let _g = s1.enter("worker");
            s1.alloc(8);
        }
        let t1 = s1.finish();
        let s2 = TraceSession::with_registry("run2", reg);
        {
            let _g = s2.enter("worker");
            s2.alloc(8);
        }
        let t2 = s2.finish();
        let c1 = t1.chain(t1.records()[0].chain);
        let c2 = t2.chain(t2.records()[0].chain);
        assert_eq!(c1.frames(), c2.frames());
    }

    #[test]
    fn touch_stamps_first_and_last_ref_clocks() {
        let s = TraceSession::new("t");
        let a = s.alloc(10); // clock now 10
        s.touch(a, 1); // first touch at clock 10
        s.alloc(90); // clock now 100
        s.touch(a, 3); // last touch at clock 100
        s.touch(a, 0); // zero refs must not move the clocks
        s.free(a);
        let t = s.finish();
        let r = &t.records()[0];
        assert_eq!(r.refs, 4);
        assert_eq!(r.first_ref_clock, Some(10));
        assert_eq!(r.last_ref_clock, Some(100));
        // Untouched object keeps None on both.
        let rb = &t.records()[1];
        assert_eq!(rb.first_ref_clock, None);
        assert_eq!(rb.last_ref_clock, None);
    }

    #[test]
    fn stats_count_calls_and_refs() {
        let s = TraceSession::new("t");
        {
            let _g = s.enter("f");
            let a = s.alloc(8);
            s.touch(a, 10);
            s.work(40);
        }
        let t = s.finish();
        assert_eq!(t.stats().function_calls, 1);
        assert_eq!(t.stats().heap_refs, 10);
        assert_eq!(t.stats().other_refs, 10);
        assert_eq!(t.stats().heap_ref_pct(), 50.0);
    }
}
