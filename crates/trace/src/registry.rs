//! Interned function names.

use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;
use std::rc::Rc;

/// A compact identifier for an interned function name.
///
/// The paper's call-chains are chains *of functions*, so the shadow
/// stack stores these ids rather than strings. Carter's call-chain
/// encryption additionally relies on per-function 16-bit ids, which
/// [`FnId::encryption_key`] derives deterministically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FnId(pub(crate) u32);

impl FnId {
    /// The raw interned index.
    pub fn index(self) -> u32 {
        self.0
    }

    /// Rebuilds an id from [`FnId::index`], e.g. when deserializing a
    /// site database. Only meaningful against the same registry.
    pub fn from_index(index: u32) -> FnId {
        FnId(index)
    }

    /// A pseudo-random but deterministic 16-bit id for this function,
    /// as used by call-chain encryption (the paper's §5.1, after
    /// Carter). A multiplicative hash spreads consecutive indices so
    /// XOR-combined keys along a chain are unlikely to collide.
    pub fn encryption_key(self) -> u16 {
        let h = (self.0 as u64)
            .wrapping_add(0x9e37_79b9_7f4a_7c15)
            .wrapping_mul(0xbf58_476d_1ce4_e5b9);
        ((h >> 32) ^ h) as u16
    }
}

impl fmt::Display for FnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fn#{}", self.0)
    }
}

/// An interning table mapping function names to [`FnId`]s.
///
/// One registry is shared by all runs of the same workload so that
/// sites recorded during a *training* run map onto the sites of a
/// *test* run — the prerequisite for the paper's "true prediction".
#[derive(Debug, Default, Clone)]
pub struct FunctionRegistry {
    names: Vec<String>,
    index: HashMap<String, FnId>,
}

impl FunctionRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        FunctionRegistry::default()
    }

    /// Interns `name`, returning its stable id.
    pub fn intern(&mut self, name: &str) -> FnId {
        if let Some(&id) = self.index.get(name) {
            return id;
        }
        let id =
            FnId(u32::try_from(self.names.len()).expect("more than u32::MAX functions interned"));
        self.names.push(name.to_owned());
        self.index.insert(name.to_owned(), id);
        id
    }

    /// Looks up a previously interned name.
    pub fn get(&self, name: &str) -> Option<FnId> {
        self.index.get(name).copied()
    }

    /// The name behind `id`, or `None` if `id` came from another registry.
    pub fn name(&self, id: FnId) -> Option<&str> {
        self.names.get(id.0 as usize).map(String::as_str)
    }

    /// Number of interned functions.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Returns `true` if nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over interned names in id order (`FnId` 0, 1, 2, ...),
    /// the order needed to serialize and rebuild a registry.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.names.iter().map(String::as_str)
    }
}

/// A registry handle shareable between trace sessions of the same
/// program (single-threaded; tracing is inherently sequential).
pub type SharedRegistry = Rc<RefCell<FunctionRegistry>>;

/// Creates a fresh shared registry.
pub fn shared_registry() -> SharedRegistry {
    Rc::new(RefCell::new(FunctionRegistry::new()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut r = FunctionRegistry::new();
        let a = r.intern("malloc");
        let b = r.intern("xmalloc");
        assert_ne!(a, b);
        assert_eq!(r.intern("malloc"), a);
        assert_eq!(r.len(), 2);
        assert_eq!(r.name(a), Some("malloc"));
        assert_eq!(r.get("xmalloc"), Some(b));
        assert_eq!(r.get("missing"), None);
    }

    #[test]
    fn encryption_keys_spread() {
        let mut r = FunctionRegistry::new();
        let keys: Vec<u16> = (0..100)
            .map(|i| r.intern(&format!("f{i}")).encryption_key())
            .collect();
        let mut uniq = keys.clone();
        uniq.sort_unstable();
        uniq.dedup();
        // 100 keys into 65536 slots should essentially never collide.
        assert!(
            uniq.len() >= 99,
            "too many collisions: {}",
            100 - uniq.len()
        );
    }

    #[test]
    fn empty_registry() {
        let r = FunctionRegistry::new();
        assert!(r.is_empty());
        assert_eq!(r.name(FnId(0)), None);
    }
}
