//! Structure-of-arrays event batches — the high-throughput replay path.
//!
//! Replaying a trace event-by-event pays per-record dispatch: an enum
//! construction, a `Result` wrap and an iterator-adaptor call for every
//! allocation and free. [`EventChunk`] amortizes all of that by
//! materializing events in batches of [`CHUNK_EVENTS`] into two flat,
//! reusable vectors (a packed tag word and a parallel size array); a
//! [`ChunkSource`] refills the same chunk over and over, so steady-state
//! replay performs no per-event allocation at all.
//!
//! The batch encoding is deliberately minimal:
//!
//! * `tags[i] = (record << 1) | is_free` — the birth-order record index
//!   shifted up one bit, with the low bit distinguishing frees;
//! * `sizes[i]` — the requested byte size for allocations, `0` for
//!   frees.
//!
//! Producers exist for both ends of the pipeline: [`TraceChunks`]
//! batches an in-memory [`Trace`], and `lifepred-tracefile` decodes
//! `.lpt` sections directly into chunks without ever constructing
//! per-event values.

use crate::events::EventKind;
use crate::session::Trace;
use std::convert::Infallible;

/// Events per chunk. 4096 events is ~48 KB of chunk storage — well
/// inside L2 — while keeping refill overhead (one virtual-ish call per
/// chunk) far below one part in a thousand.
pub const CHUNK_EVENTS: usize = 4096;

/// Events per chunk for long-lived, pooled replay loops. 16384 events
/// is ~192 KB of chunk storage — still L2-resident on current parts —
/// and quarters the per-refill overhead (source dispatch, flight span,
/// loop restart) relative to [`CHUNK_EVENTS`]. Drivers that keep one
/// chunk alive for a whole replay should size it with this.
pub const POOLED_CHUNK_EVENTS: usize = 16 * 1024;

/// One decoded event, borrowed out of an [`EventChunk`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChunkEvent {
    /// Object `record` is allocated with `size` bytes.
    Alloc {
        /// Birth-order record index.
        record: usize,
        /// Requested size in bytes.
        size: u32,
    },
    /// Object `record` is freed.
    Free {
        /// Birth-order record index.
        record: usize,
    },
}

/// A reusable structure-of-arrays batch of replay events.
///
/// # Examples
///
/// ```
/// use lifepred_trace::{ChunkEvent, EventChunk};
///
/// let mut chunk = EventChunk::new();
/// chunk.push_alloc(0, 64);
/// chunk.push_free(0);
/// let events: Vec<ChunkEvent> = chunk.events().collect();
/// assert_eq!(events[0], ChunkEvent::Alloc { record: 0, size: 64 });
/// assert_eq!(events[1], ChunkEvent::Free { record: 0 });
/// ```
#[derive(Debug, Clone)]
pub struct EventChunk {
    /// `(record << 1) | is_free`, one word per event.
    tags: Vec<u64>,
    /// Requested size per event; `0` for frees.
    sizes: Vec<u32>,
    /// Events a [`ChunkSource`] should aim to batch per refill.
    target: usize,
}

impl Default for EventChunk {
    fn default() -> EventChunk {
        EventChunk::new()
    }
}

impl EventChunk {
    /// An empty chunk with room for [`CHUNK_EVENTS`] events.
    pub fn new() -> EventChunk {
        EventChunk::with_capacity(CHUNK_EVENTS)
    }

    /// An empty chunk with room for `capacity` events.
    ///
    /// The capacity doubles as the chunk's [`target`](Self::target):
    /// sources fill up to it per refill, so a chunk built with
    /// [`POOLED_CHUNK_EVENTS`] batches 4× more per source call.
    pub fn with_capacity(capacity: usize) -> EventChunk {
        let target = capacity.max(1);
        EventChunk {
            tags: Vec::with_capacity(target),
            sizes: Vec::with_capacity(target),
            target,
        }
    }

    /// Events a source should batch per refill — the capacity the
    /// chunk was built with.
    pub fn target(&self) -> usize {
        self.target
    }

    /// Empties the chunk, retaining its buffers.
    pub fn clear(&mut self) {
        self.tags.clear();
        self.sizes.clear();
    }

    /// Number of events currently batched.
    pub fn len(&self) -> usize {
        self.tags.len()
    }

    /// Whether the chunk holds no events.
    pub fn is_empty(&self) -> bool {
        self.tags.is_empty()
    }

    /// Appends an allocation of `size` bytes for record `record`.
    pub fn push_alloc(&mut self, record: u64, size: u32) {
        self.tags.push(record << 1);
        self.sizes.push(size);
    }

    /// Appends a free of record `record`.
    pub fn push_free(&mut self, record: u64) {
        self.tags.push((record << 1) | 1);
        self.sizes.push(0);
    }

    /// Iterates the batched events in order.
    pub fn events(&self) -> impl Iterator<Item = ChunkEvent> + '_ {
        self.tags.iter().zip(&self.sizes).map(|(&tag, &size)| {
            let record = (tag >> 1) as usize;
            if tag & 1 == 0 {
                ChunkEvent::Alloc { record, size }
            } else {
                ChunkEvent::Free { record }
            }
        })
    }
}

/// A producer of [`EventChunk`] batches.
///
/// `next_chunk` clears and refills the caller's chunk; returning
/// `Ok(false)` means the stream is exhausted (the chunk is left empty).
/// Sources are not required to fill chunks completely — only the final
/// `false` marks the end.
pub trait ChunkSource {
    /// Why the source can fail (use [`Infallible`] for in-memory
    /// sources).
    type Error;

    /// Refills `chunk` with the next batch of events.
    ///
    /// # Errors
    ///
    /// Decode or I/O failures of the underlying stream.
    fn next_chunk(&mut self, chunk: &mut EventChunk) -> Result<bool, Self::Error>;
}

/// Batches a materialized [`Trace`]'s event stream.
///
/// The interleaved stream is computed once at construction; each
/// [`ChunkSource::next_chunk`] call then copies a [`CHUNK_EVENTS`]-sized
/// window into the caller's chunk.
#[derive(Debug)]
pub struct TraceChunks {
    /// Pre-packed `(record << 1) | is_free` tags in program order.
    tags: Vec<u64>,
    /// Sizes parallel to `tags` (`0` for frees).
    sizes: Vec<u32>,
    /// Next unconsumed index into `tags`.
    pos: usize,
}

impl TraceChunks {
    /// Prepares the batched event stream of `trace`.
    pub fn new(trace: &Trace) -> TraceChunks {
        let records = trace.records();
        let events = trace.events();
        let mut tags = Vec::with_capacity(events.len());
        let mut sizes = Vec::with_capacity(events.len());
        for e in &events {
            match e.kind {
                EventKind::Alloc => {
                    tags.push((e.record as u64) << 1);
                    sizes.push(records[e.record].size);
                }
                EventKind::Free => {
                    tags.push(((e.record as u64) << 1) | 1);
                    sizes.push(0);
                }
            }
        }
        TraceChunks {
            tags,
            sizes,
            pos: 0,
        }
    }
}

impl ChunkSource for TraceChunks {
    type Error = Infallible;

    fn next_chunk(&mut self, chunk: &mut EventChunk) -> Result<bool, Infallible> {
        chunk.clear();
        let end = (self.pos + chunk.target()).min(self.tags.len());
        if self.pos == end {
            return Ok(false);
        }
        chunk.tags.extend_from_slice(&self.tags[self.pos..end]);
        chunk.sizes.extend_from_slice(&self.sizes[self.pos..end]);
        self.pos = end;
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::TraceSession;

    #[test]
    fn chunk_roundtrips_events() {
        let mut c = EventChunk::new();
        c.push_alloc(7, 640);
        c.push_free(7);
        c.push_alloc(8, 1);
        assert_eq!(c.len(), 3);
        let got: Vec<ChunkEvent> = c.events().collect();
        assert_eq!(
            got,
            vec![
                ChunkEvent::Alloc {
                    record: 7,
                    size: 640
                },
                ChunkEvent::Free { record: 7 },
                ChunkEvent::Alloc { record: 8, size: 1 },
            ]
        );
        c.clear();
        assert!(c.is_empty());
    }

    #[test]
    fn trace_chunks_match_the_event_stream() {
        let s = TraceSession::new("chunks");
        let mut held = Vec::new();
        for i in 0..10_000u32 {
            let id = s.alloc(i % 512 + 1);
            if i % 3 == 0 {
                s.free(id);
            } else {
                held.push(id);
            }
        }
        for id in held {
            s.free(id);
        }
        let t = s.finish();

        let mut src = TraceChunks::new(&t);
        let mut chunk = EventChunk::new();
        let mut got = Vec::new();
        while src.next_chunk(&mut chunk).unwrap() {
            assert!(chunk.len() <= CHUNK_EVENTS);
            got.extend(chunk.events());
        }
        assert!(chunk.is_empty(), "final refill leaves the chunk empty");

        let want: Vec<ChunkEvent> = t
            .events()
            .iter()
            .map(|e| match e.kind {
                EventKind::Alloc => ChunkEvent::Alloc {
                    record: e.record,
                    size: t.records()[e.record].size,
                },
                EventKind::Free => ChunkEvent::Free { record: e.record },
            })
            .collect();
        assert_eq!(got, want);
        assert_eq!(got.len(), 20_000);
    }

    #[test]
    fn capacity_sets_the_refill_target() {
        assert_eq!(EventChunk::new().target(), CHUNK_EVENTS);
        assert_eq!(EventChunk::default().target(), CHUNK_EVENTS);
        let big = EventChunk::with_capacity(POOLED_CHUNK_EVENTS);
        assert_eq!(big.target(), POOLED_CHUNK_EVENTS);
        // Degenerate capacities still make progress one event at a time.
        assert_eq!(EventChunk::with_capacity(0).target(), 1);

        let s = TraceSession::new("target");
        let mut ids = Vec::new();
        for i in 0..6_000u32 {
            ids.push(s.alloc(i % 64 + 1));
        }
        for id in ids {
            s.free(id);
        }
        let t = s.finish();
        let mut src = TraceChunks::new(&t);
        let mut chunk = EventChunk::with_capacity(512);
        let mut total = 0usize;
        while src.next_chunk(&mut chunk).unwrap() {
            assert!(chunk.len() <= 512);
            total += chunk.len();
        }
        assert_eq!(total, 12_000);
    }

    #[test]
    fn empty_trace_yields_no_chunks() {
        let t = TraceSession::new("empty").finish();
        let mut src = TraceChunks::new(&t);
        let mut chunk = EventChunk::new();
        assert!(!src.next_chunk(&mut chunk).unwrap());
        assert!(!src.next_chunk(&mut chunk).unwrap());
    }
}
