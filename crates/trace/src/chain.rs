//! Call-chains: ordered lists of functions on the shadow stack.

use crate::registry::{FnId, FunctionRegistry};
use std::collections::HashMap;
use std::fmt;

/// A compact identifier for an interned call-chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ChainId(pub(crate) u32);

impl ChainId {
    /// The raw interned index.
    pub fn index(self) -> u32 {
        self.0
    }

    /// Rebuilds an id from [`ChainId::index`], e.g. when deserializing
    /// a trace. Only meaningful against the same chain table.
    pub fn from_index(index: u32) -> ChainId {
        ChainId(index)
    }
}

/// An ordered list of functions, outermost first, innermost last.
///
/// This is the paper's *call-chain*: "the ordered list of functions
/// present on the runtime stack at any particular program event". The
/// innermost element is the function that directly performed the
/// allocation (the paper's length-1 sub-chain).
///
/// # Examples
///
/// ```
/// use lifepred_trace::{CallChain, FunctionRegistry};
///
/// let mut reg = FunctionRegistry::new();
/// let (a, b, c) = (reg.intern("a"), reg.intern("b"), reg.intern("c"));
/// let chain = CallChain::new(vec![a, b, c]);
/// assert_eq!(chain.sub_chain(2).frames(), &[b, c]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct CallChain(Vec<FnId>);

impl CallChain {
    /// Creates a chain from frames ordered outermost-first.
    pub fn new(frames: Vec<FnId>) -> Self {
        CallChain(frames)
    }

    /// The frames, outermost first.
    pub fn frames(&self) -> &[FnId] {
        &self.0
    }

    /// Chain depth.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Returns `true` for the empty chain (allocation outside any
    /// instrumented function).
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The innermost frame: the direct caller of the allocator.
    pub fn innermost(&self) -> Option<FnId> {
        self.0.last().copied()
    }

    /// The paper's *length-N sub-chain*: the last `n` callers.
    ///
    /// Per the paper, no recursion elimination is applied to length-N
    /// sub-chains (which is why the ∞ row of Table 6 can predict
    /// *less* than the length-7 row).
    pub fn sub_chain(&self, n: usize) -> CallChain {
        let start = self.0.len().saturating_sub(n);
        CallChain(self.0[start..].to_vec())
    }

    /// The complete chain with recursion cycles removed, gprof-style.
    ///
    /// See [`eliminate_cycles`].
    pub fn without_cycles(&self) -> CallChain {
        CallChain(eliminate_cycles(&self.0))
    }

    /// Carter's call-chain encryption key: the XOR of the 16-bit ids of
    /// every frame on the (raw) chain. Maintained incrementally at call
    /// time in a real implementation; computed directly here.
    pub fn encryption_key(&self) -> u16 {
        self.0.iter().fold(0u16, |k, f| k ^ f.encryption_key())
    }

    /// Renders the chain as `a>b>c` using `registry` for names.
    pub fn display<'a>(&'a self, registry: &'a FunctionRegistry) -> ChainDisplay<'a> {
        ChainDisplay {
            chain: self,
            registry,
        }
    }
}

impl From<Vec<FnId>> for CallChain {
    fn from(frames: Vec<FnId>) -> Self {
        CallChain::new(frames)
    }
}

/// Helper returned by [`CallChain::display`].
#[derive(Debug)]
pub struct ChainDisplay<'a> {
    chain: &'a CallChain,
    registry: &'a FunctionRegistry,
}

impl fmt::Display for ChainDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, &fid) in self.chain.frames().iter().enumerate() {
            if i > 0 {
                write!(f, ">")?;
            }
            match self.registry.name(fid) {
                Some(name) => write!(f, "{name}")?,
                None => write!(f, "{fid}")?,
            }
        }
        Ok(())
    }
}

/// Removes recursion cycles from a raw stack, outermost-first.
///
/// Mirrors gprof's collapsing of cycles in the dynamic call graph,
/// which the paper adopts: when a function already on the reduced
/// chain reappears, the whole loop back to its first occurrence is
/// collapsed. For example `a b c b d` reduces to `a b d`.
///
/// The result never contains the same function twice, and the
/// operation is idempotent.
pub fn eliminate_cycles(frames: &[FnId]) -> Vec<FnId> {
    let mut out: Vec<FnId> = Vec::with_capacity(frames.len());
    let mut pos: HashMap<FnId, usize> = HashMap::with_capacity(frames.len());
    for &f in frames {
        if let Some(&p) = pos.get(&f) {
            // Collapse the cycle: drop everything after the first
            // occurrence of `f` (keeping `f` itself).
            for dropped in out.drain(p + 1..) {
                pos.remove(&dropped);
            }
        } else {
            pos.insert(f, out.len());
            out.push(f);
        }
    }
    out
}

/// An interning table for call-chains.
///
/// Traces contain millions of allocations but only hundreds to a few
/// thousand distinct chains, so records store a [`ChainId`].
#[derive(Debug, Default, Clone)]
pub struct ChainTable {
    chains: Vec<CallChain>,
    index: HashMap<CallChain, ChainId>,
}

impl ChainTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        ChainTable::default()
    }

    /// Interns the chain formed by `frames` (outermost-first).
    pub fn intern(&mut self, frames: &[FnId]) -> ChainId {
        // Fast path: avoid allocating when the chain is already known.
        // HashMap's raw-entry API is unstable, so we pay one Vec clone
        // on the miss path only.
        if let Some(&id) = self.index.get(frames) {
            return id;
        }
        let chain = CallChain::new(frames.to_vec());
        let id =
            ChainId(u32::try_from(self.chains.len()).expect("more than u32::MAX chains interned"));
        self.chains.push(chain.clone());
        self.index.insert(chain, id);
        id
    }

    /// The chain behind `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` did not come from this table.
    pub fn get(&self, id: ChainId) -> &CallChain {
        &self.chains[id.0 as usize]
    }

    /// Number of distinct chains.
    pub fn len(&self) -> usize {
        self.chains.len()
    }

    /// Returns `true` if no chains are interned.
    pub fn is_empty(&self) -> bool {
        self.chains.is_empty()
    }

    /// Iterates over `(id, chain)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ChainId, &CallChain)> {
        self.chains
            .iter()
            .enumerate()
            .map(|(i, c)| (ChainId(i as u32), c))
    }
}

// Allow `index.get(frames)` lookups without building a CallChain.
impl std::borrow::Borrow<[FnId]> for CallChain {
    fn borrow(&self) -> &[FnId] {
        &self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(v: &[u32]) -> Vec<FnId> {
        v.iter().map(|&i| FnId(i)).collect()
    }

    #[test]
    fn sub_chain_takes_last_callers() {
        let c = CallChain::new(ids(&[1, 2, 3, 4]));
        assert_eq!(c.sub_chain(1).frames(), &ids(&[4])[..]);
        assert_eq!(c.sub_chain(2).frames(), &ids(&[3, 4])[..]);
        assert_eq!(c.sub_chain(10).frames(), &ids(&[1, 2, 3, 4])[..]);
        assert_eq!(c.innermost(), Some(FnId(4)));
    }

    #[test]
    fn cycle_elimination_simple_recursion() {
        // a b b b c -> a b c
        assert_eq!(eliminate_cycles(&ids(&[1, 2, 2, 2, 3])), ids(&[1, 2, 3]));
    }

    #[test]
    fn cycle_elimination_mutual_recursion() {
        // a b c b d -> a b d
        assert_eq!(eliminate_cycles(&ids(&[1, 2, 3, 2, 4])), ids(&[1, 2, 4]));
    }

    #[test]
    fn cycle_elimination_idempotent() {
        let raw = ids(&[1, 2, 3, 2, 4, 1, 5]);
        let once = eliminate_cycles(&raw);
        let twice = eliminate_cycles(&once);
        assert_eq!(once, twice);
        // No duplicates remain.
        let mut sorted = once.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), once.len());
    }

    #[test]
    fn cycle_elimination_empty_and_singleton() {
        assert_eq!(eliminate_cycles(&[]), Vec::<FnId>::new());
        assert_eq!(eliminate_cycles(&ids(&[7])), ids(&[7]));
    }

    #[test]
    fn chain_table_interns() {
        let mut t = ChainTable::new();
        let a = t.intern(&ids(&[1, 2]));
        let b = t.intern(&ids(&[1, 3]));
        let a2 = t.intern(&ids(&[1, 2]));
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(a).frames(), &ids(&[1, 2])[..]);
    }

    #[test]
    fn encryption_key_is_order_insensitive_xor() {
        let c1 = CallChain::new(ids(&[1, 2, 3]));
        let c2 = CallChain::new(ids(&[3, 2, 1]));
        // XOR is commutative — a known weakness of the scheme worth
        // pinning down in a test (distinct orderings collide).
        assert_eq!(c1.encryption_key(), c2.encryption_key());
        // But chains with different member sets almost surely differ.
        let c3 = CallChain::new(ids(&[1, 2, 4]));
        assert_ne!(c1.encryption_key(), c3.encryption_key());
    }

    #[test]
    fn display_uses_names() {
        let mut reg = FunctionRegistry::new();
        let a = reg.intern("main");
        let b = reg.intern("parse");
        let c = CallChain::new(vec![a, b]);
        assert_eq!(c.display(&reg).to_string(), "main>parse");
    }
}
