//! Aggregate execution statistics (the paper's Table 2).

/// Summary statistics for one traced execution.
///
/// These are the columns of the paper's Table 2: totals, high-water
/// marks, virtual instruction counts and the fraction of memory
/// references that touch the heap.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceStats {
    /// Total bytes allocated over the run.
    pub total_bytes: u64,
    /// Total objects allocated over the run.
    pub total_objects: u64,
    /// Maximum bytes simultaneously live.
    pub max_live_bytes: u64,
    /// Maximum objects simultaneously live.
    pub max_live_objects: u64,
    /// Virtual instructions executed (workload-reported work units).
    pub instructions: u64,
    /// Function calls observed on the shadow stack.
    pub function_calls: u64,
    /// Memory references made to heap objects.
    pub heap_refs: u64,
    /// Memory references made elsewhere (stack, globals, code).
    pub other_refs: u64,
}

impl TraceStats {
    /// Fraction of all memory references that touched the heap, in
    /// percent (Table 2's "Heap Refs" column). Zero if no references
    /// were recorded.
    pub fn heap_ref_pct(&self) -> f64 {
        let total = self.heap_refs + self.other_refs;
        if total == 0 {
            0.0
        } else {
            100.0 * self.heap_refs as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heap_ref_pct_basic() {
        let s = TraceStats {
            heap_refs: 80,
            other_refs: 20,
            ..TraceStats::default()
        };
        assert!((s.heap_ref_pct() - 80.0).abs() < 1e-9);
    }

    #[test]
    fn heap_ref_pct_empty() {
        assert_eq!(TraceStats::default().heap_ref_pct(), 0.0);
    }
}
