//! Per-object allocation records.

use crate::chain::ChainId;
use std::fmt;

/// Identity of a traced heap object, unique within one session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ObjectId(pub(crate) u64);

impl ObjectId {
    /// The raw per-session index.
    pub fn index(self) -> u64 {
        self.0
    }

    /// Rebuilds an id from [`ObjectId::index`], e.g. when
    /// deserializing a trace. Only meaningful against the same trace.
    pub fn from_index(index: u64) -> ObjectId {
        ObjectId(index)
    }
}

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "obj#{}", self.0)
    }
}

/// Everything the tracer learned about one heap object.
///
/// Clocks are measured in **bytes allocated so far** — the paper's time
/// measure — and sequence numbers give the exact interleaving of
/// allocation and deallocation events for replay.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllocationRecord {
    /// The object's identity.
    pub object: ObjectId,
    /// Requested size in bytes.
    pub size: u32,
    /// The complete raw call-chain at birth.
    pub chain: ChainId,
    /// Byte clock immediately before this allocation.
    pub birth_clock: u64,
    /// Byte clock at deallocation; `None` if never freed.
    pub death_clock: Option<u64>,
    /// Global event sequence number of the allocation.
    pub birth_seq: u64,
    /// Global event sequence number of the deallocation, if any.
    pub death_seq: Option<u64>,
    /// Heap references made to this object over its life.
    pub refs: u64,
    /// Byte clock at the first recorded reference; `None` if the
    /// object was never touched.
    pub first_ref_clock: Option<u64>,
    /// Byte clock at the last recorded reference; `None` if the
    /// object was never touched.
    pub last_ref_clock: Option<u64>,
}

impl AllocationRecord {
    /// The object's lifetime in bytes allocated, the paper's measure.
    ///
    /// An object allocated and immediately freed has a lifetime equal
    /// to its own size (the clock advances by `size` at allocation).
    /// Objects never freed are charged a lifetime running to
    /// `end_clock`, the byte clock at the end of the trace.
    pub fn lifetime(&self, end_clock: u64) -> u64 {
        let death = self.death_clock.unwrap_or(end_clock);
        death.saturating_sub(self.birth_clock)
    }

    /// Returns `true` if the object was still live at trace end.
    pub fn is_immortal(&self) -> bool {
        self.death_clock.is_none()
    }

    /// *Drag*: byte-clock distance between the object's last recorded
    /// reference and its death (or `end_clock` for immortal objects) —
    /// the window where the allocator held bytes the program had
    /// finished using. An object never touched drags for its whole
    /// lifetime.
    pub fn drag(&self, end_clock: u64) -> u64 {
        let death = self.death_clock.unwrap_or(end_clock);
        match self.last_ref_clock {
            Some(last) => death.saturating_sub(last),
            None => self.lifetime(end_clock),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(birth: u64, death: Option<u64>, size: u32) -> AllocationRecord {
        AllocationRecord {
            object: ObjectId(0),
            size,
            chain: ChainId(0),
            birth_clock: birth,
            death_clock: death,
            birth_seq: 0,
            death_seq: death.map(|_| 1),
            refs: 0,
            first_ref_clock: None,
            last_ref_clock: None,
        }
    }

    #[test]
    fn lifetime_includes_own_size() {
        // Allocate 16 bytes at clock 100 (clock becomes 116), free
        // immediately: lifetime is 16.
        let r = record(100, Some(116), 16);
        assert_eq!(r.lifetime(1000), 16);
        assert!(!r.is_immortal());
    }

    #[test]
    fn immortal_objects_live_to_end() {
        let r = record(100, None, 16);
        assert_eq!(r.lifetime(5000), 4900);
        assert!(r.is_immortal());
    }

    #[test]
    fn drag_measures_bytes_after_last_touch() {
        let mut r = record(100, Some(500), 16);
        r.first_ref_clock = Some(120);
        r.last_ref_clock = Some(300);
        assert_eq!(r.drag(1000), 200);
    }

    #[test]
    fn untouched_objects_drag_their_whole_lifetime() {
        let r = record(100, Some(500), 16);
        assert_eq!(r.drag(1000), r.lifetime(1000));
        let immortal = record(100, None, 16);
        assert_eq!(immortal.drag(1000), 900);
    }

    #[test]
    fn immortal_touched_objects_drag_to_trace_end() {
        let mut r = record(0, None, 8);
        r.first_ref_clock = Some(10);
        r.last_ref_clock = Some(40);
        assert_eq!(r.drag(100), 60);
    }
}
