//! Replay event streams: the interleaved alloc/free sequence of a trace.

use crate::record::ObjectId;
use crate::session::Trace;

/// What happened at one point in the trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// An object was allocated.
    Alloc,
    /// An object was deallocated.
    Free,
}

/// One allocation or deallocation event, in trace order.
///
/// `record` indexes into [`Trace::records`]; the record carries the
/// size and call-chain needed by the heap simulators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Global sequence number of the event.
    pub seq: u64,
    /// Allocation or deallocation.
    pub kind: EventKind,
    /// Index of the associated record in [`Trace::records`].
    pub record: usize,
    /// The object involved.
    pub object: ObjectId,
}

impl Trace {
    /// The interleaved alloc/free event stream, in program order.
    ///
    /// Heap simulators replay this stream to reproduce exactly the
    /// sequence of demands the traced program placed on its allocator.
    pub fn events(&self) -> Vec<Event> {
        let mut events = Vec::with_capacity(self.records().len() * 2);
        for (idx, r) in self.records().iter().enumerate() {
            events.push(Event {
                seq: r.birth_seq,
                kind: EventKind::Alloc,
                record: idx,
                object: r.object,
            });
            if let Some(death_seq) = r.death_seq {
                events.push(Event {
                    seq: death_seq,
                    kind: EventKind::Free,
                    record: idx,
                    object: r.object,
                });
            }
        }
        events.sort_unstable_by_key(|e| e.seq);
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::TraceSession;

    #[test]
    fn events_interleave_in_program_order() {
        let s = TraceSession::new("t");
        let a = s.alloc(1); // seq 0
        let b = s.alloc(2); // seq 1
        s.free(a); // seq 2
        let c = s.alloc(3); // seq 3
        s.free(c); // seq 4
        s.free(b); // seq 5
        let t = s.finish();
        let ev = t.events();
        let kinds: Vec<EventKind> = ev.iter().map(|e| e.kind).collect();
        use EventKind::*;
        assert_eq!(kinds, vec![Alloc, Alloc, Free, Alloc, Free, Free]);
        assert_eq!(ev[2].object, t.records()[0].object);
        // Sequence numbers are dense and ordered.
        for (i, e) in ev.iter().enumerate() {
            assert_eq!(e.seq, i as u64);
        }
    }

    #[test]
    fn immortal_objects_emit_no_free() {
        let s = TraceSession::new("t");
        s.alloc(8);
        let b = s.alloc(8);
        s.free(b);
        let t = s.finish();
        let ev = t.events();
        assert_eq!(ev.len(), 3);
        assert_eq!(ev.iter().filter(|e| e.kind == EventKind::Free).count(), 1);
    }
}
