//! Property tests over random session scripts: the tracer's clocks,
//! stats and event streams must stay consistent for any program shape.

use lifepred_trace::{EventKind, ObjectId, TraceSession};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Action {
    Enter(u8),
    Leave,
    Alloc(u32),
    /// Free the live object at index % len.
    Free(usize),
    Touch(usize, u8),
}

fn actions() -> impl Strategy<Value = Vec<Action>> {
    proptest::collection::vec(
        prop_oneof![
            (0u8..8).prop_map(Action::Enter),
            Just(Action::Leave),
            (1u32..5000).prop_map(Action::Alloc),
            (0usize..512).prop_map(Action::Free),
            ((0usize..512), (1u8..20)).prop_map(|(i, n)| Action::Touch(i, n)),
        ],
        0..300,
    )
}

/// Interprets a script; guards are managed as a stack of scopes.
fn run(script: &[Action]) -> (lifepred_trace::Trace, usize) {
    let session = TraceSession::new("prop");
    let mut guards = Vec::new();
    let mut live: Vec<ObjectId> = Vec::new();
    let mut freed = 0usize;
    for a in script {
        match a {
            Action::Enter(n) => guards.push(session.enter(&format!("f{n}"))),
            Action::Leave => {
                guards.pop();
            }
            Action::Alloc(size) => live.push(session.alloc(*size)),
            Action::Free(i) => {
                if !live.is_empty() {
                    let id = live.swap_remove(i % live.len());
                    session.free(id);
                    freed += 1;
                }
            }
            Action::Touch(i, n) => {
                if !live.is_empty() {
                    session.touch(live[i % live.len()], u64::from(*n));
                }
            }
        }
    }
    // Unwind remaining scopes innermost-first (Vec's Drop would run
    // front-to-back, violating the stack discipline).
    while guards.pop().is_some() {}
    (session.finish(), freed)
}

proptest! {
    /// The byte clock equals the sum of all sizes; totals agree.
    #[test]
    fn clock_and_totals_consistent(script in actions()) {
        let (trace, _) = run(&script);
        let sum: u64 = trace.records().iter().map(|r| u64::from(r.size)).sum();
        prop_assert_eq!(trace.end_clock(), sum);
        prop_assert_eq!(trace.stats().total_bytes, sum);
        prop_assert_eq!(trace.stats().total_objects, trace.records().len() as u64);
    }

    /// Deaths never precede births, and lifetimes are consistent with
    /// the clock bounds.
    #[test]
    fn lifetimes_well_ordered(script in actions()) {
        let (trace, _) = run(&script);
        let end = trace.end_clock();
        for r in trace.records() {
            if let Some(d) = r.death_clock {
                prop_assert!(d >= r.birth_clock + u64::from(r.size),
                    "death before own allocation completed");
                prop_assert!(d <= end);
            }
            prop_assert!(r.lifetime(end) <= end);
            prop_assert!(r.lifetime(end) >= u64::from(r.size) || r.is_immortal());
        }
    }

    /// The event stream has one alloc per record, one free per freed
    /// record, in strictly increasing sequence order, and every free
    /// follows its alloc.
    #[test]
    fn event_stream_well_formed(script in actions()) {
        let (trace, freed) = run(&script);
        let events = trace.events();
        let allocs = events.iter().filter(|e| e.kind == EventKind::Alloc).count();
        let frees = events.iter().filter(|e| e.kind == EventKind::Free).count();
        prop_assert_eq!(allocs, trace.records().len());
        prop_assert_eq!(frees, freed);
        let mut born = std::collections::HashSet::new();
        let mut last_seq = None;
        for e in &events {
            if let Some(prev) = last_seq {
                prop_assert!(e.seq > prev, "events out of order");
            }
            last_seq = Some(e.seq);
            match e.kind {
                EventKind::Alloc => {
                    prop_assert!(born.insert(e.record), "double alloc");
                }
                EventKind::Free => {
                    prop_assert!(born.contains(&e.record), "free before alloc");
                }
            }
        }
    }

    /// Max-live statistics dominate every prefix of the trace.
    #[test]
    fn max_live_is_a_true_maximum(script in actions()) {
        let (trace, _) = run(&script);
        let mut live_bytes = 0u64;
        let mut live_objects = 0u64;
        let mut seen_max_bytes = 0u64;
        let mut seen_max_objects = 0u64;
        for e in trace.events() {
            let r = &trace.records()[e.record];
            match e.kind {
                EventKind::Alloc => {
                    live_bytes += u64::from(r.size);
                    live_objects += 1;
                }
                EventKind::Free => {
                    live_bytes -= u64::from(r.size);
                    live_objects -= 1;
                }
            }
            seen_max_bytes = seen_max_bytes.max(live_bytes);
            seen_max_objects = seen_max_objects.max(live_objects);
        }
        prop_assert_eq!(trace.stats().max_live_bytes, seen_max_bytes);
        prop_assert_eq!(trace.stats().max_live_objects, seen_max_objects);
    }

    /// Heap-reference totals equal the per-record sums.
    #[test]
    fn refs_accounted(script in actions()) {
        let (trace, _) = run(&script);
        let sum: u64 = trace.records().iter().map(|r| r.refs).sum();
        prop_assert_eq!(trace.stats().heap_refs, sum);
    }
}
