//! A store-everything quantile oracle, used to validate P² estimates.

/// Exact quantiles computed by storing every observation.
///
/// This is the testing oracle for [`P2Quantile`](crate::P2Quantile) and
/// [`P2Histogram`](crate::P2Histogram), and is also used by the
/// experiment harness to report the approximation error that the paper
/// acknowledges (e.g. GHOST's 75% quantile).
///
/// # Examples
///
/// ```
/// use lifepred_quantile::ExactQuantiles;
///
/// let mut e = ExactQuantiles::new();
/// e.extend([3.0, 1.0, 2.0]);
/// assert_eq!(e.quantile(0.5), 2.0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ExactQuantiles {
    data: Vec<f64>,
    sorted: bool,
}

impl ExactQuantiles {
    /// Creates an empty oracle.
    pub fn new() -> Self {
        ExactQuantiles::default()
    }

    /// Feeds one observation.
    pub fn observe(&mut self, x: f64) {
        self.data.push(x);
        self.sorted = false;
    }

    /// Number of observations.
    pub fn count(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` if no observations have been fed.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Exact quantile `p` in `[0, 1]` (nearest-rank with interpolation
    /// matching the convention used by [`crate::P2Histogram`]).
    ///
    /// Returns `0.0` on an empty stream.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn quantile(&mut self, p: f64) -> f64 {
        assert!(
            (0.0..=1.0).contains(&p),
            "quantile must be in [0, 1], got {p}"
        );
        if self.data.is_empty() {
            return 0.0;
        }
        if !self.sorted {
            self.data
                .sort_by(|a, b| a.partial_cmp(b).expect("NaN observation"));
            self.sorted = true;
        }
        let pos = p * (self.data.len() - 1) as f64;
        let lo = pos.floor() as usize;
        let frac = pos - lo as f64;
        if lo + 1 >= self.data.len() {
            return self.data[self.data.len() - 1];
        }
        self.data[lo] + frac * (self.data[lo + 1] - self.data[lo])
    }
}

impl Extend<f64> for ExactQuantiles {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        self.data.extend(iter);
        self.sorted = false;
    }
}

impl FromIterator<f64> for ExactQuantiles {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut e = ExactQuantiles::new();
        e.extend(iter);
        e
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_on_small_sets() {
        let mut e: ExactQuantiles = [10.0, 20.0, 30.0, 40.0, 50.0].into_iter().collect();
        assert_eq!(e.quantile(0.0), 10.0);
        assert_eq!(e.quantile(0.25), 20.0);
        assert_eq!(e.quantile(0.5), 30.0);
        assert_eq!(e.quantile(1.0), 50.0);
    }

    #[test]
    fn interpolates() {
        let mut e: ExactQuantiles = [0.0, 10.0].into_iter().collect();
        assert_eq!(e.quantile(0.5), 5.0);
    }

    #[test]
    fn empty_reads_zero() {
        let mut e = ExactQuantiles::new();
        assert_eq!(e.quantile(0.5), 0.0);
        assert!(e.is_empty());
    }
}
