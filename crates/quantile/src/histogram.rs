//! The extended (histogram) form of the P² algorithm.

/// An equiprobable-cell quantile histogram maintained in constant space.
///
/// This is the "quantile histogram" the paper attaches to every
/// allocation site: `cells` equiprobable cells are delimited by
/// `cells + 1` markers whose heights approximate the `i / cells`
/// quantiles of the observation stream. Any quantile can then be read
/// with [`P2Histogram::quantile`] by interpolating between markers.
///
/// # Examples
///
/// ```
/// use lifepred_quantile::P2Histogram;
///
/// let mut h = P2Histogram::new(8);
/// for i in 0..10_000 {
///     h.observe((i % 100) as f64);
/// }
/// assert!((h.quantile(0.25) - 25.0).abs() < 5.0);
/// assert_eq!(h.quantile(0.0), 0.0);   // exact minimum
/// assert_eq!(h.quantile(1.0), 99.0);  // exact maximum
/// ```
#[derive(Debug, Clone)]
pub struct P2Histogram {
    /// Marker heights (approximate quantile values).
    q: Vec<f64>,
    /// Actual marker positions (1-based ranks).
    n: Vec<f64>,
    /// Desired marker positions.
    np: Vec<f64>,
    count: usize,
    /// Buffered observations until we have `markers` of them.
    init: Vec<f64>,
}

impl P2Histogram {
    /// Creates a histogram with `cells` equiprobable cells.
    ///
    /// # Panics
    ///
    /// Panics if `cells < 2`.
    pub fn new(cells: usize) -> Self {
        assert!(cells >= 2, "histogram needs at least 2 cells, got {cells}");
        let markers = cells + 1;
        P2Histogram {
            q: vec![0.0; markers],
            n: (0..markers).map(|i| (i + 1) as f64).collect(),
            np: (0..markers).map(|i| (i + 1) as f64).collect(),
            count: 0,
            init: Vec::with_capacity(markers),
        }
    }

    /// A 4-cell histogram: exactly the quartile summaries of Table 3.
    pub fn quartiles() -> Self {
        P2Histogram::new(4)
    }

    /// Number of cells.
    pub fn cells(&self) -> usize {
        self.q.len() - 1
    }

    /// Number of observations seen so far.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Feeds one observation into the histogram.
    pub fn observe(&mut self, x: f64) {
        let markers = self.q.len();
        if self.count < markers {
            self.init.push(x);
            self.count += 1;
            if self.count == markers {
                self.init
                    .sort_by(|a, b| a.partial_cmp(b).expect("NaN observation"));
                self.q.copy_from_slice(&self.init);
            }
            return;
        }
        self.count += 1;

        // Locate the cell containing x, updating extremes.
        let last = markers - 1;
        let k = if x < self.q[0] {
            self.q[0] = x;
            0
        } else if x >= self.q[last] {
            self.q[last] = x;
            last - 1
        } else {
            let mut k = 0;
            for i in 0..last {
                if x >= self.q[i] && x < self.q[i + 1] {
                    k = i;
                    break;
                }
            }
            k
        };

        for n in self.n.iter_mut().skip(k + 1) {
            *n += 1.0;
        }
        // Desired position of marker i after n observations is
        // 1 + i * (n - 1) / cells; increment is i / cells.
        let cells = last as f64;
        for (i, np) in self.np.iter_mut().enumerate() {
            *np += i as f64 / cells;
        }

        // Adjust interior markers.
        for i in 1..last {
            let d = self.np[i] - self.n[i];
            if (d >= 1.0 && self.n[i + 1] - self.n[i] > 1.0)
                || (d <= -1.0 && self.n[i - 1] - self.n[i] < -1.0)
            {
                let d = d.signum();
                let qp = self.parabolic(d, i);
                self.q[i] = if self.q[i - 1] < qp && qp < self.q[i + 1] {
                    qp
                } else {
                    self.linear(d, i)
                };
                self.n[i] += d;
            }
        }
    }

    fn parabolic(&self, d: f64, i: usize) -> f64 {
        let (q, n) = (&self.q, &self.n);
        q[i] + d / (n[i + 1] - n[i - 1])
            * ((n[i] - n[i - 1] + d) * (q[i + 1] - q[i]) / (n[i + 1] - n[i])
                + (n[i + 1] - n[i] - d) * (q[i] - q[i - 1]) / (n[i] - n[i - 1]))
    }

    fn linear(&self, d: f64, i: usize) -> f64 {
        let j = if d > 0.0 { i + 1 } else { i - 1 };
        self.q[i] + d * (self.q[j] - self.q[i]) / (self.n[j] - self.n[i])
    }

    /// Reads the estimated quantile `p` (in `[0, 1]`) from the markers.
    ///
    /// `quantile(0.0)` and `quantile(1.0)` are the exact minimum and
    /// maximum. Interior quantiles interpolate linearly between the two
    /// nearest markers.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn quantile(&self, p: f64) -> f64 {
        assert!(
            (0.0..=1.0).contains(&p),
            "quantile must be in [0, 1], got {p}"
        );
        if self.count == 0 {
            return 0.0;
        }
        let markers = self.q.len();
        if self.count < markers {
            let mut v = self.init.clone();
            v.sort_by(|a, b| a.partial_cmp(b).expect("NaN observation"));
            let idx = ((v.len() as f64 - 1.0) * p).round() as usize;
            return v[idx.min(v.len() - 1)];
        }
        let pos = p * (markers - 1) as f64;
        let lo = pos.floor() as usize;
        if lo >= markers - 1 {
            return self.q[markers - 1];
        }
        let frac = pos - lo as f64;
        self.q[lo] + frac * (self.q[lo + 1] - self.q[lo])
    }

    /// Exact minimum of the stream.
    pub fn min(&self) -> f64 {
        self.quantile(0.0)
    }

    /// Exact maximum of the stream.
    pub fn max(&self) -> f64 {
        self.quantile(1.0)
    }

    /// All marker heights, i.e. estimated quantiles `i / cells`.
    pub fn markers(&self) -> &[f64] {
        &self.q
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quartiles_of_uniform() {
        let mut h = P2Histogram::quartiles();
        for i in 0..100_000 {
            h.observe((i % 1000) as f64);
        }
        assert!((h.quantile(0.25) - 250.0).abs() < 20.0);
        assert!((h.quantile(0.5) - 500.0).abs() < 20.0);
        assert!((h.quantile(0.75) - 750.0).abs() < 20.0);
    }

    #[test]
    fn extremes_are_exact() {
        let mut h = P2Histogram::new(4);
        for i in 0..1000 {
            h.observe(i as f64);
        }
        assert_eq!(h.min(), 0.0);
        assert_eq!(h.max(), 999.0);
    }

    #[test]
    fn small_streams_use_exact_prefix() {
        let mut h = P2Histogram::new(10);
        for x in [5.0, 1.0, 3.0] {
            h.observe(x);
        }
        assert_eq!(h.quantile(0.0), 1.0);
        assert_eq!(h.quantile(1.0), 5.0);
        assert_eq!(h.quantile(0.5), 3.0);
    }

    #[test]
    fn empty_histogram_reads_zero() {
        let h = P2Histogram::new(4);
        assert_eq!(h.quantile(0.5), 0.0);
    }

    #[test]
    fn marker_heights_monotone() {
        let mut h = P2Histogram::new(8);
        for i in 0..50_000 {
            // Lifetime-like skew.
            let x = if i % 50 == 0 {
                100_000.0
            } else {
                (i % 64) as f64
            };
            h.observe(x);
        }
        let m = h.markers();
        for w in m.windows(2) {
            assert!(w[0] <= w[1], "markers out of order: {m:?}");
        }
    }

    #[test]
    #[should_panic(expected = "at least 2 cells")]
    fn rejects_tiny_histogram() {
        let _ = P2Histogram::new(1);
    }
}
