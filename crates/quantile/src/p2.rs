//! The classic five-marker P² estimator for a single quantile.

/// Estimates a single quantile of a stream using the P² algorithm.
///
/// The estimator keeps five *markers*: the minimum, the maximum, the
/// target quantile and two intermediate quantiles. Marker heights are
/// adjusted with a piecewise-parabolic (hence "P²") interpolation as
/// observations arrive, so the estimate uses O(1) space regardless of
/// stream length.
///
/// # Examples
///
/// ```
/// use lifepred_quantile::P2Quantile;
///
/// let mut q = P2Quantile::new(0.5);
/// for x in 1..=101 {
///     q.observe(x as f64);
/// }
/// assert!((q.estimate() - 51.0).abs() < 2.0);
/// ```
#[derive(Debug, Clone)]
pub struct P2Quantile {
    p: f64,
    /// Marker heights.
    q: [f64; 5],
    /// Marker positions (1-based observation counts).
    n: [f64; 5],
    /// Desired marker positions.
    np: [f64; 5],
    /// Desired position increments.
    dn: [f64; 5],
    count: usize,
    /// First five observations, collected before the markers start.
    init: [f64; 5],
}

impl P2Quantile {
    /// Creates an estimator for quantile `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `(0, 1)`.
    pub fn new(p: f64) -> Self {
        assert!(p > 0.0 && p < 1.0, "quantile must be in (0, 1), got {p}");
        P2Quantile {
            p,
            q: [0.0; 5],
            n: [1.0, 2.0, 3.0, 4.0, 5.0],
            np: [1.0, 1.0 + 2.0 * p, 1.0 + 4.0 * p, 3.0 + 2.0 * p, 5.0],
            dn: [0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0],
            count: 0,
            init: [0.0; 5],
        }
    }

    /// The quantile this estimator tracks.
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Number of observations seen so far.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Feeds one observation into the estimator.
    pub fn observe(&mut self, x: f64) {
        if self.count < 5 {
            self.init[self.count] = x;
            self.count += 1;
            if self.count == 5 {
                self.init
                    .sort_by(|a, b| a.partial_cmp(b).expect("NaN observation"));
                self.q = self.init;
            }
            return;
        }
        self.count += 1;

        // Find the cell containing x and clamp extremes.
        let k = if x < self.q[0] {
            self.q[0] = x;
            0
        } else if x >= self.q[4] {
            self.q[4] = x;
            3
        } else {
            // q[k] <= x < q[k + 1]
            let mut k = 0;
            for i in 0..4 {
                if x >= self.q[i] && x < self.q[i + 1] {
                    k = i;
                    break;
                }
            }
            k
        };

        for n in self.n.iter_mut().skip(k + 1) {
            *n += 1.0;
        }
        for (np, dn) in self.np.iter_mut().zip(self.dn) {
            *np += dn;
        }

        // Adjust interior markers if needed.
        for i in 1..4 {
            let d = self.np[i] - self.n[i];
            let right_gap = self.n[i + 1] - self.n[i];
            let left_gap = self.n[i - 1] - self.n[i];
            if (d >= 1.0 && right_gap > 1.0) || (d <= -1.0 && left_gap < -1.0) {
                let d = d.signum();
                let qp = parabolic(d, &self.q, &self.n, i);
                self.q[i] = if self.q[i - 1] < qp && qp < self.q[i + 1] {
                    qp
                } else {
                    linear(d, &self.q, &self.n, i)
                };
                self.n[i] += d;
            }
        }
    }

    /// Current estimate of the tracked quantile.
    ///
    /// With fewer than five observations the estimate is read from the
    /// sorted prefix; with zero observations it is `0.0`.
    pub fn estimate(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        if self.count < 5 {
            let mut v = self.init[..self.count].to_vec();
            v.sort_by(|a, b| a.partial_cmp(b).expect("NaN observation"));
            let idx = ((self.count as f64 - 1.0) * self.p).round() as usize;
            return v[idx.min(self.count - 1)];
        }
        self.q[2]
    }

    /// Smallest observation seen.
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else if self.count < 5 {
            self.init[..self.count]
                .iter()
                .copied()
                .fold(f64::INFINITY, f64::min)
        } else {
            self.q[0]
        }
    }

    /// Largest observation seen.
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else if self.count < 5 {
            self.init[..self.count]
                .iter()
                .copied()
                .fold(f64::NEG_INFINITY, f64::max)
        } else {
            self.q[4]
        }
    }
}

/// Piecewise-parabolic marker height prediction (formula from the paper).
fn parabolic(d: f64, q: &[f64; 5], n: &[f64; 5], i: usize) -> f64 {
    q[i] + d / (n[i + 1] - n[i - 1])
        * ((n[i] - n[i - 1] + d) * (q[i + 1] - q[i]) / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - d) * (q[i] - q[i - 1]) / (n[i] - n[i - 1]))
}

/// Linear fallback when the parabolic prediction is out of order.
fn linear(d: f64, q: &[f64; 5], n: &[f64; 5], i: usize) -> f64 {
    let j = if d > 0.0 { i + 1 } else { i - 1 };
    q[i] + d * (q[j] - q[i]) / (n[j] - n[i])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_converges() {
        // The worked example from Jain & Chlamtac (CACM 1985), p = 0.5.
        let data = [
            0.02, 0.15, 0.74, 3.39, 0.83, 22.37, 10.15, 15.43, 38.62, 15.92, 34.60, 10.28, 1.47,
            0.40, 0.05, 11.39, 0.27, 0.42, 0.09, 11.37,
        ];
        let mut q = P2Quantile::new(0.5);
        for x in data {
            q.observe(x);
        }
        // Published estimate after 20 observations is 4.44.
        assert!((q.estimate() - 4.44).abs() < 0.01, "got {}", q.estimate());
    }

    #[test]
    fn uniform_median() {
        let mut q = P2Quantile::new(0.5);
        for i in 0..10_000 {
            q.observe((i % 1000) as f64);
        }
        assert!((q.estimate() - 500.0).abs() < 25.0);
    }

    #[test]
    fn min_max_exact() {
        let mut q = P2Quantile::new(0.9);
        for i in (0..100).rev() {
            q.observe(i as f64 * 3.0);
        }
        assert_eq!(q.min(), 0.0);
        assert_eq!(q.max(), 297.0);
    }

    #[test]
    fn few_observations_fall_back_to_sorted_prefix() {
        let mut q = P2Quantile::new(0.5);
        q.observe(10.0);
        q.observe(2.0);
        q.observe(7.0);
        assert_eq!(q.estimate(), 7.0);
        assert_eq!(q.count(), 3);
        assert_eq!(q.min(), 2.0);
        assert_eq!(q.max(), 10.0);
    }

    #[test]
    fn empty_estimator() {
        let q = P2Quantile::new(0.25);
        assert_eq!(q.estimate(), 0.0);
        assert_eq!(q.count(), 0);
    }

    #[test]
    #[should_panic(expected = "quantile must be in (0, 1)")]
    fn rejects_invalid_p() {
        let _ = P2Quantile::new(1.5);
    }

    #[test]
    fn constant_stream() {
        let mut q = P2Quantile::new(0.75);
        for _ in 0..100 {
            q.observe(42.0);
        }
        assert_eq!(q.estimate(), 42.0);
    }

    #[test]
    fn skewed_distribution() {
        // Mirror allocation lifetimes: mostly tiny, a few huge.
        let mut q = P2Quantile::new(0.5);
        for i in 0..1000 {
            let x = if i % 100 == 0 { 1_000_000.0 } else { 16.0 };
            q.observe(x);
        }
        assert!(
            q.estimate() < 1000.0,
            "median should stay small: {}",
            q.estimate()
        );
    }
}
