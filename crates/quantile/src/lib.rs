//! Dynamic quantile estimation without storing observations.
//!
//! This crate implements the P² ("P-square") algorithm of Jain and
//! Chlamtac (CACM 1985), which the paper uses to summarize the lifetime
//! distribution of every allocation site in constant space:
//!
//! * [`P2Quantile`] tracks a single quantile `p` with five markers.
//! * [`P2Histogram`] tracks a whole equiprobable-cell histogram
//!   (`cells + 1` markers), from which any quantile can be read — this
//!   is the "quantile histogram" of the paper's Table 3.
//! * [`ExactQuantiles`] is a store-everything oracle used by tests and
//!   by experiments that want to quantify the P² approximation error
//!   (the paper itself notes GHOST's 75% quantile is over-approximated).
//!
//! # Examples
//!
//! ```
//! use lifepred_quantile::P2Histogram;
//!
//! let mut hist = P2Histogram::quartiles();
//! for x in 0..1000 {
//!     hist.observe(x as f64);
//! }
//! let median = hist.quantile(0.5);
//! assert!((median - 500.0).abs() < 50.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod exact;
mod histogram;
mod p2;

pub use exact::ExactQuantiles;
pub use histogram::P2Histogram;
pub use p2::P2Quantile;
