//! Property-based tests comparing P² estimates against the exact oracle.

use lifepred_quantile::{ExactQuantiles, P2Histogram, P2Quantile};
use proptest::prelude::*;

proptest! {
    /// The single-quantile estimator stays within a loose relative band
    /// of the true quantile for well-behaved streams.
    #[test]
    fn p2_tracks_uniform_median(seed in 0u64..1000) {
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        let mut q = P2Quantile::new(0.5);
        let mut exact = ExactQuantiles::new();
        for _ in 0..2000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let x = ((state >> 33) % 10_000) as f64;
            q.observe(x);
            exact.observe(x);
        }
        let truth = exact.quantile(0.5);
        prop_assert!((q.estimate() - truth).abs() < 1000.0,
            "estimate {} vs truth {}", q.estimate(), truth);
    }

    /// Histogram extremes are always exact, and markers are sorted.
    #[test]
    fn histogram_invariants(xs in proptest::collection::vec(0.0f64..1e9, 1..500)) {
        let mut h = P2Histogram::new(4);
        for &x in &xs {
            h.observe(x);
        }
        let min = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert_eq!(h.min(), min);
        prop_assert_eq!(h.max(), max);
        if xs.len() >= 5 {
            let m = h.markers();
            for w in m.windows(2) {
                prop_assert!(w[0] <= w[1]);
            }
        }
    }

    /// Quantile reads are monotone in p.
    #[test]
    fn quantile_monotone_in_p(xs in proptest::collection::vec(0.0f64..1e6, 10..300)) {
        let mut h = P2Histogram::new(8);
        for &x in &xs {
            h.observe(x);
        }
        let mut prev = h.quantile(0.0);
        for i in 1..=20 {
            let cur = h.quantile(i as f64 / 20.0);
            prop_assert!(cur >= prev - 1e-9, "non-monotone at {i}: {cur} < {prev}");
            prev = cur;
        }
    }

    /// Estimates always lie within [min, max] of the stream.
    #[test]
    fn estimate_within_range(xs in proptest::collection::vec(-1e6f64..1e6, 5..400), p in 0.01f64..0.99) {
        let mut q = P2Quantile::new(p);
        for &x in &xs {
            q.observe(x);
        }
        let min = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(q.estimate() >= min - 1e-9 && q.estimate() <= max + 1e-9);
    }
}
