//! In-process lifetime profiling for training runs.

use crate::database::RuntimeSiteDb;
use crate::site::SiteKey;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Handle for one live allocation being profiled.
///
/// Returned by [`RuntimeProfiler::record_alloc`]; hand it back to
/// [`RuntimeProfiler::record_free`] when the object dies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AllocTicket(u64);

#[derive(Debug, Default, Clone, Copy)]
struct SiteAgg {
    objects: u64,
    bytes: u64,
    max_lifetime: u64,
}

#[derive(Debug)]
struct Live {
    site: SiteKey,
    size: u64,
    birth_clock: u64,
}

/// Records (site, size, lifetime) for every allocation of a training
/// run, measuring lifetimes on the paper's byte clock.
///
/// Thread-safe: the clock is atomic and tables are mutex-protected
/// (profiling runs are not performance-critical).
#[derive(Debug)]
pub struct RuntimeProfiler {
    threshold: u64,
    clock: AtomicU64,
    next_ticket: AtomicU64,
    live: Mutex<HashMap<u64, Live>>,
    sites: Mutex<HashMap<SiteKey, SiteAgg>>,
}

impl RuntimeProfiler {
    /// Creates a profiler with the short-lived `threshold` in bytes.
    pub fn new(threshold: u64) -> Self {
        RuntimeProfiler {
            threshold,
            clock: AtomicU64::new(0),
            next_ticket: AtomicU64::new(0),
            live: Mutex::new(HashMap::new()),
            sites: Mutex::new(HashMap::new()),
        }
    }

    /// Records an allocation of `size` bytes at `site` (the size class
    /// is folded into the site, per the paper).
    pub fn record_alloc(&self, site: SiteKey, size: usize) -> AllocTicket {
        let site = site.with_size(size);
        let birth = self.clock.fetch_add(size as u64, Ordering::Relaxed);
        let ticket = self.next_ticket.fetch_add(1, Ordering::Relaxed);
        self.live.lock().insert(
            ticket,
            Live {
                site,
                size: size as u64,
                birth_clock: birth,
            },
        );
        AllocTicket(ticket)
    }

    /// Records the death of a profiled allocation.
    ///
    /// Unknown tickets (e.g. double frees) are ignored, matching a
    /// profiler's best-effort role.
    pub fn record_free(&self, ticket: AllocTicket) {
        let Some(live) = self.live.lock().remove(&ticket.0) else {
            return;
        };
        let now = self.clock.load(Ordering::Relaxed);
        let lifetime = now.saturating_sub(live.birth_clock);
        let mut sites = self.sites.lock();
        let agg = sites.entry(live.site).or_default();
        agg.objects += 1;
        agg.bytes += live.size;
        agg.max_lifetime = agg.max_lifetime.max(lifetime);
    }

    /// Bytes allocated so far (the byte clock).
    pub fn clock(&self) -> u64 {
        self.clock.load(Ordering::Relaxed)
    }

    /// Trains a database with the paper's all-short rule: a site is
    /// admitted iff every *freed* object died under the threshold and
    /// nothing allocated there is still live (still-live objects are
    /// not short-lived).
    pub fn train(&self) -> RuntimeSiteDb {
        let mut db = RuntimeSiteDb::new(self.threshold);
        let live = self.live.lock();
        let mut leaky: HashMap<SiteKey, bool> = HashMap::new();
        for l in live.values() {
            leaky.insert(l.site, true);
        }
        for (&site, agg) in self.sites.lock().iter() {
            if agg.objects > 0 && agg.max_lifetime < self.threshold && !leaky.contains_key(&site) {
                db.insert(site);
            }
        }
        db
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::site::site_key;

    #[test]
    fn trains_short_sites_only() {
        let p = RuntimeProfiler::new(1000);
        let short_site = site_key();
        let long_site = site_key();
        // Short-lived: freed immediately.
        for _ in 0..10 {
            let t = p.record_alloc(short_site, 16);
            p.record_free(t);
        }
        // Long-lived: freed after the clock advanced past threshold.
        let t = p.record_alloc(long_site, 16);
        for _ in 0..100 {
            let x = p.record_alloc(short_site, 16);
            p.record_free(x);
        }
        p.record_free(t);
        let db = p.train();
        assert!(db.predicts(short_site.with_size(16)));
        assert!(!db.predicts(long_site.with_size(16)));
    }

    #[test]
    fn still_live_objects_block_their_site() {
        let p = RuntimeProfiler::new(1_000_000);
        let site = site_key();
        let _never_freed = p.record_alloc(site, 8);
        let t = p.record_alloc(site, 8);
        p.record_free(t);
        let db = p.train();
        assert!(!db.predicts(site.with_size(8)), "leaky site admitted");
    }

    #[test]
    fn unknown_ticket_is_ignored() {
        let p = RuntimeProfiler::new(100);
        p.record_free(AllocTicket(12345)); // must not panic
        assert_eq!(p.clock(), 0);
    }

    #[test]
    fn clock_advances_by_bytes() {
        let p = RuntimeProfiler::new(100);
        let site = site_key();
        let t1 = p.record_alloc(site, 30);
        let t2 = p.record_alloc(site, 12);
        assert_eq!(p.clock(), 42);
        p.record_free(t1);
        p.record_free(t2);
    }
}
