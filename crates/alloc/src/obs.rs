//! Observability wiring for the runtime allocators.
//!
//! [`AllocObs`] bundles the `lifepred_alloc_*` metric handles an
//! allocator records into. Two publication patterns share the handles:
//!
//! * [`PredictiveAllocator`](crate::PredictiveAllocator) updates them
//!   live — one uncontended sharded Relaxed add per event; its single
//!   global mutex dwarfs that cost anyway.
//! * [`ShardedAllocator`](crate::ShardedAllocator) accumulates an
//!   [`ObsDelta`] of **plain** fields inside each shard, under the
//!   shard mutex the fast path already holds — zero extra atomics per
//!   event — and drains the deltas into the shared handles at epoch
//!   ticks and `export_metrics`. That batching is how the recorded
//!   < 2% observability-overhead budget survives a raw alloc/free
//!   microbenchmark.
//!
//! Handles are `Arc`s into a [`Registry`], so the registry lock is
//! touched only at registration and export time, never per allocation.

use lifepred_obs::{Counter, EpochTimeline, HistogramSnapshot, LogHistogram, Registry};
use std::sync::Arc;

/// Hot-path metric handles for one allocator, registered under the
/// `lifepred_alloc_*` names (shared by both allocators: attach each to
/// its own [`Registry`] to keep them apart).
#[derive(Debug, Clone)]
pub struct AllocObs {
    /// `lifepred_alloc_allocs_total` — every allocation.
    pub allocs_total: Arc<Counter>,
    /// `lifepred_alloc_arena_allocs_total` — served from an arena.
    pub arena_allocs_total: Arc<Counter>,
    /// `lifepred_alloc_general_allocs_total` — served by the system
    /// allocator.
    pub general_allocs_total: Arc<Counter>,
    /// `lifepred_alloc_frees_total` — every free.
    pub frees_total: Arc<Counter>,
    /// `lifepred_alloc_overflows_total` — predicted-short allocations
    /// that had to fall back.
    pub overflows_total: Arc<Counter>,
    /// `lifepred_alloc_double_frees_total` — detected double frees.
    pub double_frees_total: Arc<Counter>,
    /// `lifepred_alloc_size_bytes` — requested allocation sizes.
    pub size_bytes: Arc<LogHistogram>,
    /// `lifepred_alloc_latency_ns` — allocation wall time; stays empty
    /// unless `lifepred-obs` is built with its `timing` feature.
    pub latency_ns: Arc<LogHistogram>,
    /// `lifepred_alloc_epochs` — one sample per adaptive epoch tick.
    pub timeline: Arc<EpochTimeline>,
}

impl AllocObs {
    /// Registers (or re-fetches) the allocator metric set in `registry`.
    pub fn register(registry: &Registry) -> AllocObs {
        AllocObs {
            allocs_total: registry.counter("lifepred_alloc_allocs_total"),
            arena_allocs_total: registry.counter("lifepred_alloc_arena_allocs_total"),
            general_allocs_total: registry.counter("lifepred_alloc_general_allocs_total"),
            frees_total: registry.counter("lifepred_alloc_frees_total"),
            overflows_total: registry.counter("lifepred_alloc_overflows_total"),
            double_frees_total: registry.counter("lifepred_alloc_double_frees_total"),
            size_bytes: registry.histogram("lifepred_alloc_size_bytes"),
            latency_ns: registry.histogram("lifepred_alloc_latency_ns"),
            timeline: registry.timeline("lifepred_alloc_epochs"),
        }
    }

    /// Records one allocation outcome.
    #[inline]
    pub(crate) fn on_alloc(&self, size: u64, arena: bool) {
        self.allocs_total.inc();
        self.size_bytes.observe(size);
        if arena {
            self.arena_allocs_total.inc();
        } else {
            self.general_allocs_total.inc();
        }
    }
}

/// Plain per-shard metric deltas for the sharded allocator's fast
/// path: bumped under the shard mutex that path already holds, then
/// drained into the shared [`AllocObs`] atomics by
/// [`ObsDelta::drain_into`] at epoch ticks and export time.
#[derive(Debug, Default)]
pub(crate) struct ObsDelta {
    pub(crate) general_allocs: u64,
    pub(crate) frees: u64,
    pub(crate) overflows: u64,
    pub(crate) double_frees: u64,
    pub(crate) sizes: HistogramSnapshot,
}

impl ObsDelta {
    /// Publishes and resets this delta. The size histogram records
    /// every allocation and each lands in exactly one of the
    /// arena/general buckets, so the arena-served hot path bumps
    /// nothing extra: `allocs` is the histogram count and `arena` is
    /// that count minus the (rare) general-path bumps.
    pub(crate) fn drain_into(&mut self, obs: &AllocObs) {
        let d = std::mem::take(self);
        obs.allocs_total.add(d.sizes.count);
        obs.arena_allocs_total.add(d.sizes.count - d.general_allocs);
        obs.general_allocs_total.add(d.general_allocs);
        obs.frees_total.add(d.frees);
        obs.overflows_total.add(d.overflows);
        obs.double_frees_total.add(d.double_frees);
        obs.size_bytes.absorb(&d.sizes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_is_idempotent() {
        let reg = Registry::new();
        let a = AllocObs::register(&reg);
        let b = AllocObs::register(&reg);
        a.allocs_total.inc();
        b.allocs_total.inc();
        assert_eq!(
            reg.snapshot().counter("lifepred_alloc_allocs_total"),
            Some(2),
            "both handles must hit the same counter"
        );
    }

    #[test]
    fn on_alloc_routes_by_outcome() {
        let reg = Registry::new();
        let obs = AllocObs::register(&reg);
        obs.on_alloc(64, true);
        obs.on_alloc(32, false);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("lifepred_alloc_allocs_total"), Some(2));
        assert_eq!(snap.counter("lifepred_alloc_arena_allocs_total"), Some(1));
        assert_eq!(snap.counter("lifepred_alloc_general_allocs_total"), Some(1));
        let sizes = snap
            .histogram("lifepred_alloc_size_bytes")
            .expect("histogram");
        assert_eq!(sizes.count, 2);
        assert_eq!(sizes.sum, 96);
    }
}
