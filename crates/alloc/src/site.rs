//! Runtime allocation-site capture.
//!
//! The paper's site is an abstraction of the call-stack. Portable Rust
//! cannot walk frame pointers, so we reproduce the paper's *other*
//! proposal — Carter's call-chain encryption — in library form: every
//! instrumented scope XORs a per-scope 16-bit id into a thread-local
//! key on entry and removes it on exit (XOR is its own inverse), a
//! constant cost per call. [`site_key`] combines that ambient key with
//! the `#[track_caller]` location of the allocation itself, giving the
//! equivalent of "chain key + final caller".

use std::cell::Cell;
use std::panic::Location;

thread_local! {
    /// The ambient XOR chain key, maintained by [`SiteScope`] guards.
    static CHAIN_KEY: Cell<u16> = const { Cell::new(0) };
    /// Current scope depth (part of the key so `a>b` != `b` alone,
    /// which bare XOR cannot distinguish).
    static DEPTH: Cell<u16> = const { Cell::new(0) };
}

/// The identity of a runtime allocation site.
///
/// Combines the ambient call-chain key with the allocating source
/// location; the size class is mixed in by the profiler and allocator
/// (the paper treats size as part of the site).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SiteKey(pub u64);

impl SiteKey {
    /// Folds a rounded size class into the key (size is part of the
    /// paper's site identity).
    pub fn with_size(self, size: usize) -> SiteKey {
        let class = (size.div_ceil(4) * 4) as u64;
        SiteKey(self.0 ^ class.wrapping_mul(0x9e37_79b9_7f4a_7c15))
    }
}

/// Hashes a scope name to its 16-bit id (the per-function id of
/// call-chain encryption).
fn scope_id(name: &str) -> u16 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    (h ^ (h >> 32)) as u16
}

/// An RAII guard that mixes a scope into the ambient call-chain key.
///
/// Nested guards emulate the call-chain; dropping restores the key, so
/// the cost per scope is a couple of XORs — the "3 instructions per
/// call" of the paper's §5.1.
///
/// # Examples
///
/// ```
/// use lifepred_alloc::{site_key, SiteKey, SiteScope};
///
/// // Fix the leaf location so only the ambient chain varies.
/// fn probe() -> SiteKey {
///     site_key()
/// }
///
/// let outside = probe();
/// {
///     let _a = SiteScope::enter("phase_a");
///     assert_ne!(probe(), outside);
/// }
/// assert_eq!(probe(), outside);
/// ```
#[derive(Debug)]
pub struct SiteScope {
    id: u16,
}

impl SiteScope {
    /// Enters a named scope.
    pub fn enter(name: &str) -> SiteScope {
        let id = scope_id(name);
        CHAIN_KEY.with(|k| k.set(k.get() ^ id));
        DEPTH.with(|d| d.set(d.get().wrapping_add(1)));
        SiteScope { id }
    }
}

impl Drop for SiteScope {
    fn drop(&mut self) {
        CHAIN_KEY.with(|k| k.set(k.get() ^ self.id));
        DEPTH.with(|d| d.set(d.get().wrapping_sub(1)));
    }
}

/// Captures the current allocation site: ambient chain key, depth and
/// the caller's source location.
#[track_caller]
pub fn site_key() -> SiteKey {
    let loc = Location::caller();
    let chain = CHAIN_KEY.with(Cell::get);
    let depth = DEPTH.with(Cell::get);
    let mut h: u64 = 0x84222325_cbf29ce4;
    for b in loc.file().bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h ^= u64::from(loc.line()) << 32;
    h ^= u64::from(loc.column()) << 48;
    h ^= u64::from(chain) << 16;
    h ^= u64::from(depth);
    SiteKey(h)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Pins the leaf location so only the ambient chain varies.
    fn probe() -> SiteKey {
        site_key()
    }

    #[test]
    fn scopes_change_and_restore_key() {
        let base = probe();
        let in_a = {
            let _a = SiteScope::enter("a");
            probe()
        };
        let in_b = {
            let _b = SiteScope::enter("b");
            probe()
        };
        assert_ne!(in_a, in_b);
        assert_ne!(in_a, base);
        assert_eq!(probe(), base);
    }

    #[test]
    fn nesting_differs_from_flat() {
        let nested = {
            let _a = SiteScope::enter("a");
            let _b = SiteScope::enter("b");
            probe()
        };
        let flat_b = {
            let _b = SiteScope::enter("b");
            probe()
        };
        assert_ne!(nested, flat_b);
    }

    #[test]
    fn distinct_call_sites_differ() {
        // Two calls on different lines: different leaf locations.
        let a = site_key();
        let b = site_key();
        assert_ne!(a, b);
    }

    #[test]
    fn size_classes_distinguish() {
        let k = site_key();
        assert_ne!(k.with_size(8), k.with_size(16));
        // Rounding to 4 bytes maps near sizes together (the paper's
        // cross-run mapping rule).
        assert_eq!(k.with_size(5), k.with_size(7));
    }

    #[test]
    fn recursion_cancels_in_xor_key() {
        // A known property of call-chain encryption: even recursion
        // depths cancel. Depth mixing keeps the keys distinct.
        let once = {
            let _a = SiteScope::enter("rec");
            site_key()
        };
        let twice = {
            let _a = SiteScope::enter("rec");
            let _b = SiteScope::enter("rec");
            site_key()
        };
        assert_ne!(once, twice);
    }
}
