//! A **runtime** lifetime-predicting allocator — the paper's "future
//! work" prototype, built for real.
//!
//! The other crates *simulate* the paper's allocator against traces;
//! this crate implements the same design against real memory:
//!
//! 1. [`SiteScope`] guards maintain a thread-local call-chain key,
//!    combining Carter's call-chain encryption (XOR of per-scope ids)
//!    with `#[track_caller]` leaf capture — the Rust answer to "the
//!    call-site is tricky to obtain without walking frame pointers".
//! 2. A [`RuntimeProfiler`] records (site, size, lifetime-in-bytes)
//!    for every allocation of a training run and trains a
//!    [`RuntimeSiteDb`] with the paper's all-short rule.
//! 3. A [`PredictiveAllocator`] serves predicted-short allocations
//!    from Hanson-style bump arenas (live count, scan-and-reset) and
//!    everything else from the system allocator. It also implements
//!    [`core::alloc::GlobalAlloc`], reading the ambient site key at
//!    allocation time.
//!
//! # Examples
//!
//! ```
//! use lifepred_alloc::{site_key, PredictiveAllocator, RuntimeProfiler, SiteKey, SiteScope};
//! use std::alloc::Layout;
//!
//! // One allocation site in the program: `site_key()` captures its
//! // caller, so wrap it in a function to model a fixed source line.
//! fn widget_site() -> SiteKey {
//!     site_key()
//! }
//!
//! // Training run: profile a phase of the program.
//! let profiler = RuntimeProfiler::new(32 * 1024);
//! {
//!     let _scope = SiteScope::enter("parse");
//!     for _ in 0..100 {
//!         let t = profiler.record_alloc(widget_site(), 48);
//!         profiler.record_free(t);
//!     }
//! }
//! let db = profiler.train();
//!
//! // Production run: the predicted-short site goes to arenas.
//! let heap = PredictiveAllocator::with_database(db);
//! let _scope = SiteScope::enter("parse");
//! let layout = Layout::from_size_align(48, 8).unwrap();
//! let ptr = heap.allocate(widget_site(), layout);
//! assert!(!ptr.is_null());
//! unsafe { heap.deallocate(ptr, layout) };
//! assert_eq!(heap.stats().arena_allocs, 1);
//! ```

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

mod database;
mod obs;
mod profiler;
mod runtime;
mod sharded;
mod site;

pub use database::RuntimeSiteDb;
pub use obs::AllocObs;
pub use profiler::{AllocTicket, RuntimeProfiler};
pub use runtime::{
    PredictiveAllocator, RuntimeArenaConfig, RuntimeStats, StatsMergeError, ARENA_ENV,
};
pub use sharded::ShardedAllocator;
pub use site::{site_key, SiteKey, SiteScope};
