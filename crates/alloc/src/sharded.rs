//! The sharded runtime allocator: per-thread arena shards with an
//! optional online self-correcting predictor.
//!
//! [`PredictiveAllocator`](crate::PredictiveAllocator) funnels every
//! allocation through one global mutex. [`ShardedAllocator`] splits the
//! arena area into per-thread shards — each thread bump-allocates under
//! its *own* shard lock, so the fast path never takes a global lock.
//! Prediction comes from either a frozen [`RuntimeSiteDb`] (offline
//! training, as in the paper) or a live
//! [`SharedPredictor`](lifepred_adaptive::SharedPredictor) that keeps
//! learning while the program runs: each shard caches an `Arc` snapshot
//! of the predicted-short set and revalidates it with one atomic
//! generation compare, the learner's mutex is only taken at epoch
//! boundaries and on (rare) mispredictions.

use crate::database::RuntimeSiteDb;
use crate::obs::{AllocObs, ObsDelta};
use crate::runtime::{align_up, fill_arena_snapshot, ArenaState, RuntimeArenaConfig, RuntimeStats};
use crate::site::{site_key, SiteKey};
use lifepred_adaptive::{EpochAgg, EpochConfig, LearnerStats, SharedPredictor};
use lifepred_obs::{EpochSample, Registry, Timer};
use parking_lot::Mutex;
use std::alloc::{GlobalAlloc, Layout, System};
use std::collections::{HashMap, HashSet};
use std::ptr;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Monotonic thread numbering for shard assignment.
static NEXT_THREAD: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Each thread draws one slot for its lifetime; shard index is the
    /// slot modulo the allocator's shard count. Const-initialized so
    /// the hot-path access is a plain TLS load with no init guard.
    static THREAD_SLOT: std::cell::Cell<usize> = const { std::cell::Cell::new(usize::MAX) };
}

/// This thread's slot, drawn from [`NEXT_THREAD`] on first use.
#[inline]
fn thread_slot() -> usize {
    THREAD_SLOT.with(|s| {
        let v = s.get();
        if v != usize::MAX {
            v
        } else {
            let v = NEXT_THREAD.fetch_add(1, Ordering::Relaxed);
            s.set(v);
            v
        }
    })
}

/// Pads each shard's mutex to its own cache line: neighbouring shards
/// must not bounce one line between cores under independent traffic.
#[derive(Debug, Default)]
#[repr(align(64))]
struct CacheLine<T>(T);

/// Side metadata for one live object in adaptive mode.
#[derive(Debug, Clone, Copy)]
struct ObjMeta {
    /// Site fingerprint (the size-folded chain key).
    key: u64,
    size: u64,
    /// Byte clock just before this allocation.
    birth: u64,
    /// Alloc-time prediction.
    predicted: bool,
    /// Already reported to the learner as pinning (aging scan), so its
    /// eventual free must not count a second misprediction.
    reported: bool,
}

/// One pointer-hash-sharded slice of the adaptive side tables.
#[derive(Debug, Default)]
struct MetaShard {
    /// Live objects keyed by address.
    live: HashMap<usize, ObjMeta>,
    /// Per-site feedback accumulated since the last epoch tick.
    agg: HashMap<u64, EpochAgg>,
}

/// The online-learning half of the allocator.
#[derive(Debug)]
struct AdaptiveState {
    predictor: SharedPredictor,
    /// The global byte clock: advanced by object size on every
    /// allocation, read on every free to compute a lifetime.
    clock: AtomicU64,
    /// Clock value at which the next epoch tick fires (CAS-claimed so
    /// exactly one thread performs each tick).
    next_epoch: AtomicU64,
    epoch_bytes: u64,
    threshold: u64,
    /// Pointer-hash-sharded side tables; sharded independently of the
    /// arena shards so frees from foreign threads don't pile onto one
    /// lock.
    meta: Vec<CacheLine<Mutex<MetaShard>>>,
}

impl AdaptiveState {
    fn meta_index(&self, p: *mut u8) -> usize {
        // Fibonacci hash over the address (low bits dropped: allocators
        // return aligned pointers).
        let h = (p as usize >> 4).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        (h >> 32) % self.meta.len()
    }
}

/// Prediction source: offline-trained and frozen, or learning online.
/// The adaptive state is boxed: it embeds the learner's mutex and is
/// an order of magnitude bigger than the frozen database handle.
#[derive(Debug)]
enum Mode {
    Frozen(RuntimeSiteDb),
    Adaptive(Box<AdaptiveState>),
}

/// Per-shard mutable state; one mutex each, never a global one.
#[derive(Debug)]
struct ShardInner {
    arenas: Vec<ArenaState>,
    current: usize,
    stats: RuntimeStats,
    /// Cached snapshot of the predicted-short set (adaptive mode).
    cached_gen: u64,
    cached: Arc<HashSet<u64>>,
    /// Pending metric deltas (only maintained with a registry
    /// attached): plain adds under this shard's lock, drained into the
    /// shared atomics at epoch ticks and export time.
    obs: ObsDelta,
}

/// A lifetime-predicting allocator with per-thread arena shards.
///
/// Each thread is assigned a shard (round-robin over a thread-local
/// slot); its allocations bump-allocate into that shard's arenas under
/// the shard's own mutex. Frees route by address range back to the
/// owning shard. There is **no global lock on the allocation fast
/// path** — in adaptive mode the learner sits behind a mutex that is
/// only touched at epoch boundaries and on mispredictions, while
/// prediction lookups hit a per-shard cached `Arc` snapshot validated
/// by one atomic load.
///
/// In adaptive mode the per-pointer side table detects double frees,
/// counts them in [`RuntimeStats::double_frees`], and otherwise
/// ignores them. Frozen mode has no side table: a repeated free is
/// undefined behaviour there (see
/// [`deallocate`](ShardedAllocator::deallocate)); the counter only
/// catches the subset that hits an arena with no live objects.
///
/// # Examples
///
/// Online mode learns a short-lived site while allocating:
///
/// ```
/// use lifepred_adaptive::EpochConfig;
/// use lifepred_alloc::{ShardedAllocator, SiteKey};
/// use std::alloc::Layout;
///
/// let cfg = EpochConfig {
///     threshold: 1024,
///     epoch_bytes: 2048,
///     ..EpochConfig::default()
/// };
/// let heap = ShardedAllocator::adaptive(cfg, 2, Default::default());
/// let site = SiteKey(0xfeed);
/// let layout = Layout::from_size_align(64, 8).unwrap();
/// for _ in 0..200 {
///     let p = heap.allocate(site, layout);
///     assert!(!p.is_null());
///     unsafe { heap.deallocate(p, layout) };
/// }
/// let stats = heap.stats();
/// assert_eq!(stats.double_frees, 0);
/// let learned = heap.adaptive_stats().unwrap();
/// assert!(learned.predicted_allocs > 0, "site was learned online");
/// ```
#[derive(Debug)]
pub struct ShardedAllocator {
    /// Per-shard arena geometry.
    config: RuntimeArenaConfig,
    shard_count: usize,
    /// `config.total_bytes()`, cached: the pointer→shard math runs on
    /// every free and must not recompute the product.
    shard_bytes: usize,
    /// `shard_count * shard_bytes`, cached for [`Self::is_arena_ptr`].
    area_bytes: usize,
    /// `log2(shard_bytes)` when it is a power of two (the default
    /// geometry is): lets the free path shift instead of divide.
    shard_shift: Option<u32>,
    /// `log2(arena_size)` when it is a power of two, same purpose.
    arena_shift: Option<u32>,
    /// `shard_count - 1` when the count is a power of two: lets the
    /// alloc path mask the thread slot instead of taking a modulo.
    slot_mask: Option<usize>,
    /// [`RuntimeArenaConfig::max_served_align`], cached: the largest
    /// alignment arena starts (multiples of `arena_size` from the
    /// 4096-aligned base) can honour. Larger alignments go to the
    /// system path.
    max_align: usize,
    /// Base of the whole arena area (`area_bytes` bytes); shard `s`
    /// owns the `s`-th slice. Owned, freed on drop.
    base: *mut u8,
    shards: Vec<CacheLine<Mutex<ShardInner>>>,
    mode: Mode,
    /// Metric handles when a registry is attached; the hot path bumps
    /// plain per-shard deltas under the shard lock it already holds
    /// (nothing when detached), drained into these shared handles at
    /// epoch ticks and [`export_metrics`](Self::export_metrics). The
    /// epoch timeline is pushed by whichever thread wins the tick CAS.
    obs: Option<AllocObs>,
}

// SAFETY: the raw base pointer is only read concurrently; all mutable
// bookkeeping sits behind per-shard/per-meta mutexes, and the arena
// memory itself is handed out in disjoint chunks.
unsafe impl Send for ShardedAllocator {}
// SAFETY: as above — shared access is mediated by the internal mutexes.
unsafe impl Sync for ShardedAllocator {}

impl ShardedAllocator {
    /// A shard count matched to the machine: available parallelism,
    /// clamped to `1..=64`.
    pub fn default_shards() -> usize {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
            .clamp(1, 64)
    }

    /// Creates a sharded allocator driven by a frozen offline-trained
    /// database. Each shard gets its own arena area of `geometry`.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero, the geometry is empty, or the arena
    /// area cannot be allocated.
    pub fn frozen(db: RuntimeSiteDb, shards: usize, geometry: RuntimeArenaConfig) -> Self {
        ShardedAllocator::build(Mode::Frozen(db), shards, geometry)
    }

    /// Creates a sharded allocator with a frozen database, default
    /// shard count, and the startup geometry ([`RuntimeArenaConfig::startup`]).
    ///
    /// # Panics
    ///
    /// Panics when `LIFEPRED_ARENAS` is set but malformed.
    pub fn frozen_startup(db: RuntimeSiteDb) -> Self {
        ShardedAllocator::frozen(db, Self::default_shards(), RuntimeArenaConfig::startup())
    }

    /// Creates a sharded allocator that learns online with the given
    /// epoch configuration. Each shard gets its own arena area of
    /// `geometry`.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero, `epoch` fails
    /// [`EpochConfig::validate`], the geometry is empty, or the arena
    /// area cannot be allocated.
    pub fn adaptive(epoch: EpochConfig, shards: usize, geometry: RuntimeArenaConfig) -> Self {
        let meta = (0..shards.max(1)).map(|_| CacheLine::default()).collect();
        let state = AdaptiveState {
            predictor: SharedPredictor::new(epoch),
            clock: AtomicU64::new(0),
            next_epoch: AtomicU64::new(epoch.epoch_bytes),
            epoch_bytes: epoch.epoch_bytes,
            threshold: epoch.threshold,
            meta,
        };
        ShardedAllocator::build(Mode::Adaptive(Box::new(state)), shards, geometry)
    }

    /// Creates an online-learning allocator with default shard count
    /// and the startup geometry ([`RuntimeArenaConfig::startup`]).
    ///
    /// # Panics
    ///
    /// Panics when `LIFEPRED_ARENAS` is set but malformed, or `epoch`
    /// is invalid.
    pub fn adaptive_startup(epoch: EpochConfig) -> Self {
        ShardedAllocator::adaptive(epoch, Self::default_shards(), RuntimeArenaConfig::startup())
    }

    fn build(mode: Mode, shards: usize, geometry: RuntimeArenaConfig) -> Self {
        assert!(shards > 0, "shard count must be nonzero");
        assert!(
            geometry.arena_count > 0 && geometry.arena_size > 0,
            "empty geometry"
        );
        let total = shards
            .checked_mul(geometry.total_bytes())
            .expect("arena area size overflow");
        let layout = Layout::from_size_align(total, 4096).expect("arena area layout");
        // SAFETY: layout has nonzero size.
        let base = unsafe { System.alloc(layout) };
        assert!(!base.is_null(), "arena area allocation failed");
        let shard_inner = || ShardInner {
            arenas: vec![ArenaState::default(); geometry.arena_count],
            current: 0,
            stats: RuntimeStats::default(),
            cached_gen: 0,
            cached: Arc::new(HashSet::new()),
            obs: ObsDelta::default(),
        };
        let shard_bytes = geometry.total_bytes();
        ShardedAllocator {
            config: geometry,
            shard_count: shards,
            shard_bytes,
            area_bytes: total,
            shard_shift: shard_bytes
                .is_power_of_two()
                .then(|| shard_bytes.trailing_zeros()),
            arena_shift: geometry
                .arena_size
                .is_power_of_two()
                .then(|| geometry.arena_size.trailing_zeros()),
            slot_mask: shards.is_power_of_two().then(|| shards - 1),
            max_align: geometry.max_served_align(),
            base,
            shards: (0..shards)
                .map(|_| CacheLine(Mutex::new(shard_inner())))
                .collect(),
            mode,
            obs: None,
        }
    }

    /// The per-shard arena geometry.
    pub fn config(&self) -> &RuntimeArenaConfig {
        &self.config
    }

    /// Attaches the `lifepred_alloc_*` metric set from `registry` to
    /// this allocator's hot path (counters, size/latency histograms,
    /// and — in adaptive mode — one `lifepred_alloc_epochs` timeline
    /// sample per epoch tick). Call before sharing the allocator.
    ///
    /// The fast path accumulates plain per-shard deltas (under the
    /// shard lock it already holds); they are folded into the registry
    /// at every adaptive epoch tick and on
    /// [`export_metrics`](Self::export_metrics), so take a snapshot
    /// after an export, not mid-churn.
    pub fn attach_registry(&mut self, registry: &Registry) {
        self.obs = Some(AllocObs::register(registry));
    }

    /// Exports the merged [`RuntimeStats`] as `lifepred_runtime_*`
    /// gauges — and, in adaptive mode, the [`LearnerStats`] as
    /// `lifepred_learner_*` gauges — in `registry`, after folding the
    /// pending per-shard counter/histogram deltas into their registry
    /// handles. An export-time operation: call it when a report is
    /// wanted, not per allocation.
    pub fn export_metrics(&self, registry: &Registry) {
        self.flush_obs();
        self.stats().export(registry);
        if let Some(learned) = self.adaptive_stats() {
            learned.export(registry);
        }
    }

    /// Drains every shard's pending [`ObsDelta`] into the shared
    /// metric handles. No-op when no registry is attached.
    fn flush_obs(&self) {
        if let Some(obs) = &self.obs {
            for shard in &self.shards {
                shard.0.lock().obs.drain_into(obs);
            }
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shard_count
    }

    /// The shard serving the calling thread.
    #[inline]
    fn shard_index(&self) -> usize {
        let slot = thread_slot();
        match self.slot_mask {
            Some(mask) => slot & mask,
            None => slot % self.shard_count,
        }
    }

    /// Splits an offset into the arena area into (shard, arena) indices.
    #[inline]
    fn locate(&self, offset: usize) -> (usize, usize) {
        let (shard_idx, within) = match self.shard_shift {
            Some(s) => (offset >> s, offset & (self.shard_bytes - 1)),
            None => (offset / self.shard_bytes, offset % self.shard_bytes),
        };
        let arena_idx = match self.arena_shift {
            Some(s) => within >> s,
            None => within / self.config.arena_size,
        };
        (shard_idx, arena_idx)
    }

    /// Whether `ptr` points into any shard's arena area.
    #[inline]
    pub fn is_arena_ptr(&self, ptr: *mut u8) -> bool {
        (ptr as usize).wrapping_sub(self.base as usize) < self.area_bytes
    }

    /// Counters summed across all shards, with arena utilization
    /// snapshot fields filled in at call time.
    pub fn stats(&self) -> RuntimeStats {
        self.shard_stats()
            .iter()
            .fold(RuntimeStats::default(), |acc, s| acc.merged(s))
    }

    /// Per-shard counters, with each shard's arena snapshot filled in.
    pub fn shard_stats(&self) -> Vec<RuntimeStats> {
        self.shards
            .iter()
            .map(|shard| {
                let inner = shard.0.lock();
                let mut s = inner.stats;
                fill_arena_snapshot(&mut s, &inner.arenas, self.config.arena_size);
                s
            })
            .collect()
    }

    /// Online-learner counters; `None` in frozen mode.
    ///
    /// Epoch ticks only fire from [`allocate`](Self::allocate), so
    /// once allocation stops, feedback from the final partial epoch
    /// would otherwise sit in the per-shard buffers forever. This
    /// absorbs those pending aggregates into the learner first —
    /// counters reflect all observed traffic, and late demotion
    /// evidence (batched long frees) is applied — then reports.
    pub fn adaptive_stats(&self) -> Option<LearnerStats> {
        match &self.mode {
            Mode::Adaptive(state) => Some(state.predictor.with_learner(|learner| {
                // Lock order learner-then-meta, matching the epoch
                // tick, so this cannot deadlock against it.
                for meta in &state.meta {
                    for (key, agg) in meta.0.lock().agg.drain() {
                        learner.absorb(key, &agg);
                    }
                }
                learner.stats()
            })),
            Mode::Frozen(_) => None,
        }
    }

    /// Live objects across all shards' arenas.
    pub fn arena_live_objects(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| {
                s.0.lock()
                    .arenas
                    .iter()
                    .map(|a| u64::from(a.live))
                    .sum::<u64>()
            })
            .sum()
    }

    /// Allocates memory for `layout`, deciding by `site`.
    ///
    /// Returns null on failure (or for zero-size layouts). The returned
    /// memory must be released with [`ShardedAllocator::deallocate`]
    /// while this allocator is still alive.
    pub fn allocate(&self, site: SiteKey, layout: Layout) -> *mut u8 {
        if layout.size() == 0 {
            return ptr::null_mut();
        }
        let timer = Timer::start();
        let p = self.allocate_inner(site, layout);
        if let Some(obs) = &self.obs {
            timer.observe_ns(&obs.latency_ns);
        }
        p
    }

    fn allocate_inner(&self, site: SiteKey, layout: Layout) -> *mut u8 {
        let keyed = site.with_size(layout.size());
        let size = layout.size() as u64;
        // Advance the byte clock first: the object's birth is the clock
        // just before its own bytes land, exactly as in the simulator.
        let birth = match &self.mode {
            Mode::Adaptive(state) => state.clock.fetch_add(size, Ordering::Relaxed),
            Mode::Frozen(_) => 0,
        };
        let shard_idx = self.shard_index();
        let p = {
            let mut inner = self.shards[shard_idx].0.lock();
            let predicted = match &self.mode {
                Mode::Frozen(db) => db.predicts(keyed),
                Mode::Adaptive(state) => {
                    if let Some((generation, table)) =
                        state.predictor.refresh_if_stale(inner.cached_gen)
                    {
                        inner.cached_gen = generation;
                        inner.cached = table;
                    }
                    inner.cached.contains(&keyed.0)
                }
            };
            self.place(shard_idx, &mut inner, predicted, layout)
        };
        if let Mode::Adaptive(state) = &self.mode {
            if !p.0.is_null() {
                let mut meta = state.meta[state.meta_index(p.0)].0.lock();
                meta.live.insert(
                    p.0 as usize,
                    ObjMeta {
                        key: keyed.0,
                        size,
                        birth,
                        predicted: p.1,
                        reported: false,
                    },
                );
                meta.agg.entry(keyed.0).or_default().on_alloc(size, p.1);
            }
            self.maybe_roll_epoch(state);
        }
        p.0
    }

    /// Places one allocation within `shard_idx`, holding its lock.
    /// Returns the pointer and the prediction that was applied.
    fn place(
        &self,
        shard_idx: usize,
        inner: &mut ShardInner,
        predicted: bool,
        layout: Layout,
    ) -> (*mut u8, bool) {
        // Metric deltas are plain adds on this shard's already-locked
        // state; the attached check itself is the only per-event cost.
        let track = self.obs.is_some();
        if track {
            inner.obs.sizes.record(layout.size() as u64);
        }
        if !predicted || layout.size() > self.config.arena_size || layout.align() > self.max_align {
            if predicted {
                inner.stats.overflows += 1;
                if track {
                    inner.obs.overflows += 1;
                }
            }
            inner.stats.general_allocs += 1;
            if track {
                inner.obs.general_allocs += 1;
            }
            // SAFETY: nonzero size checked by the caller.
            return (unsafe { System.alloc(layout) }, predicted);
        }
        // Fast path: bump the shard's current arena.
        let current = inner.current;
        if let Some(p) = self.bump(shard_idx, inner, current, layout) {
            return (p, true);
        }
        // Scan the shard for an empty arena and reset it.
        if let Some(idx) = inner.arenas.iter().position(|a| a.live == 0) {
            inner.arenas[idx] = ArenaState::default();
            inner.current = idx;
            inner.stats.arena_resets += 1;
            if let Some(p) = self.bump(shard_idx, inner, idx, layout) {
                return (p, true);
            }
        }
        // Every arena in this shard is pinned: degenerate to the
        // general allocator.
        inner.stats.overflows += 1;
        inner.stats.general_allocs += 1;
        if track {
            inner.obs.overflows += 1;
            inner.obs.general_allocs += 1;
        }
        // SAFETY: nonzero size checked by the caller.
        (unsafe { System.alloc(layout) }, predicted)
    }

    fn bump(
        &self,
        shard_idx: usize,
        inner: &mut ShardInner,
        arena_idx: usize,
        layout: Layout,
    ) -> Option<*mut u8> {
        let arena = &mut inner.arenas[arena_idx];
        // Checked throughout: any overflow means "does not fit" and
        // falls back exactly like an exhausted arena.
        let offset = align_up(arena.used, layout.align())?;
        let end = offset.checked_add(layout.size())?;
        if end > self.config.arena_size {
            return None;
        }
        arena.used = end;
        arena.live += 1;
        inner.stats.arena_allocs += 1;
        let area_offset = shard_idx
            .checked_mul(self.shard_bytes)?
            .checked_add(arena_idx.checked_mul(self.config.arena_size)?)?
            .checked_add(offset)?;
        // SAFETY: area_offset + size <= shard_count * total_bytes, so
        // the resulting pointer is inside the owned area allocation;
        // `place` only admits alignments that divide arena_size (and
        // the 4096 base alignment), so base + area_offset honours
        // layout.align().
        Some(unsafe { self.base.add(area_offset) })
    }

    /// Fires the epoch tick if the byte clock crossed the boundary.
    /// Exactly one thread wins the CAS and performs the tick: drain the
    /// per-shard feedback buffers into the learner, age-scan live
    /// objects for arena-pinning mispredictions, and advance the
    /// learner clock (which rolls the due epoch).
    fn maybe_roll_epoch(&self, state: &AdaptiveState) {
        let now = state.clock.load(Ordering::Relaxed);
        let due = state.next_epoch.load(Ordering::Relaxed);
        if now < due {
            return;
        }
        if state
            .next_epoch
            .compare_exchange(
                due,
                now.saturating_add(state.epoch_bytes),
                Ordering::AcqRel,
                Ordering::Relaxed,
            )
            .is_err()
        {
            // Another thread is performing this tick.
            return;
        }
        state.predictor.with_learner(|learner| {
            // Lock order: learner, then each meta shard in turn. The
            // free path never holds a meta lock while taking the
            // learner, so this cannot deadlock.
            for meta in &state.meta {
                let mut guard = meta.0.lock();
                for (key, agg) in guard.agg.drain() {
                    learner.absorb(key, &agg);
                }
                for obj in guard.live.values_mut() {
                    if obj.predicted
                        && !obj.reported
                        && now.saturating_sub(obj.birth) >= state.threshold
                    {
                        // A predicted-short object still live past the
                        // threshold pins its arena: report it once.
                        obj.reported = true;
                        learner.note_pinned(obj.key, obj.size);
                    }
                }
            }
            // Rolls every epoch that became due on the way to `now`.
            learner.advance_clock(now);
        });
        // Timeline sample for the tick we just performed. Taken after
        // the learner work so the sample reflects this tick's
        // promotions/demotions; reads the shard stats outside any
        // learner or meta lock. Epoch ticks are also where the pending
        // per-shard counter deltas get folded into the registry, so a
        // long-running program's metrics stay fresh without exports.
        if let Some(obs) = &self.obs {
            self.flush_obs();
            let (learned, generation) = state
                .predictor
                .with_learner(|learner| (learner.stats(), learner.generation()));
            let stats = self.stats();
            obs.timeline.push(EpochSample {
                epoch: learned.epochs,
                clock_bytes: now,
                generation,
                short_sites: learned.short_sites,
                sites: learned.sites,
                live_bytes: stats.arena_used_bytes,
                // The runtime allocator keeps no heap high-water mark;
                // the arena area capacity is its fixed footprint.
                max_heap_bytes: stats.arena_total_bytes,
                utilization_pct: stats.utilization_pct(),
                fragmentation_pct: stats.fragmentation_pct(),
                mispredictions: learned.mispredictions,
                demotions: learned.demotions,
            });
        }
    }

    /// Releases memory obtained from [`ShardedAllocator::allocate`].
    ///
    /// In adaptive mode the side table detects a double free before
    /// any memory or count is touched: it is counted and otherwise
    /// ignored, never corrupting another object's accounting.
    ///
    /// # Safety
    ///
    /// `ptr` must come from `allocate` on this same allocator with the
    /// same `layout`, and must not be used afterwards.
    ///
    /// In *adaptive* mode only, a repeated free of the same block is
    /// tolerated and counted, not undefined — the side table filters
    /// it and the block is not released twice. In *frozen* mode there
    /// is no side table, so a repeated free is undefined behaviour,
    /// exactly as with the system allocator: a system-path block would
    /// be passed to `System.dealloc` twice, and an arena block would
    /// decrement another object's live count, letting its arena reset
    /// under live data. The frozen-mode `double_frees` counter only
    /// catches repeated frees into an arena with no live objects.
    pub unsafe fn deallocate(&self, ptr: *mut u8, layout: Layout) {
        if ptr.is_null() {
            return;
        }
        let track = self.obs.is_some();
        if let Mode::Adaptive(state) = &self.mode {
            let mut meta = state.meta[state.meta_index(ptr)].0.lock();
            let Some(obj) = meta.live.remove(&(ptr as usize)) else {
                // No live record: a double free (or stray pointer).
                drop(meta);
                let mut inner = self.shards[self.shard_index()].0.lock();
                inner.stats.double_frees += 1;
                if track {
                    inner.obs.frees += 1;
                    inner.obs.double_frees += 1;
                }
                return;
            };
            let now = state.clock.load(Ordering::Relaxed);
            let lifetime = now.saturating_sub(obj.birth);
            let long = lifetime >= state.threshold;
            if obj.predicted && long {
                // Misprediction (or the tail of one already reported by
                // the aging scan): rare by construction, so going to
                // the learner mutex directly is fine. Drop the meta
                // lock first — the epoch tick takes learner-then-meta.
                drop(meta);
                let counts_as_misprediction = !obj.reported;
                state.predictor.with_learner(|learner| {
                    let birth = learner.clock().saturating_sub(lifetime);
                    learner.record_free(obj.key, obj.size, birth, counts_as_misprediction);
                });
            } else {
                meta.agg.entry(obj.key).or_default().on_free(lifetime, long);
            }
        }
        if self.is_arena_ptr(ptr) {
            let offset = ptr as usize - self.base as usize;
            let (shard_idx, arena_idx) = self.locate(offset);
            let mut inner = self.shards[shard_idx].0.lock();
            if track {
                inner.obs.frees += 1;
            }
            let arena = &mut inner.arenas[arena_idx];
            if arena.live == 0 {
                // Frozen mode's best-effort detector: it only fires
                // once the arena has fully drained (see the # Safety
                // contract). In adaptive mode the side table catches
                // the double free first and this is unreachable.
                inner.stats.double_frees += 1;
                if track {
                    inner.obs.double_frees += 1;
                }
                return;
            }
            arena.live -= 1;
            inner.stats.arena_frees += 1;
        } else {
            let mut inner = self.shards[self.shard_index()].0.lock();
            inner.stats.general_frees += 1;
            if track {
                inner.obs.frees += 1;
            }
            drop(inner);
            // SAFETY: forwarded from `place`'s system path per the
            // caller contract; the adaptive side table has already
            // filtered repeated frees of the same block.
            unsafe { System.dealloc(ptr, layout) };
        }
    }
}

impl Drop for ShardedAllocator {
    fn drop(&mut self) {
        let layout = Layout::from_size_align(self.area_bytes, 4096).expect("arena area layout");
        // SAFETY: base was allocated with exactly this layout in
        // `build` and is not referenced after drop.
        unsafe { System.dealloc(self.base, layout) };
    }
}

// SAFETY: allocate/deallocate satisfy the GlobalAlloc contract:
// allocate returns either null or a block valid for `layout`, and
// deallocate releases blocks from alloc exactly once.
unsafe impl GlobalAlloc for ShardedAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        // The ambient SiteScope chain identifies the site, as for
        // PredictiveAllocator.
        self.allocate(site_key(), layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: per the GlobalAlloc contract, ptr came from alloc.
        unsafe { self.deallocate(ptr, layout) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layout(n: usize) -> Layout {
        Layout::from_size_align(n, 8).expect("layout")
    }

    fn tiny_epoch() -> EpochConfig {
        EpochConfig {
            threshold: 1024,
            epoch_bytes: 2048,
            ..EpochConfig::default()
        }
    }

    fn small_geometry() -> RuntimeArenaConfig {
        RuntimeArenaConfig {
            arena_count: 2,
            arena_size: 1024,
        }
    }

    #[test]
    fn frozen_mode_routes_predicted_sites_to_arenas() {
        let site = SiteKey(0x51);
        let mut db = RuntimeSiteDb::new(32 * 1024);
        db.insert(site.with_size(64));
        let heap = ShardedAllocator::frozen(db, 4, RuntimeArenaConfig::default());
        let p = heap.allocate(site, layout(64));
        assert!(heap.is_arena_ptr(p));
        let q = heap.allocate(SiteKey(0x99), layout(64));
        assert!(!q.is_null());
        assert!(!heap.is_arena_ptr(q));
        // SAFETY: the pointer came from this heap's allocate with
        // the same layout and is freed exactly once.
        unsafe {
            heap.deallocate(p, layout(64));
            heap.deallocate(q, layout(64));
        }
        let s = heap.stats();
        assert_eq!(s.arena_allocs, 1);
        assert_eq!(s.general_allocs, 1);
        assert_eq!(s.arena_frees, 1);
        assert_eq!(s.general_frees, 1);
        assert_eq!(heap.arena_live_objects(), 0);
    }

    #[test]
    fn adaptive_mode_learns_and_switches_to_arenas() {
        let heap = ShardedAllocator::adaptive(tiny_epoch(), 2, RuntimeArenaConfig::default());
        let site = SiteKey(0xfeed);
        // First allocations are unpredicted (system path); after a
        // couple of clean epochs the site flips to arenas.
        for _ in 0..200 {
            let p = heap.allocate(site, layout(64));
            assert!(!p.is_null());
            // SAFETY: the pointer came from this heap's allocate with
            // the same layout and is freed exactly once.
            unsafe { heap.deallocate(p, layout(64)) };
        }
        let s = heap.stats();
        assert!(s.arena_allocs > 0, "site never reached the arenas: {s:?}");
        assert!(s.general_allocs > 0, "learning takes at least one epoch");
        assert_eq!(s.double_frees, 0);
        let learned = heap.adaptive_stats().expect("adaptive mode");
        assert!(learned.promotions >= 1);
        assert!(learned.predicted_allocs > 0);
        assert_eq!(learned.mispredictions, 0);
    }

    #[test]
    fn pinning_object_demotes_site_via_aging_scan() {
        let heap = ShardedAllocator::adaptive(tiny_epoch(), 1, small_geometry());
        let site = SiteKey(0xabc);
        // Learn the site as short-lived.
        for _ in 0..200 {
            let p = heap.allocate(site, layout(64));
            // SAFETY: the pointer came from this heap's allocate with
            // the same layout and is freed exactly once.
            unsafe { heap.deallocate(p, layout(64)) };
        }
        assert!(heap.adaptive_stats().expect("adaptive").promotions >= 1);
        // Now allocate one object at the (predicted) site and keep it
        // live while churning unrelated traffic past the threshold: the
        // aging scan reports it and demotes the site.
        let pinned = heap.allocate(site, layout(64));
        let noise = SiteKey(0x777);
        for _ in 0..200 {
            let p = heap.allocate(noise, layout(64));
            // SAFETY: the pointer came from this heap's allocate with
            // the same layout and is freed exactly once.
            unsafe { heap.deallocate(p, layout(64)) };
        }
        let learned = heap.adaptive_stats().expect("adaptive");
        assert!(learned.mispredictions >= 1, "aging scan must report");
        assert!(learned.demotions >= 1, "site must be demoted");
        // The eventual free of the pinned object counts once, not twice.
        // SAFETY: the pointer came from this heap's allocate with
        // the same layout and is freed exactly once.
        unsafe { heap.deallocate(pinned, layout(64)) };
        let after = heap.adaptive_stats().expect("adaptive");
        assert_eq!(after.mispredictions, learned.mispredictions);
        assert_eq!(heap.stats().double_frees, 0);
    }

    #[test]
    fn adaptive_double_free_is_counted_for_both_paths() {
        let heap = ShardedAllocator::adaptive(tiny_epoch(), 1, small_geometry());
        let site = SiteKey(0xd0);
        // System-path object (unpredicted site).
        let p = heap.allocate(site, layout(64));
        assert!(!heap.is_arena_ptr(p));
        // SAFETY: the pointer came from this heap's allocate with
        // the same layout and is freed exactly once.
        unsafe { heap.deallocate(p, layout(64)) };
        // SAFETY: the pointer came from this heap's allocate with
        // the same layout and is freed exactly once.
        unsafe { heap.deallocate(p, layout(64)) };
        assert_eq!(heap.stats().double_frees, 1);
        // Arena-path object: learn the site first.
        for _ in 0..200 {
            let q = heap.allocate(site, layout(64));
            // SAFETY: the pointer came from this heap's allocate with
            // the same layout and is freed exactly once.
            unsafe { heap.deallocate(q, layout(64)) };
        }
        let q = heap.allocate(site, layout(64));
        assert!(heap.is_arena_ptr(q), "site should be learned by now");
        // SAFETY: the pointer came from this heap's allocate with
        // the same layout and is freed exactly once.
        unsafe { heap.deallocate(q, layout(64)) };
        // SAFETY: the pointer came from this heap's allocate with
        // the same layout and is freed exactly once.
        unsafe { heap.deallocate(q, layout(64)) };
        assert_eq!(heap.stats().double_frees, 2);
        assert_eq!(heap.arena_live_objects(), 0);
    }

    #[test]
    fn shard_stats_sum_to_totals() {
        let site = SiteKey(0x5a);
        let mut db = RuntimeSiteDb::new(32 * 1024);
        db.insert(site.with_size(32));
        let heap = ShardedAllocator::frozen(db, 4, RuntimeArenaConfig::default());
        let mut ptrs = Vec::new();
        for _ in 0..64 {
            ptrs.push(heap.allocate(site, layout(32)));
        }
        for p in ptrs {
            // SAFETY: the pointer came from this heap's allocate with
            // the same layout and is freed exactly once.
            unsafe { heap.deallocate(p, layout(32)) };
        }
        let total = heap.stats();
        let summed = heap
            .shard_stats()
            .iter()
            .fold(RuntimeStats::default(), |acc, s| acc.merged(s));
        assert_eq!(total, summed);
        assert_eq!(total.arena_allocs, 64);
        assert_eq!(total.arena_frees, 64);
    }

    #[test]
    fn alignment_beyond_arena_starts_routes_to_system() {
        let site = SiteKey(0x41);
        let mut db = RuntimeSiteDb::new(32 * 1024);
        db.insert(site.with_size(64));
        // 1024-byte arenas behind a 4096-aligned base: shard and arena
        // starts are only 1024-aligned, so 2048/4096-align requests
        // must take the system path (and still come back aligned).
        let heap = ShardedAllocator::frozen(db, 2, small_geometry());
        for align in [2048usize, 4096] {
            let l = Layout::from_size_align(64, align).expect("l");
            let p = heap.allocate(site, l);
            assert!(!p.is_null());
            assert!(!heap.is_arena_ptr(p), "must not come from an arena");
            assert_eq!(p as usize % align, 0, "alignment violated");
            // SAFETY: the pointer came from this heap's allocate with
            // the same layout and is freed exactly once.
            unsafe { heap.deallocate(p, l) };
        }
        assert!(heap.stats().overflows >= 2, "routed as overflows");
        // Alignments dividing the arena size still use the arenas.
        let l = Layout::from_size_align(64, 1024).expect("l");
        let p = heap.allocate(site, l);
        assert!(heap.is_arena_ptr(p));
        assert_eq!(p as usize % 1024, 0, "alignment violated");
        // SAFETY: the pointer came from this heap's allocate with
        // the same layout and is freed exactly once.
        unsafe { heap.deallocate(p, l) };
    }

    #[test]
    fn adaptive_stats_flushes_pending_feedback() {
        let heap = ShardedAllocator::adaptive(tiny_epoch(), 2, small_geometry());
        let site = SiteKey(0x111);
        // 10 × 8 bytes: well under epoch_bytes (2048), so no epoch tick
        // fires and all feedback sits in the per-shard buffers.
        for _ in 0..10 {
            let p = heap.allocate(site, layout(8));
            assert!(!p.is_null());
            // SAFETY: the pointer came from this heap's allocate with
            // the same layout and is freed exactly once.
            unsafe { heap.deallocate(p, layout(8)) };
        }
        let s = heap.adaptive_stats().expect("adaptive");
        assert_eq!(s.total_allocs, 10, "pending allocs not absorbed");
        assert_eq!(s.total_frees, 10, "pending frees not absorbed");
        assert_eq!(s.epochs, 0, "no epoch should have rolled");
    }

    #[test]
    fn attached_registry_sees_traffic_and_epoch_timeline() {
        let mut heap = ShardedAllocator::adaptive(tiny_epoch(), 1, small_geometry());
        let registry = Registry::new();
        heap.attach_registry(&registry);
        let site = SiteKey(0xfeed);
        // 200 × 64 bytes pushes the byte clock well past several
        // 2048-byte epochs, so the timeline must have samples.
        for _ in 0..200 {
            let p = heap.allocate(site, layout(64));
            assert!(!p.is_null());
            // SAFETY: the pointer came from this heap's allocate with
            // the same layout and is freed exactly once.
            unsafe { heap.deallocate(p, layout(64)) };
        }
        heap.export_metrics(&registry);
        let snap = registry.snapshot();
        assert_eq!(snap.counter("lifepred_alloc_allocs_total"), Some(200));
        assert_eq!(snap.counter("lifepred_alloc_frees_total"), Some(200));
        assert_eq!(snap.counter("lifepred_alloc_double_frees_total"), Some(0));
        let sizes = snap.histogram("lifepred_alloc_size_bytes").expect("sizes");
        assert_eq!(sizes.count, 200);
        assert_eq!(sizes.sum, 200 * 64);
        let timeline = snap.timeline("lifepred_alloc_epochs").expect("timeline");
        assert!(!timeline.is_empty(), "epoch ticks must leave samples");
        let last = timeline.last().expect("sample");
        assert!(last.epoch >= 1, "learner rolled at least one epoch");
        assert!(last.clock_bytes >= 2048, "tick fired past the boundary");
        assert!(
            last.short_sites >= 1,
            "the looping site was learned as short: {last:?}"
        );
        // Learner gauges came along via export_metrics.
        assert_eq!(snap.gauge("lifepred_learner_total_allocs"), Some(200));
        assert!(snap.gauge("lifepred_learner_epochs").unwrap_or(0) >= 1);
        // Double frees also hit the metric layer (after the next
        // export folds the pending per-shard deltas in).
        let p = heap.allocate(site, layout(64));
        // SAFETY: deliberate double free; adaptive mode filters it.
        unsafe {
            heap.deallocate(p, layout(64));
            heap.deallocate(p, layout(64));
        }
        heap.export_metrics(&registry);
        let snap = registry.snapshot();
        assert_eq!(snap.counter("lifepred_alloc_double_frees_total"), Some(1));
    }

    #[test]
    fn zero_size_returns_null() {
        let heap = ShardedAllocator::adaptive(tiny_epoch(), 1, small_geometry());
        let p = heap.allocate(SiteKey(1), Layout::from_size_align(0, 1).expect("l"));
        assert!(p.is_null());
        // Freeing null is a no-op, not a double free.
        // SAFETY: the pointer came from this heap's allocate with
        // the same layout and is freed exactly once.
        unsafe { heap.deallocate(p, Layout::from_size_align(0, 1).expect("l")) };
        assert_eq!(heap.stats().double_frees, 0);
    }

    #[test]
    fn global_alloc_contract() {
        let heap = ShardedAllocator::adaptive(tiny_epoch(), 2, small_geometry());
        let l = layout(48);
        // SAFETY: the layout has nonzero size.
        let p = unsafe { GlobalAlloc::alloc(&heap, l) };
        assert!(!p.is_null());
        // SAFETY: p is a live allocation at least this large.
        unsafe { ptr::write_bytes(p, 7, 48) };
        // SAFETY: p came from this allocator's alloc with the
        // same layout and is freed exactly once.
        unsafe { GlobalAlloc::dealloc(&heap, p, l) };
        assert_eq!(heap.stats().double_frees, 0);
    }
}
