//! The trained runtime site database.

use crate::site::SiteKey;
use std::collections::HashSet;

/// A set of runtime allocation sites predicted to allocate only
/// short-lived objects — the "small hash table" the paper links into
/// the optimized allocator.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RuntimeSiteDb {
    threshold: u64,
    sites: HashSet<SiteKey>,
}

impl RuntimeSiteDb {
    /// Creates an empty database with the given lifetime threshold.
    pub fn new(threshold: u64) -> Self {
        RuntimeSiteDb {
            threshold,
            sites: HashSet::new(),
        }
    }

    /// The training threshold in bytes of allocation.
    pub fn threshold(&self) -> u64 {
        self.threshold
    }

    /// Adds a site (size class already folded in).
    pub fn insert(&mut self, site: SiteKey) {
        self.sites.insert(site);
    }

    /// Whether `site` is predicted short-lived.
    pub fn predicts(&self, site: SiteKey) -> bool {
        self.sites.contains(&site)
    }

    /// Number of sites.
    pub fn len(&self) -> usize {
        self.sites.len()
    }

    /// Whether the database is empty.
    pub fn is_empty(&self) -> bool {
        self.sites.is_empty()
    }

    /// Serializes to a line-oriented text format.
    pub fn save_to_string(&self) -> String {
        let mut keys: Vec<u64> = self.sites.iter().map(|s| s.0).collect();
        keys.sort_unstable();
        let mut out = format!("lifepred-runtime-sites v1 threshold={}\n", self.threshold);
        for k in keys {
            out.push_str(&format!("{k:016x}\n"));
        }
        out
    }

    /// Parses a database produced by [`RuntimeSiteDb::save_to_string`].
    ///
    /// # Errors
    ///
    /// Returns a message on a malformed header or site line.
    pub fn load_from_str(text: &str) -> Result<Self, String> {
        let mut lines = text.lines();
        let header = lines.next().ok_or("empty database")?;
        let threshold = header
            .strip_prefix("lifepred-runtime-sites v1 threshold=")
            .ok_or_else(|| format!("bad header: {header}"))?
            .parse::<u64>()
            .map_err(|e| format!("bad threshold: {e}"))?;
        let mut sites = HashSet::new();
        for line in lines {
            if line.trim().is_empty() {
                continue;
            }
            let key = u64::from_str_radix(line.trim(), 16)
                .map_err(|e| format!("bad site {line}: {e}"))?;
            sites.insert(SiteKey(key));
        }
        Ok(RuntimeSiteDb { threshold, sites })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let mut db = RuntimeSiteDb::new(32 * 1024);
        db.insert(SiteKey(1));
        db.insert(SiteKey(0xdead_beef));
        let text = db.save_to_string();
        let loaded = RuntimeSiteDb::load_from_str(&text).expect("parse");
        assert_eq!(loaded, db);
        assert!(loaded.predicts(SiteKey(1)));
        assert!(!loaded.predicts(SiteKey(2)));
    }

    #[test]
    fn rejects_garbage() {
        assert!(RuntimeSiteDb::load_from_str("").is_err());
        assert!(RuntimeSiteDb::load_from_str("nope\n").is_err());
        assert!(
            RuntimeSiteDb::load_from_str("lifepred-runtime-sites v1 threshold=1\nzznothex\n")
                .is_err()
        );
    }
}
