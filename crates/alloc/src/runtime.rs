//! The runtime arena allocator (real memory, not simulation).

use crate::database::RuntimeSiteDb;
use crate::obs::AllocObs;
use crate::site::{site_key, SiteKey};
use lifepred_obs::{Registry, Timer};
use parking_lot::Mutex;
use std::alloc::{GlobalAlloc, Layout, System};
use std::fmt;
use std::ptr;

/// Geometry of the runtime arena area (paper defaults: 16 × 4 KB).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RuntimeArenaConfig {
    /// Number of arenas.
    pub arena_count: usize,
    /// Bytes per arena.
    pub arena_size: usize,
}

impl Default for RuntimeArenaConfig {
    fn default() -> Self {
        RuntimeArenaConfig {
            arena_count: 16,
            arena_size: 4096,
        }
    }
}

/// Environment variable overriding the default arena geometry:
/// `LIFEPRED_ARENAS=count,size` (e.g. `32,8192`).
pub const ARENA_ENV: &str = "LIFEPRED_ARENAS";

impl RuntimeArenaConfig {
    /// Total bytes of the arena area.
    ///
    /// # Panics
    ///
    /// Panics when `arena_count * arena_size` overflows `usize` — a
    /// geometry that cannot exist must fail loudly, not wrap into a
    /// tiny area ([`parse_spec`](Self::parse_spec) already rejects
    /// such specs; this guards hand-built configs).
    pub fn total_bytes(&self) -> usize {
        self.arena_count
            .checked_mul(self.arena_size)
            .expect("arena geometry overflows usize")
    }

    /// Parses a `count,size` geometry spec (the [`ARENA_ENV`] format).
    ///
    /// # Errors
    ///
    /// Returns a message on malformed syntax, a zero count/size, more
    /// than 65536 arenas, arenas under 64 bytes or over 1 GiB, or a
    /// total area overflowing `usize`.
    pub fn parse_spec(spec: &str) -> Result<Self, String> {
        let (count, size) = spec
            .split_once(',')
            .ok_or_else(|| format!("{ARENA_ENV}: expected count,size, got {spec:?}"))?;
        let arena_count: usize = count
            .trim()
            .parse()
            .map_err(|e| format!("{ARENA_ENV}: bad arena count {count:?}: {e}"))?;
        let arena_size: usize = size
            .trim()
            .parse()
            .map_err(|e| format!("{ARENA_ENV}: bad arena size {size:?}: {e}"))?;
        if arena_count == 0 || arena_count > 65536 {
            return Err(format!(
                "{ARENA_ENV}: arena count must be in 1..=65536, got {arena_count}"
            ));
        }
        if !(64..=1 << 30).contains(&arena_size) {
            return Err(format!(
                "{ARENA_ENV}: arena size must be in 64..=1 GiB, got {arena_size}"
            ));
        }
        if arena_count.checked_mul(arena_size).is_none() {
            return Err(format!(
                "{ARENA_ENV}: total area {arena_count}*{arena_size} overflows"
            ));
        }
        Ok(RuntimeArenaConfig {
            arena_count,
            arena_size,
        })
    }

    /// Reads the [`ARENA_ENV`] override, if set.
    ///
    /// # Errors
    ///
    /// Returns the [`RuntimeArenaConfig::parse_spec`] message when the
    /// variable is set but malformed, and a dedicated message when it
    /// is set but not valid Unicode. A set-but-broken variable must
    /// never be silently treated as "not set": the operator asked for
    /// specific geometry and would otherwise run with defaults.
    pub fn from_env() -> Result<Option<Self>, String> {
        match std::env::var(ARENA_ENV) {
            Ok(spec) => RuntimeArenaConfig::parse_spec(&spec).map(Some),
            Err(std::env::VarError::NotPresent) => Ok(None),
            Err(std::env::VarError::NotUnicode(raw)) => Err(format!(
                "{ARENA_ENV}: value is not valid Unicode ({raw:?}); \
                 expected count,size"
            )),
        }
    }

    /// The largest layout alignment the arena path can honour with
    /// this geometry.
    ///
    /// Arenas start at multiples of `arena_size` from a 4096-aligned
    /// base, so a pointer bumped within an arena is only guaranteed
    /// aligned when the requested alignment divides `arena_size` (and
    /// is at most 4096, the base alignment). Allocators route layouts
    /// with a larger alignment to the system allocator instead of
    /// returning a misaligned arena pointer.
    pub fn max_served_align(&self) -> usize {
        1usize << self.arena_size.trailing_zeros().min(12)
    }

    /// The startup geometry: the [`ARENA_ENV`] override when set, the
    /// paper's 16 × 4 KB otherwise.
    ///
    /// # Panics
    ///
    /// Panics when the variable is set but malformed — a misconfigured
    /// allocator should fail loudly at startup, not run with silently
    /// substituted geometry.
    pub fn startup() -> Self {
        RuntimeArenaConfig::from_env()
            .expect("malformed LIFEPRED_ARENAS")
            .unwrap_or_default()
    }
}

/// Counters describing how the allocator has behaved so far.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RuntimeStats {
    /// Allocations served by bump-pointer arenas.
    pub arena_allocs: u64,
    /// Allocations served by the system allocator.
    pub general_allocs: u64,
    /// Frees that decremented an arena live count.
    pub arena_frees: u64,
    /// Frees forwarded to the system allocator.
    pub general_frees: u64,
    /// Arena resets (exhausted chain found an empty arena).
    pub arena_resets: u64,
    /// Predicted-short allocations that had to fall back (all arenas
    /// pinned, or the object was larger than an arena).
    pub overflows: u64,
    /// Frees of arena addresses whose arena had no live objects — a
    /// double free (or a stray pointer into the arena area). Counted
    /// and ignored instead of corrupting the live counts.
    pub double_frees: u64,
    /// Snapshot: bytes currently bump-allocated across all arenas
    /// (occupancy since each arena's last reset).
    pub arena_used_bytes: u64,
    /// Snapshot: total capacity of the arena area in bytes.
    pub arena_total_bytes: u64,
    /// Snapshot: bytes sitting in arenas that still hold live objects —
    /// memory that cannot be reclaimed by an arena reset.
    pub pinned_arena_bytes: u64,
    /// Snapshot: number of arenas behind the snapshot fields (one
    /// shard's geometry for per-shard stats, the sum for merged ones).
    pub arena_count: u64,
}

impl RuntimeStats {
    /// Arena occupancy: used bytes as a percentage of capacity.
    pub fn utilization_pct(&self) -> f64 {
        stats_pct(self.arena_used_bytes, self.arena_total_bytes)
    }

    /// Arena fragmentation: bytes pinned by live objects (unreclaimable
    /// by a reset) as a percentage of capacity.
    pub fn fragmentation_pct(&self) -> f64 {
        stats_pct(self.pinned_arena_bytes, self.arena_total_bytes)
    }

    /// Field-wise sum — combines per-shard counters into totals.
    ///
    /// The documented merge rule: counters saturate rather than wrap
    /// past `u64::MAX`; the snapshot fields (`arena_used_bytes`,
    /// `arena_total_bytes`, `pinned_arena_bytes`, `arena_count`) sum,
    /// so [`utilization_pct`](Self::utilization_pct) and
    /// [`fragmentation_pct`](Self::fragmentation_pct) of a merged
    /// report are **capacity-weighted averages** — the per-arena
    /// distribution is not preserved. When the two sides use different
    /// per-arena sizes those weighted averages can mask a hot shard;
    /// use [`checked_merged`](Self::checked_merged) to reject such
    /// merges instead of averaging over them.
    pub fn merged(&self, other: &RuntimeStats) -> RuntimeStats {
        RuntimeStats {
            arena_allocs: self.arena_allocs.saturating_add(other.arena_allocs),
            general_allocs: self.general_allocs.saturating_add(other.general_allocs),
            arena_frees: self.arena_frees.saturating_add(other.arena_frees),
            general_frees: self.general_frees.saturating_add(other.general_frees),
            arena_resets: self.arena_resets.saturating_add(other.arena_resets),
            overflows: self.overflows.saturating_add(other.overflows),
            double_frees: self.double_frees.saturating_add(other.double_frees),
            arena_used_bytes: self.arena_used_bytes.saturating_add(other.arena_used_bytes),
            arena_total_bytes: self
                .arena_total_bytes
                .saturating_add(other.arena_total_bytes),
            pinned_arena_bytes: self
                .pinned_arena_bytes
                .saturating_add(other.pinned_arena_bytes),
            arena_count: self.arena_count.saturating_add(other.arena_count),
        }
    }

    /// Like [`merged`](Self::merged), but refuses to blend snapshots
    /// taken over different arena geometries: if both sides carry
    /// arenas and their per-arena sizes differ, the merged
    /// utilization/fragmentation percentages would be capacity-weighted
    /// over incomparable units, silently losing the per-arena detail.
    ///
    /// # Errors
    ///
    /// [`StatsMergeError`] with both geometries when they disagree.
    pub fn checked_merged(&self, other: &RuntimeStats) -> Result<RuntimeStats, StatsMergeError> {
        let per_arena =
            |s: &RuntimeStats| (s.arena_count > 0).then(|| s.arena_total_bytes / s.arena_count);
        if let (Some(a), Some(b)) = (per_arena(self), per_arena(other)) {
            if a != b {
                return Err(StatsMergeError {
                    left_arenas: self.arena_count,
                    left_arena_bytes: a,
                    right_arenas: other.arena_count,
                    right_arena_bytes: b,
                });
            }
        }
        Ok(self.merged(other))
    }

    /// Exports every field as a `lifepred_runtime_*` gauge in
    /// `registry` (the migration path off hand-rolled stats structs:
    /// renderers read the registry, not this struct).
    pub fn export(&self, registry: &Registry) {
        registry
            .gauge("lifepred_runtime_arena_allocs")
            .set(self.arena_allocs);
        registry
            .gauge("lifepred_runtime_general_allocs")
            .set(self.general_allocs);
        registry
            .gauge("lifepred_runtime_arena_frees")
            .set(self.arena_frees);
        registry
            .gauge("lifepred_runtime_general_frees")
            .set(self.general_frees);
        registry
            .gauge("lifepred_runtime_arena_resets")
            .set(self.arena_resets);
        registry
            .gauge("lifepred_runtime_overflows")
            .set(self.overflows);
        registry
            .gauge("lifepred_runtime_double_frees")
            .set(self.double_frees);
        registry
            .gauge("lifepred_runtime_arena_used_bytes")
            .set(self.arena_used_bytes);
        registry
            .gauge("lifepred_runtime_arena_total_bytes")
            .set(self.arena_total_bytes);
        registry
            .gauge("lifepred_runtime_pinned_arena_bytes")
            .set(self.pinned_arena_bytes);
        registry
            .gauge("lifepred_runtime_arena_count")
            .set(self.arena_count);
    }
}

/// Refusal to merge [`RuntimeStats`] snapshots taken over different
/// arena geometries (see [`RuntimeStats::checked_merged`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StatsMergeError {
    /// Arena count on the left side.
    pub left_arenas: u64,
    /// Per-arena bytes on the left side.
    pub left_arena_bytes: u64,
    /// Arena count on the right side.
    pub right_arenas: u64,
    /// Per-arena bytes on the right side.
    pub right_arena_bytes: u64,
}

impl fmt::Display for StatsMergeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cannot merge stats over different arena geometries: \
             {}×{} B vs {}×{} B (percentages would average incomparable arenas)",
            self.left_arenas, self.left_arena_bytes, self.right_arenas, self.right_arena_bytes
        )
    }
}

impl std::error::Error for StatsMergeError {}

fn stats_pct(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        100.0 * num as f64 / den as f64
    }
}

#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct ArenaState {
    pub(crate) used: usize,
    pub(crate) live: u32,
}

/// Fills the snapshot fields of `stats` from arena states.
pub(crate) fn fill_arena_snapshot(
    stats: &mut RuntimeStats,
    arenas: &[ArenaState],
    arena_size: usize,
) {
    stats.arena_count = arenas.len() as u64;
    stats.arena_total_bytes = (arenas.len() as u64).saturating_mul(arena_size as u64);
    stats.arena_used_bytes = arenas.iter().map(|a| a.used as u64).sum();
    stats.pinned_arena_bytes = arenas
        .iter()
        .filter(|a| a.live > 0)
        .map(|a| a.used as u64)
        .sum();
}

#[derive(Debug)]
struct Inner {
    arenas: Vec<ArenaState>,
    current: usize,
    stats: RuntimeStats,
}

/// A lifetime-predicting allocator over real memory.
///
/// Allocations whose (site, size-class) is in the trained
/// [`RuntimeSiteDb`] are bump-allocated into fixed arenas with a live
/// count and no per-object header; everything else goes to the system
/// allocator. Frees route by address range, exactly as in §5.1 of the
/// paper.
///
/// The type also implements [`GlobalAlloc`]; in that mode the site is
/// the ambient [`SiteScope`](crate::SiteScope) chain key, captured at
/// allocation time.
#[derive(Debug)]
pub struct PredictiveAllocator {
    config: RuntimeArenaConfig,
    db: RuntimeSiteDb,
    /// Base of the arena area; owned, freed on drop.
    base: *mut u8,
    inner: Mutex<Inner>,
    /// Metric handles when a registry is attached; the hot path pays
    /// one sharded Relaxed add per event, nothing when detached.
    obs: Option<AllocObs>,
}

// SAFETY: the raw base pointer is only read concurrently; all mutable
// bookkeeping sits behind the mutex, and the arena memory itself is
// handed out in disjoint chunks.
unsafe impl Send for PredictiveAllocator {}
// SAFETY: as above — shared access is mediated by the internal mutex;
// the arena base pointer itself is never written after construction.
unsafe impl Sync for PredictiveAllocator {}

impl PredictiveAllocator {
    /// Creates an allocator with an empty database (everything goes to
    /// the system allocator) and default geometry.
    pub fn new() -> Self {
        PredictiveAllocator::with_database(RuntimeSiteDb::default())
    }

    /// Creates an allocator driven by a trained database, with the
    /// startup geometry (the `LIFEPRED_ARENAS` environment override
    /// when set, the paper's 16 × 4 KB otherwise).
    ///
    /// # Panics
    ///
    /// Panics when `LIFEPRED_ARENAS` is set but malformed (see
    /// [`RuntimeArenaConfig::startup`]).
    pub fn with_database(db: RuntimeSiteDb) -> Self {
        PredictiveAllocator::with_config(db, RuntimeArenaConfig::startup())
    }

    /// Creates an allocator with explicit arena geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is empty or the arena area cannot be
    /// allocated.
    pub fn with_config(db: RuntimeSiteDb, config: RuntimeArenaConfig) -> Self {
        assert!(
            config.arena_count > 0 && config.arena_size > 0,
            "empty geometry"
        );
        let layout =
            Layout::from_size_align(config.total_bytes(), 4096).expect("arena area layout");
        // SAFETY: layout has nonzero size.
        let base = unsafe { System.alloc(layout) };
        assert!(!base.is_null(), "arena area allocation failed");
        PredictiveAllocator {
            config,
            db,
            base,
            inner: Mutex::new(Inner {
                arenas: vec![ArenaState::default(); config.arena_count],
                current: 0,
                stats: RuntimeStats::default(),
            }),
            obs: None,
        }
    }

    /// The arena geometry.
    pub fn config(&self) -> &RuntimeArenaConfig {
        &self.config
    }

    /// Attaches the `lifepred_alloc_*` metric set from `registry` to
    /// this allocator's hot path. Call before sharing the allocator;
    /// pair with [`export_metrics`](Self::export_metrics) for the
    /// snapshot gauges.
    pub fn attach_registry(&mut self, registry: &Registry) {
        self.obs = Some(AllocObs::register(registry));
    }

    /// Exports the current [`RuntimeStats`] as `lifepred_runtime_*`
    /// gauges in `registry` (an export-time operation — call it when a
    /// report is wanted, not per allocation).
    pub fn export_metrics(&self, registry: &Registry) {
        self.stats().export(registry);
    }

    /// Counters so far, with arena utilization snapshot fields filled
    /// in at call time.
    pub fn stats(&self) -> RuntimeStats {
        let inner = self.inner.lock();
        let mut stats = inner.stats;
        fill_arena_snapshot(&mut stats, &inner.arenas, self.config.arena_size);
        stats
    }

    /// Whether `ptr` points into the arena area.
    pub fn is_arena_ptr(&self, ptr: *mut u8) -> bool {
        // Wrapping subtraction folds the two range checks into one
        // compare with no overflowable `base + len` addition (same
        // shape as `ShardedAllocator::is_arena_ptr`).
        (ptr as usize).wrapping_sub(self.base as usize) < self.config.total_bytes()
    }

    /// Allocates memory for `layout`, deciding by `site`.
    ///
    /// Returns null on failure (or for zero-size layouts). The
    /// returned memory must be released with
    /// [`PredictiveAllocator::deallocate`] while this allocator is
    /// still alive.
    pub fn allocate(&self, site: SiteKey, layout: Layout) -> *mut u8 {
        if layout.size() == 0 {
            return ptr::null_mut();
        }
        let timer = Timer::start();
        let p = self.allocate_inner(site, layout);
        if let Some(obs) = &self.obs {
            obs.on_alloc(layout.size() as u64, self.is_arena_ptr(p));
            timer.observe_ns(&obs.latency_ns);
        }
        p
    }

    fn allocate_inner(&self, site: SiteKey, layout: Layout) -> *mut u8 {
        let keyed = site.with_size(layout.size());
        let predicted = self.db.predicts(keyed);
        let need = layout.size();
        // Alignments beyond max_served_align cannot be honoured from
        // arena starts (multiples of arena_size): system path.
        if !predicted
            || need > self.config.arena_size
            || layout.align() > self.config.max_served_align()
        {
            let mut inner = self.inner.lock();
            if predicted {
                inner.stats.overflows += 1;
                if let Some(obs) = &self.obs {
                    obs.overflows_total.inc();
                }
            }
            inner.stats.general_allocs += 1;
            drop(inner);
            // SAFETY: nonzero size checked above.
            return unsafe { System.alloc(layout) };
        }
        let mut inner = self.inner.lock();
        // Fast path: bump the current arena.
        let current = inner.current;
        if let Some(p) = self.bump(&mut inner, current, layout) {
            return p;
        }
        // Scan for an empty arena and reset it.
        if let Some(idx) = inner.arenas.iter().position(|a| a.live == 0) {
            inner.arenas[idx] = ArenaState::default();
            inner.current = idx;
            inner.stats.arena_resets += 1;
            if let Some(p) = self.bump(&mut inner, idx, layout) {
                return p;
            }
        }
        // All arenas pinned: degenerate to the general allocator.
        inner.stats.overflows += 1;
        inner.stats.general_allocs += 1;
        if let Some(obs) = &self.obs {
            obs.overflows_total.inc();
        }
        drop(inner);
        // SAFETY: nonzero size checked above.
        unsafe { System.alloc(layout) }
    }

    fn bump(&self, inner: &mut Inner, idx: usize, layout: Layout) -> Option<*mut u8> {
        // Checked throughout: any overflow means "does not fit" and
        // falls back exactly like an exhausted arena.
        let arena_base = idx.checked_mul(self.config.arena_size)?;
        let arena = &mut inner.arenas[idx];
        let offset = align_up(arena.used, layout.align())?;
        let end = offset.checked_add(layout.size())?;
        if end > self.config.arena_size {
            return None;
        }
        arena.used = end;
        arena.live += 1;
        inner.stats.arena_allocs += 1;
        let area_offset = arena_base.checked_add(offset)?;
        // SAFETY: area_offset + size <= total area size, so the
        // resulting pointer is inside the owned area allocation;
        // `allocate` only admits alignments that divide arena_size (and
        // the 4096 base alignment), so base + area_offset honours
        // layout.align().
        Some(unsafe { self.base.add(area_offset) })
    }

    /// Releases memory obtained from [`PredictiveAllocator::allocate`].
    ///
    /// # Safety
    ///
    /// `ptr` must come from `allocate` on this same allocator with the
    /// same `layout`, and must not be used afterwards.
    pub unsafe fn deallocate(&self, ptr: *mut u8, layout: Layout) {
        if ptr.is_null() {
            return;
        }
        if let Some(obs) = &self.obs {
            obs.frees_total.inc();
        }
        if self.is_arena_ptr(ptr) {
            let offset = ptr as usize - self.base as usize;
            let idx = offset / self.config.arena_size;
            let mut inner = self.inner.lock();
            let arena = &mut inner.arenas[idx];
            if arena.live == 0 {
                // Double free (or stray arena pointer): counted, not
                // masked — decrementing would corrupt another object's
                // accounting.
                inner.stats.double_frees += 1;
                if let Some(obs) = &self.obs {
                    obs.double_frees_total.inc();
                }
                return;
            }
            arena.live -= 1;
            inner.stats.arena_frees += 1;
        } else {
            self.inner.lock().stats.general_frees += 1;
            // SAFETY: forwarded from `allocate`'s system path per the
            // caller contract.
            unsafe { System.dealloc(ptr, layout) };
        }
    }

    /// Live objects across all arenas.
    pub fn arena_live_objects(&self) -> u64 {
        self.inner
            .lock()
            .arenas
            .iter()
            .map(|a| u64::from(a.live))
            .sum()
    }
}

impl Default for PredictiveAllocator {
    fn default() -> Self {
        PredictiveAllocator::new()
    }
}

impl Drop for PredictiveAllocator {
    fn drop(&mut self) {
        let layout =
            Layout::from_size_align(self.config.total_bytes(), 4096).expect("arena area layout");
        // SAFETY: base was allocated with exactly this layout in
        // `with_config` and is not referenced after drop.
        unsafe { System.dealloc(self.base, layout) };
    }
}

// SAFETY: allocate/deallocate satisfy the GlobalAlloc contract:
// allocate returns either null or a block valid for `layout`, and
// deallocate is only called (per contract) with blocks from alloc.
unsafe impl GlobalAlloc for PredictiveAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        // The ambient SiteScope chain identifies the site; the leaf
        // location inside this function is constant, so discrimination
        // comes from the scopes plus the size class.
        self.allocate(site_key(), layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: per the GlobalAlloc contract, ptr came from alloc.
        unsafe { self.deallocate(ptr, layout) };
    }
}

/// Rounds `offset` up to a multiple of `align` (a power of two, per
/// `Layout`'s contract); `None` when the rounding would overflow.
pub(crate) fn align_up(offset: usize, align: usize) -> Option<usize> {
    offset.checked_next_multiple_of(align)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiler::RuntimeProfiler;
    use crate::site::SiteScope;

    fn layout(n: usize) -> Layout {
        Layout::from_size_align(n, 8).expect("layout")
    }

    fn trained_db(site: SiteKey, size: usize) -> RuntimeSiteDb {
        let mut db = RuntimeSiteDb::new(32 * 1024);
        db.insert(site.with_size(size));
        db
    }

    #[test]
    fn predicted_sites_use_arenas() {
        let site = site_key();
        let heap = PredictiveAllocator::with_database(trained_db(site, 64));
        let p = heap.allocate(site, layout(64));
        assert!(heap.is_arena_ptr(p));
        assert_eq!(heap.arena_live_objects(), 1);
        // SAFETY: the pointer came from this heap's allocate with
        // the same layout and is freed exactly once.
        unsafe { heap.deallocate(p, layout(64)) };
        assert_eq!(heap.arena_live_objects(), 0);
        assert_eq!(heap.stats().arena_allocs, 1);
        assert_eq!(heap.stats().arena_frees, 1);
    }

    #[test]
    fn unpredicted_sites_use_system() {
        let site = site_key();
        let heap = PredictiveAllocator::new();
        let p = heap.allocate(site, layout(64));
        assert!(!p.is_null());
        assert!(!heap.is_arena_ptr(p));
        // SAFETY: the pointer came from this heap's allocate with
        // the same layout and is freed exactly once.
        unsafe { heap.deallocate(p, layout(64)) };
        assert_eq!(heap.stats().general_allocs, 1);
        assert_eq!(heap.stats().general_frees, 1);
    }

    #[test]
    fn arena_memory_is_usable_and_disjoint() {
        let site = site_key();
        let heap = PredictiveAllocator::with_database(trained_db(site, 16));
        let mut ptrs = Vec::new();
        for i in 0..100u8 {
            let p = heap.allocate(site, layout(16));
            assert!(heap.is_arena_ptr(p));
            // SAFETY: p is a live allocation at least this large.
            unsafe { ptr::write_bytes(p, i, 16) };
            ptrs.push(p);
        }
        for (i, &p) in ptrs.iter().enumerate() {
            // Values must still be intact: chunks are disjoint.
            // SAFETY: p is a live allocation at least this large.
            let v = unsafe { *p };
            assert_eq!(v, i as u8);
        }
        for p in ptrs {
            // SAFETY: the pointer came from this heap's allocate with
            // the same layout and is freed exactly once.
            unsafe { heap.deallocate(p, layout(16)) };
        }
    }

    #[test]
    fn exhausted_arenas_reset_when_empty() {
        let site = site_key();
        let heap = PredictiveAllocator::with_config(
            trained_db(site, 512),
            RuntimeArenaConfig {
                arena_count: 2,
                arena_size: 1024,
            },
        );
        for _ in 0..50 {
            let p = heap.allocate(site, layout(512));
            assert!(heap.is_arena_ptr(p));
            // SAFETY: the pointer came from this heap's allocate with
            // the same layout and is freed exactly once.
            unsafe { heap.deallocate(p, layout(512)) };
        }
        assert!(heap.stats().arena_resets > 0);
        assert_eq!(heap.stats().overflows, 0);
    }

    #[test]
    fn pinned_arenas_overflow_to_system() {
        let site = site_key();
        let heap = PredictiveAllocator::with_config(
            trained_db(site, 512),
            RuntimeArenaConfig {
                arena_count: 2,
                arena_size: 1024,
            },
        );
        // Pin every arena with a live object.
        let pins: Vec<*mut u8> = (0..4).map(|_| heap.allocate(site, layout(512))).collect();
        let p = heap.allocate(site, layout(512));
        assert!(!p.is_null());
        assert!(!heap.is_arena_ptr(p), "should fall back when pinned");
        assert!(heap.stats().overflows >= 1);
        // SAFETY: the pointer came from this heap's allocate with
        // the same layout and is freed exactly once.
        unsafe { heap.deallocate(p, layout(512)) };
        for pin in pins {
            // SAFETY: the pointer came from this heap's allocate with
            // the same layout and is freed exactly once.
            unsafe { heap.deallocate(pin, layout(512)) };
        }
    }

    #[test]
    fn end_to_end_profile_then_predict() {
        // Train on a phase...
        let profiler = RuntimeProfiler::new(32 * 1024);
        let site = {
            let _s = SiteScope::enter("hot_phase");
            site_key()
        };
        {
            let _s = SiteScope::enter("hot_phase");
            for _ in 0..1000 {
                let t = profiler.record_alloc(site, 40);
                profiler.record_free(t);
            }
        }
        let db = profiler.train();
        assert!(!db.is_empty());

        // ...then run with prediction: the same site hits arenas.
        let heap = PredictiveAllocator::with_database(db);
        let p = heap.allocate(site, layout(40));
        assert!(heap.is_arena_ptr(p));
        // SAFETY: the pointer came from this heap's allocate with
        // the same layout and is freed exactly once.
        unsafe { heap.deallocate(p, layout(40)) };
    }

    #[test]
    fn global_alloc_contract() {
        let site = site_key();
        let heap = PredictiveAllocator::with_database(trained_db(site, 32));
        // Through the GlobalAlloc interface the leaf site differs, so
        // this goes to the system path — but must still be valid.
        let l = layout(32);
        // SAFETY: the layout has nonzero size.
        let p = unsafe { GlobalAlloc::alloc(&heap, l) };
        assert!(!p.is_null());
        // SAFETY: p is a live allocation at least this large.
        unsafe { ptr::write_bytes(p, 7, 32) };
        // SAFETY: p came from this allocator's alloc with the
        // same layout and is freed exactly once.
        unsafe { GlobalAlloc::dealloc(&heap, p, l) };
    }

    #[test]
    fn alignment_respected_in_arenas() {
        let site = site_key();
        let mut db = RuntimeSiteDb::new(32 * 1024);
        db.insert(site.with_size(24));
        db.insert(site.with_size(64));
        let heap = PredictiveAllocator::with_database(db);
        let a = heap.allocate(site, Layout::from_size_align(24, 8).expect("l"));
        let b = heap.allocate(site, Layout::from_size_align(64, 64).expect("l"));
        assert_eq!(b as usize % 64, 0, "alignment violated");
        // SAFETY: the pointer came from this heap's allocate with
        // the same layout and is freed exactly once.
        unsafe {
            heap.deallocate(a, Layout::from_size_align(24, 8).expect("l"));
            heap.deallocate(b, Layout::from_size_align(64, 64).expect("l"));
        }
    }

    #[test]
    fn zero_size_returns_null() {
        let heap = PredictiveAllocator::new();
        let p = heap.allocate(site_key(), Layout::from_size_align(0, 1).expect("l"));
        assert!(p.is_null());
    }

    #[test]
    fn alignment_beyond_arena_starts_routes_to_system() {
        let site = site_key();
        // 1024-byte arenas: arena 1 starts 1024 bytes past the
        // 4096-aligned base, so a 2048-align request cannot be served
        // from the arenas without risking a misaligned pointer.
        let heap = PredictiveAllocator::with_config(
            trained_db(site, 64),
            RuntimeArenaConfig {
                arena_count: 4,
                arena_size: 1024,
            },
        );
        let l = Layout::from_size_align(64, 2048).expect("l");
        let p = heap.allocate(site, l);
        assert!(!p.is_null());
        assert!(!heap.is_arena_ptr(p), "must not come from an arena");
        assert_eq!(p as usize % 2048, 0, "alignment violated");
        assert!(heap.stats().overflows >= 1, "routed as an overflow");
        // SAFETY: the pointer came from this heap's allocate with
        // the same layout and is freed exactly once.
        unsafe { heap.deallocate(p, l) };
    }

    #[test]
    fn non_power_of_two_arena_size_limits_served_alignment() {
        // 96 = 32·3: arena starts are only guaranteed 32-aligned.
        let cfg = RuntimeArenaConfig {
            arena_count: 4,
            arena_size: 96,
        };
        assert_eq!(cfg.max_served_align(), 32);
        let site = site_key();
        let mut db = RuntimeSiteDb::new(32 * 1024);
        db.insert(site.with_size(64));
        db.insert(site.with_size(32));
        let heap = PredictiveAllocator::with_config(db, cfg);
        // align 64 > 32: system path, still aligned.
        let l64 = Layout::from_size_align(64, 64).expect("l");
        let p = heap.allocate(site, l64);
        assert!(!heap.is_arena_ptr(p));
        assert_eq!(p as usize % 64, 0, "alignment violated");
        // SAFETY: the pointer came from this heap's allocate with
        // the same layout and is freed exactly once.
        unsafe { heap.deallocate(p, l64) };
        // align 32 divides 96: arena-served pointers are all aligned.
        let l32 = Layout::from_size_align(32, 32).expect("l");
        let mut ptrs = Vec::new();
        for _ in 0..8 {
            let q = heap.allocate(site, l32);
            assert!(heap.is_arena_ptr(q));
            assert_eq!(q as usize % 32, 0, "alignment violated");
            ptrs.push(q);
        }
        for q in ptrs {
            // SAFETY: the pointer came from this heap's allocate with
            // the same layout and is freed exactly once.
            unsafe { heap.deallocate(q, l32) };
        }
    }

    #[test]
    fn max_served_align_caps_at_base_alignment() {
        let big = RuntimeArenaConfig {
            arena_count: 2,
            arena_size: 1 << 20,
        };
        // Arena starts are 1 MiB apart, but the base itself is only
        // 4096-aligned.
        assert_eq!(big.max_served_align(), 4096);
        assert_eq!(RuntimeArenaConfig::default().max_served_align(), 4096);
        let odd = RuntimeArenaConfig {
            arena_count: 16,
            arena_size: 100,
        };
        assert_eq!(odd.max_served_align(), 4);
    }

    #[test]
    fn arena_spec_parses_valid_geometries() {
        let c = RuntimeArenaConfig::parse_spec("32,8192").expect("valid");
        assert_eq!(c.arena_count, 32);
        assert_eq!(c.arena_size, 8192);
        let c = RuntimeArenaConfig::parse_spec(" 4 , 64 ").expect("whitespace ok");
        assert_eq!(c.arena_count, 4);
        assert_eq!(c.arena_size, 64);
    }

    #[test]
    fn arena_spec_rejects_malformed_geometries() {
        for bad in [
            "",              // empty
            "16",            // no comma
            "16,4096,1",     // parse fails on "4096,1"
            "a,4096",        // non-numeric count
            "16,b",          // non-numeric size
            "0,4096",        // zero count
            "70000,4096",    // count over cap
            "16,32",         // size under floor
            "16,2147483648", // size over 1 GiB
        ] {
            assert!(
                RuntimeArenaConfig::parse_spec(bad).is_err(),
                "accepted {bad:?}"
            );
        }
        // Per-component limits fit, but the product overflows usize.
        let huge = format!("65536,{}", 1usize << 30);
        if usize::BITS <= 46 {
            assert!(RuntimeArenaConfig::parse_spec(&huge).is_err());
        }
    }

    #[test]
    fn arena_spec_errors_name_the_offending_field() {
        let err = RuntimeArenaConfig::parse_spec("zero,4096").unwrap_err();
        assert!(
            err.contains(ARENA_ENV),
            "error should name the variable: {err}"
        );
        assert!(err.contains("count"), "error should name the field: {err}");
        let err = RuntimeArenaConfig::parse_spec("16,huge").unwrap_err();
        assert!(err.contains("size"), "error should name the field: {err}");
        let err = RuntimeArenaConfig::parse_spec("16,32").unwrap_err();
        assert!(
            err.contains("arena size"),
            "error should name the field: {err}"
        );
        assert!(err.contains("32"), "error should echo the value: {err}");
    }

    // The from_env tests mutate process-global environment state, so
    // they run as one test (and no sibling test reads the variable)
    // to avoid racing parallel test threads.
    #[test]
    fn from_env_is_loud_about_set_but_broken_values() {
        std::env::remove_var(ARENA_ENV);
        assert_eq!(RuntimeArenaConfig::from_env(), Ok(None));

        std::env::set_var(ARENA_ENV, "8,8192");
        assert_eq!(
            RuntimeArenaConfig::from_env(),
            Ok(Some(RuntimeArenaConfig {
                arena_count: 8,
                arena_size: 8192,
            }))
        );

        // Malformed geometry is an error, not a default fallback.
        std::env::set_var(ARENA_ENV, "8x8192");
        let err = RuntimeArenaConfig::from_env().unwrap_err();
        assert!(err.contains(ARENA_ENV), "{err}");

        // A set-but-non-Unicode value is an error too (this used to
        // fall back to defaults silently).
        #[cfg(unix)]
        {
            use std::os::unix::ffi::OsStrExt;
            let raw = std::ffi::OsStr::from_bytes(&[b'8', 0xff, b'4']);
            std::env::set_var(ARENA_ENV, raw);
            let err = RuntimeArenaConfig::from_env().unwrap_err();
            assert!(err.contains("not valid Unicode"), "{err}");
            assert!(err.contains(ARENA_ENV), "{err}");
        }

        std::env::remove_var(ARENA_ENV);
    }

    #[test]
    fn double_free_is_counted_not_masked() {
        let site = site_key();
        let heap = PredictiveAllocator::with_database(trained_db(site, 64));
        let p = heap.allocate(site, layout(64));
        assert!(heap.is_arena_ptr(p));
        // SAFETY: the pointer came from this heap's allocate with
        // the same layout and is freed exactly once.
        unsafe { heap.deallocate(p, layout(64)) };
        // The second free of the same block must not underflow the live
        // count — it is counted as a double free and otherwise ignored.
        // SAFETY: the pointer came from this heap's allocate with
        // the same layout and is freed exactly once.
        unsafe { heap.deallocate(p, layout(64)) };
        let s = heap.stats();
        assert_eq!(s.arena_frees, 1);
        assert_eq!(s.double_frees, 1);
        assert_eq!(heap.arena_live_objects(), 0);
    }

    #[test]
    fn stats_snapshot_reports_utilization_and_fragmentation() {
        let site = site_key();
        let heap = PredictiveAllocator::with_config(
            trained_db(site, 512),
            RuntimeArenaConfig {
                arena_count: 2,
                arena_size: 1024,
            },
        );
        let p = heap.allocate(site, layout(512));
        let s = heap.stats();
        assert_eq!(s.arena_total_bytes, 2048);
        assert_eq!(s.arena_used_bytes, 512);
        assert_eq!(s.pinned_arena_bytes, 512);
        assert!((s.utilization_pct() - 25.0).abs() < 1e-9);
        assert!((s.fragmentation_pct() - 25.0).abs() < 1e-9);
        // SAFETY: the pointer came from this heap's allocate with
        // the same layout and is freed exactly once.
        unsafe { heap.deallocate(p, layout(512)) };
        // Freed: the arena keeps its bump offset (used) but is no
        // longer pinned.
        let s = heap.stats();
        assert_eq!(s.pinned_arena_bytes, 0);
        assert!((s.fragmentation_pct() - 0.0).abs() < 1e-9);
    }

    #[test]
    fn merged_stats_sum_fieldwise() {
        let a = RuntimeStats {
            arena_allocs: 1,
            general_allocs: 2,
            double_frees: 3,
            ..RuntimeStats::default()
        };
        let b = RuntimeStats {
            arena_allocs: 10,
            overflows: 5,
            ..RuntimeStats::default()
        };
        let m = a.merged(&b);
        assert_eq!(m.arena_allocs, 11);
        assert_eq!(m.general_allocs, 2);
        assert_eq!(m.double_frees, 3);
        assert_eq!(m.overflows, 5);
    }

    #[test]
    fn checked_merge_rejects_mismatched_arena_geometry() {
        // Regression: `merged` used to blend snapshots from different
        // arena geometries silently — 2×1 KiB merged with 4×4 KiB gives
        // a capacity-weighted utilization that describes neither side.
        let small = RuntimeStats {
            arena_count: 2,
            arena_total_bytes: 2 * 1024,
            arena_used_bytes: 2 * 1024, // 100% full
            ..RuntimeStats::default()
        };
        let large = RuntimeStats {
            arena_count: 4,
            arena_total_bytes: 4 * 4096,
            arena_used_bytes: 0, // empty
            ..RuntimeStats::default()
        };
        let err = small.checked_merged(&large).expect_err("must reject");
        assert_eq!(err.left_arena_bytes, 1024);
        assert_eq!(err.right_arena_bytes, 4096);
        assert!(err.to_string().contains("arena geometries"), "{err}");
        // Same per-arena size merges fine, and the documented saturate
        // rule applies: snapshot fields sum.
        let twin = RuntimeStats {
            arena_count: 8,
            arena_total_bytes: 8 * 1024,
            ..RuntimeStats::default()
        };
        let m = small.checked_merged(&twin).expect("same geometry");
        assert_eq!(m.arena_count, 10);
        assert_eq!(m.arena_total_bytes, 10 * 1024);
        // A side with no arenas at all merges with anything.
        assert!(RuntimeStats::default().checked_merged(&large).is_ok());
        // And the unchecked merge still saturates instead of wrapping.
        let maxed = RuntimeStats {
            arena_allocs: u64::MAX,
            ..RuntimeStats::default()
        };
        assert_eq!(maxed.merged(&maxed).arena_allocs, u64::MAX);
    }

    #[test]
    fn stats_snapshot_carries_arena_count() {
        let heap = PredictiveAllocator::with_config(
            RuntimeSiteDb::default(),
            RuntimeArenaConfig {
                arena_count: 3,
                arena_size: 256,
            },
        );
        assert_eq!(heap.stats().arena_count, 3);
    }

    #[test]
    fn attached_registry_sees_hot_path_traffic() {
        use lifepred_obs::Registry;
        let site = site_key();
        let mut heap = PredictiveAllocator::with_database(trained_db(site, 64));
        let registry = Registry::new();
        heap.attach_registry(&registry);
        let p = heap.allocate(site, layout(64));
        assert!(heap.is_arena_ptr(p));
        // Predicted size, but an alignment arenas cannot honour: the
        // allocation overflows to the system path.
        let big = Layout::from_size_align(64, 8192).expect("l");
        let q = heap.allocate(site, big);
        // SAFETY: the pointers came from this heap's allocate with the
        // same layouts and are freed exactly once.
        unsafe {
            heap.deallocate(p, layout(64));
            heap.deallocate(q, big);
        }
        heap.export_metrics(&registry);
        let snap = registry.snapshot();
        assert_eq!(snap.counter("lifepred_alloc_allocs_total"), Some(2));
        assert_eq!(snap.counter("lifepred_alloc_arena_allocs_total"), Some(1));
        assert_eq!(snap.counter("lifepred_alloc_general_allocs_total"), Some(1));
        assert_eq!(snap.counter("lifepred_alloc_frees_total"), Some(2));
        assert_eq!(snap.counter("lifepred_alloc_overflows_total"), Some(1));
        let sizes = snap.histogram("lifepred_alloc_size_bytes").expect("sizes");
        assert_eq!(sizes.count, 2);
        assert_eq!(sizes.sum, 128);
        // Export-time gauges mirror RuntimeStats.
        assert_eq!(snap.gauge("lifepred_runtime_arena_allocs"), Some(1));
        assert_eq!(snap.gauge("lifepred_runtime_overflows"), Some(1));
        assert_eq!(snap.gauge("lifepred_runtime_arena_count"), Some(16));
    }
}
