//! Multi-threaded smoke test: two traced workload programs replayed
//! concurrently against one shared [`ShardedAllocator`] in adaptive
//! mode. No frees are lost, double frees stay at zero, and per-shard
//! counters sum to the global totals.

use lifepred_adaptive::EpochConfig;
use lifepred_alloc::{RuntimeArenaConfig, RuntimeStats, ShardedAllocator, SiteKey};
use lifepred_trace::{shared_registry, EventKind, Trace};
use lifepred_workloads::by_name;
use std::alloc::Layout;
use std::collections::HashMap;

fn record_workload(name: &str) -> Trace {
    let w = by_name(name).expect("workload exists");
    lifepred_workloads::record(w.as_ref(), 0, shared_registry())
}

fn small_epoch() -> EpochConfig {
    EpochConfig {
        threshold: 4096,
        epoch_bytes: 8192,
        ..EpochConfig::default()
    }
}

/// Replays one trace's alloc/free stream against the shared allocator.
/// `tag` keeps the two programs' site keys disjoint. Returns the
/// allocations made plus the survivors (as addresses) for the caller to
/// free from a *different* thread.
fn replay(heap: &ShardedAllocator, trace: &Trace, tag: u64) -> (u64, u64, Vec<(usize, Layout)>) {
    let records = trace.records();
    let mut live: HashMap<u64, (*mut u8, Layout)> = HashMap::new();
    let mut allocs = 0u64;
    let mut frees = 0u64;
    for event in trace.events() {
        let record = &records[event.record];
        let site = SiteKey(u64::from(record.chain.index()) | (tag << 32));
        match event.kind {
            EventKind::Alloc => {
                let layout =
                    Layout::from_size_align(record.size.max(1) as usize, 8).expect("layout");
                let p = heap.allocate(site, layout);
                assert!(!p.is_null(), "allocation failed mid-replay");
                allocs += 1;
                let prev = live.insert(event.object.index(), (p, layout));
                assert!(prev.is_none(), "object allocated twice");
            }
            EventKind::Free => {
                let (p, layout) = live.remove(&event.object.index()).expect("free of live");
                // SAFETY: p came from heap.allocate with this layout;
                // the live map guarantees exactly one free.
                unsafe { heap.deallocate(p, layout) };
                frees += 1;
            }
        }
    }
    let survivors = live
        .into_values()
        .map(|(p, layout)| (p as usize, layout))
        .collect();
    (allocs, frees, survivors)
}

#[test]
fn two_workloads_share_one_adaptive_allocator() {
    let cfrac = record_workload("cfrac");
    let gawk = record_workload("gawk");
    let heap = ShardedAllocator::adaptive(small_epoch(), 4, RuntimeArenaConfig::default());

    let ((a1, f1, rest1), (a2, f2, rest2)) = std::thread::scope(|s| {
        let h1 = s.spawn(|| replay(&heap, &cfrac, 1));
        let h2 = s.spawn(|| replay(&heap, &gawk, 2));
        (
            h1.join().expect("cfrac thread"),
            h2.join().expect("gawk thread"),
        )
    });
    assert!(a1 > 1000, "cfrac should allocate plenty, got {a1}");
    assert!(a2 > 1000, "gawk should allocate plenty, got {a2}");

    // Cross-thread frees: survivors were allocated on worker threads
    // and are released here on the main thread.
    let mut cross = 0u64;
    for (addr, layout) in rest1.into_iter().chain(rest2) {
        // SAFETY: each survivor was allocated by this heap with this
        // layout on a worker thread and is freed exactly once here.
        unsafe { heap.deallocate(addr as *mut u8, layout) };
        cross += 1;
    }

    let stats = heap.stats();
    assert_eq!(
        stats.arena_allocs + stats.general_allocs,
        a1 + a2,
        "no allocation lost: {stats:?}"
    );
    assert_eq!(
        stats.arena_frees + stats.general_frees,
        f1 + f2 + cross,
        "no free lost: {stats:?}"
    );
    assert_eq!(stats.double_frees, 0);
    assert_eq!(heap.arena_live_objects(), 0, "everything was freed");

    // Per-shard counters sum to the global totals.
    let summed = heap
        .shard_stats()
        .iter()
        .fold(RuntimeStats::default(), |acc, s| acc.merged(s));
    assert_eq!(summed, stats);

    // The learner saw real traffic and learned something.
    let learned = heap.adaptive_stats().expect("adaptive mode");
    assert!(learned.epochs > 0, "epochs ticked: {learned:?}");
    assert!(learned.total_allocs > 0);
    assert!(
        learned.promotions > 0,
        "workload churn should promote at least one site: {learned:?}"
    );
    // Online prediction actually routed traffic to the arenas.
    assert!(stats.arena_allocs > 0, "no allocation ever hit an arena");
}

#[test]
fn same_program_from_many_threads_keeps_counts_consistent() {
    let trace = record_workload("cfrac");
    let heap = ShardedAllocator::adaptive(small_epoch(), 4, RuntimeArenaConfig::default());

    let results = std::thread::scope(|s| {
        let handles: Vec<_> = (0..4)
            .map(|tag| {
                let trace = &trace;
                let heap = &heap;
                s.spawn(move || replay(heap, trace, tag as u64 + 1))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("replay thread"))
            .collect::<Vec<_>>()
    });

    let mut allocs = 0u64;
    let mut frees = 0u64;
    for (a, f, rest) in results {
        allocs += a;
        frees += f;
        for (addr, layout) in rest {
            // SAFETY: each survivor was allocated by this heap with
            // this layout and is freed exactly once here.
            unsafe { heap.deallocate(addr as *mut u8, layout) };
            frees += 1;
        }
    }
    let stats = heap.stats();
    assert_eq!(stats.arena_allocs + stats.general_allocs, allocs);
    assert_eq!(stats.arena_frees + stats.general_frees, frees);
    assert_eq!(stats.double_frees, 0);
    assert_eq!(heap.arena_live_objects(), 0);
}
