//! Golden-file tests pinning the flight recorder's export formats
//! byte-for-byte.
//!
//! A synthetic event sequence with fixed timestamps — covering every
//! event kind and at least one catalogue id per instrumented subsystem
//! (galloc, replay, sweep, serve, CLI) — renders to Chrome Trace Event
//! JSON and to the text summary and is diffed against
//! `tests/golden/trace.{json,txt}`. Renaming a catalogue entry,
//! changing a category, or perturbing either renderer's key order,
//! timestamp precision, or layout is a schema change and must show up
//! as a golden diff.
//!
//! To bless an intentional change:
//!
//! ```text
//! LIFEPRED_REGEN_GOLDEN=1 cargo test -p lifepred-flight --test golden
//! ```

use lifepred_flight::{catalog, chrome, summary, Event, EventKind};
use std::path::PathBuf;

fn ev(kind: EventKind, id: u16, ts_ns: u64, tid: u32, arg: u64) -> Event {
    Event {
        ts_ns,
        arg,
        id,
        kind,
        tid,
    }
}

/// The pinned scenario: two threads, nested and sibling spans, an
/// instant, a counter, and sub-microsecond timestamps that exercise
/// the exact three-decimal rendering.
fn canonical_events() -> Vec<Event> {
    vec![
        ev(EventKind::SpanBegin, catalog::CLI_WORKLOAD, 500, 1, 0),
        ev(
            EventKind::SpanBegin,
            catalog::GALLOC_MAG_REFILL,
            1_250,
            1,
            0,
        ),
        ev(
            EventKind::Instant,
            catalog::GALLOC_REMOTE_DRAIN,
            1_900,
            1,
            7,
        ),
        ev(EventKind::SpanEnd, catalog::GALLOC_MAG_REFILL, 2_750, 1, 0),
        ev(EventKind::SpanBegin, catalog::SWEEP_JOB, 3_000, 2, 4),
        ev(EventKind::Instant, catalog::SWEEP_CACHE_HIT, 3_100, 2, 12),
        ev(EventKind::SpanBegin, catalog::REPLAY_DECODE, 3_500, 2, 0),
        ev(EventKind::SpanEnd, catalog::REPLAY_DECODE, 10_000, 2, 0),
        ev(EventKind::SpanEnd, catalog::SWEEP_JOB, 12_345, 2, 0),
        ev(EventKind::SpanBegin, catalog::SERVE_REQUEST, 20_000, 1, 0),
        ev(
            EventKind::Counter,
            catalog::SERVE_TRACE_SNAPSHOT,
            21_000,
            1,
            88,
        ),
        ev(EventKind::SpanEnd, catalog::SERVE_REQUEST, 33_003, 1, 0),
        ev(EventKind::SpanEnd, catalog::CLI_WORKLOAD, 40_000, 1, 0),
    ]
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

fn check(file: &str, rendered: &str) {
    let path = golden_path(file);
    if std::env::var_os("LIFEPRED_REGEN_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().expect("golden dir")).expect("mkdir golden");
        std::fs::write(&path, rendered).expect("write golden");
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); bless with LIFEPRED_REGEN_GOLDEN=1",
            path.display()
        )
    });
    assert_eq!(
        rendered, want,
        "{file} drifted from its golden copy — if the format change is \
         intentional, bless it with LIFEPRED_REGEN_GOLDEN=1 and call it \
         out in the changelog"
    );
}

#[test]
fn chrome_trace_rendering_is_pinned() {
    check(
        "trace.json",
        &chrome::chrome_trace_json(&canonical_events()),
    );
}

#[test]
fn summary_rendering_is_pinned() {
    check("trace.txt", &summary::render_summary(&canonical_events()));
}

#[test]
fn golden_trace_is_structurally_sound() {
    let json = chrome::chrome_trace_json(&canonical_events());
    // Spans stay balanced and both threads are named.
    assert_eq!(
        json.matches("\"ph\": \"B\"").count(),
        json.matches("\"ph\": \"E\"").count()
    );
    assert!(json.contains("\"name\": \"thread-1\""));
    assert!(json.contains("\"name\": \"thread-2\""));
    // One record per line inside the traceEvents array: every data
    // line is a complete JSON object.
    for line in json.lines().filter(|l| l.starts_with('{') && l.len() > 2) {
        let trimmed = line.trim_end_matches(',');
        assert!(trimmed.ends_with('}'), "unterminated record: {line}");
    }
}
