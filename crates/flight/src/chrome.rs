//! Chrome Trace Event export (Perfetto-loadable).
//!
//! Produces the JSON object form of the [Trace Event Format]: a
//! `traceEvents` array of `B`/`E` span pairs, `i` instants, `C`
//! counters and `M` metadata records. `chrome://tracing` and
//! [ui.perfetto.dev](https://ui.perfetto.dev) both open it directly.
//!
//! The output is deterministic for a given event slice — one event
//! per line, fixed key order, timestamps in microseconds with fixed
//! three-decimal precision — so a golden file can pin the schema
//! byte-for-byte.
//!
//! [Trace Event Format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use crate::catalog::{cat_of, name_of};
use crate::event::{Event, EventKind};
use std::collections::BTreeSet;

/// The `pid` every record carries (the recorder is process-local).
const PID: u32 = 1;

/// Renders `events` as a Chrome Trace Event JSON document.
///
/// Events should be in timestamp order ([`drain`](crate::drain)
/// returns them that way); the exporter preserves the given order.
pub fn chrome_trace_json(events: &[Event]) -> String {
    let mut lines = Vec::with_capacity(events.len() + 8);
    lines.push(format!(
        "{{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": {PID}, \
         \"args\": {{\"name\": \"lifepred\"}}}}"
    ));
    let tids: BTreeSet<u32> = events.iter().map(|e| e.tid).collect();
    for tid in tids {
        lines.push(format!(
            "{{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": {PID}, \"tid\": {tid}, \
             \"args\": {{\"name\": \"thread-{tid}\"}}}}"
        ));
    }
    for e in events {
        let name = name_of(e.id);
        let cat = cat_of(e.id);
        let ts = micros(e.ts_ns);
        let (tid, arg) = (e.tid, e.arg);
        lines.push(match e.kind {
            EventKind::SpanBegin => format!(
                "{{\"name\": \"{name}\", \"cat\": \"{cat}\", \"ph\": \"B\", \"pid\": {PID}, \
                 \"tid\": {tid}, \"ts\": {ts}, \"args\": {{\"arg\": {arg}}}}}"
            ),
            EventKind::SpanEnd => format!(
                "{{\"name\": \"{name}\", \"cat\": \"{cat}\", \"ph\": \"E\", \"pid\": {PID}, \
                 \"tid\": {tid}, \"ts\": {ts}}}"
            ),
            EventKind::Instant => format!(
                "{{\"name\": \"{name}\", \"cat\": \"{cat}\", \"ph\": \"i\", \"s\": \"t\", \
                 \"pid\": {PID}, \"tid\": {tid}, \"ts\": {ts}, \"args\": {{\"arg\": {arg}}}}}"
            ),
            EventKind::Counter => format!(
                "{{\"name\": \"{name}\", \"cat\": \"{cat}\", \"ph\": \"C\", \"pid\": {PID}, \
                 \"tid\": {tid}, \"ts\": {ts}, \"args\": {{\"value\": {arg}}}}}"
            ),
        });
    }
    format!(
        "{{\n\"displayTimeUnit\": \"ms\",\n\"traceEvents\": [\n{}\n]\n}}\n",
        lines.join(",\n")
    )
}

/// Nanoseconds → microseconds with fixed three-decimal precision
/// (exact: 1 ns = 0.001 µs), so rendering never depends on float
/// formatting.
fn micros(ns: u64) -> String {
    format!("{}.{:03}", ns / 1000, ns % 1000)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;

    fn ev(kind: EventKind, id: u16, ts_ns: u64, tid: u32, arg: u64) -> Event {
        Event {
            ts_ns,
            arg,
            id,
            kind,
            tid,
        }
    }

    #[test]
    fn exports_every_phase_kind() {
        let events = [
            ev(EventKind::SpanBegin, catalog::SWEEP_JOB, 1_500, 1, 3),
            ev(EventKind::Instant, catalog::SWEEP_STEAL, 2_000, 2, 1),
            ev(
                EventKind::Counter,
                catalog::SERVE_TRACE_SNAPSHOT,
                2_500,
                1,
                88,
            ),
            ev(EventKind::SpanEnd, catalog::SWEEP_JOB, 9_000, 1, 0),
        ];
        let json = chrome_trace_json(&events);
        assert!(json.contains("\"ph\": \"B\""));
        assert!(json.contains("\"ph\": \"E\""));
        assert!(json.contains("\"ph\": \"i\""));
        assert!(json.contains("\"ph\": \"C\""));
        assert!(json.contains("\"name\": \"sweep.job\""));
        assert!(json.contains("\"ts\": 1.500"));
        assert!(json.contains("\"ts\": 9.000"));
        assert!(json.contains("\"value\": 88"));
        assert!(json.contains("\"name\": \"thread-2\""));
        // Balanced structure: as many opens as closes.
        assert_eq!(
            json.matches("\"ph\": \"B\"").count(),
            json.matches("\"ph\": \"E\"").count()
        );
    }

    #[test]
    fn output_is_deterministic() {
        let events = [
            ev(EventKind::SpanBegin, catalog::REPLAY_DECODE, 0, 1, 0),
            ev(EventKind::SpanEnd, catalog::REPLAY_DECODE, 10, 1, 0),
        ];
        assert_eq!(chrome_trace_json(&events), chrome_trace_json(&events));
    }

    #[test]
    fn timestamps_do_not_round() {
        assert_eq!(micros(0), "0.000");
        assert_eq!(micros(1), "0.001");
        assert_eq!(micros(999), "0.999");
        assert_eq!(micros(1_000), "1.000");
        assert_eq!(micros(1_234_567), "1234.567");
    }

    #[test]
    fn empty_trace_is_still_valid_json_shape() {
        let json = chrome_trace_json(&[]);
        assert!(json.starts_with('{'));
        assert!(json.trim_end().ends_with('}'));
        assert!(json.contains("process_name"));
    }
}
