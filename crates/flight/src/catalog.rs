//! The compile-time event catalogue.
//!
//! Every instrumented site names its event by a 16-bit id from this
//! table. Ids are grouped by subsystem (high byte) so a trace can be
//! filtered without string matching, and the table is sorted by id so
//! lookup is a binary search. Adding an event means adding one
//! constant and one [`EventDesc`] row — the `catalogue_is_sorted`
//! test keeps the invariant honest.

/// Static description of one event id.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventDesc {
    /// The id instrumented code passes to `span`/`instant`/`counter`.
    pub id: u16,
    /// Dotted display name (`subsystem.event`), stable across releases
    /// — the Chrome-trace golden pins these strings.
    pub name: &'static str,
    /// Chrome trace `cat` field; one per subsystem.
    pub cat: &'static str,
}

/// `galloc`: magazine refill from the shard free lists.
pub const GALLOC_MAG_REFILL: u16 = 0x0101;
/// `galloc`: magazine overflow flush back to the shards.
pub const GALLOC_MAG_FLUSH: u16 = 0x0102;
/// `galloc`: draining a segment's remote-free stack.
pub const GALLOC_REMOTE_DRAIN: u16 = 0x0103;
/// `galloc`: a short-segment reclaim election was won (instant).
pub const GALLOC_SHORT_RECLAIM: u16 = 0x0104;
/// `galloc`: learner epoch tick (clock flush crossing a boundary).
pub const GALLOC_EPOCH_TICK: u16 = 0x0105;
/// `galloc`: an allocation fell back to the System allocator
/// (instant; `arg` = requested size).
pub const GALLOC_SYS_FALLBACK: u16 = 0x0106;

/// `replay`: decoding one event chunk from the `.lpt` stream.
pub const REPLAY_DECODE: u16 = 0x0201;
/// `replay`: placing one chunk's events into the simulated heap.
pub const REPLAY_PLACE: u16 = 0x0202;
/// `replay`: publishing batched metrics at end of replay.
pub const REPLAY_OBS_FLUSH: u16 = 0x0203;
/// `replay`: an online-arena epoch boundary (instant; `arg` = the
/// epoch's ordinal).
pub const REPLAY_EPOCH: u16 = 0x0204;

/// `sweep`: one grid-cell job, train or simulate (span; `arg` = job
/// sequence number).
pub const SWEEP_JOB: u16 = 0x0301;
/// `sweep`: a worker stole a job from another deque (instant; `arg` =
/// victim worker index).
pub const SWEEP_STEAL: u16 = 0x0302;
/// `sweep`: a worker parked waiting for work (span covers the wait).
pub const SWEEP_PARK: u16 = 0x0303;
/// `sweep`: a parked worker was woken (instant).
pub const SWEEP_UNPARK: u16 = 0x0304;
/// `sweep`: a cell was answered from the result store (instant).
pub const SWEEP_CACHE_HIT: u16 = 0x0305;
/// `sweep`: a cell missed the result store and must compute (instant).
pub const SWEEP_CACHE_MISS: u16 = 0x0306;

/// `serve`: one HTTP request, accept to response (span).
pub const SERVE_REQUEST: u16 = 0x0401;
/// `serve`: a `GET /trace` snapshot was taken (instant; `arg` =
/// events in the snapshot).
pub const SERVE_TRACE_SNAPSHOT: u16 = 0x0402;

/// `cli`: one native workload run (span; `arg` = workload ordinal).
pub const CLI_WORKLOAD: u16 = 0x0501;

/// `tracefile`: bulk CRC verification of a mapped trace's large
/// sections (span; `arg` = payload bytes verified).
pub const TRACEFILE_MAP_VERIFY: u16 = 0x0601;
/// `tracefile`: streaming out one section of a synthetic trace (span;
/// `arg` = the section id).
pub const TRACEFILE_GEN_SECTION: u16 = 0x0602;

/// The full catalogue, sorted by id.
pub const CATALOG: &[EventDesc] = &[
    EventDesc {
        id: GALLOC_MAG_REFILL,
        name: "galloc.mag_refill",
        cat: "galloc",
    },
    EventDesc {
        id: GALLOC_MAG_FLUSH,
        name: "galloc.mag_flush",
        cat: "galloc",
    },
    EventDesc {
        id: GALLOC_REMOTE_DRAIN,
        name: "galloc.remote_drain",
        cat: "galloc",
    },
    EventDesc {
        id: GALLOC_SHORT_RECLAIM,
        name: "galloc.short_reclaim",
        cat: "galloc",
    },
    EventDesc {
        id: GALLOC_EPOCH_TICK,
        name: "galloc.epoch_tick",
        cat: "galloc",
    },
    EventDesc {
        id: GALLOC_SYS_FALLBACK,
        name: "galloc.sys_fallback",
        cat: "galloc",
    },
    EventDesc {
        id: REPLAY_DECODE,
        name: "replay.decode",
        cat: "replay",
    },
    EventDesc {
        id: REPLAY_PLACE,
        name: "replay.place",
        cat: "replay",
    },
    EventDesc {
        id: REPLAY_OBS_FLUSH,
        name: "replay.obs_flush",
        cat: "replay",
    },
    EventDesc {
        id: REPLAY_EPOCH,
        name: "replay.epoch",
        cat: "replay",
    },
    EventDesc {
        id: SWEEP_JOB,
        name: "sweep.job",
        cat: "sweep",
    },
    EventDesc {
        id: SWEEP_STEAL,
        name: "sweep.steal",
        cat: "sweep",
    },
    EventDesc {
        id: SWEEP_PARK,
        name: "sweep.park",
        cat: "sweep",
    },
    EventDesc {
        id: SWEEP_UNPARK,
        name: "sweep.unpark",
        cat: "sweep",
    },
    EventDesc {
        id: SWEEP_CACHE_HIT,
        name: "sweep.cache_hit",
        cat: "sweep",
    },
    EventDesc {
        id: SWEEP_CACHE_MISS,
        name: "sweep.cache_miss",
        cat: "sweep",
    },
    EventDesc {
        id: SERVE_REQUEST,
        name: "serve.request",
        cat: "serve",
    },
    EventDesc {
        id: SERVE_TRACE_SNAPSHOT,
        name: "serve.trace_snapshot",
        cat: "serve",
    },
    EventDesc {
        id: CLI_WORKLOAD,
        name: "cli.workload",
        cat: "cli",
    },
    EventDesc {
        id: TRACEFILE_MAP_VERIFY,
        name: "tracefile.map_verify",
        cat: "tracefile",
    },
    EventDesc {
        id: TRACEFILE_GEN_SECTION,
        name: "tracefile.gen_section",
        cat: "tracefile",
    },
];

/// Resolves an id to its catalogue row, if it has one.
pub fn lookup(id: u16) -> Option<&'static EventDesc> {
    CATALOG
        .binary_search_by_key(&id, |d| d.id)
        .ok()
        .map(|i| &CATALOG[i])
}

/// Display name for an id; unknown ids render as `unknown.0xNNNN` so a
/// stale trace never panics an exporter.
pub fn name_of(id: u16) -> std::borrow::Cow<'static, str> {
    match lookup(id) {
        Some(d) => std::borrow::Cow::Borrowed(d.name),
        None => std::borrow::Cow::Owned(format!("unknown.0x{id:04x}")),
    }
}

/// Category for an id (`"unknown"` when uncatalogued).
pub fn cat_of(id: u16) -> &'static str {
    lookup(id).map_or("unknown", |d| d.cat)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalogue_is_sorted_and_unique() {
        for pair in CATALOG.windows(2) {
            assert!(
                pair[0].id < pair[1].id,
                "{} >= {}",
                pair[0].name,
                pair[1].name
            );
        }
    }

    #[test]
    fn names_are_dotted_and_unique() {
        let mut names: Vec<_> = CATALOG.iter().map(|d| d.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), CATALOG.len());
        for d in CATALOG {
            let (cat, _) = d.name.split_once('.').expect("dotted name");
            assert_eq!(cat, d.cat, "{}", d.name);
        }
    }

    #[test]
    fn lookup_resolves_every_row() {
        for d in CATALOG {
            assert_eq!(lookup(d.id), Some(d));
        }
        assert_eq!(lookup(0xffff), None);
        assert_eq!(name_of(0xffff), "unknown.0xffff");
        assert_eq!(cat_of(SWEEP_JOB), "sweep");
    }
}
