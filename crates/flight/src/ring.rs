//! The per-thread SPSC event ring.
//!
//! Exactly one thread — the ring's owner — ever calls [`Ring::push`];
//! exactly one drainer at a time (serialized by the recorder's drain
//! lock) calls [`Ring::drain_into`]. The protocol is a pure index
//! hand-off over two atomics:
//!
//! * `head` (writer-owned): the writer fills `slots[head & mask]` and
//!   then **Release-stores** `head + 1`, publishing the slot's bytes.
//!   The drainer **Acquire-loads** `head`, so every event below it is
//!   fully written before the drainer copies it out.
//! * `tail` (drainer-owned): the drainer copies events out of
//!   `[tail, head)` and then **Release-stores** the new `tail`,
//!   handing the slots back. The writer **Acquire-loads** `tail`
//!   before reusing a slot, so its overwrite happens-after the
//!   drainer's reads.
//!
//! When the ring is full the writer drops the *new* event and counts
//! it in `dropped` — the recorded prefix stays contiguous, and the
//! drop total is surfaced so an undersized ring is visible rather
//! than silent.

use crate::event::Event;
use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// One thread's event ring. Capacity is a power of two fixed at
/// construction.
#[derive(Debug)]
pub(crate) struct Ring {
    slots: Box<[UnsafeCell<Event>]>,
    mask: usize,
    /// Writer cursor: next slot to fill. Release-published per push.
    head: AtomicUsize,
    /// Drainer cursor: next slot to read. Release-published per drain.
    tail: AtomicUsize,
    /// Events discarded because the ring was full.
    dropped: AtomicU64,
    /// Recorder-assigned owner thread number.
    pub(crate) tid: u32,
}

// SAFETY: the UnsafeCell slots are the single-producer/single-consumer
// hand-off surface documented above — each slot is written only by the
// owning thread while it holds the slot (tail Acquire-checked) and read
// only by the serialized drainer after the head Acquire-load, so no
// slot is ever accessed concurrently from both sides.
unsafe impl Send for Ring {}
// SAFETY: as above; shared references only expose the atomic cursors
// plus slot accesses ordered by them.
unsafe impl Sync for Ring {}

impl Ring {
    /// Creates a ring with `capacity` slots (rounded up to a power of
    /// two, minimum 8).
    pub(crate) fn new(capacity: usize, tid: u32) -> Ring {
        let cap = capacity.max(8).next_power_of_two();
        let zero = Event {
            ts_ns: 0,
            arg: 0,
            id: 0,
            kind: crate::event::EventKind::Instant,
            tid,
        };
        let slots: Box<[UnsafeCell<Event>]> = (0..cap).map(|_| UnsafeCell::new(zero)).collect();
        Ring {
            slots,
            mask: cap - 1,
            head: AtomicUsize::new(0),
            tail: AtomicUsize::new(0),
            dropped: AtomicU64::new(0),
            tid,
        }
    }

    /// Number of slots.
    #[cfg(test)]
    pub(crate) fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Events dropped on the floor because the ring was full.
    pub(crate) fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Appends one event. **Owner thread only.**
    pub(crate) fn push(&self, event: Event) {
        let head = self.head.load(Ordering::Relaxed);
        // Acquire pairs with drain_into's Release store of `tail`: the
        // drainer's reads of a recycled slot happen-before our write.
        let tail = self.tail.load(Ordering::Acquire);
        if head.wrapping_sub(tail) >= self.slots.len() {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let slot = &self.slots[head & self.mask];
        // SAFETY: the slot at `head` is outside [tail, head), so the
        // drainer will not read it until our Release store below, and
        // no other thread ever writes this ring (SPSC contract).
        unsafe { *slot.get() = event };
        // Release publishes the slot bytes to the drainer's Acquire
        // load of `head`.
        self.head.store(head.wrapping_add(1), Ordering::Release);
    }

    /// Copies every pending event into `out` and frees the slots.
    /// **One drainer at a time** (the recorder serializes).
    pub(crate) fn drain_into(&self, out: &mut Vec<Event>) {
        // Acquire pairs with push's Release store: every slot below
        // `head` is fully written before we read it.
        let head = self.head.load(Ordering::Acquire);
        let mut tail = self.tail.load(Ordering::Relaxed);
        while tail != head {
            let slot = &self.slots[tail & self.mask];
            // SAFETY: `tail` is in [tail, head): the writer finished
            // this slot before its Release store of `head`, and will
            // not reuse it until it Acquire-observes our `tail` store
            // below.
            out.push(unsafe { *slot.get() });
            tail = tail.wrapping_add(1);
        }
        // Release hands the consumed slots back to the writer's
        // Acquire load of `tail`.
        self.tail.store(tail, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    fn ev(id: u16, ts: u64) -> Event {
        Event {
            ts_ns: ts,
            arg: 0,
            id,
            kind: EventKind::Instant,
            tid: 1,
        }
    }

    #[test]
    fn push_then_drain_in_order() {
        let ring = Ring::new(8, 1);
        for i in 0..5 {
            ring.push(ev(i as u16, i));
        }
        let mut out = Vec::new();
        ring.drain_into(&mut out);
        assert_eq!(out.len(), 5);
        assert!(out.iter().enumerate().all(|(i, e)| e.ts_ns == i as u64));
        // Drained slots are reusable.
        ring.push(ev(9, 9));
        out.clear();
        ring.drain_into(&mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].ts_ns, 9);
    }

    #[test]
    fn full_ring_drops_newest_and_counts() {
        let ring = Ring::new(8, 1);
        for i in 0..12 {
            ring.push(ev(0, i));
        }
        assert_eq!(ring.dropped(), 4);
        let mut out = Vec::new();
        ring.drain_into(&mut out);
        // The *oldest* 8 survive: the recorded prefix is contiguous.
        assert_eq!(out.len(), 8);
        assert_eq!(out[0].ts_ns, 0);
        assert_eq!(out[7].ts_ns, 7);
    }

    #[test]
    fn capacity_rounds_to_power_of_two() {
        assert_eq!(Ring::new(0, 1).capacity(), 8);
        assert_eq!(Ring::new(9, 1).capacity(), 16);
        assert_eq!(Ring::new(1 << 14, 1).capacity(), 1 << 14);
    }

    #[test]
    fn concurrent_drain_while_pushing_loses_nothing_but_drops() {
        use std::sync::Arc;
        let ring = Arc::new(Ring::new(64, 1));
        let writer = {
            let ring = Arc::clone(&ring);
            std::thread::spawn(move || {
                for i in 0..10_000u64 {
                    ring.push(ev(7, i));
                }
            })
        };
        let mut seen = Vec::new();
        while !writer.is_finished() {
            ring.drain_into(&mut seen);
        }
        writer.join().expect("writer");
        ring.drain_into(&mut seen);
        // Everything that was not dropped arrives exactly once, in
        // timestamp order (the writer stamped 0..N).
        assert_eq!(seen.len() as u64 + ring.dropped(), 10_000);
        assert!(seen.windows(2).all(|w| w[0].ts_ns < w[1].ts_ns));
    }
}
