//! The fixed-size binary event cell.

/// What one [`Event`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum EventKind {
    /// A span opens on this thread (closed by the matching
    /// [`EventKind::SpanEnd`] with the same event id).
    SpanBegin = 0,
    /// The innermost open span with this id on this thread closes.
    SpanEnd = 1,
    /// A point-in-time marker.
    Instant = 2,
    /// A sampled counter value (`arg` carries the sample).
    Counter = 3,
}

/// One flight-recorder event: 24 bytes, `Copy`, no heap pointers.
///
/// Events are written into per-thread rings by value and drained by
/// value; nothing is ever borrowed across threads, which is what keeps
/// the ring protocol a pure index hand-off.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(C)]
pub struct Event {
    /// Monotonic nanoseconds since the recorder's process-local epoch.
    pub ts_ns: u64,
    /// Kind-specific payload: counter sample, instant argument, or 0.
    pub arg: u64,
    /// Static event id from the compile-time [catalogue](crate::catalog).
    pub id: u16,
    /// Discriminant; see [`EventKind`].
    pub kind: EventKind,
    /// Recorder-assigned thread number (1-based; 0 never appears).
    pub tid: u32,
}

/// The ring stores events inline; keep the cell small and stable.
const _: () = assert!(std::mem::size_of::<Event>() == 24);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_is_two_dozen_bytes() {
        assert_eq!(std::mem::size_of::<Event>(), 24);
        assert_eq!(std::mem::align_of::<Event>(), 8);
    }
}
