//! Deterministic text summary: top spans by total and self time.
//!
//! Pairs `SpanBegin`/`SpanEnd` events per thread (innermost-first, the
//! way the RAII guards nest), attributes each span's duration to its
//! event id, and subtracts child time to get *self* time — the number
//! that says where the wall clock actually went. Instants and
//! counters get occurrence counts.

use crate::catalog::name_of;
use crate::event::{Event, EventKind};
use std::collections::BTreeMap;

/// Aggregated timing for one span id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SpanStat {
    /// Completed (or force-closed at trace end) spans.
    pub count: u64,
    /// Wall nanoseconds inside the span, children included.
    pub total_ns: u64,
    /// Wall nanoseconds minus time spent in child spans.
    pub self_ns: u64,
}

/// Aggregates span statistics per event id.
///
/// A `SpanEnd` closes the innermost open span with the same id on its
/// thread (intervening unmatched spans are closed at the same
/// timestamp, keeping totals conservative). Spans still open when the
/// events run out are closed at the last timestamp seen.
pub fn span_stats(events: &[Event]) -> BTreeMap<u16, SpanStat> {
    let mut stats: BTreeMap<u16, SpanStat> = BTreeMap::new();
    // Per-thread stack of (id, begin_ts, child_ns).
    let mut stacks: BTreeMap<u32, Vec<(u16, u64, u64)>> = BTreeMap::new();
    let end_ts = events.iter().map(|e| e.ts_ns).max().unwrap_or(0);
    let close = |stack: &mut Vec<(u16, u64, u64)>, stats: &mut BTreeMap<u16, SpanStat>, ts: u64| {
        if let Some((id, begin, child_ns)) = stack.pop() {
            let dur = ts.saturating_sub(begin);
            let stat = stats.entry(id).or_default();
            stat.count += 1;
            stat.total_ns += dur;
            stat.self_ns += dur.saturating_sub(child_ns);
            if let Some(parent) = stack.last_mut() {
                parent.2 += dur;
            }
        }
    };
    for e in events {
        let stack = stacks.entry(e.tid).or_default();
        match e.kind {
            EventKind::SpanBegin => stack.push((e.id, e.ts_ns, 0)),
            EventKind::SpanEnd => {
                if stack.iter().any(|&(id, _, _)| id == e.id) {
                    // Close unmatched inner spans at this end's
                    // timestamp, then the matching span itself.
                    while stack.last().is_some_and(|&(id, _, _)| id != e.id) {
                        close(stack, &mut stats, e.ts_ns);
                    }
                    close(stack, &mut stats, e.ts_ns);
                }
            }
            EventKind::Instant | EventKind::Counter => {}
        }
    }
    for stack in stacks.values_mut() {
        while !stack.is_empty() {
            close(stack, &mut stats, end_ts);
        }
    }
    stats
}

/// Renders the full deterministic text summary: span table sorted by
/// total time (descending, ties by name), then instant/counter counts.
pub fn render_summary(events: &[Event]) -> String {
    let stats = span_stats(events);
    let mut rows: Vec<(String, SpanStat)> = stats
        .iter()
        .map(|(&id, &s)| (name_of(id).into_owned(), s))
        .collect();
    rows.sort_by(|a, b| b.1.total_ns.cmp(&a.1.total_ns).then(a.0.cmp(&b.0)));

    let mut out = String::new();
    out.push_str(&format!(
        "{:<24} {:>8} {:>14} {:>14}\n",
        "span", "count", "total(ms)", "self(ms)"
    ));
    for (name, s) in &rows {
        out.push_str(&format!(
            "{:<24} {:>8} {:>14} {:>14}\n",
            name,
            s.count,
            millis(s.total_ns),
            millis(s.self_ns)
        ));
    }

    let mut marks: BTreeMap<String, u64> = BTreeMap::new();
    for e in events {
        if matches!(e.kind, EventKind::Instant | EventKind::Counter) {
            *marks.entry(name_of(e.id).into_owned()).or_default() += 1;
        }
    }
    if !marks.is_empty() {
        out.push_str(&format!("\n{:<24} {:>8}\n", "instant", "count"));
        let mut marks: Vec<_> = marks.into_iter().collect();
        marks.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        for (name, count) in marks {
            out.push_str(&format!("{name:<24} {count:>8}\n"));
        }
    }
    out
}

/// Fixed-precision milliseconds (exact division, no float formatting).
fn millis(ns: u64) -> String {
    format!("{}.{:06}", ns / 1_000_000, ns % 1_000_000)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;

    fn ev(kind: EventKind, id: u16, ts_ns: u64, tid: u32) -> Event {
        Event {
            ts_ns,
            arg: 0,
            id,
            kind,
            tid,
        }
    }

    #[test]
    fn nested_spans_split_total_and_self() {
        let events = [
            ev(EventKind::SpanBegin, catalog::SWEEP_JOB, 0, 1),
            ev(EventKind::SpanBegin, catalog::REPLAY_DECODE, 100, 1),
            ev(EventKind::SpanEnd, catalog::REPLAY_DECODE, 400, 1),
            ev(EventKind::SpanEnd, catalog::SWEEP_JOB, 1_000, 1),
        ];
        let stats = span_stats(&events);
        let job = stats[&catalog::SWEEP_JOB];
        let decode = stats[&catalog::REPLAY_DECODE];
        assert_eq!(job.total_ns, 1_000);
        assert_eq!(job.self_ns, 700);
        assert_eq!(decode.total_ns, 300);
        assert_eq!(decode.self_ns, 300);
    }

    #[test]
    fn threads_do_not_bleed_into_each_other() {
        let events = [
            ev(EventKind::SpanBegin, catalog::SWEEP_JOB, 0, 1),
            ev(EventKind::SpanBegin, catalog::SWEEP_JOB, 0, 2),
            ev(EventKind::SpanEnd, catalog::SWEEP_JOB, 50, 2),
            ev(EventKind::SpanEnd, catalog::SWEEP_JOB, 200, 1),
        ];
        let job = span_stats(&events)[&catalog::SWEEP_JOB];
        assert_eq!(job.count, 2);
        assert_eq!(job.total_ns, 250);
        // Same-id spans on different threads are not parent/child.
        assert_eq!(job.self_ns, 250);
    }

    #[test]
    fn unclosed_spans_close_at_trace_end() {
        let events = [
            ev(EventKind::SpanBegin, catalog::SERVE_REQUEST, 10, 1),
            ev(EventKind::Instant, catalog::SWEEP_STEAL, 500, 1),
        ];
        let stats = span_stats(&events);
        assert_eq!(stats[&catalog::SERVE_REQUEST].total_ns, 490);
    }

    #[test]
    fn stray_end_is_ignored() {
        let events = [ev(EventKind::SpanEnd, catalog::SWEEP_JOB, 10, 1)];
        assert!(span_stats(&events).is_empty());
    }

    #[test]
    fn summary_text_is_deterministic_and_sorted() {
        let events = [
            ev(EventKind::SpanBegin, catalog::REPLAY_PLACE, 0, 1),
            ev(EventKind::SpanEnd, catalog::REPLAY_PLACE, 5_000_000, 1),
            ev(EventKind::SpanBegin, catalog::REPLAY_DECODE, 5_000_000, 1),
            ev(EventKind::SpanEnd, catalog::REPLAY_DECODE, 6_000_000, 1),
            ev(EventKind::Instant, catalog::SWEEP_STEAL, 100, 2),
        ];
        let text = render_summary(&events);
        assert_eq!(text, render_summary(&events));
        let place = text.find("replay.place").expect("place row");
        let decode = text.find("replay.decode").expect("decode row");
        assert!(place < decode, "longest span first:\n{text}");
        assert!(text.contains("sweep.steal"));
        assert!(text.contains("5.000000"));
    }
}
