//! Flight recorder: low-overhead event tracing for every lifepred
//! layer.
//!
//! The metrics layer (`lifepred-obs`) answers *how much*; this crate
//! answers *when* and *why*: per-thread lock-free rings of fixed-size
//! binary events — span begin/end, instants, counter samples — with
//! monotonic timestamps, drained without stopping writers and exported
//! as Chrome Trace Event JSON (Perfetto-loadable) or a deterministic
//! text summary.
//!
//! # The `flight` feature
//!
//! Event *capture* is compiled out by default. Without the feature,
//! [`span`], [`instant`] and [`counter`] are empty `#[inline]`
//! functions and [`Span`] is a zero-sized guard with no `Drop` — an
//! instrumented hot path costs nothing (the paired bench in
//! `bench/benches/flight.rs` holds this to ≤ 0.5 %). With the feature,
//! capture costs one recording-flag load when off, and one timestamp
//! plus one ring push when recording.
//!
//! The analysis side — the [catalogue](catalog), [`chrome`] export,
//! [`summary`] rendering — is always compiled: it consumes plain
//! [`Event`] values and is needed by the CLI whether or not the
//! binary can capture.
//!
//! # Memory-ordering contract
//!
//! See `ring.rs`: `head` is Release-published by the writer and
//! Acquire-read by the drainer (event bytes), `tail` is
//! Release-published by the drainer and Acquire-read by the writer
//! (slot reuse). DESIGN.md §14 carries the full account.
//!
//! # Examples
//!
//! ```
//! use lifepred_flight as flight;
//!
//! // Capture (a no-op unless built with the `flight` feature and
//! // recording is on):
//! {
//!     let _guard = flight::span(flight::catalog::SWEEP_JOB);
//!     flight::instant(flight::catalog::SWEEP_STEAL, 2);
//! }
//!
//! // Analysis works on plain events regardless of the feature:
//! let events = flight::drain();
//! let json = flight::chrome::chrome_trace_json(&events);
//! assert!(json.contains("traceEvents"));
//! ```

#![warn(missing_docs)]

pub mod catalog;
pub mod chrome;
mod event;
pub mod summary;

#[cfg(feature = "flight")]
mod recorder;
#[cfg(feature = "flight")]
mod ring;

pub use catalog::{cat_of, lookup, name_of, EventDesc, CATALOG};
pub use event::{Event, EventKind};

/// `true` when this build can capture events (the `flight` feature).
pub const COMPILED: bool = cfg!(feature = "flight");

#[cfg(feature = "flight")]
pub use recorder::{
    drain, dropped_events, recording, ring_capacity, set_recording, DEFAULT_RING_EVENTS, RING_ENV,
};

/// RAII span guard: emits `SpanEnd` for its id when dropped. Created
/// by [`span`]/[`span_arg`]. Zero-sized (no `Drop` impl at all) when
/// the `flight` feature is off.
#[cfg(feature = "flight")]
#[must_use = "a span guard records its end when dropped"]
#[derive(Debug)]
pub struct Span {
    id: u16,
}

#[cfg(feature = "flight")]
impl Drop for Span {
    fn drop(&mut self) {
        recorder::emit(EventKind::SpanEnd, self.id, 0);
    }
}

/// Opens a span for `id`; the returned guard closes it on drop.
#[cfg(feature = "flight")]
#[inline]
pub fn span(id: u16) -> Span {
    recorder::emit(EventKind::SpanBegin, id, 0);
    Span { id }
}

/// Like [`span`] with a payload on the begin event (job number,
/// workload ordinal, …).
#[cfg(feature = "flight")]
#[inline]
pub fn span_arg(id: u16, arg: u64) -> Span {
    recorder::emit(EventKind::SpanBegin, id, arg);
    Span { id }
}

/// Records a point-in-time marker.
#[cfg(feature = "flight")]
#[inline]
pub fn instant(id: u16, arg: u64) {
    recorder::emit(EventKind::Instant, id, arg);
}

/// Records a counter sample.
#[cfg(feature = "flight")]
#[inline]
pub fn counter(id: u16, value: u64) {
    recorder::emit(EventKind::Counter, id, value);
}

// --- compiled-out stubs -------------------------------------------------
//
// Same API, zero cost: every function is an empty `#[inline]` body and
// the guard is a unit struct with no Drop, so instrumented call sites
// compile to nothing.

/// RAII span guard (compiled-out stub: zero-sized, no `Drop`).
#[cfg(not(feature = "flight"))]
#[must_use = "a span guard records its end when dropped"]
#[derive(Debug)]
pub struct Span(());

/// Opens a span (compiled-out stub).
#[cfg(not(feature = "flight"))]
#[inline(always)]
pub fn span(_id: u16) -> Span {
    Span(())
}

/// Opens a span with a payload (compiled-out stub).
#[cfg(not(feature = "flight"))]
#[inline(always)]
pub fn span_arg(_id: u16, _arg: u64) -> Span {
    Span(())
}

/// Records an instant (compiled-out stub).
#[cfg(not(feature = "flight"))]
#[inline(always)]
pub fn instant(_id: u16, _arg: u64) {}

/// Records a counter sample (compiled-out stub).
#[cfg(not(feature = "flight"))]
#[inline(always)]
pub fn counter(_id: u16, _value: u64) {}

/// Is recording on? (compiled-out stub: always `false`).
#[cfg(not(feature = "flight"))]
#[inline(always)]
pub fn recording() -> bool {
    false
}

/// Turns recording on/off (compiled-out stub: ignored).
#[cfg(not(feature = "flight"))]
#[inline(always)]
pub fn set_recording(_on: bool) {}

/// Drains pending events (compiled-out stub: always empty).
#[cfg(not(feature = "flight"))]
#[inline(always)]
pub fn drain() -> Vec<Event> {
    Vec::new()
}

/// Events dropped to full rings (compiled-out stub: always 0).
#[cfg(not(feature = "flight"))]
#[inline(always)]
pub fn dropped_events() -> u64 {
    0
}

/// Per-thread ring capacity (compiled-out stub: 0 — no rings exist).
#[cfg(not(feature = "flight"))]
#[inline(always)]
pub fn ring_capacity() -> usize {
    0
}

/// Default per-thread ring capacity in events (stub mirror).
#[cfg(not(feature = "flight"))]
pub const DEFAULT_RING_EVENTS: usize = 1 << 14;

/// Environment variable overriding the ring capacity (stub mirror).
#[cfg(not(feature = "flight"))]
pub const RING_ENV: &str = "LIFEPRED_FLIGHT_RING";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stub_and_real_api_share_a_shape() {
        // Compiles under both feature states; behavior asserted per
        // state.
        {
            let _guard = span(catalog::SWEEP_JOB);
            instant(catalog::SWEEP_STEAL, 1);
            counter(catalog::SERVE_TRACE_SNAPSHOT, 2);
        }
        if !COMPILED {
            assert!(!recording());
            set_recording(true);
            assert!(!recording(), "stub recording can never turn on");
            assert!(drain().is_empty());
            assert_eq!(dropped_events(), 0);
            assert_eq!(ring_capacity(), 0);
            assert_eq!(std::mem::size_of::<Span>(), 0);
            assert!(!std::mem::needs_drop::<Span>());
        }
    }
}
