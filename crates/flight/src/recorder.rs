//! The recording core: global on/off switch, per-thread ring
//! registration, and the drain path.
//!
//! Only compiled with the `flight` feature; `lib.rs` supplies
//! zero-cost stubs otherwise.
//!
//! Re-entrancy: emitting an event can allocate exactly once per
//! thread (creating its ring). If the process's global allocator is
//! itself instrumented (galloc), that allocation re-enters `emit`;
//! the per-thread `EMITTING` flag makes the inner call a no-op, so
//! ring creation cannot recurse. Rings are registered on a lock-free
//! push-only list and intentionally leaked — one ring per thread that
//! ever recorded, alive for the process, so the drainer never races a
//! thread teardown.

use crate::event::{Event, EventKind};
use crate::ring::Ring;
use std::cell::Cell;
use std::ptr;
use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicU32, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Default ring capacity in events (24 B each → 384 KiB per thread).
pub const DEFAULT_RING_EVENTS: usize = 1 << 14;

/// Environment variable overriding the per-thread ring capacity (in
/// events; rounded up to a power of two). Read once, at first use.
pub const RING_ENV: &str = "LIFEPRED_FLIGHT_RING";

/// Master switch. Release/Acquire so a drainer that observes the stop
/// also observes every event published before it.
static RECORDING: AtomicBool = AtomicBool::new(false);

/// Head of the lock-free ring list (push-only; nodes leak).
static RINGS: AtomicPtr<Node> = AtomicPtr::new(ptr::null_mut());

/// Monotonic thread numbering for `Event::tid` (0 = unassigned).
static NEXT_TID: AtomicU32 = AtomicU32::new(1);

/// Serializes drainers: each ring is SPSC, so two concurrent drains
/// would race each other (not the writers).
static DRAIN: Mutex<()> = Mutex::new(());

/// Timestamp epoch, fixed at first use.
static EPOCH: OnceLock<Instant> = OnceLock::new();

struct Node {
    ring: &'static Ring,
    next: *mut Node,
}

thread_local! {
    /// This thread's ring, created on first emit.
    static RING: Cell<Option<&'static Ring>> = const { Cell::new(None) };
    /// Re-entrancy latch: true while an emit is in flight on this
    /// thread (see module docs).
    static EMITTING: Cell<bool> = const { Cell::new(false) };
}

/// Nanoseconds since the recorder epoch.
#[inline]
pub fn now_ns() -> u64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// Is recording currently on?
#[inline]
pub fn recording() -> bool {
    RECORDING.load(Ordering::Acquire)
}

/// Turns recording on or off. Pins the timestamp epoch on first start
/// so every trace starts near t=0.
pub fn set_recording(on: bool) {
    if on {
        EPOCH.get_or_init(Instant::now);
    }
    RECORDING.store(on, Ordering::Release);
}

/// The configured per-thread ring capacity.
pub fn ring_capacity() -> usize {
    static CAP: OnceLock<usize> = OnceLock::new();
    *CAP.get_or_init(|| {
        std::env::var(RING_ENV)
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or(DEFAULT_RING_EVENTS)
    })
}

fn register(ring: &'static Ring) {
    let node = Box::into_raw(Box::new(Node {
        ring,
        next: ptr::null_mut(),
    }));
    let mut head = RINGS.load(Ordering::Acquire);
    loop {
        // SAFETY: `node` came from Box::into_raw above and is not yet
        // shared; writing its link before the publishing CAS is the
        // standard Treiber push.
        unsafe { (*node).next = head };
        match RINGS.compare_exchange_weak(head, node, Ordering::Release, Ordering::Acquire) {
            Ok(_) => return,
            Err(current) => head = current,
        }
    }
}

fn for_each_ring(mut f: impl FnMut(&'static Ring)) {
    // Acquire pairs with register's Release CAS: the node's fields
    // (and the ring it points to) are fully initialized.
    let mut cursor = RINGS.load(Ordering::Acquire);
    while !cursor.is_null() {
        // SAFETY: nodes are leaked on registration and never freed or
        // unlinked, so a non-null cursor always points to a live Node.
        let node = unsafe { &*cursor };
        f(node.ring);
        cursor = node.next;
    }
}

/// Emits one event on the calling thread's ring.
#[inline]
pub(crate) fn emit(kind: EventKind, id: u16, arg: u64) {
    if !recording() {
        return;
    }
    let ts_ns = now_ns();
    // try_with + latch: a teardown-phase or re-entrant emit silently
    // drops the event instead of recursing or aborting.
    let _ = EMITTING.try_with(|latch| {
        if latch.get() {
            return;
        }
        latch.set(true);
        let _ = RING.try_with(|cell| {
            let ring = match cell.get() {
                Some(ring) => ring,
                None => {
                    // First event on this thread: build and leak its
                    // ring. The allocation may re-enter emit through
                    // an instrumented global allocator; the latch
                    // turns that inner call into a no-op.
                    let tid = NEXT_TID.fetch_add(1, Ordering::Relaxed);
                    let ring: &'static Ring = Box::leak(Box::new(Ring::new(ring_capacity(), tid)));
                    register(ring);
                    cell.set(Some(ring));
                    ring
                }
            };
            ring.push(Event {
                ts_ns,
                arg,
                id,
                kind,
                tid: ring.tid,
            });
        });
        latch.set(false);
    });
}

/// Copies every pending event out of every ring, without stopping
/// writers, and returns them sorted by timestamp (ties broken by
/// thread then catalogue id, so the order is total and deterministic).
pub fn drain() -> Vec<Event> {
    let _guard = DRAIN
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    let mut out = Vec::new();
    for_each_ring(|ring| ring.drain_into(&mut out));
    out.sort_by_key(|e| (e.ts_ns, e.tid, e.id));
    out
}

/// Total events dropped across all rings since process start.
pub fn dropped_events() -> u64 {
    let mut total = 0;
    for_each_ring(|ring| total += ring.dropped());
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;

    // The recorder is process-global state; keep every test in one
    // function so they cannot interleave recording windows.
    #[test]
    fn record_drain_roundtrip() {
        assert!(!recording());
        // Disabled: nothing is captured.
        emit(EventKind::Instant, catalog::SWEEP_STEAL, 0);
        set_recording(true);
        emit(EventKind::SpanBegin, catalog::SWEEP_JOB, 42);
        emit(EventKind::SpanEnd, catalog::SWEEP_JOB, 0);
        let worker = std::thread::spawn(|| {
            emit(EventKind::Instant, catalog::SWEEP_UNPARK, 7);
        });
        worker.join().expect("worker");
        set_recording(false);
        emit(EventKind::Instant, catalog::SWEEP_STEAL, 0);

        let events = drain();
        assert_eq!(events.len(), 3, "{events:?}");
        assert!(events.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns));
        let tids: std::collections::BTreeSet<u32> = events.iter().map(|e| e.tid).collect();
        assert_eq!(tids.len(), 2, "two threads recorded");
        assert!(events
            .iter()
            .any(|e| e.id == catalog::SWEEP_UNPARK && e.arg == 7));
        // A second drain finds the rings empty.
        assert!(drain().is_empty());
        assert_eq!(dropped_events(), 0);
    }
}
