//! Concurrency wrapper: a mutex-protected learner publishing its
//! predicted-short set through an atomically versioned snapshot.

use crate::config::EpochConfig;
use crate::learner::{LearnerStats, OnlineLearner};
use std::collections::HashSet;

// Model-check builds swap the sync primitives for loom's so the
// publish protocol below can be explored schedule-by-schedule; see
// tests/loom.rs and DESIGN.md §9.
#[cfg(all(loom, feature = "loom-test"))]
use loom::sync::atomic::{AtomicU64, Ordering};
#[cfg(all(loom, feature = "loom-test"))]
use loom::sync::{Arc, Mutex, MutexGuard};
#[cfg(not(all(loom, feature = "loom-test")))]
use std::sync::atomic::{AtomicU64, Ordering};
#[cfg(not(all(loom, feature = "loom-test")))]
use std::sync::{Arc, Mutex, MutexGuard};

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Shares an [`OnlineLearner`] between threads without putting its
/// mutex on any allocation fast path.
///
/// The learner itself sits behind a mutex that is only taken at epoch
/// boundaries and on (rare) mispredictions. The predicted-short set is
/// *published*: an [`Arc`]`<`[`HashSet`]`>` snapshot plus an atomic
/// generation counter. Readers keep their own `Arc` clone and compare
/// generations with one relaxed atomic load per lookup batch — the hot
/// path never blocks on a writer.
#[derive(Debug)]
pub struct SharedPredictor {
    learner: Mutex<OnlineLearner>,
    /// Fast staleness check only; the authoritative generation lives
    /// *inside* [`Self::table`] next to its snapshot, so a reader can
    /// never pair one generation with another generation's table.
    generation: AtomicU64,
    table: Mutex<(u64, Arc<HashSet<u64>>)>,
}

impl SharedPredictor {
    /// Creates a shared predictor with an empty learner.
    ///
    /// # Panics
    ///
    /// Panics if `config` fails [`EpochConfig::validate`].
    pub fn new(config: EpochConfig) -> Self {
        SharedPredictor {
            learner: Mutex::new(OnlineLearner::new(config)),
            generation: AtomicU64::new(0),
            table: Mutex::new((0, Arc::new(HashSet::new()))),
        }
    }

    /// The published generation; changes whenever the predicted-short
    /// set changes. One relaxed atomic load.
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    /// The published snapshot together with its generation.
    ///
    /// Generation and table are read under one lock, so the pair is
    /// always consistent — a reader can never cache a new generation
    /// against an old table (which would make
    /// [`refresh_if_stale`](Self::refresh_if_stale) treat the stale
    /// snapshot as current until the *next* set change).
    pub fn table(&self) -> (u64, Arc<HashSet<u64>>) {
        let guard = lock(&self.table);
        (guard.0, Arc::clone(&guard.1))
    }

    /// Refreshes a reader's cached snapshot when stale: returns the
    /// fresh pair if the published generation differs from
    /// `cached_generation`, `None` when the cache is current.
    pub fn refresh_if_stale(&self, cached_generation: u64) -> Option<(u64, Arc<HashSet<u64>>)> {
        if self.generation() == cached_generation {
            return None;
        }
        Some(self.table())
    }

    /// Runs `f` with the learner locked, then republishes the snapshot
    /// if the predicted-short set changed.
    pub fn with_learner<R>(&self, f: impl FnOnce(&mut OnlineLearner) -> R) -> R {
        let mut learner = lock(&self.learner);
        let result = f(&mut learner);
        let generation = learner.generation();
        if generation != self.generation.load(Ordering::Acquire) {
            let snapshot = Arc::new(learner.snapshot());
            // Publish the pair first, the fast-check atomic second: a
            // reader woken by the atomic then finds (at least) this
            // generation's table under the mutex.
            *lock(&self.table) = (generation, snapshot);
            self.generation.store(generation, Ordering::Release);
        }
        result
    }

    /// Counters so far (takes the learner mutex).
    pub fn stats(&self) -> LearnerStats {
        lock(&self.learner).stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    fn tiny() -> EpochConfig {
        EpochConfig {
            threshold: 1024,
            epoch_bytes: 2048,
            ..EpochConfig::default()
        }
    }

    #[test]
    fn publishes_on_change_only() {
        let p = SharedPredictor::new(tiny());
        let (g0, t0) = p.table();
        assert!(t0.is_empty());
        assert!(p.refresh_if_stale(g0).is_none());
        p.with_learner(|l| {
            for _ in 0..64 {
                let birth = l.clock();
                let pr = l.record_alloc(7, 64);
                l.record_free(7, 64, birth, pr);
            }
        });
        let (g1, t1) = p.refresh_if_stale(g0).expect("set changed");
        assert!(g1 != g0);
        assert!(t1.contains(&7));
        assert!(p.refresh_if_stale(g1).is_none());
    }

    #[test]
    fn concurrent_readers_never_see_torn_state() {
        let p = Arc::new(SharedPredictor::new(tiny()));
        let writer = {
            let p = Arc::clone(&p);
            thread::spawn(move || {
                for round in 0..200u64 {
                    p.with_learner(|l| {
                        let key = round % 4;
                        for _ in 0..64 {
                            let birth = l.clock();
                            let pr = l.record_alloc(key, 64);
                            l.record_free(key, 64, birth, pr);
                        }
                    });
                }
            })
        };
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let p = Arc::clone(&p);
                thread::spawn(move || {
                    let (mut generation, mut table) = p.table();
                    for _ in 0..2000 {
                        if let Some((g, t)) = p.refresh_if_stale(generation) {
                            generation = g;
                            table = t;
                        }
                        // A snapshot is internally consistent by
                        // construction; just exercise lookups.
                        std::hint::black_box(table.contains(&1));
                    }
                })
            })
            .collect();
        writer.join().expect("writer");
        for r in readers {
            r.join().expect("reader");
        }
        assert!(p.stats().total_allocs > 0);
    }
}
