//! Epoch-model configuration.

/// Parameters of the online epoch learner.
///
/// Lifetimes and epochs are measured on the paper's *byte clock*: the
/// clock advances by the object size at every allocation, so a
/// "32 KB lifetime" means the program allocated 32 KB elsewhere while
/// the object was live.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochConfig {
    /// Short-lived threshold in bytes of allocation (the paper's
    /// 32 KB). An object whose lifetime reaches this is long-lived.
    pub threshold: u64,
    /// Epoch length in bytes of allocation. Site states are
    /// re-evaluated once per epoch; the default is twice the threshold,
    /// mirroring the paper's "arena area is twice the age of the
    /// objects predicted short-lived".
    pub epoch_bytes: u64,
    /// Clean (active, no long lifetime) epochs a fresh site must show
    /// before it is first predicted short-lived.
    pub promote_epochs: u32,
    /// Clean epochs a *demoted* site must show before it re-qualifies —
    /// the hysteresis `K`. Idle epochs do not count.
    pub requalify_epochs: u32,
    /// Minimum frees observed in an epoch for it to count as clean
    /// evidence (an epoch with fewer frees is ignored, not dirty).
    pub min_epoch_frees: u64,
    /// The lifetime quantile tracked per site with a P² estimator and
    /// required to sit under [`EpochConfig::threshold`] at promotion
    /// time (once at least five observations exist).
    pub tail_quantile: f64,
}

impl Default for EpochConfig {
    fn default() -> Self {
        EpochConfig {
            threshold: 32 * 1024,
            epoch_bytes: 64 * 1024,
            promote_epochs: 1,
            requalify_epochs: 3,
            min_epoch_frees: 1,
            tail_quantile: 0.95,
        }
    }
}

impl EpochConfig {
    /// Builds the configuration a CLI flag set or a sweep-grid cell
    /// describes: the short-lived `threshold` plus an optional epoch
    /// override. `None` (or an explicit `0`) selects the paper's
    /// default epoch of twice the threshold; every other knob keeps
    /// its [`Default`]. The result still needs
    /// [`validate`](EpochConfig::validate) if the inputs are
    /// untrusted.
    pub fn for_threshold(threshold: u64, epoch_bytes: Option<u64>) -> EpochConfig {
        let epoch_bytes = match epoch_bytes {
            Some(e) if e > 0 => e,
            _ => threshold.saturating_mul(2),
        };
        EpochConfig {
            threshold,
            epoch_bytes,
            ..EpochConfig::default()
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a message when a field is zero or the quantile is out of
    /// `(0, 1)`.
    pub fn validate(&self) -> Result<(), String> {
        if self.threshold == 0 {
            return Err("threshold must be positive".to_owned());
        }
        if self.epoch_bytes == 0 {
            return Err("epoch_bytes must be positive".to_owned());
        }
        if self.requalify_epochs == 0 {
            return Err("requalify_epochs must be at least 1".to_owned());
        }
        if !(self.tail_quantile > 0.0 && self.tail_quantile < 1.0) {
            return Err(format!(
                "tail_quantile must be in (0, 1), got {}",
                self.tail_quantile
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid_and_paper_shaped() {
        let c = EpochConfig::default();
        c.validate().expect("default config");
        assert_eq!(c.threshold, 32 * 1024);
        assert_eq!(c.epoch_bytes, 2 * c.threshold);
    }

    #[test]
    fn validation_rejects_degenerate_fields() {
        let mut c = EpochConfig {
            threshold: 0,
            ..EpochConfig::default()
        };
        assert!(c.validate().is_err());
        c.threshold = 1;
        c.epoch_bytes = 0;
        assert!(c.validate().is_err());
        c.epoch_bytes = 1;
        c.requalify_epochs = 0;
        assert!(c.validate().is_err());
        c.requalify_epochs = 1;
        c.tail_quantile = 1.0;
        assert!(c.validate().is_err());
    }
}
