//! **Online self-correcting lifetime prediction** — the paper's "can
//! the predictor adapt?" future work, built as a subsystem.
//!
//! Barrett & Zorn train their predictor offline and freeze it. This
//! crate trains *while the program runs*, in epochs on the byte clock:
//!
//! 1. Per-site streaming lifetime statistics — free counts, long-free
//!    counts and a P² tail-quantile estimate
//!    ([`lifepred_quantile::P2Quantile`]) over the current clean
//!    streak.
//! 2. The paper's *all-short* rule applied **per epoch**: a site is
//!    promoted to predicted-short only after `promote_epochs` active
//!    epochs in which every free died under the threshold.
//! 3. A **misprediction feedback loop**: a predicted-short object that
//!    outlives the threshold — observed at free time, or reported via
//!    [`OnlineLearner::note_pinned`] while still live (it pins an
//!    arena) — demotes its site on the spot. Demoted sites re-qualify
//!    only after `requalify_epochs` consecutive clean epochs of
//!    hysteresis.
//!
//! [`OnlineLearner`] is the single-threaded core, driven directly by
//! the trace-replay simulator (`lifepred-heap`) and the CLI.
//! [`SharedPredictor`] wraps it for the sharded runtime allocator
//! (`lifepred-alloc`): the learner's mutex is only taken at epoch
//! boundaries and on mispredictions, while readers consult an
//! atomically versioned [`std::sync::Arc`] snapshot of the
//! predicted-short set.
//!
//! # Examples
//!
//! ```
//! use lifepred_adaptive::{EpochConfig, OnlineLearner};
//!
//! let mut learner = OnlineLearner::new(EpochConfig::default());
//! let site = 42u64;
//!
//! // Phase 1: the site allocates short-lived objects and is learned.
//! while learner.epochs() < 2 {
//!     let birth = learner.clock();
//!     let predicted = learner.record_alloc(site, 64);
//!     learner.record_free(site, 64, birth, predicted);
//! }
//! assert!(learner.predicts(site));
//!
//! // Phase 2: behaviour drifts — one long-lived object demotes the
//! // site immediately.
//! let birth = learner.clock();
//! let predicted = learner.record_alloc(site, 64);
//! while learner.clock() - birth < learner.config().threshold {
//!     learner.record_alloc(999, 4096); // unrelated traffic ages it
//! }
//! learner.record_free(site, 64, birth, predicted);
//! assert!(!learner.predicts(site));
//! assert_eq!(learner.stats().mispredictions, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod learner;
mod shared;

pub use config::EpochConfig;
pub use learner::{EpochAgg, LearnerStats, OnlineLearner, AGG_SAMPLE_CAP};
pub use shared::SharedPredictor;
