//! The single-threaded online epoch learner.

use crate::config::EpochConfig;
use lifepred_quantile::P2Quantile;
use std::collections::{HashMap, HashSet};

/// How many individual lifetimes an [`EpochAgg`] carries to feed the
/// per-site P² estimator when feedback arrives in batches.
pub const AGG_SAMPLE_CAP: usize = 8;

/// Per-site feedback accumulated away from the learner (e.g. under a
/// shard lock) and merged in at epoch boundaries with
/// [`OnlineLearner::absorb`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EpochAgg {
    /// Allocations observed at the site this epoch.
    pub allocs: u64,
    /// Bytes allocated at the site this epoch.
    pub alloc_bytes: u64,
    /// Allocations that were predicted short-lived at allocation time.
    pub predicted_allocs: u64,
    /// Bytes that were predicted short-lived at allocation time.
    pub predicted_bytes: u64,
    /// Frees observed this epoch.
    pub frees: u64,
    /// Frees whose lifetime reached the threshold. Mispredicted
    /// (predicted-short) long frees must *not* be counted here — report
    /// those through [`OnlineLearner::note_pinned`] instead, which also
    /// dirties the epoch.
    pub long_frees: u64,
    /// Largest lifetime freed this epoch.
    pub max_lifetime: u64,
    /// Up to [`AGG_SAMPLE_CAP`] individual lifetimes, for the per-site
    /// quantile estimator.
    pub samples: Vec<u64>,
}

impl EpochAgg {
    /// Records one allocation into the aggregate.
    pub fn on_alloc(&mut self, size: u64, predicted: bool) {
        self.allocs += 1;
        self.alloc_bytes += size;
        if predicted {
            self.predicted_allocs += 1;
            self.predicted_bytes += size;
        }
    }

    /// Records one free into the aggregate. `long` marks lifetimes at
    /// or past the threshold (for *unpredicted* objects).
    pub fn on_free(&mut self, lifetime: u64, long: bool) {
        self.frees += 1;
        self.max_lifetime = self.max_lifetime.max(lifetime);
        if long {
            self.long_frees += 1;
        }
        if self.samples.len() < AGG_SAMPLE_CAP {
            self.samples.push(lifetime);
        }
    }
}

/// Counters describing the learner's behaviour so far.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LearnerStats {
    /// Epochs completed.
    pub epochs: u64,
    /// Distinct sites seen.
    pub sites: u64,
    /// Sites currently predicted short-lived.
    pub short_sites: u64,
    /// Promotions (including requalifications after a demotion).
    pub promotions: u64,
    /// Demotions (a predicted site caught allocating long-lived data).
    pub demotions: u64,
    /// Predicted-short objects caught living past the threshold, at
    /// free time or while still live (arena pinning).
    pub mispredictions: u64,
    /// All allocations observed.
    pub total_allocs: u64,
    /// Allocations predicted short-lived.
    pub predicted_allocs: u64,
    /// All bytes observed.
    pub total_bytes: u64,
    /// Bytes predicted short-lived.
    pub predicted_bytes: u64,
    /// Bytes of predicted-short objects that turned out long-lived.
    pub error_bytes: u64,
    /// All frees observed.
    pub total_frees: u64,
    /// Frees with lifetime at or past the threshold.
    pub long_frees: u64,
}

impl LearnerStats {
    /// Percentage of allocations predicted short-lived (coverage).
    pub fn coverage_alloc_pct(&self) -> f64 {
        pct(self.predicted_allocs, self.total_allocs)
    }

    /// Publishes every counter as a `lifepred_learner_*` gauge in
    /// `registry` (gauges, not counters: a stats snapshot is a level,
    /// re-exported wholesale on each call).
    pub fn export(&self, registry: &lifepred_obs::Registry) {
        let fields: [(&str, u64); 13] = [
            ("lifepred_learner_epochs", self.epochs),
            ("lifepred_learner_sites", self.sites),
            ("lifepred_learner_short_sites", self.short_sites),
            ("lifepred_learner_promotions", self.promotions),
            ("lifepred_learner_demotions", self.demotions),
            ("lifepred_learner_mispredictions", self.mispredictions),
            ("lifepred_learner_total_allocs", self.total_allocs),
            ("lifepred_learner_predicted_allocs", self.predicted_allocs),
            ("lifepred_learner_total_bytes", self.total_bytes),
            ("lifepred_learner_predicted_bytes", self.predicted_bytes),
            ("lifepred_learner_error_bytes", self.error_bytes),
            ("lifepred_learner_total_frees", self.total_frees),
            ("lifepred_learner_long_frees", self.long_frees),
        ];
        for (name, value) in fields {
            registry.gauge(name).set(value);
        }
    }

    /// Percentage of bytes predicted short-lived (coverage).
    pub fn coverage_byte_pct(&self) -> f64 {
        pct(self.predicted_bytes, self.total_bytes)
    }

    /// Percentage of all bytes mispredicted short-lived.
    pub fn error_byte_pct(&self) -> f64 {
        pct(self.error_bytes, self.total_bytes)
    }
}

fn pct(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        100.0 * num as f64 / den as f64
    }
}

/// Where a site currently sits in the promotion/demotion cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Gathering evidence; not predicted.
    Observing,
    /// Predicted short-lived.
    Short,
    /// Was predicted and mispredicted; must re-qualify.
    Demoted,
}

#[derive(Debug)]
struct SiteEntry {
    phase: Phase,
    /// Consecutive clean active epochs in the current streak.
    clean_run: u32,
    /// P² estimate of the configured lifetime tail quantile over the
    /// current clean streak (reset on dirty epochs and demotions).
    tail: P2Quantile,
    /// This epoch's activity.
    epoch_frees: u64,
    epoch_long: u64,
}

impl SiteEntry {
    fn new(quantile: f64) -> Self {
        SiteEntry {
            phase: Phase::Observing,
            clean_run: 0,
            tail: P2Quantile::new(quantile),
            epoch_frees: 0,
            epoch_long: 0,
        }
    }
}

/// The online self-correcting lifetime predictor.
///
/// Trains itself in epochs while the program runs: per-site streaming
/// lifetime statistics feed the paper's *all-short* rule applied per
/// epoch, and a misprediction feedback loop demotes sites on the spot —
/// a predicted-short object that outlives the threshold (observed at
/// free time or reported while still live via
/// [`OnlineLearner::note_pinned`]) sends its site back to
/// the demoted phase, where only `requalify_epochs` consecutive clean
/// epochs restore it.
///
/// Keys are caller-defined `u64` site fingerprints, so the same learner
/// serves the trace-replay simulator (hashed call-chain site keys) and
/// the runtime allocator (its native 64-bit chain keys).
///
/// # Examples
///
/// ```
/// use lifepred_adaptive::{EpochConfig, OnlineLearner};
///
/// let cfg = EpochConfig::default();
/// let mut l = OnlineLearner::new(cfg);
/// let site = 0xfeed;
/// // A fresh site is not predicted; short frees through one epoch
/// // promote it.
/// while l.epochs() < 2 {
///     let birth = l.clock();
///     let predicted = l.record_alloc(site, 64);
///     l.record_free(site, 64, birth, predicted);
/// }
/// assert!(l.predicts(site));
/// ```
#[derive(Debug)]
pub struct OnlineLearner {
    config: EpochConfig,
    clock: u64,
    next_epoch_at: u64,
    /// Bumped whenever the predicted-short set changes; lets cached
    /// snapshots detect staleness with one integer compare.
    generation: u64,
    sites: HashMap<u64, SiteEntry>,
    stats: LearnerStats,
}

impl OnlineLearner {
    /// Creates a learner; the first epoch ends after
    /// `config.epoch_bytes` of allocation.
    ///
    /// # Panics
    ///
    /// Panics if `config` fails [`EpochConfig::validate`].
    pub fn new(config: EpochConfig) -> Self {
        config.validate().expect("valid epoch config");
        OnlineLearner {
            config,
            clock: 0,
            next_epoch_at: config.epoch_bytes,
            generation: 0,
            sites: HashMap::new(),
            stats: LearnerStats::default(),
        }
    }

    /// The configuration in effect.
    pub fn config(&self) -> &EpochConfig {
        &self.config
    }

    /// The byte clock: bytes allocated so far.
    pub fn clock(&self) -> u64 {
        self.clock
    }

    /// Completed epochs.
    pub fn epochs(&self) -> u64 {
        self.stats.epochs
    }

    /// Changes whenever the predicted-short set changes.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Whether `key` is currently predicted short-lived.
    pub fn predicts(&self, key: u64) -> bool {
        self.sites
            .get(&key)
            .is_some_and(|e| e.phase == Phase::Short)
    }

    /// Counters so far (short-site count recomputed on the fly).
    pub fn stats(&self) -> LearnerStats {
        let mut s = self.stats;
        s.sites = self.sites.len() as u64;
        s.short_sites = self
            .sites
            .values()
            .filter(|e| e.phase == Phase::Short)
            .count() as u64;
        s
    }

    /// The current predicted-short set, for publication to concurrent
    /// readers.
    pub fn snapshot(&self) -> HashSet<u64> {
        self.sites
            .iter()
            .filter(|(_, e)| e.phase == Phase::Short)
            .map(|(&k, _)| k)
            .collect()
    }

    /// Records an allocation: advances the byte clock (rolling any due
    /// epochs first) and returns the prediction for this object.
    pub fn record_alloc(&mut self, key: u64, size: u64) -> bool {
        self.clock += size;
        self.roll_due();
        let quantile = self.config.tail_quantile;
        let entry = self
            .sites
            .entry(key)
            .or_insert_with(|| SiteEntry::new(quantile));
        let predicted = entry.phase == Phase::Short;
        self.stats.total_allocs += 1;
        self.stats.total_bytes += size;
        if predicted {
            self.stats.predicted_allocs += 1;
            self.stats.predicted_bytes += size;
        }
        predicted
    }

    /// Records a free. `birth_clock` is the byte clock just before the
    /// object's allocation and `predicted` its alloc-time prediction.
    ///
    /// A predicted object whose lifetime reached the threshold is a
    /// misprediction: its site is demoted immediately, not at the next
    /// epoch boundary.
    pub fn record_free(&mut self, key: u64, size: u64, birth_clock: u64, predicted: bool) {
        let lifetime = self.clock.saturating_sub(birth_clock);
        let long = lifetime >= self.config.threshold;
        self.stats.total_frees += 1;
        if long {
            self.stats.long_frees += 1;
        }
        let quantile = self.config.tail_quantile;
        let entry = self
            .sites
            .entry(key)
            .or_insert_with(|| SiteEntry::new(quantile));
        entry.epoch_frees += 1;
        entry.tail.observe(lifetime as f64);
        if long {
            entry.epoch_long += 1;
            if predicted {
                self.stats.mispredictions += 1;
                self.stats.error_bytes += size;
            }
            if entry.phase == Phase::Short {
                Self::demote(entry, quantile, &mut self.stats, &mut self.generation);
            }
        }
    }

    /// Reports a predicted-short object that is still live past the
    /// threshold (e.g. it pins an arena). Demotes the site immediately
    /// and counts a misprediction; the current epoch becomes dirty.
    pub fn note_pinned(&mut self, key: u64, size: u64) {
        self.stats.mispredictions += 1;
        self.stats.error_bytes += size;
        let quantile = self.config.tail_quantile;
        let entry = self
            .sites
            .entry(key)
            .or_insert_with(|| SiteEntry::new(quantile));
        entry.epoch_long += 1;
        if entry.phase == Phase::Short {
            Self::demote(entry, quantile, &mut self.stats, &mut self.generation);
        }
    }

    /// Merges feedback accumulated elsewhere (per-shard buffers) into
    /// the learner. Mispredicted long frees must have been reported via
    /// [`OnlineLearner::note_pinned`] instead of `agg.long_frees`.
    pub fn absorb(&mut self, key: u64, agg: &EpochAgg) {
        self.stats.total_allocs += agg.allocs;
        self.stats.total_bytes += agg.alloc_bytes;
        self.stats.predicted_allocs += agg.predicted_allocs;
        self.stats.predicted_bytes += agg.predicted_bytes;
        self.stats.total_frees += agg.frees;
        self.stats.long_frees += agg.long_frees;
        let quantile = self.config.tail_quantile;
        let entry = self
            .sites
            .entry(key)
            .or_insert_with(|| SiteEntry::new(quantile));
        entry.epoch_frees += agg.frees;
        entry.epoch_long += agg.long_frees;
        for &lifetime in &agg.samples {
            entry.tail.observe(lifetime as f64);
        }
        if agg.long_frees > 0 && entry.phase == Phase::Short {
            Self::demote(entry, quantile, &mut self.stats, &mut self.generation);
        }
    }

    /// Advances the byte clock to `to` (callers with their own atomic
    /// clock), rolling any epochs that became due.
    pub fn advance_clock(&mut self, to: u64) {
        if to > self.clock {
            self.clock = to;
        }
        self.roll_due();
    }

    /// Ends the current epoch unconditionally and reschedules the next
    /// automatic roll one `epoch_bytes` after the current clock.
    pub fn roll_epoch(&mut self) {
        self.end_epoch();
        self.next_epoch_at = self.clock + self.config.epoch_bytes;
    }

    fn roll_due(&mut self) {
        while self.clock >= self.next_epoch_at {
            self.next_epoch_at += self.config.epoch_bytes;
            self.end_epoch();
        }
    }

    fn demote(
        entry: &mut SiteEntry,
        quantile: f64,
        stats: &mut LearnerStats,
        generation: &mut u64,
    ) {
        entry.phase = Phase::Demoted;
        entry.clean_run = 0;
        // The streak evidence restarts: the site must prove itself
        // again on fresh observations.
        entry.tail = P2Quantile::new(quantile);
        stats.demotions += 1;
        *generation += 1;
    }

    /// Applies the per-epoch all-short rule to every active site.
    fn end_epoch(&mut self) {
        let cfg = self.config;
        for entry in self.sites.values_mut() {
            let active = entry.epoch_frees > 0 || entry.epoch_long > 0;
            if active {
                if entry.epoch_long > 0 {
                    // Dirty epoch: the streak restarts. (A mispredicted
                    // Short site was already demoted on the spot; this
                    // also catches batched feedback.)
                    entry.clean_run = 0;
                    entry.tail = P2Quantile::new(cfg.tail_quantile);
                    if entry.phase == Phase::Short {
                        entry.phase = Phase::Demoted;
                        self.stats.demotions += 1;
                        self.generation += 1;
                    }
                } else if entry.epoch_frees >= cfg.min_epoch_frees {
                    // Clean epoch: every free died short.
                    entry.clean_run = entry.clean_run.saturating_add(1);
                    let tail_ok =
                        entry.tail.count() < 5 || entry.tail.estimate() < cfg.threshold as f64;
                    let needed = match entry.phase {
                        Phase::Observing => Some(cfg.promote_epochs),
                        Phase::Demoted => Some(cfg.requalify_epochs),
                        Phase::Short => None,
                    };
                    if let Some(needed) = needed {
                        if entry.clean_run >= needed && tail_ok {
                            entry.phase = Phase::Short;
                            entry.clean_run = 0;
                            self.stats.promotions += 1;
                            self.generation += 1;
                        }
                    }
                }
                // else: a trickle under min_epoch_frees — no evidence
                // either way.
            }
            entry.epoch_frees = 0;
            entry.epoch_long = 0;
        }
        self.stats.epochs += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> EpochConfig {
        EpochConfig {
            threshold: 1024,
            epoch_bytes: 2048,
            promote_epochs: 1,
            requalify_epochs: 3,
            min_epoch_frees: 1,
            tail_quantile: 0.95,
        }
    }

    /// Allocates and immediately frees `n` objects of `size` at `key`.
    fn churn(l: &mut OnlineLearner, key: u64, size: u64, n: usize) {
        for _ in 0..n {
            let birth = l.clock();
            let p = l.record_alloc(key, size);
            l.record_free(key, size, birth, p);
        }
    }

    #[test]
    fn fresh_site_is_not_predicted() {
        let mut l = OnlineLearner::new(tiny());
        assert!(!l.record_alloc(7, 16));
        assert!(!l.predicts(7));
    }

    #[test]
    fn clean_epoch_promotes() {
        let mut l = OnlineLearner::new(tiny());
        churn(&mut l, 7, 64, 64); // 4 KiB: two epochs
        assert!(l.predicts(7), "site should be promoted");
        assert!(l.stats().promotions >= 1);
        assert!(l.stats().predicted_allocs > 0, "later allocs predicted");
    }

    #[test]
    fn long_lifetime_blocks_promotion() {
        let mut l = OnlineLearner::new(tiny());
        // Every object outlives the threshold: never promoted.
        for _ in 0..64 {
            let birth = l.clock();
            let p = l.record_alloc(9, 64);
            // Age the object past the threshold with other traffic.
            churn(&mut l, 1000, 64, 32);
            l.record_free(9, 64, birth, p);
        }
        assert!(!l.predicts(9));
        assert_eq!(l.stats().mispredictions, 0);
    }

    #[test]
    fn misprediction_demotes_immediately() {
        let mut l = OnlineLearner::new(tiny());
        churn(&mut l, 7, 64, 64);
        assert!(l.predicts(7));
        let birth = l.clock();
        let p = l.record_alloc(7, 64);
        assert!(p);
        churn(&mut l, 1000, 64, 32); // age it past the threshold
        l.record_free(7, 64, birth, p);
        assert!(!l.predicts(7), "demotion must not wait for epoch end");
        let s = l.stats();
        assert_eq!(s.mispredictions, 1);
        assert!(s.demotions >= 1);
        assert_eq!(s.error_bytes, 64);
    }

    #[test]
    fn demoted_site_requalifies_after_k_clean_epochs() {
        let cfg = tiny();
        let mut l = OnlineLearner::new(cfg);
        churn(&mut l, 7, 64, 64);
        assert!(l.predicts(7));
        l.note_pinned(7, 64); // demote
        assert!(!l.predicts(7));
        let demoted_at = l.epochs();
        // Clean churn until requalified; must take >= requalify_epochs.
        let mut requalified_at = None;
        for _ in 0..20_000 {
            churn(&mut l, 7, 64, 1);
            if l.predicts(7) {
                requalified_at = Some(l.epochs());
                break;
            }
        }
        let requalified_at = requalified_at.expect("site must requalify");
        assert!(
            requalified_at - demoted_at >= u64::from(cfg.requalify_epochs),
            "requalified after {} epochs, hysteresis is {}",
            requalified_at - demoted_at,
            cfg.requalify_epochs
        );
    }

    #[test]
    fn note_pinned_counts_and_dirties() {
        let mut l = OnlineLearner::new(tiny());
        churn(&mut l, 7, 64, 64);
        assert!(l.predicts(7));
        let gen = l.generation();
        l.note_pinned(7, 128);
        assert!(!l.predicts(7));
        assert_eq!(l.stats().mispredictions, 1);
        assert_eq!(l.stats().error_bytes, 128);
        assert!(l.generation() > gen);
    }

    #[test]
    fn absorb_matches_direct_counting() {
        let mut l = OnlineLearner::new(tiny());
        let mut agg = EpochAgg::default();
        agg.on_alloc(64, false);
        agg.on_alloc(64, false);
        agg.on_free(64, false);
        l.absorb(7, &agg);
        let s = l.stats();
        assert_eq!(s.total_allocs, 2);
        assert_eq!(s.total_bytes, 128);
        assert_eq!(s.total_frees, 1);
        // Clean evidence promotes at the next roll.
        l.advance_clock(4096);
        assert!(l.predicts(7));
    }

    #[test]
    fn snapshot_and_generation_track_the_short_set() {
        let mut l = OnlineLearner::new(tiny());
        assert!(l.snapshot().is_empty());
        let g0 = l.generation();
        churn(&mut l, 7, 64, 64);
        assert!(l.generation() > g0);
        assert!(l.snapshot().contains(&7));
        l.note_pinned(7, 64);
        assert!(!l.snapshot().contains(&7));
    }

    #[test]
    fn roll_epoch_reschedules() {
        let mut l = OnlineLearner::new(tiny());
        churn(&mut l, 7, 64, 4);
        let e = l.epochs();
        l.roll_epoch();
        assert_eq!(l.epochs(), e + 1);
        // The manual roll pushed the next automatic roll out.
        churn(&mut l, 7, 64, 1);
        assert_eq!(l.epochs(), e + 1);
    }

    #[test]
    fn trickle_epochs_are_no_evidence() {
        let cfg = EpochConfig {
            min_epoch_frees: 8,
            ..tiny()
        };
        let mut l = OnlineLearner::new(cfg);
        // One free per epoch: under min_epoch_frees, never promoted.
        for _ in 0..16 {
            let birth = l.clock();
            let p = l.record_alloc(7, 64);
            l.record_free(7, 64, birth, p);
            l.roll_epoch();
        }
        assert!(!l.predicts(7));
    }
}
