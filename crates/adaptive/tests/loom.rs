//! Model-check tests for the `SharedPredictor` publish protocol and
//! the epoch-tick CAS, run under loom's scheduler:
//!
//! ```text
//! RUSTFLAGS="--cfg loom" cargo test -p lifepred-adaptive --features loom-test
//! ```
//!
//! With the vendored loom stub this is a many-schedule stress run with
//! yield perturbation at every atomic op; pointing the workspace's
//! `loom` dependency at the real crate makes the same tests exhaustive
//! (see vendor/loom/src/lib.rs).
#![cfg(all(loom, feature = "loom-test"))]

use lifepred_adaptive::{EpochConfig, SharedPredictor};
use loom::sync::atomic::{AtomicU64, Ordering};
use loom::sync::{Arc, Mutex};
use loom::thread;
use std::collections::HashMap;

fn tiny() -> EpochConfig {
    EpochConfig {
        threshold: 1024,
        epoch_bytes: 2048,
        ..EpochConfig::default()
    }
}

/// Promotes `key` to predicted-short: repeated on-time frees.
fn promote(p: &SharedPredictor, key: u64) {
    p.with_learner(|l| {
        for _ in 0..64 {
            let birth = l.clock();
            let pr = l.record_alloc(key, 64);
            l.record_free(key, 64, birth, pr);
        }
    });
}

/// A reader can never pair a newer generation with an older table, and
/// refresh_if_stale(g) == None must mean the published generation is
/// still g. The predicted set only grows in this scenario, so each
/// refreshed snapshot must be a superset of the previous one.
#[test]
fn generation_and_snapshot_stay_coherent() {
    loom::model(|| {
        let p = Arc::new(SharedPredictor::new(tiny()));
        let writer = {
            let p = Arc::clone(&p);
            thread::spawn(move || {
                promote(&p, 7);
                promote(&p, 9);
            })
        };
        let reader = {
            let p = Arc::clone(&p);
            thread::spawn(move || {
                let (mut generation, mut table) = p.table();
                for _ in 0..8 {
                    match p.refresh_if_stale(generation) {
                        Some((g, t)) => {
                            // Pair-first publication means the fast
                            // check may report "stale" while the cache
                            // is already current (spurious refresh,
                            // same generation) — but a refresh must
                            // never hand back an *older* pair.
                            assert!(
                                g >= generation,
                                "refresh went backwards: {generation} -> {g}"
                            );
                            assert!(
                                table.iter().all(|k| t.contains(k)),
                                "newer generation {g} lost keys the older table had"
                            );
                            generation = g;
                            table = t;
                        }
                        // None means the published generation matched
                        // the cache at the moment of the load; any
                        // probe after that races the writer, so the
                        // "None really was current" check lives in the
                        // quiescent asserts below.
                        None => thread::yield_now(),
                    }
                }
            })
        };
        writer.join().expect("writer");
        reader.join().expect("reader");
        // Quiescent state: the final pair carries both promotions and
        // reports itself as current.
        let (g, t) = p.table();
        assert!(t.contains(&7) && t.contains(&9), "final table {t:?}");
        assert!(p.refresh_if_stale(g).is_none());
    });
}

/// Replica of `ShardedAllocator::maybe_roll_epoch`'s claim protocol
/// (crates/alloc/src/sharded.rs): threads race an AcqRel
/// compare_exchange on the due boundary; for every due value that is
/// ever claimed, exactly one thread may win the tick.
#[test]
fn epoch_tick_cas_elects_exactly_one_winner_per_due_value() {
    const EPOCH: u64 = 100;
    loom::model(|| {
        let clock = Arc::new(AtomicU64::new(0));
        let next_epoch = Arc::new(AtomicU64::new(EPOCH));
        let winners: Arc<Mutex<HashMap<u64, u32>>> = Arc::new(Mutex::new(HashMap::new()));
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let clock = Arc::clone(&clock);
                let next_epoch = Arc::clone(&next_epoch);
                let winners = Arc::clone(&winners);
                thread::spawn(move || {
                    for _ in 0..2 {
                        clock.fetch_add(EPOCH, Ordering::Relaxed);
                        let now = clock.load(Ordering::Relaxed);
                        let due = next_epoch.load(Ordering::Relaxed);
                        if now < due {
                            continue;
                        }
                        if next_epoch
                            .compare_exchange(
                                due,
                                now.saturating_add(EPOCH),
                                Ordering::AcqRel,
                                Ordering::Relaxed,
                            )
                            .is_ok()
                        {
                            *winners.lock().unwrap().entry(due).or_insert(0) += 1;
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("ticker");
        }
        let winners = winners.lock().unwrap();
        assert!(!winners.is_empty(), "at least one tick must fire");
        for (due, count) in winners.iter() {
            assert_eq!(*count, 1, "due value {due} was claimed {count} times");
        }
        // The boundary only ever moves forward, past the final clock.
        assert!(next_epoch.load(Ordering::Relaxed) > clock.load(Ordering::Relaxed) - EPOCH);
    });
}
