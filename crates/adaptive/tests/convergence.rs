//! Behavioural tests for the online learner's drift handling: a site
//! whose lifetime behaviour flips long → short → long must be tracked
//! within the documented epoch bounds.

use lifepred_adaptive::{EpochConfig, OnlineLearner};

fn cfg() -> EpochConfig {
    EpochConfig {
        threshold: 1024,
        epoch_bytes: 2048,
        promote_epochs: 1,
        requalify_epochs: 3,
        min_epoch_frees: 1,
        tail_quantile: 0.95,
    }
}

const SITE: u64 = 0xabcd;
const NOISE: u64 = 0x9999;

/// One short-lived allocation at SITE plus background noise traffic.
fn short_op(l: &mut OnlineLearner) {
    let birth = l.clock();
    let predicted = l.record_alloc(SITE, 64);
    l.record_free(SITE, 64, birth, predicted);
    let nb = l.clock();
    let np = l.record_alloc(NOISE, 64);
    l.record_free(NOISE, 64, nb, np);
}

/// One long-lived allocation at SITE: aged past the threshold by noise
/// traffic before being freed.
fn long_op(l: &mut OnlineLearner) {
    let birth = l.clock();
    let predicted = l.record_alloc(SITE, 64);
    let threshold = l.config().threshold;
    while l.clock() - birth < threshold {
        let nb = l.clock();
        let np = l.record_alloc(NOISE, 128);
        l.record_free(NOISE, 128, nb, np);
    }
    l.record_free(SITE, 64, birth, predicted);
}

#[test]
fn drifting_site_converges_within_documented_bounds() {
    let cfg = cfg();
    let mut l = OnlineLearner::new(cfg);

    // Phase 1: long-lived behaviour. The site must never be predicted.
    for _ in 0..8 {
        long_op(&mut l);
        assert!(!l.predicts(SITE), "long-lived site predicted short");
    }
    assert_eq!(l.stats().mispredictions, 0);

    // Phase 2: behaviour flips to short-lived. Promotion must happen
    // once the site shows `promote_epochs` clean epochs — bound it by
    // promote_epochs + 2 epochs of slack for the phase boundary (the
    // flip lands mid-epoch and the last long free dirties that epoch).
    let flip_epoch = l.epochs();
    let mut promoted_at = None;
    for _ in 0..100_000 {
        short_op(&mut l);
        if l.predicts(SITE) {
            promoted_at = Some(l.epochs());
            break;
        }
    }
    let promoted_at = promoted_at.expect("short-lived site must be promoted");
    assert!(
        promoted_at - flip_epoch <= u64::from(cfg.promote_epochs) + 2,
        "promotion took {} epochs (bound {})",
        promoted_at - flip_epoch,
        cfg.promote_epochs + 2
    );

    // Phase 3: behaviour flips back to long-lived. Demotion is
    // immediate — the first long free at the predicted site demotes it
    // within the same epoch, before any epoch boundary.
    let demote_epoch = l.epochs();
    long_op(&mut l);
    assert!(!l.predicts(SITE), "demotion must be immediate");
    let s = l.stats();
    assert!(s.mispredictions >= 1);
    assert!(s.demotions >= 1);
    assert!(
        l.epochs() - demote_epoch <= (cfg.threshold / cfg.epoch_bytes) + 1,
        "demotion crossed more epochs than the object's own lifetime"
    );

    // Phase 4: short again — requalification needs the full hysteresis.
    let requalify_start = l.epochs();
    let mut requalified_at = None;
    for _ in 0..100_000 {
        short_op(&mut l);
        if l.predicts(SITE) {
            requalified_at = Some(l.epochs());
            break;
        }
    }
    let requalified_at = requalified_at.expect("site must requalify");
    assert!(
        requalified_at - requalify_start >= u64::from(cfg.requalify_epochs),
        "requalified after only {} epochs, hysteresis is {}",
        requalified_at - requalify_start,
        cfg.requalify_epochs
    );
    assert!(
        requalified_at - requalify_start <= u64::from(cfg.requalify_epochs) + 2,
        "requalification took {} epochs (bound {})",
        requalified_at - requalify_start,
        cfg.requalify_epochs + 2
    );
}

#[test]
fn stable_short_site_stays_predicted_under_heavy_churn() {
    let mut l = OnlineLearner::new(cfg());
    for _ in 0..50_000 {
        short_op(&mut l);
    }
    assert!(l.predicts(SITE));
    let s = l.stats();
    assert_eq!(s.mispredictions, 0);
    assert!(s.epochs > 100);
    // Coverage approaches 100% once promoted.
    assert!(s.coverage_alloc_pct() > 95.0, "{}", s.coverage_alloc_pct());
}

#[test]
fn mixed_sites_are_separated() {
    let mut l = OnlineLearner::new(cfg());
    for _ in 0..2_000 {
        short_op(&mut l); // SITE and NOISE short-lived
    }
    // A third site allocates only long-lived objects.
    const HOARDER: u64 = 0x1111;
    for _ in 0..4 {
        let birth = l.clock();
        let p = l.record_alloc(HOARDER, 256);
        for _ in 0..40 {
            short_op(&mut l);
        }
        l.record_free(HOARDER, 256, birth, p);
    }
    assert!(l.predicts(SITE));
    assert!(l.predicts(NOISE));
    assert!(!l.predicts(HOARDER));
}
