//! End-to-end tests for the `lifepred` CLI: the record → train →
//! simulate pipeline, cross-checks between the streaming and in-memory
//! replay paths, and error handling on damaged inputs.

use lifepred_heap::{replay_arena, replay_bsd, replay_firstfit, ReplayConfig};
use lifepred_trace::shared_registry;
use lifepred_tracefile::load_trace;
use lifepred_workloads::{by_name, record};
use std::path::PathBuf;

/// A fresh scratch directory per test, removed on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Scratch {
        let dir = std::env::temp_dir().join(format!("lifepred-cli-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("tempdir");
        Scratch(dir)
    }

    fn path(&self, file: &str) -> String {
        self.0.join(file).to_string_lossy().into_owned()
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn run(args: &[&str]) -> Result<String, String> {
    let args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
    let mut out = Vec::new();
    lifepred_cli::run(&args, &mut out).map(|()| String::from_utf8(out).expect("utf8 output"))
}

#[test]
fn record_train_simulate_pipeline() {
    let dir = Scratch::new("pipeline");
    let trace = dir.path("cfrac.lpt");
    let pred = dir.path("pred.json");

    let out = run(&[
        "record",
        "--workload",
        "cfrac",
        "--input",
        "0",
        "-o",
        &trace,
    ])
    .expect("record succeeds");
    assert!(out.contains("cfrac"), "record output: {out}");

    let out = run(&["train", &trace, "-o", &pred]).expect("train succeeds");
    assert!(out.contains("short-lived sites"), "train output: {out}");
    assert!(std::fs::read_to_string(&pred)
        .expect("predictor written")
        .contains("lifepred-predictor"));

    let out = run(&["simulate", &trace, "--predictor", &pred]).expect("simulate succeeds");
    assert!(
        out.contains("allocator:      arena"),
        "simulate output: {out}"
    );
    assert!(out.contains("arena allocs"), "simulate output: {out}");

    let out = run(&["inspect", &trace, "--verify"]).expect("inspect succeeds");
    assert!(
        out.contains("program:         cfrac:"),
        "inspect output: {out}"
    );
    assert!(out.contains("all checksums good"), "inspect output: {out}");
}

#[test]
fn streamed_simulation_matches_in_memory_replay() {
    let dir = Scratch::new("stream-vs-memory");
    let trace_path = dir.path("espresso.lpt");

    run(&["record", "--workload", "espresso", "-o", &trace_path]).expect("record");

    // The reloaded trace must replay to byte-identical reports.
    let w = by_name("espresso").expect("workload");
    let in_memory = record(w.as_ref(), 0, shared_registry());
    let reloaded = load_trace(&trace_path).expect("reload");
    let cfg = ReplayConfig::default();
    assert_eq!(
        replay_firstfit(&in_memory, &cfg),
        replay_firstfit(&reloaded, &cfg)
    );
    assert_eq!(replay_bsd(&in_memory, &cfg), replay_bsd(&reloaded, &cfg));

    // And the streaming simulate path must agree with both: simulate
    // under an empty-equivalent and a real predictor.
    let pred = dir.path("pred.json");
    run(&["train", &trace_path, "-o", &pred]).expect("train");
    let json = std::fs::read_to_string(&pred).expect("read predictor");
    let db = lifepred_core::ShortLivedSet::from_json(&json).expect("parse predictor");
    let expected = replay_arena(&in_memory, &db, &cfg);
    let out = run(&["simulate", &trace_path, "--predictor", &pred]).expect("simulate");
    assert!(
        out.contains(&format!("max heap bytes: {}", expected.max_heap_bytes)),
        "streamed vs in-memory divergence:\n{out}\nexpected {expected:?}"
    );
    assert!(out.contains(&format!(
        "arena allocs:   {} ({:.1}%)",
        expected.arena_allocs,
        expected.arena_alloc_pct()
    )));

    // The non-predicting allocators are streamable too.
    let out = run(&["simulate", &trace_path, "--allocator", "first-fit"]).expect("first-fit");
    let expected = replay_firstfit(&in_memory, &cfg);
    assert!(out.contains(&format!("max heap bytes: {}", expected.max_heap_bytes)));
    let out = run(&["simulate", &trace_path, "--allocator", "bsd"]).expect("bsd");
    let expected = replay_bsd(&in_memory, &cfg);
    assert!(out.contains(&format!("max heap bytes: {}", expected.max_heap_bytes)));
}

#[test]
fn parallel_simulate_matches_sequential_and_merges_metrics() {
    let dir = Scratch::new("parallel");
    let t0 = dir.path("espresso0.lpt");
    let t1 = dir.path("espresso1.lpt");
    run(&[
        "record",
        "--workload",
        "espresso",
        "--input",
        "0",
        "--input",
        "1",
        "-o",
        &dir.path("espresso{}.lpt"),
    ])
    .expect("record both inputs");

    // Two traces through the first-fit model, sequentially and with a
    // worker pool: the printed reports must be byte-identical, in input
    // order either way.
    let seq = run(&["simulate", &t0, &t1, "--allocator", "first-fit"]).expect("sequential");
    let par = run(&[
        "simulate",
        &t0,
        &t1,
        "--allocator",
        "first-fit",
        "--jobs",
        "4",
    ])
    .expect("parallel");
    assert_eq!(seq, par, "job count must not change the output");
    assert_eq!(
        seq.matches("allocator:      first-fit").count(),
        2,
        "one report per trace: {seq}"
    );

    // Metrics from parallel jobs are merged into one dump whose totals
    // cover both traces.
    let metrics = dir.path("m.json");
    run(&[
        "simulate",
        &t0,
        &t1,
        "--allocator",
        "first-fit",
        "--jobs",
        "2",
        "--metrics-out",
        &metrics,
    ])
    .expect("parallel with metrics");
    let snap = lifepred_obs::Snapshot::from_json(
        &std::fs::read_to_string(&metrics).expect("metrics written"),
    )
    .expect("metrics parse");
    let a = load_trace(&t0).expect("t0").stats().total_objects;
    let b = load_trace(&t1).expect("t1").stats().total_objects;
    assert_eq!(
        snap.counter("lifepred_sim_allocs_total"),
        Some(a + b),
        "merged dump covers both traces"
    );
    assert!(
        snap.counter("lifepred_sim_batch_refills_total")
            .unwrap_or(0)
            >= 2,
        "each trace consumed at least one event batch"
    );
}

#[test]
fn online_simulation_needs_no_predictor_file() {
    let dir = Scratch::new("online");
    let trace = dir.path("cfrac.lpt");
    run(&["record", "--workload", "cfrac", "-o", &trace]).expect("record");

    // The literal predictor `online` trains in-place: no JSON database
    // exists anywhere, yet the arena still admits objects.
    let out = run(&["simulate", &trace, "--predictor", "online"]).expect("online simulate");
    assert!(
        out.contains("allocator:      arena-online"),
        "online simulate output: {out}"
    );
    assert!(out.contains("online learner:"), "output: {out}");
    assert!(out.contains("epochs:"), "output: {out}");
    assert!(out.contains("coverage:"), "output: {out}");

    // Epoch geometry is tunable; the tuned run still reports learner
    // stats, and malformed geometry errors instead of panicking.
    let out = run(&[
        "simulate",
        &trace,
        "--predictor",
        "online",
        "--threshold",
        "4096",
        "--epoch",
        "8192",
        "--requalify",
        "2",
    ])
    .expect("tuned online simulate");
    assert!(out.contains("online learner:"), "output: {out}");
    assert!(run(&["simulate", &trace, "--predictor", "online", "--epoch", "0"]).is_err());
    assert!(run(&[
        "simulate",
        &trace,
        "--predictor",
        "online",
        "--requalify",
        "0"
    ])
    .is_err());
    assert!(run(&[
        "simulate",
        &trace,
        "--predictor",
        "online",
        "--allocator",
        "bsd"
    ])
    .is_err());
}

#[test]
fn simulate_metrics_out_dumps_registry_and_stats_renders_it() {
    let dir = Scratch::new("metrics");
    let trace = dir.path("cfrac.lpt");
    let metrics = dir.path("metrics.json");
    run(&["record", "--workload", "cfrac", "-o", &trace]).expect("record");

    // Online simulate fills the epoch timeline alongside the counters
    // and histograms.
    let out = run(&[
        "simulate",
        &trace,
        "--predictor",
        "online",
        "--metrics-out",
        &metrics,
    ])
    .expect("observed simulate");
    assert!(out.contains("metrics:"), "output: {out}");

    let json = std::fs::read_to_string(&metrics).expect("metrics written");
    let snap = lifepred_obs::Snapshot::from_json(&json).expect("valid metrics JSON");
    assert!(json.contains("lifepred-metrics-v1"), "schema tag missing");
    let allocs = snap
        .counter("lifepred_sim_allocs_total")
        .expect("alloc counter");
    assert!(allocs > 0, "no allocations recorded");
    // The three required histogram families: size, lifetime, latency.
    for hist in [
        "lifepred_sim_size_bytes",
        "lifepred_sim_lifetime_bytes",
        "lifepred_sim_event_ns",
    ] {
        assert!(snap.histogram(hist).is_some(), "missing histogram {hist}");
    }
    assert_eq!(
        snap.histogram("lifepred_sim_size_bytes").map(|h| h.count),
        Some(allocs)
    );
    // The CLI builds lifepred-obs with `timing`, so event wall times
    // really land.
    assert!(
        snap.histogram("lifepred_sim_event_ns")
            .is_some_and(|h| h.count > 0),
        "timing feature must fill the latency histogram"
    );
    let timeline = snap.timeline("lifepred_sim_epochs").expect("timeline");
    assert!(!timeline.is_empty(), "online run must sample epochs");
    // Learner gauges ride along in the same dump.
    assert!(snap.gauge("lifepred_learner_epochs").is_some());

    // `stats` renders the same registry as Prometheus text…
    let prom = run(&["stats", &metrics]).expect("stats");
    assert!(
        prom.contains("# TYPE lifepred_sim_allocs_total counter"),
        "prometheus output: {prom}"
    );
    assert!(prom.contains(&format!("lifepred_sim_allocs_total {allocs}")));
    assert!(prom.contains("lifepred_sim_size_bytes_bucket"));
    assert!(prom.contains("lifepred_sim_epochs_samples"));
    // …and as JSON, round-tripping exactly.
    let json_again = run(&["stats", &metrics, "--format", "json"]).expect("stats json");
    assert_eq!(
        lifepred_obs::Snapshot::from_json(&json_again).expect("reparse"),
        snap,
        "stats --format json must round-trip the dump"
    );

    // Offline simulate dumps metrics too (empty timeline: no epochs).
    let pred = dir.path("pred.json");
    run(&["train", &trace, "-o", &pred]).expect("train");
    let metrics2 = dir.path("metrics-offline.json");
    run(&[
        "simulate",
        &trace,
        "--predictor",
        &pred,
        "--metrics-out",
        &metrics2,
    ])
    .expect("observed offline simulate");
    let snap2 = lifepred_obs::Snapshot::from_json(
        &std::fs::read_to_string(&metrics2).expect("metrics written"),
    )
    .expect("valid metrics JSON");
    assert_eq!(snap2.counter("lifepred_sim_allocs_total"), Some(allocs));
    assert_eq!(snap2.timeline("lifepred_sim_epochs"), Some(&[][..]));

    // Error paths: bad dump file, bad format.
    let junk = dir.path("junk.json");
    std::fs::write(&junk, "{\"schema\": \"other\"}").expect("write");
    assert!(run(&["stats", &junk]).is_err());
    assert!(run(&["stats", &metrics, "--format", "xml"]).is_err());
    assert!(run(&["stats"]).is_err(), "stats needs a file");
}

#[test]
fn multi_input_record_trains_across_traces() {
    let dir = Scratch::new("multi-input");
    let pattern = dir.path("espresso-{}.lpt");
    run(&[
        "record",
        "--workload",
        "espresso",
        "--input",
        "0",
        "--input",
        "1",
        "-o",
        &pattern,
    ])
    .expect("record two inputs");
    let t0 = dir.path("espresso-0.lpt");
    let t1 = dir.path("espresso-1.lpt");
    let pred = dir.path("pred.json");
    let out = run(&["train", &t0, &t1, "-o", &pred]).expect("train on both");
    assert!(out.contains("short-lived sites"));
    // The cross-trace predictor drives a simulation of the test input.
    run(&["simulate", &t1, "--predictor", &pred]).expect("simulate test input");
}

#[test]
fn report_compares_offline_and_online_predictors() {
    let out = run(&["report", "--workload", "espresso"]).expect("report");
    assert!(out.contains("offline vs online"), "report output: {out}");
    for col in ["true%", "trueerr%", "online%", "onerr%", "epochs"] {
        assert!(out.contains(col), "missing column {col}: {out}");
    }
    assert!(out.contains("espresso"), "report output: {out}");
}

#[test]
fn corrupted_and_missing_files_error_cleanly() {
    let dir = Scratch::new("corrupt");
    let trace = dir.path("t.lpt");
    run(&["record", "--workload", "espresso", "-o", &trace]).expect("record");

    // Flip one payload byte: every subcommand must report an error.
    let mut bytes = std::fs::read(&trace).expect("read");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    let bad = dir.path("bad.lpt");
    std::fs::write(&bad, &bytes).expect("write");
    assert!(run(&["inspect", &bad, "--verify"]).is_err());
    assert!(run(&["train", &bad, "-o", &dir.path("p.json")]).is_err());
    assert!(run(&["simulate", &bad, "--allocator", "first-fit"]).is_err());

    // Missing files and malformed predictors error, never panic.
    assert!(run(&["inspect", &dir.path("nope.lpt")]).is_err());
    let junk = dir.path("junk.json");
    std::fs::write(&junk, "{not json").expect("write");
    assert!(run(&["simulate", &trace, "--predictor", &junk]).is_err());
}

#[test]
fn metrics_out_refuses_overwrite_without_force() {
    let dir = Scratch::new("force");
    let trace = dir.path("cfrac.lpt");
    let metrics = dir.path("m.json");
    run(&["record", "--workload", "cfrac", "-o", &trace]).expect("record");

    run(&[
        "simulate",
        &trace,
        "--allocator",
        "first-fit",
        "--metrics-out",
        &metrics,
    ])
    .expect("first dump");
    let first = std::fs::read_to_string(&metrics).expect("dump written");

    // A second dump to the same path is refused before any simulation
    // runs, and the original file is untouched.
    let err = run(&[
        "simulate",
        &trace,
        "--allocator",
        "first-fit",
        "--metrics-out",
        &metrics,
    ])
    .expect_err("overwrite must be refused");
    assert!(err.contains("already exists"), "error: {err}");
    assert!(err.contains("--force"), "error must mention --force: {err}");
    assert_eq!(
        std::fs::read_to_string(&metrics).expect("still there"),
        first,
        "refused overwrite must not touch the file"
    );

    // --force allows it.
    run(&[
        "simulate",
        &trace,
        "--allocator",
        "first-fit",
        "--metrics-out",
        &metrics,
        "--force",
    ])
    .expect("forced overwrite");

    // `native` honors the same guard.
    let nm = dir.path("native.json");
    run(&["native", "cfrac", "--metrics-out", &nm]).expect("native dump");
    assert!(run(&["native", "cfrac", "--metrics-out", &nm]).is_err());
    run(&["native", "cfrac", "--metrics-out", &nm, "--force"]).expect("forced native dump");
}

#[test]
fn sweep_run_resume_render_and_diff() {
    let dir = Scratch::new("sweep");
    let trace = dir.path("cfrac.lpt");
    let spec = dir.path("grid.json");
    let store = dir.path("store");
    run(&["record", "--workload", "cfrac", "-o", &trace]).expect("record");
    std::fs::write(
        &spec,
        format!(
            r#"{{"schema": "lifepred-sweep-v1", "name": "cli-grid",
                "traces": [{trace:?}],
                "backends": ["offline", "firstfit"],
                "thresholds": [16384, 32768]}}"#
        ),
    )
    .expect("write spec");

    // Cold run: 4 cells, but first-fit ignores the threshold axis so
    // only 3 unique executions happen.
    let out = run(&["sweep", "run", "--spec", &spec, "--store", &store]).expect("cold run");
    assert!(out.contains("backend=offline"), "table output: {out}");
    assert!(out.contains("backend=firstfit"), "table output: {out}");
    assert!(
        out.contains("run: 4 cells (3 unique), 0 cached, 3 computed"),
        "summary: {out}"
    );

    // Resume answers everything from the cache.
    let out = run(&["sweep", "resume", "--spec", &spec, "--store", &store]).expect("resume");
    assert!(
        out.contains("resume: 4 cells (3 unique), 3 cached, 0 computed"),
        "summary: {out}"
    );

    // Render to CSV and JSON files; identical JSON reports diff clean.
    let csv = dir.path("report.csv");
    run(&[
        "sweep", "render", "--spec", &spec, "--store", &store, "--format", "csv", "--out", &csv,
    ])
    .expect("render csv");
    let csv_text = std::fs::read_to_string(&csv).expect("csv written");
    assert!(
        csv_text.lines().count() >= 5,
        "header + 4 cells: {csv_text}"
    );

    let a = dir.path("a.json");
    let b = dir.path("b.json");
    for path in [&a, &b] {
        run(&[
            "sweep", "render", "--spec", &spec, "--store", &store, "--format", "json", "--out",
            path,
        ])
        .expect("render json");
    }
    let out = run(&["sweep", "diff", &a, &b]).expect("diff");
    assert!(out.contains("no differences"), "diff: {out}");

    // Argument and input errors surface cleanly.
    assert!(run(&["sweep"]).is_err(), "subcommand required");
    assert!(run(&["sweep", "frob"]).is_err(), "unknown subcommand");
    assert!(
        run(&["sweep", "run", "--store", &store]).is_err(),
        "--spec required"
    );
    assert!(run(&["sweep", "run", "--spec", &spec, "--store", &store, "--format", "xml"]).is_err());
    assert!(run(&["sweep", "diff", &a]).is_err(), "diff needs two files");
    let junk = dir.path("junk.json");
    std::fs::write(&junk, "{not json").expect("write");
    assert!(run(&["sweep", "run", "--spec", &junk, "--store", &store]).is_err());
    assert!(run(&["sweep", "diff", &a, &junk]).is_err());
    assert!(run(&["serve", "--addr", "not-an-address"]).is_err());
}

#[test]
fn argument_errors_are_reported() {
    assert!(run(&["frobnicate"]).is_err());
    assert!(run(&["record"]).is_err(), "missing --workload");
    assert!(run(&["record", "--workload", "nosuch", "-o", "x.lpt"]).is_err());
    assert!(run(&[
        "record",
        "--workload",
        "cfrac",
        "--input",
        "99",
        "-o",
        "x.lpt"
    ])
    .is_err());
    assert!(run(&["train", "-o", "x.json"]).is_err(), "no traces");
    assert!(run(&["simulate"]).is_err(), "no file");
    assert!(run(&["train", "a.lpt", "-o", "x.json", "--policy", "bogus"]).is_err());
    let usage = run(&["--help"]).expect("help");
    assert!(usage.contains("USAGE"));
    let usage = run(&[]).expect("no args prints usage");
    assert!(usage.contains("lifepred"));
}

/// The `audit` subcommand must honor the documented exit-code
/// contract end to end — 0 clean, 1 deny findings, 2 usage error —
/// which only the real binary can pin (the in-process harness maps
/// everything to `Result`).
#[test]
fn audit_subcommand_exit_code_contract() {
    use std::process::Command;
    let fixtures = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../audit/tests/fixtures");
    let bin = env!("CARGO_BIN_EXE_lifepred");

    // 0: a clean tree.
    let clean = fixtures.join("clean");
    let out = Command::new(bin)
        .args(["audit", "check", "--root", clean.to_str().unwrap()])
        .output()
        .expect("spawn lifepred");
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("0 deny, 0 warn"), "{text}");

    // 1: the cross-file fixture's seeded violations.
    let bad = fixtures.join("crossfile");
    let out = Command::new(bin)
        .args(["audit", "check", "--root", bad.to_str().unwrap()])
        .output()
        .expect("spawn lifepred");
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let text = String::from_utf8_lossy(&out.stdout);
    for rule in [
        "lock-order",
        "alloc-reentrancy",
        "atomic-pairing",
        "panic-surface",
    ] {
        assert!(text.contains(&format!("deny[{rule}]")), "{text}");
    }
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("lifepred: audit:"), "{err}");

    // 2: a usage error.
    let out = Command::new(bin)
        .args(["audit", "check", "--frobnicate"])
        .output()
        .expect("spawn lifepred");
    assert_eq!(out.status.code(), Some(2), "{out:?}");

    // The rule registry is reachable through the subcommand too.
    let out = Command::new(bin)
        .args(["audit", "rules"])
        .output()
        .expect("spawn lifepred");
    assert_eq!(out.status.code(), Some(0));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("alloc-reentrancy"), "{text}");
}
