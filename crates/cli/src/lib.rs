//! Implementation of the `lifepred` command-line tool.
//!
//! The binary wires the workspace together end to end:
//!
//! * `record` runs an instrumented workload and persists the trace as
//!   an `.lpt` file ([`lifepred_tracefile`]);
//! * `inspect` prints an `.lpt` header (and, on request, verifies the
//!   whole file) in constant memory;
//! * `train` profiles one or more traces and saves the short-lived
//!   site database as JSON;
//! * `simulate` streams a trace through an allocator model, consulting
//!   a saved predictor, optionally dumping the run's metric registry
//!   as JSON (`--metrics-out`);
//! * `stats` renders a saved metrics dump as Prometheus text or JSON;
//! * `report` reruns the paper's prediction-quality analysis (online
//!   columns sourced from the metric registry);
//! * `native` activates [`lifepred_galloc`]'s `LifepredGlobal` (the
//!   binary's `#[global_allocator]`) and runs workloads through it for
//!   real — every allocation the workload makes is served by the
//!   lifetime-predicting allocator, and the magazine/prediction
//!   counters are reported afterwards;
//! * `sweep` expands a declarative grid spec into the paper's
//!   design-space evaluation ([`lifepred_sweep`]), caching every cell
//!   so re-runs and resumes recompute only what changed;
//! * `serve` exposes the sweep engine and a Prometheus `/metrics`
//!   endpoint over a dependency-free HTTP/1.1 server;
//! * `audit` runs the allocator-safety static analysis
//!   ([`lifepred_audit`]) — the same engine as the standalone
//!   `lifepred-audit` binary — with the documented exit-code contract
//!   (0 clean, 1 deny findings, 2 usage/config error).
//!
//! Everything routes through [`run`], which writes to a caller-provided
//! sink so integration tests can capture output.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use lifepred_adaptive::{EpochConfig, LearnerStats};
use lifepred_core::{
    train, Profile, ShortLivedSet, SiteConfig, SiteExtractor, SitePolicy, TrainConfig,
    DEFAULT_THRESHOLD,
};
use lifepred_heap::{
    replay_arena_chunks, replay_arena_chunks_observed, replay_arena_online_chunks,
    replay_arena_online_chunks_observed, replay_bsd_chunks, replay_bsd_chunks_observed,
    replay_firstfit_chunks, replay_firstfit_chunks_observed, ReplayConfig, ReplayMeta, ReplayObs,
    ReplayReport, ReplayStreamError,
};
use lifepred_obs::{Registry, Snapshot};
use lifepred_sweep::{
    diff_reports, install_shutdown_handlers, render_csv, render_json, render_table, run_sweep,
    CancelFlag, GridSpec, ResultStore, Server, ServerConfig, SweepOptions,
};
use lifepred_trace::{shared_registry, AllocationRecord, Trace};
use lifepred_tracefile::{load_trace, save_trace, MappedTrace, TraceFileError, TraceReader};
use lifepred_workloads::server::sim::SimConfig;
use lifepred_workloads::server::synth::generate_lpt;
use lifepred_workloads::{all_workloads, by_name, record as record_workload};
use std::fmt::Display;
use std::io::Write;

const USAGE: &str = "\
lifepred — trace, train and simulate lifetime-predicting allocation

USAGE:
    lifepred record --workload <name> [--input <n>]... -o <file.lpt>
    lifepred gen --events <n[k|m|g]> -o <file.lpt> [--seed <n>] [--force]
    lifepred inspect <file.lpt> [--functions] [--chains] [--verify]
                     [--sections] [--head <n>]
    lifepred train <file.lpt>... -o <pred.json> [--policy <p>] [--rounding <n>] [--threshold <bytes>]
    lifepred simulate <file.lpt>... --predictor <pred.json|online> [--allocator <a>]
                      [--policy <p>] [--rounding <n>] [--threshold <bytes>]
                      [--epoch <bytes>] [--requalify <k>] [--metrics-out <m.json>]
                      [--jobs <n>]
    lifepred stats <m.json> [--format <prometheus|json>]
    lifepred report [--workload <name>]... [--policy <p>] [--jobs <n>]
    lifepred report --drag [--workload <name>]... [--threshold <bytes>] [--jobs <n>]
    lifepred native [<workload>]... [--metrics-out <m.json>]
    lifepred trace [<workload>]... [-o <trace.json>] [--force]
    lifepred sweep run|resume|render --spec <grid.json> [--store <dir>]
                      [--jobs <n>] [--format <table|csv|json>] [--out <file>]
    lifepred sweep diff <before.json> <after.json>
    lifepred serve [--addr <host:port>] [--store <dir>] [--threads <n>]
                   [--jobs <n>]
    lifepred audit check [--root <dir>] [--config <audit.toml>]
                   [--format <human|json|sarif>] [--strict] [FILES...]
    lifepred audit rules

OPTIONS:
    --workload <name>     one of: cfrac, espresso, gawk, ghost, perl, server
    --input <n>           input index (record; repeatable, default 0);
                          with several inputs, -o must contain {} which
                          is replaced by the input index
    -o, --output <file>   output path
    --policy <p>          site policy: complete (default), len-N, cce, size-only
    --rounding <n>        size rounding in bytes (default 4)
    --threshold <bytes>   short-lived threshold (default 32768)
    --predictor <file>    trained predictor JSON (from `lifepred train`),
                          or the literal `online` to train in-place while
                          simulating (arena allocator only)
    --allocator <a>       arena (default), first-fit or bsd
    --epoch <bytes>       online: epoch length (default 2x threshold)
    --requalify <k>       online: clean epochs a demoted site must show
                          before re-qualifying (default 3)
    --metrics-out <file>  simulate: dump the run's metric registry
                          (counters, histograms, epoch timeline) as JSON;
                          with several traces, per-run registries are
                          merged into one dump
    --force               simulate/native: allow --metrics-out to
                          overwrite an existing file
    --jobs <n>            simulate/report/sweep/serve: worker threads
                          for independent runs (default 1)
    --format <f>          stats: prometheus (default) or json;
                          sweep: table (default), csv or json
    --events <n[k|m|g]>   gen: events to target (k/m/g = 10^3/10^6/10^9);
                          the synthetic server run lands within a few
                          percent of this
    --seed <n>            gen: simulation seed (default 1)
    --functions           inspect: list the function registry
    --chains              inspect: list the interned call chains
    --verify              inspect: stream every section, checking CRCs
    --sections            inspect: list section framing and sizes only
                          (maps the file; decodes no events)
    --head <n>            inspect: print the first n events (maps the
                          file; decodes only what it prints)
    --spec <grid.json>    sweep: declarative grid spec (schema
                          lifepred-sweep-v1; see DESIGN.md section 13)
    --store <dir>         sweep/serve: content-addressed result cache
                          directory (default sweep-cache)
    --out <file>          sweep: write the rendered report to a file
                          instead of stdout
    --addr <host:port>    serve: listen address (default 127.0.0.1:7878;
                          port 0 picks an ephemeral port)
    --threads <n>         serve: HTTP worker threads (default 4)
    --drag                report: per-arena liveness timelines and object
                          drag (bytes between last touch and free) instead
                          of prediction quality
";

/// Entry point shared by the binary and the integration tests.
///
/// `args` excludes the program name. All regular output goes to `out`;
/// errors come back as human-readable strings.
///
/// # Errors
///
/// Returns a message describing the first bad argument, I/O failure or
/// malformed input file.
pub fn run(args: &[String], out: &mut dyn Write) -> Result<(), String> {
    match args.first().map(String::as_str) {
        None | Some("--help" | "-h" | "help") => {
            write_out(out, USAGE)?;
            Ok(())
        }
        Some("record") => cmd_record(&args[1..], out),
        Some("gen") => cmd_gen(&args[1..], out),
        Some("inspect") => cmd_inspect(&args[1..], out),
        Some("train") => cmd_train(&args[1..], out),
        Some("simulate") => cmd_simulate(&args[1..], out),
        Some("stats") => cmd_stats(&args[1..], out),
        Some("report") => cmd_report(&args[1..], out),
        Some("native") => cmd_native(&args[1..], out),
        Some("trace") => cmd_trace(&args[1..], out),
        Some("sweep") => cmd_sweep(&args[1..], out),
        Some("serve") => cmd_serve(&args[1..], out),
        Some("audit") => cmd_audit(&args[1..], out),
        Some(other) => Err(format!("unknown command {other:?} (try `lifepred --help`)")),
    }
}

// ---------------------------------------------------------------------
// Argument scanning
// ---------------------------------------------------------------------

/// One parsed argument: an option (with the value still pending unless
/// attached via `=`) or a positional.
enum Arg<'a> {
    Opt(&'a str, Option<&'a str>),
    Positional(&'a str),
}

struct Scanner<'a> {
    args: &'a [String],
    i: usize,
}

impl<'a> Scanner<'a> {
    fn new(args: &'a [String]) -> Self {
        Scanner { args, i: 0 }
    }

    fn next(&mut self) -> Option<Arg<'a>> {
        let raw = self.args.get(self.i)?;
        self.i += 1;
        if let Some(rest) = raw.strip_prefix("--") {
            match rest.split_once('=') {
                Some((name, value)) => Some(Arg::Opt(name, Some(value))),
                None => Some(Arg::Opt(rest, None)),
            }
        } else if raw.len() > 1 && raw.starts_with('-') {
            Some(Arg::Opt(&raw[1..], None))
        } else {
            Some(Arg::Positional(raw))
        }
    }

    /// The value of the option just returned: attached (`--x=v`) or the
    /// following argument.
    fn value(&mut self, name: &str, attached: Option<&'a str>) -> Result<&'a str, String> {
        if let Some(v) = attached {
            return Ok(v);
        }
        let v = self
            .args
            .get(self.i)
            .ok_or_else(|| format!("option --{name} needs a value"))?;
        self.i += 1;
        Ok(v)
    }
}

fn parse_num<T: std::str::FromStr>(name: &str, text: &str) -> Result<T, String>
where
    T::Err: Display,
{
    text.parse()
        .map_err(|e| format!("bad value for --{name} ({e})"))
}

fn parse_policy(text: &str) -> Result<SitePolicy, String> {
    SitePolicy::parse(text).ok_or_else(|| {
        format!("unknown policy {text:?} (expected complete, len-N, cce or size-only)")
    })
}

fn write_out(out: &mut dyn Write, text: impl Display) -> Result<(), String> {
    write!(out, "{text}").map_err(|e| format!("write failed: {e}"))
}

fn file_err(path: &str, e: impl Display) -> String {
    format!("{path}: {e}")
}

/// Maps a [`run`] error message to a process exit code: usage and
/// configuration errors (messages starting with `usage:`) exit 2,
/// everything else — including audit deny findings — exits 1.
#[must_use]
pub fn exit_code(err: &str) -> u8 {
    if err.starts_with("usage:") {
        2
    } else {
        1
    }
}

// ---------------------------------------------------------------------
// audit
// ---------------------------------------------------------------------

fn cmd_audit(args: &[String], out: &mut dyn Write) -> Result<(), String> {
    let mut err_buf: Vec<u8> = Vec::new();
    let code = lifepred_audit::app::run_app(args, out, &mut err_buf);
    let err_text = String::from_utf8_lossy(&err_buf).trim_end().to_string();
    match code {
        0 => {
            // Help text and warnings land on the driver's error
            // stream even on success; surface them.
            if !err_text.is_empty() {
                write_out(out, format_args!("{err_text}\n"))?;
            }
            Ok(())
        }
        1 => Err(
            "audit: deny diagnostics found (report above); fix the code or add \
             a reasoned [[allow]] to audit.toml"
                .into(),
        ),
        _ => Err(format!("usage: {err_text}")),
    }
}

// ---------------------------------------------------------------------
// record
// ---------------------------------------------------------------------

fn cmd_record(args: &[String], out: &mut dyn Write) -> Result<(), String> {
    let mut workload = None;
    let mut inputs: Vec<usize> = Vec::new();
    let mut output = None;
    let mut s = Scanner::new(args);
    while let Some(arg) = s.next() {
        match arg {
            Arg::Opt("workload", v) => workload = Some(s.value("workload", v)?.to_owned()),
            Arg::Opt("input", v) => inputs.push(parse_num("input", s.value("input", v)?)?),
            Arg::Opt("o" | "output", v) => output = Some(s.value("output", v)?.to_owned()),
            Arg::Opt(o, _) => return Err(format!("record: unknown option --{o}")),
            Arg::Positional(p) => return Err(format!("record: unexpected argument {p:?}")),
        }
    }
    let name = workload.ok_or("record: --workload is required")?;
    let output = output.ok_or("record: -o is required")?;
    let w = by_name(&name).ok_or_else(|| {
        let known: Vec<&str> = all_workloads().iter().map(|w| w.name()).collect();
        format!("unknown workload {name:?} (known: {})", known.join(", "))
    })?;
    if inputs.is_empty() {
        inputs.push(0);
    }
    let available = w.inputs();
    for &i in &inputs {
        if i >= available.len() {
            return Err(format!(
                "workload {name} has inputs 0..{} ({})",
                available.len() - 1,
                available.join(", ")
            ));
        }
    }
    if inputs.len() > 1 && !output.contains("{}") {
        return Err("record: with several inputs, -o must contain {} \
                    (replaced by the input index)"
            .to_owned());
    }
    // One registry across all inputs so allocation sites map between
    // the produced traces (train on one, simulate on another).
    let registry = shared_registry();
    for &i in &inputs {
        let trace = record_workload(w.as_ref(), i, registry.clone());
        let path = output.replace("{}", &i.to_string());
        save_trace(&path, &trace).map_err(|e| file_err(&path, e))?;
        let bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
        write_out(
            out,
            format!(
                "{path}: {} ({} objects, {} bytes allocated, {} file bytes)\n",
                trace.name(),
                trace.stats().total_objects,
                trace.stats().total_bytes,
                bytes
            ),
        )?;
    }
    Ok(())
}

// ---------------------------------------------------------------------
// gen
// ---------------------------------------------------------------------

/// Parses an event-count target with an optional k/m/g suffix.
fn parse_events(text: &str) -> Result<u64, String> {
    let (digits, scale) = match text.as_bytes().last() {
        Some(b'k' | b'K') => (&text[..text.len() - 1], 1_000u64),
        Some(b'm' | b'M') => (&text[..text.len() - 1], 1_000_000),
        Some(b'g' | b'G') => (&text[..text.len() - 1], 1_000_000_000),
        _ => (text, 1),
    };
    let n: u64 = parse_num("events", digits)?;
    n.checked_mul(scale)
        .filter(|&n| n > 0)
        .ok_or_else(|| format!("bad value for --events ({text:?})"))
}

/// Peak resident set size of this process in bytes, if the platform
/// exposes it (`VmHWM` on Linux).
fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kib: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kib * 1024)
}

fn cmd_gen(args: &[String], out: &mut dyn Write) -> Result<(), String> {
    let mut events = None;
    let mut seed = 1u64;
    let mut output = None;
    let mut force = false;
    let mut s = Scanner::new(args);
    while let Some(arg) = s.next() {
        match arg {
            Arg::Opt("events", v) => events = Some(parse_events(s.value("events", v)?)?),
            Arg::Opt("seed", v) => seed = parse_num("seed", s.value("seed", v)?)?,
            Arg::Opt("o" | "output", v) => output = Some(s.value("output", v)?.to_owned()),
            Arg::Opt("force", _) => force = true,
            Arg::Opt(o, _) => return Err(format!("gen: unknown option --{o}")),
            Arg::Positional(p) => return Err(format!("gen: unexpected argument {p:?}")),
        }
    }
    let events = events.ok_or("gen: --events is required")?;
    let output = output.ok_or("gen: -o is required")?;
    guard_overwrite(&output, force)?;
    let config = SimConfig::for_events(events, seed);
    let file = std::fs::File::create(&output).map_err(|e| file_err(&output, e))?;
    let sink = std::io::BufWriter::with_capacity(1 << 20, file);
    let started = std::time::Instant::now();
    let (summary, sink) = match generate_lpt(&config, sink) {
        Ok(done) => done,
        Err(e) => {
            // Don't leave a half-written trace behind.
            std::fs::remove_file(&output).ok();
            return Err(file_err(&output, e));
        }
    };
    let elapsed = started.elapsed();
    drop(sink);
    let file_bytes = std::fs::metadata(&output).map(|m| m.len()).unwrap_or(0);
    let mut text = format!(
        "{output}: {} events, {} objects ({} immortal), {} bytes allocated\n\
         file:           {} bytes ({:.2} bytes/event)\n\
         generated in:   {:.2}s ({:.1}M events/s)\n",
        summary.events,
        summary.objects,
        summary.immortal,
        summary.total_bytes,
        file_bytes,
        file_bytes as f64 / summary.events as f64,
        elapsed.as_secs_f64(),
        summary.events as f64 / elapsed.as_secs_f64() / 1e6,
    );
    if let Some(rss) = peak_rss_bytes() {
        text.push_str(&format!(
            "peak rss:       {} bytes ({:.2}x file size)\n",
            rss,
            rss as f64 / file_bytes.max(1) as f64
        ));
    }
    write_out(out, &text)
}

// ---------------------------------------------------------------------
// inspect
// ---------------------------------------------------------------------

fn cmd_inspect(args: &[String], out: &mut dyn Write) -> Result<(), String> {
    let mut path = None;
    let mut functions = false;
    let mut chains = false;
    let mut verify = false;
    let mut sections = false;
    let mut head: Option<u64> = None;
    let mut s = Scanner::new(args);
    while let Some(arg) = s.next() {
        match arg {
            Arg::Opt("functions", _) => functions = true,
            Arg::Opt("chains", _) => chains = true,
            Arg::Opt("verify", _) => verify = true,
            Arg::Opt("sections", _) => sections = true,
            Arg::Opt("head", v) => head = Some(parse_num("head", s.value("head", v)?)?),
            Arg::Opt(o, _) => return Err(format!("inspect: unknown option --{o}")),
            Arg::Positional(p) if path.is_none() => path = Some(p.to_owned()),
            Arg::Positional(p) => return Err(format!("inspect: unexpected argument {p:?}")),
        }
    }
    let path = path.ok_or("inspect: a trace file is required")?;
    let reader = TraceReader::open(&path).map_err(|e| file_err(&path, e))?;
    let stats = reader.stats();
    let mut text = format!(
        "program:         {}\n\
         objects:         {}\n\
         bytes allocated: {}\n\
         max live:        {} bytes / {} objects\n\
         instructions:    {}\n\
         function calls:  {}\n\
         heap refs:       {} ({:.1}% of all refs)\n\
         functions:       {}\n\
         call chains:     {}\n\
         end clock/seq:   {} / {}\n",
        reader.name(),
        stats.total_objects,
        stats.total_bytes,
        stats.max_live_bytes,
        stats.max_live_objects,
        stats.instructions,
        stats.function_calls,
        stats.heap_refs,
        stats.heap_ref_pct(),
        reader.registry().len(),
        reader.chain_table().len(),
        reader.end_clock(),
        reader.end_seq(),
    );
    if functions {
        text.push_str("\nfunctions:\n");
        for name in reader.registry().names() {
            text.push_str("  ");
            text.push_str(name);
            text.push('\n');
        }
    }
    if chains {
        text.push_str("\ncall chains:\n");
        for (_, chain) in reader.chain_table().iter() {
            let rendered: Vec<&str> = chain
                .frames()
                .iter()
                .map(|f| reader.registry().name(*f).unwrap_or("?"))
                .collect();
            let line = if rendered.is_empty() {
                "(empty)".to_owned()
            } else {
                rendered.join(">")
            };
            text.push_str("  ");
            text.push_str(&line);
            text.push('\n');
        }
    }
    write_out(out, &text)?;
    // The mapped fast paths: frame the file (and optionally decode a
    // prefix of the events) without streaming or checksumming the two
    // large sections.
    if sections || head.is_some() {
        let mapped = MappedTrace::open_unverified(&path).map_err(|e| file_err(&path, e))?;
        if sections {
            let mut text = format!(
                "\nsections ({}, {} file bytes):\n",
                if mapped.is_mapped() { "mmap" } else { "heap" },
                mapped.file_len(),
            );
            for info in mapped.sections() {
                match info.entries {
                    Some(n) => text.push_str(&format!(
                        "  {:<10} {:>12} bytes  {:>12} entries\n",
                        info.name, info.payload_bytes, n
                    )),
                    None => text.push_str(&format!(
                        "  {:<10} {:>12} bytes\n",
                        info.name, info.payload_bytes
                    )),
                }
            }
            write_out(out, &text)?;
        }
        if let Some(head) = head {
            use lifepred_trace::{ChunkEvent, ChunkSource, EventChunk};
            let mut text = format!("\nevents (first {head} of {}):\n", mapped.event_count());
            let mut source = mapped.events();
            let mut chunk = EventChunk::new();
            let mut seq = 0u64;
            'outer: while seq < head
                && source
                    .next_chunk(&mut chunk)
                    .map_err(|e| file_err(&path, e))?
            {
                for event in chunk.events() {
                    if seq == head {
                        break 'outer;
                    }
                    match event {
                        ChunkEvent::Alloc { record, size } => text.push_str(&format!(
                            "  seq {seq:<10} alloc record {record:<12} size {size}\n"
                        )),
                        ChunkEvent::Free { record } => {
                            text.push_str(&format!("  seq {seq:<10} free  record {record}\n"))
                        }
                    }
                    seq += 1;
                }
            }
            write_out(out, &text)?;
        }
    }
    if verify {
        let records = TraceReader::open(&path)
            .map_err(|e| file_err(&path, e))?
            .into_records()
            .map_err(|e| file_err(&path, e))?;
        let mut n_records = 0u64;
        for r in records {
            r.map_err(|e| file_err(&path, e))?;
            n_records += 1;
        }
        let events = TraceReader::open(&path)
            .map_err(|e| file_err(&path, e))?
            .into_events()
            .map_err(|e| file_err(&path, e))?;
        let mut n_events = 0u64;
        for e in events {
            e.map_err(|e| file_err(&path, e))?;
            n_events += 1;
        }
        write_out(
            out,
            format!("\nverified: {n_records} records, {n_events} events, all checksums good\n"),
        )?;
    }
    Ok(())
}

// ---------------------------------------------------------------------
// train
// ---------------------------------------------------------------------

fn cmd_train(args: &[String], out: &mut dyn Write) -> Result<(), String> {
    let mut paths: Vec<String> = Vec::new();
    let mut output = None;
    let mut policy = SitePolicy::Complete;
    let mut rounding = 4u32;
    let mut threshold = DEFAULT_THRESHOLD;
    let mut s = Scanner::new(args);
    while let Some(arg) = s.next() {
        match arg {
            Arg::Opt("o" | "output", v) => output = Some(s.value("output", v)?.to_owned()),
            Arg::Opt("policy", v) => policy = parse_policy(s.value("policy", v)?)?,
            Arg::Opt("rounding", v) => rounding = parse_num("rounding", s.value("rounding", v)?)?,
            Arg::Opt("threshold", v) => {
                threshold = parse_num("threshold", s.value("threshold", v)?)?;
            }
            Arg::Opt(o, _) => return Err(format!("train: unknown option --{o}")),
            Arg::Positional(p) => paths.push(p.to_owned()),
        }
    }
    if paths.is_empty() {
        return Err("train: at least one trace file is required".to_owned());
    }
    let output = output.ok_or("train: -o is required")?;
    let mut traces: Vec<Trace> = Vec::with_capacity(paths.len());
    for path in &paths {
        traces.push(load_trace(path).map_err(|e| file_err(path, e))?);
    }
    let config = SiteConfig {
        policy,
        size_rounding: rounding,
    };
    let profile = Profile::build_many(traces.iter(), &config, threshold);
    let db = train(
        &profile,
        &TrainConfig {
            threshold,
            ..TrainConfig::default()
        },
    );
    std::fs::write(&output, db.to_json()).map_err(|e| file_err(&output, e))?;
    write_out(
        out,
        format!(
            "{output}: {} short-lived sites (of {} seen, policy {}, threshold {})\n",
            db.len(),
            profile.total_sites(),
            policy,
            threshold
        ),
    )?;
    Ok(())
}

// ---------------------------------------------------------------------
// simulate
// ---------------------------------------------------------------------

fn replay_err(path: &str, e: ReplayStreamError<TraceFileError>) -> String {
    file_err(path, e)
}

/// What `simulate` consults for lifetime predictions — resolved once,
/// then shared read-only by every parallel job.
enum SimPredictor {
    /// Non-predicting allocators (first-fit, bsd).
    None,
    /// A database trained offline by `lifepred train`.
    Db(ShortLivedSet),
    /// The self-training online learner (one per trace).
    Online {
        sites: SiteConfig,
        epoch: EpochConfig,
    },
}

/// Everything one simulation job produces.
struct SimOutput {
    report: ReplayReport,
    learner: Option<LearnerStats>,
    metrics: Option<Snapshot>,
}

/// Streams one `.lpt` file through the configured allocator — the unit
/// of work `lifepred simulate` fans out over `--jobs` threads. Each
/// job records into its own registry; the caller merges the snapshots.
fn simulate_one(
    path: &str,
    allocator: &str,
    predictor: &SimPredictor,
    config: &ReplayConfig,
    want_metrics: bool,
) -> Result<SimOutput, String> {
    let registry = if want_metrics {
        Some(Registry::new())
    } else {
        None
    };
    let obs = registry.as_ref().map(ReplayObs::register);
    // One mmap (or heap read, where mapping is unavailable) serves
    // both passes: the records walk borrows the mapped records
    // section, the replay decodes event chunks straight out of the
    // mapped events section. CRCs are checked once, up front.
    let mapped = MappedTrace::open(path).map_err(|e| file_err(path, e))?;
    let meta = ReplayMeta {
        program: mapped.name().to_owned(),
        function_calls: mapped.stats().function_calls,
    };

    match predictor {
        // The online predictor trains itself while the trace replays —
        // no JSON database involved.
        SimPredictor::Online {
            sites: site_config,
            epoch,
        } => {
            // Pass 1: walk the records, fingerprinting each object's
            // allocation site. Only the (small) chain table is held in
            // memory, plus one u64 per object.
            let mut extractor = SiteExtractor::from_chains(mapped.chain_table(), *site_config);
            let mut sites = Vec::new();
            for record in mapped.records().map_err(|e| file_err(path, e))? {
                let record = record.map_err(|e| file_err(path, e))?;
                sites.push(extractor.site_of(&record).fingerprint());
            }
            // Pass 2: stream the event chunks through the allocator,
            // with the learner predicting and correcting as they go by.
            let chunks = mapped.events();
            let online = match &obs {
                Some(obs) => {
                    replay_arena_online_chunks_observed(&meta, chunks, &sites, epoch, config, obs)
                }
                None => replay_arena_online_chunks(&meta, chunks, &sites, epoch, config),
            }
            .map_err(|e| replay_err(path, e))?;
            if let Some(registry) = &registry {
                online.learner.export(registry);
            }
            Ok(SimOutput {
                report: online.replay,
                learner: Some(online.learner),
                metrics: registry.map(|r| r.snapshot()),
            })
        }
        SimPredictor::Db(db) => {
            // Pass 1: walk the records, predicting each object from
            // its allocation site. Only the (small) chain table is held
            // in memory, plus one bit per object.
            let mut extractor = SiteExtractor::from_chains(mapped.chain_table(), *db.config());
            let mut predicted = Vec::new();
            for record in mapped.records().map_err(|e| file_err(path, e))? {
                let record = record.map_err(|e| file_err(path, e))?;
                predicted.push(db.predicts(&extractor.site_of(&record)));
            }
            // Pass 2: stream the event chunks through the allocator.
            let chunks = mapped.events();
            let report = match &obs {
                Some(obs) => replay_arena_chunks_observed(&meta, chunks, &predicted, config, obs),
                None => replay_arena_chunks(&meta, chunks, &predicted, config),
            }
            .map_err(|e| replay_err(path, e))?;
            Ok(SimOutput {
                report,
                learner: None,
                metrics: registry.map(|r| r.snapshot()),
            })
        }
        SimPredictor::None => {
            let chunks = mapped.events();
            let report = if allocator == "bsd" {
                match &obs {
                    Some(obs) => replay_bsd_chunks_observed(&meta, chunks, config, obs),
                    None => replay_bsd_chunks(&meta, chunks, config),
                }
            } else {
                match &obs {
                    Some(obs) => replay_firstfit_chunks_observed(&meta, chunks, config, obs),
                    None => replay_firstfit_chunks(&meta, chunks, config),
                }
            }
            .map_err(|e| replay_err(path, e))?;
            Ok(SimOutput {
                report,
                learner: None,
                metrics: registry.map(|r| r.snapshot()),
            })
        }
    }
}

fn cmd_simulate(args: &[String], out: &mut dyn Write) -> Result<(), String> {
    let mut paths: Vec<String> = Vec::new();
    let mut predictor = None;
    let mut allocator = "arena".to_owned();
    let mut policy = SitePolicy::Complete;
    let mut rounding = 4u32;
    let mut threshold: u64 = DEFAULT_THRESHOLD;
    let mut epoch_bytes: Option<u64> = None;
    let mut requalify = 3u32;
    let mut metrics_out: Option<String> = None;
    let mut force = false;
    let mut jobs = 1usize;
    let mut s = Scanner::new(args);
    while let Some(arg) = s.next() {
        match arg {
            Arg::Opt("predictor", v) => predictor = Some(s.value("predictor", v)?.to_owned()),
            Arg::Opt("allocator", v) => allocator = s.value("allocator", v)?.to_owned(),
            Arg::Opt("policy", v) => policy = parse_policy(s.value("policy", v)?)?,
            Arg::Opt("rounding", v) => rounding = parse_num("rounding", s.value("rounding", v)?)?,
            Arg::Opt("threshold", v) => {
                threshold = parse_num("threshold", s.value("threshold", v)?)?;
            }
            Arg::Opt("epoch", v) => epoch_bytes = Some(parse_num("epoch", s.value("epoch", v)?)?),
            Arg::Opt("requalify", v) => {
                requalify = parse_num("requalify", s.value("requalify", v)?)?;
            }
            Arg::Opt("metrics-out", v) => {
                metrics_out = Some(s.value("metrics-out", v)?.to_owned());
            }
            Arg::Opt("force", _) => force = true,
            Arg::Opt("jobs", v) => jobs = parse_num("jobs", s.value("jobs", v)?)?,
            Arg::Opt(o, _) => return Err(format!("simulate: unknown option --{o}")),
            Arg::Positional(p) => paths.push(p.to_owned()),
        }
    }
    if paths.is_empty() {
        return Err("simulate: at least one trace file is required".to_owned());
    }
    let config = ReplayConfig::default();
    let predictor = if predictor.as_deref() == Some("online") {
        if allocator != "arena" {
            return Err("simulate: --predictor online requires the arena allocator".to_owned());
        }
        let epoch = EpochConfig {
            threshold,
            epoch_bytes: epoch_bytes.unwrap_or(2 * threshold),
            requalify_epochs: requalify,
            ..EpochConfig::default()
        };
        epoch.validate().map_err(|e| format!("simulate: {e}"))?;
        SimPredictor::Online {
            sites: SiteConfig {
                policy,
                size_rounding: rounding,
            },
            epoch,
        }
    } else {
        match allocator.as_str() {
            "arena" => {
                let pred_path = predictor.ok_or("simulate: --predictor is required for arena")?;
                let json =
                    std::fs::read_to_string(&pred_path).map_err(|e| file_err(&pred_path, e))?;
                SimPredictor::Db(
                    ShortLivedSet::from_json(&json).map_err(|e| file_err(&pred_path, e))?,
                )
            }
            "first-fit" | "firstfit" | "bsd" => SimPredictor::None,
            other => {
                return Err(format!(
                    "unknown allocator {other:?} (expected arena, first-fit or bsd)"
                ))
            }
        }
    };
    // Refuse a doomed run up front: if the metrics dump would clobber
    // an existing file, say so before spending time simulating.
    if let Some(path) = metrics_out.as_deref() {
        guard_overwrite(path, force)?;
    }
    // Fan the traces over the worker pool; results come back in input
    // order, so the printed reports match a sequential run exactly.
    let want_metrics = metrics_out.is_some();
    let outcomes = lifepred_bench::run_jobs(paths, jobs, |_, path| {
        simulate_one(&path, &allocator, &predictor, &config, want_metrics)
    });
    let mut results = Vec::with_capacity(outcomes.len());
    for outcome in outcomes {
        results.push(outcome?);
    }
    if let Some(path) = metrics_out.as_deref() {
        let mut merged = Snapshot::default();
        for r in &results {
            if let Some(snap) = &r.metrics {
                merged.merge(snap);
            }
        }
        write_metrics(out, path, &merged, force)?;
    }
    let mut first = true;
    for r in &results {
        if !first {
            write_out(out, "\n")?;
        }
        first = false;
        write_report(out, &r.report)?;
        if let Some(learner) = &r.learner {
            write_online_stats(out, learner)?;
        }
    }
    Ok(())
}

/// Refuses to clobber an existing `--metrics-out` file unless the user
/// passed `--force`: a metrics dump is a measurement, and silently
/// replacing one hides that the numbers changed.
fn guard_overwrite(path: &str, force: bool) -> Result<(), String> {
    if !force && std::path::Path::new(path).exists() {
        return Err(format!(
            "{path}: already exists (pass --force to overwrite)"
        ));
    }
    Ok(())
}

/// Dumps `snapshot` as JSON to `path` and notes the dump in the
/// regular output.
fn write_metrics(
    out: &mut dyn Write,
    path: &str,
    snapshot: &Snapshot,
    force: bool,
) -> Result<(), String> {
    guard_overwrite(path, force)?;
    std::fs::write(path, snapshot.to_json()).map_err(|e| file_err(path, e))?;
    write_out(
        out,
        format!(
            "metrics:        {path} ({} counters, {} histograms, {} timeline samples)\n",
            snapshot.counters.len(),
            snapshot.histograms.len(),
            snapshot
                .timelines
                .iter()
                .map(|(_, t)| t.len())
                .sum::<usize>(),
        ),
    )
}

// ---------------------------------------------------------------------
// stats
// ---------------------------------------------------------------------

fn cmd_stats(args: &[String], out: &mut dyn Write) -> Result<(), String> {
    let mut path = None;
    let mut format = "prometheus".to_owned();
    let mut s = Scanner::new(args);
    while let Some(arg) = s.next() {
        match arg {
            Arg::Opt("format", v) => format = s.value("format", v)?.to_owned(),
            Arg::Opt(o, _) => return Err(format!("stats: unknown option --{o}")),
            Arg::Positional(p) if path.is_none() => path = Some(p.to_owned()),
            Arg::Positional(p) => return Err(format!("stats: unexpected argument {p:?}")),
        }
    }
    let path = path.ok_or("stats: a metrics file (from simulate --metrics-out) is required")?;
    let text = std::fs::read_to_string(&path).map_err(|e| file_err(&path, e))?;
    let snapshot = Snapshot::from_json(&text).map_err(|e| file_err(&path, e))?;
    match format.as_str() {
        "prometheus" | "prom" => write_out(out, snapshot.to_prometheus()),
        "json" => write_out(out, snapshot.to_json()),
        other => Err(format!(
            "unknown format {other:?} (expected prometheus or json)"
        )),
    }
}

fn write_report(out: &mut dyn Write, r: &ReplayReport) -> Result<(), String> {
    write_out(
        out,
        format!(
            "program:        {}\n\
             allocator:      {}\n\
             allocations:    {}\n\
             bytes:          {}\n\
             arena allocs:   {} ({:.1}%)\n\
             arena bytes:    {} ({:.1}%)\n\
             max heap bytes: {}\n",
            r.program,
            r.allocator,
            r.total_allocs,
            r.total_bytes,
            r.arena_allocs,
            r.arena_alloc_pct(),
            r.arena_bytes,
            r.arena_byte_pct(),
            r.max_heap_bytes,
        ),
    )
}

fn write_online_stats(out: &mut dyn Write, l: &LearnerStats) -> Result<(), String> {
    write_out(
        out,
        format!(
            "\nonline learner:\n\
             epochs:         {}\n\
             sites:          {} ({} short-lived now)\n\
             promotions:     {}\n\
             demotions:      {}\n\
             mispredictions: {}\n\
             coverage:       {:.1}% allocs, {:.1}% bytes\n\
             error bytes:    {:.2}%\n",
            l.epochs,
            l.sites,
            l.short_sites,
            l.promotions,
            l.demotions,
            l.mispredictions,
            l.coverage_alloc_pct(),
            l.coverage_byte_pct(),
            l.error_byte_pct(),
        ),
    )
}

// ---------------------------------------------------------------------
// report
// ---------------------------------------------------------------------

/// Builds one row of the `report` table — the per-workload unit of
/// work `lifepred report` fans out over `--jobs` threads.
fn report_row(name: &str, config: &SiteConfig) -> Result<Vec<String>, String> {
    let w = by_name(name).ok_or_else(|| format!("unknown workload {name:?}"))?;
    let registry = shared_registry();
    let n = w.inputs().len();
    let train_trace = record_workload(w.as_ref(), 0, registry.clone());
    let test_trace = record_workload(w.as_ref(), n - 1, registry);
    let entry = lifepred_bench::SuiteEntry {
        name: name.to_owned(),
        description: String::new(),
        train: train_trace,
        test: test_trace,
    };
    let a = lifepred_bench::analyze(&entry, config);
    // Offline columns answer "train on one input, test on another";
    // the online columns answer "start blind on the test input and
    // learn while it runs".
    let online = lifepred_bench::analyze_online(&entry, config, &EpochConfig::default());
    // The online columns go through the metric registry: the
    // learner's counters are exported as `lifepred_learner_*`
    // gauges and read back from the snapshot, so the table renders
    // exactly what `simulate --metrics-out` would persist.
    let registry = Registry::new();
    online.learner.export(&registry);
    let snap = registry.snapshot();
    let gauge = |name: &str| snap.gauge(name).unwrap_or(0);
    let ratio_pct = |num: u64, den: u64| {
        if den == 0 {
            0.0
        } else {
            100.0 * num as f64 / den as f64
        }
    };
    let total_bytes = gauge("lifepred_learner_total_bytes");
    Ok(vec![
        name.to_owned(),
        a.self_report.total_sites.to_string(),
        a.true_report.sites_used.to_string(),
        format!("{:.1}", a.self_report.actual_short_bytes_pct),
        format!("{:.1}", a.self_report.predicted_short_bytes_pct),
        format!("{:.2}", a.self_report.error_bytes_pct),
        format!("{:.1}", a.true_report.predicted_short_bytes_pct),
        format!("{:.2}", a.true_report.error_bytes_pct),
        format!(
            "{:.1}",
            ratio_pct(gauge("lifepred_learner_predicted_bytes"), total_bytes)
        ),
        format!(
            "{:.2}",
            ratio_pct(gauge("lifepred_learner_error_bytes"), total_bytes)
        ),
        gauge("lifepred_learner_epochs").to_string(),
    ])
}

/// One workload's drag analysis: a liveness-timeline block plus two
/// per-arena table rows. Arenas are the *oracle* split — objects whose
/// actual lifetime stayed under `threshold` versus the rest — so the
/// table bounds what a perfect predictor could reclaim promptly.
fn drag_row(name: &str, threshold: u64) -> Result<(String, Vec<Vec<String>>), String> {
    let w = by_name(name).ok_or_else(|| format!("unknown workload {name:?}"))?;
    let trace = record_workload(w.as_ref(), 0, shared_registry());
    let end = trace.end_clock();
    let records = trace.records();
    let is_short = |r: &AllocationRecord| r.lifetime(end) < threshold;

    let mut block = format!("{name}: {} objects, end clock {end} bytes\n", records.len());
    block.push_str(&format!(
        "{:>6} {:>13} {:>13} {:>13} {:>13} {:>13} {:>13}\n",
        "t%", "short.alloc", "short.live", "short.ref", "long.alloc", "long.live", "long.ref"
    ));
    for k in 1u64..=10 {
        let t = u64::try_from(u128::from(end) * u128::from(k) / 10).unwrap_or(end);
        let mut cols = [0u64; 6];
        for r in records {
            if r.birth_clock > t {
                continue;
            }
            let size = u64::from(r.size);
            let live = r.death_clock.is_none_or(|d| d > t);
            // "Referenced": live bytes the program will still touch at
            // or after t — the complement of drag.
            let referenced = live && r.last_ref_clock.is_some_and(|l| l >= t);
            let base = if is_short(r) { 0 } else { 3 };
            cols[base] += size;
            if live {
                cols[base + 1] += size;
                if referenced {
                    cols[base + 2] += size;
                }
            }
        }
        block.push_str(&format!(
            "{:>6} {:>13} {:>13} {:>13} {:>13} {:>13} {:>13}\n",
            k * 10,
            cols[0],
            cols[1],
            cols[2],
            cols[3],
            cols[4],
            cols[5]
        ));
    }

    let arena = |short: bool, label: &str| -> Vec<String> {
        let (mut objects, mut bytes, mut untouched) = (0u64, 0u64, 0u64);
        let (mut drag_sum, mut life_sum) = (0u128, 0u128);
        for r in records.iter().filter(|r| is_short(r) == short) {
            objects += 1;
            bytes += u64::from(r.size);
            if r.last_ref_clock.is_none() {
                untouched += 1;
            }
            drag_sum += u128::from(r.drag(end));
            life_sum += u128::from(r.lifetime(end));
        }
        let pct = |num: u128, den: u128| {
            if den == 0 {
                0.0
            } else {
                100.0 * num as f64 / den as f64
            }
        };
        vec![
            name.to_owned(),
            label.to_owned(),
            objects.to_string(),
            bytes.to_string(),
            format!("{:.1}", pct(u128::from(untouched), u128::from(objects))),
            if objects == 0 {
                "0".to_owned()
            } else {
                (drag_sum / u128::from(objects)).to_string()
            },
            format!("{:.1}", pct(drag_sum, life_sum)),
        ]
    };
    Ok((block, vec![arena(true, "short"), arena(false, "long")]))
}

/// `report --drag`: how much of each workload's heap was *useful* over
/// time. The timelines sample allocated/live/referenced bytes per
/// arena at ten byte-clock points; the table aggregates per-object
/// drag (clock between an object's last touch and its free).
fn report_drag(
    names: Vec<String>,
    threshold: u64,
    jobs: usize,
    out: &mut dyn Write,
) -> Result<(), String> {
    write_out(
        out,
        format!(
            "liveness timelines (oracle arenas at threshold {threshold} bytes; \
             clocks in allocated bytes)\n\n"
        ),
    )?;
    let outcomes = lifepred_bench::run_jobs(names, jobs, |_, name| drag_row(&name, threshold));
    let mut rows = Vec::new();
    for outcome in outcomes {
        let (block, arena_rows) = outcome?;
        write_out(out, block)?;
        write_out(out, "\n")?;
        rows.extend(arena_rows);
    }
    write_table(
        out,
        "object drag (byte clock held past the last touch)",
        &[
            "program",
            "arena",
            "objects",
            "bytes",
            "untouched%",
            "mean drag",
            "drag%",
        ],
        &rows,
    )
}

fn cmd_report(args: &[String], out: &mut dyn Write) -> Result<(), String> {
    let mut names: Vec<String> = Vec::new();
    let mut policy = SitePolicy::Complete;
    let mut jobs = 1usize;
    let mut drag = false;
    let mut threshold: u64 = 32 * 1024;
    let mut s = Scanner::new(args);
    while let Some(arg) = s.next() {
        match arg {
            Arg::Opt("workload", v) => names.push(s.value("workload", v)?.to_owned()),
            Arg::Opt("policy", v) => policy = parse_policy(s.value("policy", v)?)?,
            Arg::Opt("jobs", v) => jobs = parse_num("jobs", s.value("jobs", v)?)?,
            Arg::Opt("drag", _) => drag = true,
            Arg::Opt("threshold", v) => {
                threshold = parse_num("threshold", s.value("threshold", v)?)?;
            }
            Arg::Opt(o, _) => return Err(format!("report: unknown option --{o}")),
            Arg::Positional(p) => return Err(format!("report: unexpected argument {p:?}")),
        }
    }
    if names.is_empty() {
        names = all_workloads()
            .iter()
            .map(|w| w.name().to_owned())
            .collect();
    }
    if drag {
        return report_drag(names, threshold, jobs, out);
    }
    let config = SiteConfig {
        policy,
        ..SiteConfig::default()
    };
    let headers = [
        "program", "sites", "used", "actual%", "self%", "selferr%", "true%", "trueerr%", "online%",
        "onerr%", "epochs",
    ];
    // Row order follows the workload list regardless of which worker
    // finishes first, so the table is reproducible at any --jobs.
    let outcomes = lifepred_bench::run_jobs(names, jobs, |_, name| report_row(&name, &config));
    let mut rows = Vec::with_capacity(outcomes.len());
    for outcome in outcomes {
        rows.push(outcome?);
    }
    write_table(
        out,
        &format!("prediction quality, offline vs online (policy {policy})"),
        &headers,
        &rows,
    )
}

// ---------------------------------------------------------------------
// native
// ---------------------------------------------------------------------

/// Resolves positional workload names into the suite's workloads,
/// defaulting to all five when none are named.
fn resolve_workloads(
    names: &[String],
) -> Result<Vec<Box<dyn lifepred_workloads::Workload>>, String> {
    if names.is_empty() {
        return Ok(all_workloads());
    }
    names
        .iter()
        .map(|n| {
            by_name(n).ok_or_else(|| {
                let known: Vec<&str> = all_workloads().iter().map(|w| w.name()).collect();
                format!("unknown workload {n:?} (known: {})", known.join(", "))
            })
        })
        .collect()
}

/// Runs workloads with the binary's own global allocator switched to
/// [`lifepred_galloc::LifepredGlobal`]: the traced programs allocate
/// through the lifetime-predicting allocator for real, and the
/// magazine/prediction counters tell the story afterwards.
fn cmd_native(args: &[String], out: &mut dyn Write) -> Result<(), String> {
    let mut names: Vec<String> = Vec::new();
    let mut metrics_out: Option<String> = None;
    let mut force = false;
    let mut s = Scanner::new(args);
    while let Some(arg) = s.next() {
        match arg {
            Arg::Opt("metrics-out", v) => {
                metrics_out = Some(s.value("metrics-out", v)?.to_owned());
            }
            Arg::Opt("force", _) => force = true,
            Arg::Opt(o, _) => return Err(format!("native: unknown option --{o}")),
            Arg::Positional(p) => names.push(p.to_owned()),
        }
    }
    if let Some(path) = metrics_out.as_deref() {
        guard_overwrite(path, force)?;
    }
    let workloads = resolve_workloads(&names)?;
    lifepred_galloc::activate().map_err(|e| format!("native: {e}"))?;
    let mut rows = Vec::new();
    for w in &workloads {
        let before = lifepred_galloc::stats();
        let registry = shared_registry();
        let inputs = w.inputs().len();
        let train = record_workload(w.as_ref(), 0, registry.clone());
        let test = record_workload(w.as_ref(), inputs - 1, registry);
        let after = lifepred_galloc::stats();
        rows.push(vec![
            w.name().to_owned(),
            format!("{}", train.records().len() + test.records().len()),
            format!("{}", after.small_allocs - before.small_allocs),
            format!("{}", after.short_allocs - before.short_allocs),
            format!(
                "{}",
                (after.fallback_large + after.fallback_exhausted)
                    - (before.fallback_large + before.fallback_exhausted)
            ),
        ]);
    }
    write_table(
        out,
        "native runs (allocations served by LifepredGlobal)",
        &[
            "workload",
            "traced",
            "small allocs",
            "short-lived",
            "fallbacks",
        ],
        &rows,
    )?;
    let stats = lifepred_galloc::stats();
    if stats.small_allocs == 0 {
        write_out(
            out,
            "\nwarning: no traffic reached the class path — this build's \
             global allocator is not LifepredGlobal\n",
        )?;
    }
    write_out(
        out,
        format!(
            "\nallocator totals:\n\
             small allocs:     {} ({} bytes)\n\
             magazine hit rate:{:>7.2}%\n\
             short-lived:      {} allocs, {} segment resets\n\
             remote frees:     {} ({} drained)\n\
             system fallbacks: {} large, {} align, {} exhausted\n\
             sampling:         {} sampled, {} frees seen, {} mispredicted\n\
             epoch ticks:      {}\n",
            stats.small_allocs,
            stats.small_bytes,
            stats.hit_rate() * 100.0,
            stats.short_allocs,
            stats.seg_resets,
            stats.remote_frees,
            stats.remote_drained,
            stats.fallback_large,
            stats.fallback_align,
            stats.fallback_exhausted,
            stats.sampled_allocs,
            stats.sampled_frees,
            stats.mispredict_frees,
            stats.epoch_ticks,
        ),
    )?;
    if let Some(l) = lifepred_galloc::learner_stats() {
        write_online_stats(out, &l)?;
    }
    if let Some(path) = metrics_out.as_deref() {
        let registry = Registry::new();
        lifepred_galloc::export_metrics(&registry);
        write_metrics(out, path, &registry.snapshot(), force)?;
    }
    Ok(())
}

// ---------------------------------------------------------------------
// trace
// ---------------------------------------------------------------------

/// Runs the workload suite natively with the flight recorder on, then
/// exports the captured events as Chrome-trace JSON (`-o`, loadable in
/// Perfetto or `chrome://tracing`) and prints the span summary.
fn cmd_trace(args: &[String], out: &mut dyn Write) -> Result<(), String> {
    let mut names: Vec<String> = Vec::new();
    let mut out_path: Option<String> = None;
    let mut force = false;
    let mut s = Scanner::new(args);
    while let Some(arg) = s.next() {
        match arg {
            Arg::Opt("o" | "output", v) => out_path = Some(s.value("output", v)?.to_owned()),
            Arg::Opt("force", _) => force = true,
            Arg::Opt(o, _) => return Err(format!("trace: unknown option --{o}")),
            Arg::Positional(p) => names.push(p.to_owned()),
        }
    }
    if !lifepred_flight::COMPILED {
        return Err(
            "trace: this build cannot capture flight events (the `flight` \
             feature is off); rebuild with `cargo build -p lifepred-cli \
             --features flight` and re-run"
                .into(),
        );
    }
    if let Some(path) = out_path.as_deref() {
        guard_overwrite(path, force)?;
    }
    let workloads = resolve_workloads(&names)?;
    lifepred_galloc::activate().map_err(|e| format!("trace: {e}"))?;
    lifepred_flight::set_recording(true);
    for (i, w) in workloads.iter().enumerate() {
        let _span = lifepred_flight::span_arg(lifepred_flight::catalog::CLI_WORKLOAD, i as u64);
        let registry = shared_registry();
        let inputs = w.inputs().len();
        let train = record_workload(w.as_ref(), 0, registry.clone());
        let test = record_workload(w.as_ref(), inputs - 1, registry);
        // The traces themselves are byproducts here; the run exists to
        // drive the instrumented allocator and replay layers.
        drop((train, test));
    }
    lifepred_flight::set_recording(false);
    let events = lifepred_flight::drain();
    if let Some(path) = out_path.as_deref() {
        std::fs::write(path, lifepred_flight::chrome::chrome_trace_json(&events))
            .map_err(|e| file_err(path, e))?;
        write_out(out, format!("wrote {} events to {path}\n\n", events.len()))?;
    }
    write_out(out, lifepred_flight::summary::render_summary(&events))?;
    let dropped = lifepred_flight::dropped_events();
    if dropped > 0 {
        write_out(
            out,
            format!(
                "\nwarning: {dropped} events dropped (per-thread ring full); \
                 set {}=<events> to enlarge (default {})\n",
                lifepred_flight::RING_ENV,
                lifepred_flight::DEFAULT_RING_EVENTS,
            ),
        )?;
    }
    Ok(())
}

// ---------------------------------------------------------------------
// sweep
// ---------------------------------------------------------------------

/// Runs (or resumes, or re-renders) a design-space sweep. The three
/// verbs share one engine — the content-addressed cache is what makes
/// them differ in practice:
///
/// * `run` executes the grid, computing whatever the cache lacks;
/// * `resume` is the same execution after a kill — only dirty cells
///   recompute, and the summary says how much the cache answered;
/// * `render` re-renders a fully-cached grid (instant when warm).
fn cmd_sweep(args: &[String], out: &mut dyn Write) -> Result<(), String> {
    let verb = match args.first().map(String::as_str) {
        Some(v @ ("run" | "resume" | "render")) => v,
        Some("diff") => return sweep_diff(&args[1..], out),
        Some(other) => {
            return Err(format!(
                "sweep: unknown subcommand {other:?} (expected run, resume, render or diff)"
            ))
        }
        None => return Err("sweep: a subcommand is required (run, resume, render or diff)".into()),
    };
    let mut spec_path: Option<String> = None;
    let mut store_dir = "sweep-cache".to_owned();
    let mut jobs = 1usize;
    let mut format = "table".to_owned();
    let mut out_path: Option<String> = None;
    let mut s = Scanner::new(&args[1..]);
    while let Some(arg) = s.next() {
        match arg {
            Arg::Opt("spec", v) => spec_path = Some(s.value("spec", v)?.to_owned()),
            Arg::Opt("store", v) => store_dir = s.value("store", v)?.to_owned(),
            Arg::Opt("jobs", v) => jobs = parse_num("jobs", s.value("jobs", v)?)?,
            Arg::Opt("format", v) => format = s.value("format", v)?.to_owned(),
            Arg::Opt("o" | "out", v) => out_path = Some(s.value("out", v)?.to_owned()),
            Arg::Opt(o, _) => return Err(format!("sweep {verb}: unknown option --{o}")),
            Arg::Positional(p) => return Err(format!("sweep {verb}: unexpected argument {p:?}")),
        }
    }
    let spec_path = spec_path.ok_or("sweep: --spec is required")?;
    let text = std::fs::read_to_string(&spec_path).map_err(|e| file_err(&spec_path, e))?;
    let spec = GridSpec::from_json(&text).map_err(|e| file_err(&spec_path, e))?;
    let store = ResultStore::open(&store_dir).map_err(|e| file_err(&store_dir, e))?;
    let opts = SweepOptions {
        threads: jobs.max(1),
        want_metrics: false,
    };
    // SIGTERM/ctrl-c cancels between cells: everything finished so far
    // is already in the cache, so `sweep resume` picks up the rest.
    let cancel = CancelFlag::new();
    let _ = install_shutdown_handlers(&cancel);
    // Progress goes to stderr so table/CSV/JSON on stdout stay clean.
    let progress = |done: usize, total: usize| {
        eprintln!("sweep: computed {done}/{total} cells");
    };
    let outcome = run_sweep(&spec, &store, &opts, &cancel, Some(&progress))
        .map_err(|e| format!("sweep: {e}"))?;

    let st = &outcome.stats;
    if st.cancelled {
        return Err(format!(
            "sweep: cancelled after {} computed cell(s); finished cells are cached — \
             rerun `lifepred sweep resume` to pick up the remaining {}",
            st.computed,
            st.unique - st.cache_hits - st.computed
        ));
    }
    if st.errors > 0 {
        for o in &outcome.outcomes {
            if let Some(err) = &o.error {
                write_out(
                    out,
                    format!("error: {}: {err}\n", o.cell.canonical_string()),
                )?;
            }
        }
        return Err(format!("sweep: {} cell(s) failed", st.errors));
    }

    let rendered = match format.as_str() {
        "table" => render_table(&outcome),
        "csv" => render_csv(&outcome),
        "json" => render_json(&outcome),
        other => {
            return Err(format!(
                "unknown format {other:?} (expected table, csv or json)"
            ))
        }
    };
    match out_path.as_deref() {
        Some(path) => {
            std::fs::write(path, &rendered).map_err(|e| file_err(path, e))?;
            write_out(out, format!("report:         {path}\n"))?;
        }
        None => write_out(out, &rendered)?,
    }
    write_out(
        out,
        format!(
            "{verb}: {} cells ({} unique), {} cached, {} computed\n",
            st.cells, st.unique, st.cache_hits, st.computed
        ),
    )
}

/// `lifepred sweep diff <before.json> <after.json>` — compares two
/// saved JSON reports (from `sweep run --format json --out ...`).
fn sweep_diff(args: &[String], out: &mut dyn Write) -> Result<(), String> {
    let mut paths: Vec<String> = Vec::new();
    let mut s = Scanner::new(args);
    while let Some(arg) = s.next() {
        match arg {
            Arg::Opt(o, _) => return Err(format!("sweep diff: unknown option --{o}")),
            Arg::Positional(p) => paths.push(p.to_owned()),
        }
    }
    let [before, after] = paths.as_slice() else {
        return Err("sweep diff: exactly two report files are required".to_owned());
    };
    let a = std::fs::read_to_string(before).map_err(|e| file_err(before, e))?;
    let b = std::fs::read_to_string(after).map_err(|e| file_err(after, e))?;
    write_out(out, diff_reports(&a, &b)?)
}

// ---------------------------------------------------------------------
// serve
// ---------------------------------------------------------------------

/// Binds the blocking HTTP endpoint and runs it until SIGTERM/ctrl-c.
fn cmd_serve(args: &[String], out: &mut dyn Write) -> Result<(), String> {
    let mut addr = "127.0.0.1:7878".to_owned();
    let mut store = "sweep-cache".to_owned();
    let mut threads = 4usize;
    let mut jobs = 1usize;
    let mut s = Scanner::new(args);
    while let Some(arg) = s.next() {
        match arg {
            Arg::Opt("addr", v) => addr = s.value("addr", v)?.to_owned(),
            Arg::Opt("store", v) => store = s.value("store", v)?.to_owned(),
            Arg::Opt("threads", v) => threads = parse_num("threads", s.value("threads", v)?)?,
            Arg::Opt("jobs", v) => jobs = parse_num("jobs", s.value("jobs", v)?)?,
            Arg::Opt(o, _) => return Err(format!("serve: unknown option --{o}")),
            Arg::Positional(p) => return Err(format!("serve: unexpected argument {p:?}")),
        }
    }
    let server = Server::bind(&ServerConfig {
        addr,
        store: store.clone().into(),
        threads: threads.max(1),
        jobs: jobs.max(1),
    })
    .map_err(|e| format!("serve: {e}"))?;
    let local = server.local_addr().map_err(|e| format!("serve: {e}"))?;
    let handled = install_shutdown_handlers(&server.shutdown_handle());
    write_out(
        out,
        format!(
            "serving on http://{local}/ (store {store}, {} http threads, {} sweep jobs)\n\
             routes: GET /healthz, GET /metrics, GET /trace, GET /sweeps, GET /sweeps/<id>, POST /sweeps\n",
            threads.max(1),
            jobs.max(1),
        ),
    )?;
    if !handled {
        write_out(out, "note: no signal handlers on this platform\n")?;
    }
    out.flush().map_err(|e| format!("write failed: {e}"))?;
    server.run().map_err(|e| format!("serve: {e}"))?;
    write_out(out, "shutdown: drained and stopped\n")
}

fn write_table(
    out: &mut dyn Write,
    title: &str,
    headers: &[&str],
    rows: &[Vec<String>],
) -> Result<(), String> {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut text = format!("== {title} ==\n");
    let header_line: Vec<String> = headers
        .iter()
        .enumerate()
        .map(|(i, h)| format!("{h:>w$}", w = widths[i]))
        .collect();
    let header_line = header_line.join("  ");
    text.push_str(&header_line);
    text.push('\n');
    text.push_str(&"-".repeat(header_line.len()));
    text.push('\n');
    for row in rows {
        let line: Vec<String> = row
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{c:>w$}", w = widths[i]))
            .collect();
        text.push_str(&line.join("  "));
        text.push('\n');
    }
    write_out(out, &text)
}
