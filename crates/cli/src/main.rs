//! The `lifepred` binary: a thin shell around [`lifepred_cli::run`].

use std::process::ExitCode;

/// The lifetime-predicting allocator serves every allocation this
/// binary makes — but stays a system passthrough until the `native`
/// command activates it, so the replay/training commands measure
/// nothing but themselves.
#[global_allocator]
static GLOBAL: lifepred_galloc::LifepredGlobal = lifepred_galloc::LifepredGlobal::new();

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match lifepred_cli::run(&args, &mut std::io::stdout()) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("lifepred: {e}");
            ExitCode::from(lifepred_cli::exit_code(&e))
        }
    }
}
