//! The `lifepred` binary: a thin shell around [`lifepred_cli::run`].

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match lifepred_cli::run(&args, &mut std::io::stdout()) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("lifepred: {e}");
            ExitCode::FAILURE
        }
    }
}
