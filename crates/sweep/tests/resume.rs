//! Sweep resume semantics, end to end: a killed run keeps every cell
//! it finished, a resume recomputes only the dirty remainder, and the
//! rendered table cannot tell the difference.

use lifepred_sweep::{
    render_csv, render_table, run_sweep, Backend, CancelFlag, GridSpec, ResultStore, SweepOptions,
};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lifepred-sweep-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// A churn workload; `salt` differentiates the traces' content (and
/// thus their cache identities).
fn churn_trace(name: &str, salt: u32, events: usize) -> lifepred_trace::Trace {
    let s = lifepred_trace::TraceSession::new(name);
    {
        let _g = s.enter("keeper");
        let kept: Vec<_> = (0..8).map(|_| s.alloc(128 + salt)).collect();
        {
            let _g = s.enter("churn");
            for i in 0..events {
                let a = s.alloc(32 + (i as u32 % 4) * 8 + salt);
                s.free(a);
            }
        }
        for id in kept {
            s.free(id);
        }
    }
    s.finish()
}

fn write_traces(dir: &Path, names: &[&str], events: usize) -> Vec<String> {
    names
        .iter()
        .enumerate()
        .map(|(i, name)| {
            let path = dir.join(format!("{name}.lpt"));
            lifepred_tracefile::save_trace(&path, &churn_trace(name, i as u32, events))
                .expect("save trace");
            path.to_string_lossy().into_owned()
        })
        .collect()
}

/// Satellite: kill a sweep partway, resume, and verify only the dirty
/// cells recompute while the rendered outputs stay byte-identical.
#[test]
fn killed_sweep_resumes_without_recomputing() {
    let dir = scratch("resume");
    let spec = GridSpec {
        name: "resume-test".into(),
        traces: write_traces(&dir, &["alpha", "beta", "gamma"], 600),
        backends: vec![Backend::Offline],
        thresholds: vec![8 * 1024, 16 * 1024, 32 * 1024],
        ..GridSpec::default()
    };
    let store = ResultStore::open(dir.join("store")).expect("store");
    let opts = SweepOptions {
        threads: 1, // deterministic cell count at the cancel point
        want_metrics: false,
    };

    // "Kill" after 4 of the 9 cells: the cancel flag stands in for
    // SIGTERM — both stop workers between cells, never mid-cell.
    let cancel_at = 4usize;
    let cancel = CancelFlag::new();
    let hook = {
        let cancel = cancel.clone();
        move |done: usize, _total: usize| {
            if done >= cancel_at {
                cancel.cancel();
            }
        }
    };
    let killed = run_sweep(&spec, &store, &opts, &cancel, Some(&hook)).expect("killed run");
    assert!(killed.stats.cancelled);
    assert_eq!(killed.stats.unique, 9, "{:?}", killed.stats);
    assert_eq!(
        killed.stats.computed, cancel_at,
        "one worker stops exactly there"
    );
    assert_eq!(store.len(), cancel_at, "every finished cell was persisted");

    // Resume: the cache answers exactly the finished cells (the
    // cache-hit counter is pinned, not just bounded) and only the
    // remainder recomputes.
    let resumed = run_sweep(&spec, &store, &opts, &CancelFlag::new(), None).expect("resume");
    assert_eq!(resumed.stats.cache_hits, cancel_at);
    assert_eq!(resumed.stats.computed, 9 - cancel_at);
    assert_eq!(resumed.stats.errors, 0);
    assert!(resumed.outcomes.iter().all(|o| o.result.is_some()));

    // A fully-cached rerun renders byte-identically to the resumed
    // run: cache provenance must not leak into tables or CSV.
    let warm = run_sweep(&spec, &store, &opts, &CancelFlag::new(), None).expect("warm");
    assert_eq!(warm.stats.cache_hits, 9);
    assert_eq!(render_table(&resumed), render_table(&warm));
    assert_eq!(render_csv(&resumed), render_csv(&warm));
    let _ = std::fs::remove_dir_all(&dir);
}

/// Acceptance: on a ≥24-cell grid, a re-run must be ≥95% cache hits
/// and at least 5× faster than the cold run.
#[test]
fn warm_rerun_is_hits_and_fast() {
    let dir = scratch("accept");
    let spec = GridSpec {
        name: "acceptance".into(),
        traces: write_traces(&dir, &["alpha", "beta"], 4000),
        backends: vec![Backend::Offline, Backend::Online],
        thresholds: vec![8 * 1024, 16 * 1024, 32 * 1024],
        arenas: vec![
            lifepred_heap::ArenaConfig::parse("16x4096").expect("arena"),
            lifepred_heap::ArenaConfig::parse("32x8192").expect("arena"),
        ],
        ..GridSpec::default()
    };
    assert!(spec.cell_count() >= 24, "grid is {}", spec.cell_count());
    let store = ResultStore::open(dir.join("store")).expect("store");
    let opts = SweepOptions {
        threads: 2,
        want_metrics: false,
    };

    let cold_started = Instant::now();
    let cold = run_sweep(&spec, &store, &opts, &CancelFlag::new(), None).expect("cold");
    let cold_ms = cold_started.elapsed().as_millis().max(1);
    assert_eq!(cold.stats.cache_hits, 0);
    assert_eq!(cold.stats.errors, 0);
    assert_eq!(cold.stats.computed, cold.stats.unique);

    let warm_started = Instant::now();
    let warm = run_sweep(&spec, &store, &opts, &CancelFlag::new(), None).expect("warm");
    let warm_ms = warm_started.elapsed().as_millis().max(1);
    assert_eq!(warm.stats.computed, 0);
    assert!(
        warm.stats.cache_hits * 100 >= warm.stats.unique * 95,
        "re-run must be ≥95% hits: {:?}",
        warm.stats
    );
    assert!(
        cold_ms >= 5 * warm_ms,
        "re-run must be ≥5× faster: cold {cold_ms}ms vs warm {warm_ms}ms"
    );

    // Editing one axis value dirties only the touched column.
    let mut edited = spec.clone();
    edited.thresholds = vec![8 * 1024, 16 * 1024, 48 * 1024];
    let partial = run_sweep(&edited, &store, &opts, &CancelFlag::new(), None).expect("edited");
    assert!(partial.stats.cache_hits > 0, "{:?}", partial.stats);
    assert!(
        partial.stats.computed < partial.stats.unique,
        "{:?}",
        partial.stats
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// The progress hook sees every computed cell exactly once across
/// kill + resume — the contract `lifepred sweep resume` prints from.
#[test]
fn progress_across_kill_and_resume_covers_each_cell_once() {
    let dir = scratch("resume-progress");
    let spec = GridSpec {
        name: "resume-progress".into(),
        traces: write_traces(&dir, &["alpha"], 400),
        backends: vec![Backend::Offline],
        thresholds: vec![4 * 1024, 8 * 1024, 16 * 1024, 32 * 1024],
        ..GridSpec::default()
    };
    let store = ResultStore::open(dir.join("store")).expect("store");
    let opts = SweepOptions {
        threads: 1,
        want_metrics: false,
    };
    let fired = AtomicUsize::new(0);
    let cancel = CancelFlag::new();
    {
        let hook = |done: usize, _total: usize| {
            fired.fetch_add(1, Ordering::Relaxed);
            if done >= 2 {
                cancel.cancel();
            }
        };
        let killed = run_sweep(&spec, &store, &opts, &cancel, Some(&hook)).expect("killed");
        assert_eq!(killed.stats.computed, 2);
    }
    let hook = |_done: usize, _total: usize| {
        fired.fetch_add(1, Ordering::Relaxed);
    };
    let resumed =
        run_sweep(&spec, &store, &opts, &CancelFlag::new(), Some(&hook)).expect("resumed");
    assert_eq!(resumed.stats.cache_hits, 2);
    assert_eq!(
        fired.load(Ordering::Relaxed),
        4,
        "each unique cell computed exactly once across the two runs"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
