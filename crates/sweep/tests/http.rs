//! In-process integration test for the serve endpoint: bind on an
//! ephemeral port, drive it over real TCP, submit a real (tiny) sweep,
//! and shut down gracefully.

use lifepred_sweep::{Server, ServerConfig};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

fn churn_trace(name: &str) -> lifepred_trace::Trace {
    let s = lifepred_trace::TraceSession::new(name);
    {
        let _g = s.enter("churn");
        for _ in 0..300 {
            let a = s.alloc(64);
            s.free(a);
        }
    }
    s.finish()
}

/// One raw HTTP exchange: write `raw`, read to EOF (the server always
/// closes), return (status, body).
fn request(addr: SocketAddr, raw: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    stream.write_all(raw.as_bytes()).expect("send");
    let mut reply = String::new();
    stream.read_to_string(&mut reply).expect("recv");
    let status: u16 = reply
        .strip_prefix("HTTP/1.1 ")
        .and_then(|r| r.get(..3))
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad status line: {reply}"));
    let body = reply
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_owned())
        .unwrap_or_default();
    (status, body)
}

fn get(addr: SocketAddr, path: &str) -> (u16, String) {
    request(
        addr,
        &format!("GET {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n"),
    )
}

fn post(addr: SocketAddr, path: &str, body: &str) -> (u16, String) {
    request(
        addr,
        &format!(
            "POST {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n\
             Content-Type: application/json\r\n\r\n{body}",
            body.len()
        ),
    )
}

#[test]
fn serve_endpoint_end_to_end() {
    let dir = std::env::temp_dir().join(format!("lifepred-serve-e2e-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let trace_path = dir.join("churn.lpt");
    lifepred_tracefile::save_trace(&trace_path, &churn_trace("churn")).expect("save trace");

    let server = Server::bind(&ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        store: dir.join("store"),
        threads: 2,
        jobs: 1,
    })
    .expect("bind");
    let addr = server.local_addr().expect("local addr");
    let stop = server.shutdown_handle();
    let runner = std::thread::spawn(move || server.run());

    // Liveness probe.
    let (status, body) = get(addr, "/healthz");
    assert_eq!((status, body.as_str()), (200, "ok\n"));

    // Golden counters are exposed before any sweep ran.
    let (status, metrics) = get(addr, "/metrics");
    assert_eq!(status, 200);
    for name in [
        "lifepred_serve_http_requests_total",
        "lifepred_serve_sweeps_started_total",
        "lifepred_serve_cells_computed_total",
        "lifepred_serve_cache_hits_total",
    ] {
        assert!(metrics.contains(name), "missing {name} in:\n{metrics}");
    }

    // Unknown routes and methods are rejected, not crashed on.
    assert_eq!(get(addr, "/nope").0, 404);
    assert_eq!(
        request(addr, "DELETE /healthz HTTP/1.1\r\nHost: t\r\n\r\n").0,
        405
    );
    assert_eq!(post(addr, "/sweeps", "{not json").0, 400);

    // Submit a real sweep: offline + firstfit over one trace.
    let spec = format!(
        r#"{{"schema": "lifepred-sweep-v1", "name": "e2e",
            "traces": ["{}"],
            "backends": ["offline", "firstfit"],
            "thresholds": [32768]}}"#,
        trace_path.display()
    );
    let (status, body) = post(addr, "/sweeps", &spec);
    assert_eq!(status, 202, "{body}");
    assert!(body.contains("\"id\": 0"), "{body}");
    assert!(body.contains("\"cells\": 2"), "{body}");

    // Poll until it finishes (tiny grid; generous deadline for CI).
    let deadline = Instant::now() + Duration::from_secs(60);
    let detail = loop {
        let (status, body) = get(addr, "/sweeps/0");
        assert_eq!(status, 200, "{body}");
        if body.contains("\"status\": \"done\"") {
            break body;
        }
        assert!(
            !body.contains("\"failed\"") && Instant::now() < deadline,
            "sweep did not finish: {body}"
        );
        std::thread::sleep(Duration::from_millis(50));
    };
    assert!(detail.contains("\"stats\""), "{detail}");
    assert!(detail.contains("\"table\""), "{detail}");
    assert!(detail.contains("backend=offline"), "{detail}");

    // The listing sees it too.
    let (_, listing) = get(addr, "/sweeps");
    assert!(listing.contains("\"name\": \"e2e\""), "{listing}");
    assert!(listing.contains("\"status\": \"done\""), "{listing}");

    // Unknown sweep ids are a 404, bad ids a 400.
    assert_eq!(get(addr, "/sweeps/99").0, 404);
    assert_eq!(get(addr, "/sweeps/xyz").0, 400);

    // After a computed sweep, /metrics carries the simulation feed.
    let (_, metrics) = get(addr, "/metrics");
    assert!(
        metrics.contains("lifepred_sim_allocs_total"),
        "sim metrics missing:\n{metrics}"
    );
    let cells_line = metrics
        .lines()
        .find(|l| l.starts_with("lifepred_serve_cells_computed_total"))
        .expect("cells counter");
    assert!(cells_line.trim().ends_with('2'), "{cells_line}");

    // Graceful shutdown: flag → run() returns Ok.
    stop.cancel();
    runner
        .join()
        .expect("server thread")
        .expect("clean shutdown");
    let _ = std::fs::remove_dir_all(&dir);
}
