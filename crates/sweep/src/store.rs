//! Content-addressed on-disk result cache.
//!
//! Every completed grid cell persists as one small JSON object file
//! under `<root>/objects/<hh>/<16-hex-key>.json`. The key is a 64-bit
//! FNV-1a hash over
//!
//! 1. the result schema tag (format changes invalidate everything),
//! 2. the **trace identity** — 64-bit FNV-1a plus byte length of the
//!    `.lpt` file, so re-recording a trace dirties exactly its cells.
//!    Deliberately *not* CRC-32: `.lpt` sections carry CRC-32
//!    trailers of the same polynomial, and the CRC residue property
//!    (`crc(data ‖ crc_le(data))` is a constant independent of
//!    `data`) makes a whole-file CRC of such a file nearly
//!    content-blind — two different traces of equal length hash
//!    identically. FNV-1a is not linear over GF(2), so embedded
//!    checksums cannot cancel out. And
//! 3. the cell's [`canonical_string`](crate::CellConfig::canonical_string)
//!    — the axes the backend actually consults.
//!
//! Writes are crash-safe: the object is written to a temporary file
//! in the same directory, synced, then renamed into place. A reader
//! therefore sees either nothing or a complete object; a torn or
//! hand-corrupted file fails to parse and is treated as a miss (and
//! overwritten by the next run). There is no lock file — concurrent
//! writers of the same key race benignly, last rename wins, and both
//! wrote identical bytes-for-identical-measurement anyway.

use crate::spec::CellConfig;
use lifepred_obs::json::{self, Value};
use std::fmt::Write as _;
use std::fs;
use std::io::{self, Read};
use std::path::{Path, PathBuf};

/// Schema tag of a cached cell-result document.
pub const RESULT_SCHEMA: &str = "lifepred-sweep-result-v1";

/// A cache key: 64-bit content hash, rendered as 16 hex digits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CellKey(pub u64);

impl std::fmt::Display for CellKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// Identity of a trace file for cache-key purposes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceIdentity {
    /// 64-bit FNV-1a of the file bytes (see the module docs for why
    /// this is not a CRC).
    pub hash: u64,
    /// File length in bytes.
    pub len: u64,
}

/// Streams `path` once and returns its [`TraceIdentity`].
///
/// # Errors
///
/// Any I/O error opening or reading the file.
pub fn trace_identity(path: impl AsRef<Path>) -> io::Result<TraceIdentity> {
    let mut file = fs::File::open(path)?;
    let mut hash = Fnv64::new();
    let mut len = 0u64;
    let mut buf = [0u8; 64 * 1024];
    loop {
        let n = file.read(&mut buf)?;
        if n == 0 {
            break;
        }
        hash.update(&buf[..n]);
        len += n as u64;
    }
    Ok(TraceIdentity {
        hash: hash.finish(),
        len,
    })
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Incremental 64-bit FNV-1a.
struct Fnv64 {
    h: u64,
}

impl Fnv64 {
    fn new() -> Fnv64 {
        Fnv64 { h: FNV_OFFSET }
    }

    fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.h ^= u64::from(b);
            self.h = self.h.wrapping_mul(FNV_PRIME);
        }
    }

    fn finish(&self) -> u64 {
        self.h
    }
}

/// 64-bit FNV-1a over `parts`, with a length prefix per part so
/// concatenation ambiguity cannot alias two different inputs.
fn fnv1a64(parts: &[&[u8]]) -> u64 {
    let mut hash = Fnv64::new();
    for part in parts {
        hash.update(&(part.len() as u64).to_le_bytes());
        hash.update(part);
    }
    hash.finish()
}

/// Derives the cache key for `cell` given its trace's identity.
pub fn cell_key(identity: TraceIdentity, cell: &CellConfig) -> CellKey {
    CellKey(fnv1a64(&[
        RESULT_SCHEMA.as_bytes(),
        &identity.hash.to_le_bytes(),
        &identity.len.to_le_bytes(),
        cell.canonical_string().as_bytes(),
    ]))
}

/// The measurements one grid cell produced.
///
/// Percentages are stored as `f64` with the same shortest-roundtrip
/// formatting the metrics layer uses, so a result file re-parses to
/// exactly the struct that wrote it.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CellResult {
    /// Program name recorded in the trace.
    pub program: String,
    /// Allocations replayed.
    pub total_allocs: u64,
    /// Bytes allocated.
    pub total_bytes: u64,
    /// Allocations placed in the short-lived arena area.
    pub arena_allocs: u64,
    /// Bytes placed in the short-lived arena area.
    pub arena_bytes: u64,
    /// High-water heap footprint in bytes.
    pub max_heap_bytes: u64,
    /// Percent of allocations predicted (and placed) short-lived.
    pub short_alloc_pct: f64,
    /// Percent of bytes predicted (and placed) short-lived.
    pub short_byte_pct: f64,
    /// Percent of bytes wrongly predicted short-lived.
    pub error_byte_pct: f64,
    /// Online learner epochs (0 for other backends).
    pub epochs: u64,
    /// Wall-clock cost of computing this cell, in milliseconds.
    /// Informational only — never part of comparisons or renders that
    /// must be byte-stable.
    pub elapsed_ms: u64,
}

fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

impl CellResult {
    /// Renders the result (echoing its cell config) as the stored
    /// JSON object document.
    pub fn to_json(&self, cell: &CellConfig) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"schema\": \"{RESULT_SCHEMA}\",");
        let _ = writeln!(out, "  \"config\": {{");
        let _ = writeln!(out, "    \"trace\": \"{}\",", json::escape(&cell.trace));
        let _ = writeln!(out, "    \"backend\": \"{}\",", cell.backend);
        let _ = writeln!(out, "    \"policy\": \"{}\",", cell.policy);
        let _ = writeln!(out, "    \"rounding\": {},", cell.rounding);
        let _ = writeln!(out, "    \"threshold\": {},", cell.threshold);
        let _ = writeln!(out, "    \"epoch_bytes\": {},", cell.epoch_bytes());
        let _ = writeln!(out, "    \"arena\": \"{}\"", cell.arena);
        let _ = writeln!(out, "  }},");
        let _ = writeln!(out, "  \"program\": \"{}\",", json::escape(&self.program));
        let _ = writeln!(out, "  \"metrics\": {{");
        let _ = writeln!(out, "    \"total_allocs\": {},", self.total_allocs);
        let _ = writeln!(out, "    \"total_bytes\": {},", self.total_bytes);
        let _ = writeln!(out, "    \"arena_allocs\": {},", self.arena_allocs);
        let _ = writeln!(out, "    \"arena_bytes\": {},", self.arena_bytes);
        let _ = writeln!(out, "    \"max_heap_bytes\": {},", self.max_heap_bytes);
        let _ = writeln!(
            out,
            "    \"short_alloc_pct\": {},",
            fmt_f64(self.short_alloc_pct)
        );
        let _ = writeln!(
            out,
            "    \"short_byte_pct\": {},",
            fmt_f64(self.short_byte_pct)
        );
        let _ = writeln!(
            out,
            "    \"error_byte_pct\": {},",
            fmt_f64(self.error_byte_pct)
        );
        let _ = writeln!(out, "    \"epochs\": {}", self.epochs);
        let _ = writeln!(out, "  }},");
        let _ = writeln!(out, "  \"elapsed_ms\": {}", self.elapsed_ms);
        out.push_str("}\n");
        out
    }

    /// Parses a stored object document.
    ///
    /// # Errors
    ///
    /// Returns a message for malformed JSON, a wrong schema tag, or a
    /// missing metric field.
    pub fn from_json(text: &str) -> Result<CellResult, String> {
        let doc = json::parse(text).map_err(|e| format!("result object: {e}"))?;
        let schema = doc.get("schema").and_then(Value::as_str).unwrap_or("");
        if schema != RESULT_SCHEMA {
            return Err(format!(
                "result object: unsupported schema `{schema}` (want `{RESULT_SCHEMA}`)"
            ));
        }
        let metrics = doc
            .get("metrics")
            .ok_or("result object: missing `metrics`")?;
        let u = |f: &str| -> Result<u64, String> {
            metrics
                .get(f)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("result object: missing u64 `metrics.{f}`"))
        };
        let fl = |f: &str| -> Result<f64, String> {
            metrics
                .get(f)
                .and_then(Value::as_f64)
                .ok_or_else(|| format!("result object: missing number `metrics.{f}`"))
        };
        Ok(CellResult {
            program: doc
                .get("program")
                .and_then(Value::as_str)
                .unwrap_or_default()
                .to_owned(),
            total_allocs: u("total_allocs")?,
            total_bytes: u("total_bytes")?,
            arena_allocs: u("arena_allocs")?,
            arena_bytes: u("arena_bytes")?,
            max_heap_bytes: u("max_heap_bytes")?,
            short_alloc_pct: fl("short_alloc_pct")?,
            short_byte_pct: fl("short_byte_pct")?,
            error_byte_pct: fl("error_byte_pct")?,
            epochs: u("epochs")?,
            elapsed_ms: doc.get("elapsed_ms").and_then(Value::as_u64).unwrap_or(0),
        })
    }
}

/// The on-disk cache: open it once per sweep and share by reference.
#[derive(Debug)]
pub struct ResultStore {
    root: PathBuf,
}

impl ResultStore {
    /// Opens (creating if needed) the store rooted at `root`.
    ///
    /// # Errors
    ///
    /// Any I/O error creating `root/objects`.
    pub fn open(root: impl Into<PathBuf>) -> io::Result<ResultStore> {
        let root = root.into();
        fs::create_dir_all(root.join("objects"))?;
        Ok(ResultStore { root })
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// On-disk path of `key`'s object.
    pub fn object_path(&self, key: CellKey) -> PathBuf {
        let hex = key.to_string();
        self.root
            .join("objects")
            .join(&hex[..2])
            .join(format!("{}.json", &hex[2..]))
    }

    /// Loads the cached result under `key`. A missing, torn or
    /// corrupt object reads as `None` — a cache miss, never an error.
    pub fn load(&self, key: CellKey) -> Option<CellResult> {
        let text = fs::read_to_string(self.object_path(key)).ok()?;
        CellResult::from_json(&text).ok()
    }

    /// Persists `result` under `key` atomically: temp file in the
    /// destination directory, `sync_all`, rename.
    ///
    /// # Errors
    ///
    /// Any I/O error on the write, sync or rename.
    pub fn save(&self, key: CellKey, cell: &CellConfig, result: &CellResult) -> io::Result<()> {
        let path = self.object_path(key);
        let dir = path.parent().expect("object path has a parent");
        fs::create_dir_all(dir)?;
        let tmp = dir.join(format!(".tmp-{key}-{}", std::process::id()));
        {
            let mut file = fs::File::create(&tmp)?;
            io::Write::write_all(&mut file, result.to_json(cell).as_bytes())?;
            file.sync_all()?;
        }
        match fs::rename(&tmp, &path) {
            Ok(()) => Ok(()),
            Err(e) => {
                // Leave no temp droppings behind a failed rename.
                let _ = fs::remove_file(&tmp);
                Err(e)
            }
        }
    }

    /// Number of objects currently stored (walks the tree; for CLI
    /// summaries, not hot paths).
    pub fn len(&self) -> usize {
        let mut n = 0;
        if let Ok(shards) = fs::read_dir(self.root.join("objects")) {
            for shard in shards.flatten() {
                if let Ok(objects) = fs::read_dir(shard.path()) {
                    n += objects
                        .flatten()
                        .filter(|e| e.path().extension().is_some_and(|x| x == "json"))
                        .count();
                }
            }
        }
        n
    }

    /// Whether the store holds no objects.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::Backend;
    use lifepred_core::SitePolicy;
    use lifepred_heap::ArenaConfig;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "lifepred-sweep-store-{name}-{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("scratch dir");
        dir
    }

    fn demo_cell() -> CellConfig {
        CellConfig {
            trace: "demo.lpt".into(),
            backend: Backend::Offline,
            policy: SitePolicy::Complete,
            rounding: 4,
            threshold: 32768,
            epoch: 0,
            arena: ArenaConfig::default(),
        }
    }

    fn demo_result() -> CellResult {
        CellResult {
            program: "demo".into(),
            total_allocs: 100,
            total_bytes: 6400,
            arena_allocs: 90,
            arena_bytes: 5000,
            max_heap_bytes: 8192,
            short_alloc_pct: 90.0,
            short_byte_pct: 78.125,
            error_byte_pct: 0.5,
            epochs: 0,
            elapsed_ms: 3,
        }
    }

    #[test]
    fn result_json_round_trips() {
        let r = demo_result();
        let back = CellResult::from_json(&r.to_json(&demo_cell())).expect("parses");
        assert_eq!(back, r);
    }

    #[test]
    fn save_then_load() {
        let dir = scratch("roundtrip");
        let store = ResultStore::open(&dir).expect("open");
        let key = CellKey(0xdead_beef_0123_4567);
        assert_eq!(store.load(key), None);
        store.save(key, &demo_cell(), &demo_result()).expect("save");
        assert_eq!(store.load(key), Some(demo_result()));
        assert_eq!(store.len(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_object_reads_as_miss() {
        let dir = scratch("corrupt");
        let store = ResultStore::open(&dir).expect("open");
        let key = CellKey(42);
        store.save(key, &demo_cell(), &demo_result()).expect("save");
        fs::write(store.object_path(key), "{\"schema\": \"torn").expect("corrupt");
        assert_eq!(store.load(key), None, "corrupt object must be a miss");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn keys_depend_on_identity_and_config() {
        let id_a = TraceIdentity { hash: 1, len: 1000 };
        let id_b = TraceIdentity { hash: 2, len: 1000 };
        let cell = demo_cell();
        let other = CellConfig {
            threshold: 16384,
            ..demo_cell()
        };
        assert_ne!(cell_key(id_a, &cell), cell_key(id_b, &cell));
        assert_ne!(cell_key(id_a, &cell), cell_key(id_a, &other));
        assert_eq!(cell_key(id_a, &cell), cell_key(id_a, &demo_cell()));
    }

    /// Regression: `.lpt` sections end in CRC-32 trailers, and the
    /// CRC residue property makes the whole-file CRC-32 of two
    /// same-length traces collide even when their contents differ.
    /// The identity hash must still tell them apart.
    #[test]
    fn identity_distinguishes_crc_colliding_traces() {
        let dir = scratch("crc-collide");
        let make = |name: &str, salt: u32| {
            let s = lifepred_trace::TraceSession::new(name);
            {
                let _g = s.enter("churn");
                for _ in 0..200 {
                    let a = s.alloc(64 + salt);
                    s.free(a);
                }
            }
            let path = dir.join(format!("{name}.lpt"));
            lifepred_tracefile::save_trace(&path, &s.finish()).expect("save");
            path
        };
        // Same name length and event count → same file length; the
        // embedded section CRCs swallow the content difference from
        // the whole-file CRC-32, which is exactly why we don't use it.
        let a = make("alpha", 0);
        let b = make("gamma", 2);
        let ia = trace_identity(&a).expect("identity");
        let ib = trace_identity(&b).expect("identity");
        assert_eq!(ia.len, ib.len, "collision setup needs equal lengths");
        assert_ne!(ia, ib, "different traces must have different identities");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn trace_identity_reflects_content() {
        let dir = scratch("identity");
        let a = dir.join("a.bin");
        let b = dir.join("b.bin");
        fs::write(&a, b"hello trace").expect("write");
        fs::write(&b, b"hello trace").expect("write");
        let ia = trace_identity(&a).expect("identity");
        let ib = trace_identity(&b).expect("identity");
        assert_eq!(ia, ib, "same bytes, same identity");
        fs::write(&b, b"hello trac3").expect("rewrite");
        assert_ne!(trace_identity(&b).expect("identity"), ia);
        let _ = fs::remove_dir_all(&dir);
    }
}
