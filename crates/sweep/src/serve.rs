//! `lifepred serve`: a blocking HTTP/1.1 metrics and sweep-control
//! endpoint on `std::net` alone.
//!
//! # Endpoints
//!
//! | Route            | Method | Behaviour                              |
//! |------------------|--------|----------------------------------------|
//! | `/healthz`       | GET    | `200 ok` liveness probe                |
//! | `/metrics`       | GET    | Prometheus text: server counters plus  |
//! |                  |        | the merged `lifepred_sim_*` metrics of |
//! |                  |        | every cell computed by this process    |
//! | `/sweeps`        | GET    | JSON list of submitted sweeps          |
//! | `/sweeps`        | POST   | Submit a [`GridSpec`] body → `202 {id}`|
//! | `/sweeps/{id}`   | GET    | Status, stats and rendered table       |
//! | `/trace`         | GET    | Chrome-trace JSON snapshot of the      |
//! |                  |        | flight recorder (empty when the build  |
//! |                  |        | lacks the `flight` feature)            |
//!
//! # Shape
//!
//! One nonblocking accept loop polls the listener (~25 ms) so it can
//! observe shutdown, and feeds a bounded queue drained by a small
//! fixed pool of connection workers (one request per connection,
//! `Connection: close`, read/write timeouts on every socket). When
//! the queue is full the acceptor answers `503` inline and drops the
//! connection — backpressure, not unbounded memory. Sweeps run on
//! their own threads via [`run_sweep`], so a long grid never starves
//! the metrics endpoint.
//!
//! # Shutdown
//!
//! [`Server::shutdown_handle`] returns the flag that stops the
//! accept loop; [`install_shutdown_handlers`] wires SIGINT/SIGTERM to
//! it (Unix only, via a raw `signal(2)` registration — the handler
//! only stores an atomic, the only thing a signal handler may do).
//! On shutdown the server cancels running sweeps, joins them, and
//! returns. Every finished cell was already persisted atomically by
//! the result store, so nothing is lost.

use crate::engine::{run_sweep, CancelFlag, SweepOptions, SweepStats};
use crate::http::{read_request, write_response, Request, Response};
use crate::spec::GridSpec;
use crate::store::ResultStore;
use crate::table::{render_json, render_table};
use lifepred_obs::json;
use lifepred_obs::{Registry, Snapshot, Timer};
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Tuning for [`Server::bind`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address, e.g. `127.0.0.1:9100`. Port 0 picks a free
    /// port (see [`Server::local_addr`]).
    pub addr: String,
    /// Result-store directory for submitted sweeps.
    pub store: PathBuf,
    /// Connection-handling threads.
    pub threads: usize,
    /// Worker threads per submitted sweep.
    pub jobs: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:9100".to_owned(),
            store: PathBuf::from("sweep-store"),
            threads: 2,
            jobs: 1,
        }
    }
}

/// Lifecycle of one submitted sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SlotStatus {
    Running,
    Done,
    Failed,
    Cancelled,
}

impl SlotStatus {
    fn name(self) -> &'static str {
        match self {
            SlotStatus::Running => "running",
            SlotStatus::Done => "done",
            SlotStatus::Failed => "failed",
            SlotStatus::Cancelled => "cancelled",
        }
    }
}

/// Book-keeping for one submitted sweep.
struct SweepSlot {
    id: usize,
    name: String,
    status: SlotStatus,
    /// Cells computed so far / cells this run must compute.
    progress: (usize, usize),
    cancel: CancelFlag,
    stats: Option<SweepStats>,
    /// Rendered outputs, present once finished.
    table: Option<String>,
    report: Option<String>,
    error: Option<String>,
}

/// State shared by the acceptor, connection workers and sweep threads.
struct ServerState {
    registry: Registry,
    /// Merged `lifepred_sim_*` metrics of every computed cell.
    sim: Mutex<Snapshot>,
    slots: Mutex<Vec<SweepSlot>>,
    sweep_threads: Mutex<Vec<std::thread::JoinHandle<()>>>,
    store_root: PathBuf,
    jobs: usize,
    stop: CancelFlag,
    /// Bounded connection queue + its condvar.
    queue: Mutex<VecDeque<TcpStream>>,
    queue_bell: Condvar,
    queue_cap: usize,
}

/// The serve endpoint. [`Server::bind`] then [`Server::run`].
pub struct Server {
    listener: TcpListener,
    state: Arc<ServerState>,
    threads: usize,
}

impl Server {
    /// Binds the listener and opens the result store.
    ///
    /// # Errors
    ///
    /// Returns a message when the address cannot be bound or the
    /// store directory cannot be created.
    pub fn bind(config: &ServerConfig) -> Result<Server, String> {
        let listener =
            TcpListener::bind(&config.addr).map_err(|e| format!("bind {}: {e}", config.addr))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| format!("listener nonblocking: {e}"))?;
        // Open (and thereby validate) the store now, not per request.
        ResultStore::open(&config.store)
            .map_err(|e| format!("result store {}: {e}", config.store.display()))?;
        let threads = config.threads.max(1);
        let registry = Registry::new();
        // Touch the golden names so /metrics always exposes them,
        // even before the first request.
        for name in [
            "lifepred_serve_http_requests_total",
            "lifepred_serve_http_rejected_total",
            "lifepred_serve_sweeps_started_total",
            "lifepred_serve_sweeps_completed_total",
            "lifepred_serve_cells_computed_total",
            "lifepred_serve_cache_hits_total",
        ] {
            registry.counter(name);
        }
        // Request latency: populated only in `timing`-enabled builds
        // (the CLI), but always present in the exposition.
        registry.histogram("lifepred_serve_request_ns");
        // A serving process records from the start: without this,
        // `GET /trace` on a flight build would always answer empty.
        lifepred_flight::set_recording(true);
        Ok(Server {
            listener,
            state: Arc::new(ServerState {
                registry,
                sim: Mutex::new(Snapshot::default()),
                slots: Mutex::new(Vec::new()),
                sweep_threads: Mutex::new(Vec::new()),
                store_root: config.store.clone(),
                jobs: config.jobs.max(1),
                stop: CancelFlag::new(),
                queue: Mutex::new(VecDeque::new()),
                queue_bell: Condvar::new(),
                queue_cap: threads * 8,
            }),
            threads,
        })
    }

    /// The bound address (resolves port 0).
    ///
    /// # Errors
    ///
    /// Any I/O error querying the socket.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The flag that stops [`Server::run`]; clone it into a signal
    /// handler ([`install_shutdown_handlers`]) or a test.
    pub fn shutdown_handle(&self) -> CancelFlag {
        self.state.stop.clone()
    }

    /// Serves until the shutdown flag fires, then drains: cancels
    /// running sweeps, joins every worker, and returns.
    ///
    /// # Errors
    ///
    /// Returns a message for unrecoverable listener failures.
    pub fn run(self) -> Result<(), String> {
        let state = &self.state;
        std::thread::scope(|scope| {
            for _ in 0..self.threads {
                let state = Arc::clone(state);
                scope.spawn(move || connection_worker(&state));
            }
            // Accept loop: poll so shutdown is observed promptly.
            while !state.stop.is_cancelled() {
                match self.listener.accept() {
                    Ok((stream, _peer)) => enqueue_connection(state, stream),
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(25));
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                    Err(e) => {
                        state.stop.cancel();
                        state.queue_bell.notify_all();
                        return Err(format!("accept failed: {e}"));
                    }
                }
            }
            state.queue_bell.notify_all();
            Ok(())
        })?;
        // Workers are joined (scope end). Now stop the sweeps.
        for slot in self.state.slots.lock().expect("slots lock").iter() {
            slot.cancel.cancel();
        }
        let threads = std::mem::take(&mut *self.state.sweep_threads.lock().expect("sweep threads"));
        for handle in threads {
            let _ = handle.join();
        }
        Ok(())
    }
}

/// Pushes an accepted connection onto the bounded queue, or answers
/// `503` inline when the queue is full.
fn enqueue_connection(state: &ServerState, stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(5)));
    let mut queue = state.queue.lock().expect("queue lock");
    if queue.len() >= state.queue_cap {
        drop(queue);
        state
            .registry
            .counter("lifepred_serve_http_rejected_total")
            .inc();
        let mut stream = stream;
        let _ = write_response(&mut stream, &Response::error(503, "connection queue full"));
        return;
    }
    queue.push_back(stream);
    drop(queue);
    state.queue_bell.notify_one();
}

/// One connection worker: pop, handle one request, close.
fn connection_worker(state: &Arc<ServerState>) {
    loop {
        let stream = {
            let mut queue = state.queue.lock().expect("queue lock");
            loop {
                if let Some(stream) = queue.pop_front() {
                    break Some(stream);
                }
                if state.stop.is_cancelled() {
                    break None;
                }
                let (guard, _timeout) = state
                    .queue_bell
                    .wait_timeout(queue, Duration::from_millis(50))
                    .expect("queue wait");
                queue = guard;
            }
        };
        let Some(mut stream) = stream else { return };
        let timer = Timer::start();
        let _span = lifepred_flight::span(lifepred_flight::catalog::SERVE_REQUEST);
        let response = match read_request(&mut stream) {
            Ok(request) => handle_request(state, &request),
            Err(response) => response,
        };
        let _ = write_response(&mut stream, &response);
        timer.observe_ns(&state.registry.histogram("lifepred_serve_request_ns"));
    }
}

/// Routes one request. Takes the `Arc` because `POST /sweeps` hands
/// an owning handle to the sweep thread it spawns.
fn handle_request(state: &Arc<ServerState>, request: &Request) -> Response {
    state
        .registry
        .counter("lifepred_serve_http_requests_total")
        .inc();
    let path = request.path.split('?').next().unwrap_or("");
    match (request.method.as_str(), path) {
        ("GET", "/healthz") => Response::text("ok\n"),
        ("GET", "/metrics") => metrics_response(state),
        ("GET", "/trace") => trace_response(),
        ("GET", "/sweeps") => list_sweeps(state),
        ("POST", "/sweeps") => submit_sweep(state, &request.body),
        ("GET", p) if p.starts_with("/sweeps/") => sweep_detail(state, &p["/sweeps/".len()..]),
        ("GET", _) => Response::error(404, "not found"),
        _ => Response::error(405, "method not allowed"),
    }
}

/// `/trace`: drains the flight recorder and answers with the pending
/// events as Chrome-trace JSON (loadable in Perfetto). A build without
/// the `flight` feature answers a valid, empty trace.
fn trace_response() -> Response {
    let events = lifepred_flight::drain();
    lifepred_flight::instant(
        lifepred_flight::catalog::SERVE_TRACE_SNAPSHOT,
        events.len() as u64,
    );
    Response::json(200, lifepred_flight::chrome::chrome_trace_json(&events))
}

/// `/metrics`: the server's own counters followed by the merged
/// simulation metrics. Name sets are disjoint (`lifepred_serve_*` vs
/// `lifepred_sim_*`), so plain concatenation is valid exposition text.
fn metrics_response(state: &ServerState) -> Response {
    let mut body = state.registry.snapshot().to_prometheus();
    let sim = state.sim.lock().expect("sim lock");
    if !sim.is_empty() {
        body.push_str(&sim.to_prometheus());
    }
    Response {
        status: 200,
        content_type: "text/plain; version=0.0.4; charset=utf-8",
        body: body.into_bytes(),
    }
}

fn slot_summary_json(slot: &SweepSlot) -> String {
    format!(
        "{{\"id\": {}, \"name\": \"{}\", \"status\": \"{}\", \
         \"computed\": {}, \"to_compute\": {}}}",
        slot.id,
        json::escape(&slot.name),
        slot.status.name(),
        slot.progress.0,
        slot.progress.1
    )
}

fn list_sweeps(state: &ServerState) -> Response {
    let slots = state.slots.lock().expect("slots lock");
    let entries: Vec<String> = slots.iter().map(slot_summary_json).collect();
    Response::json(200, format!("{{\"sweeps\": [{}]}}\n", entries.join(", ")))
}

fn sweep_detail(state: &ServerState, id_text: &str) -> Response {
    let Ok(id) = id_text.parse::<usize>() else {
        return Response::error(400, format!("bad sweep id `{id_text}`"));
    };
    let slots = state.slots.lock().expect("slots lock");
    let Some(slot) = slots.iter().find(|s| s.id == id) else {
        return Response::error(404, format!("no sweep {id}"));
    };
    let mut body = String::new();
    body.push('{');
    let _ = write!(
        body,
        "\"id\": {}, \"name\": \"{}\", \"status\": \"{}\", \
         \"computed\": {}, \"to_compute\": {}",
        slot.id,
        json::escape(&slot.name),
        slot.status.name(),
        slot.progress.0,
        slot.progress.1
    );
    if let Some(stats) = &slot.stats {
        let _ = write!(
            body,
            ", \"stats\": {{\"cells\": {}, \"unique\": {}, \"cache_hits\": {}, \
             \"computed\": {}, \"errors\": {}, \"cancelled\": {}, \"elapsed_ms\": {}}}",
            stats.cells,
            stats.unique,
            stats.cache_hits,
            stats.computed,
            stats.errors,
            stats.cancelled,
            stats.elapsed_ms
        );
    }
    if let Some(table) = &slot.table {
        let _ = write!(body, ", \"table\": \"{}\"", json::escape(table));
    }
    if let Some(error) = &slot.error {
        let _ = write!(body, ", \"error\": \"{}\"", json::escape(error));
    }
    body.push_str("}\n");
    Response::json(200, body)
}

/// `POST /sweeps`: validate the spec, register a slot, and start the
/// sweep on its own thread.
fn submit_sweep(state: &Arc<ServerState>, body: &[u8]) -> Response {
    let text = match std::str::from_utf8(body) {
        Ok(t) => t,
        Err(_) => return Response::error(400, "body must be UTF-8 JSON"),
    };
    let spec = match GridSpec::from_json(text) {
        Ok(spec) => spec,
        Err(e) => return Response::error(400, e),
    };
    let cancel = CancelFlag::new();
    let id = {
        let mut slots = state.slots.lock().expect("slots lock");
        let id = slots.len();
        slots.push(SweepSlot {
            id,
            name: spec.name.clone(),
            status: SlotStatus::Running,
            progress: (0, 0),
            cancel: cancel.clone(),
            stats: None,
            table: None,
            report: None,
            error: None,
        });
        id
    };
    state
        .registry
        .counter("lifepred_serve_sweeps_started_total")
        .inc();
    let cells = spec.cell_count();
    let thread_state = Arc::clone(state);
    let handle = std::thread::spawn(move || sweep_thread(&thread_state, id, &spec, &cancel));
    state
        .sweep_threads
        .lock()
        .expect("sweep threads")
        .push(handle);
    Response::json(202, format!("{{\"id\": {id}, \"cells\": {cells}}}\n"))
}

/// Body of one sweep thread: run, then publish results and metrics.
fn sweep_thread(state: &Arc<ServerState>, id: usize, spec: &GridSpec, cancel: &CancelFlag) {
    let update = |f: &dyn Fn(&mut SweepSlot)| {
        let mut slots = state.slots.lock().expect("slots lock");
        if let Some(slot) = slots.iter_mut().find(|s| s.id == id) {
            f(slot);
        }
    };
    let store = match ResultStore::open(&state.store_root) {
        Ok(store) => store,
        Err(e) => {
            update(&|slot| {
                slot.status = SlotStatus::Failed;
                slot.error = Some(format!("result store: {e}"));
            });
            return;
        }
    };
    let progress = |done: usize, total: usize| {
        update(&|slot| slot.progress = (done, total));
        state
            .registry
            .counter("lifepred_serve_cells_computed_total")
            .inc();
    };
    let opts = SweepOptions {
        threads: state.jobs,
        want_metrics: true,
    };
    match run_sweep(spec, &store, &opts, cancel, Some(&progress)) {
        Ok(outcome) => {
            state
                .registry
                .counter("lifepred_serve_cache_hits_total")
                .add(outcome.stats.cache_hits as u64);
            state
                .registry
                .counter("lifepred_serve_sweeps_completed_total")
                .inc();
            state.sim.lock().expect("sim lock").merge(&outcome.metrics);
            let table = render_table(&outcome);
            let report = render_json(&outcome);
            update(&|slot| {
                slot.status = if outcome.stats.cancelled {
                    SlotStatus::Cancelled
                } else {
                    SlotStatus::Done
                };
                slot.progress = (outcome.stats.computed, outcome.stats.computed);
                slot.stats = Some(outcome.stats.clone());
                slot.table = Some(table.clone());
                slot.report = Some(report.clone());
            });
        }
        Err(e) => update(&|slot| {
            slot.status = SlotStatus::Failed;
            slot.error = Some(e.clone());
        }),
    }
}

// ---------------------------------------------------------------------
// Signal handling (Unix): SIGINT / SIGTERM → the shutdown flag.
// ---------------------------------------------------------------------

/// The flag [`install_shutdown_handlers`] registered; read by the
/// signal handler. `OnceLock::get` is a lock-free atomic load, so the
/// handler never takes a lock.
static SHUTDOWN_FLAG: std::sync::OnceLock<CancelFlag> = std::sync::OnceLock::new();

#[cfg(unix)]
extern "C" fn on_signal(_signum: i32) {
    // Async-signal-safe: one atomic load (OnceLock::get on an
    // already-initialized cell) and one atomic store (CancelFlag).
    if let Some(flag) = SHUTDOWN_FLAG.get() {
        flag.cancel();
    }
}

/// Registers `flag` to be cancelled on SIGINT (ctrl-c) or SIGTERM, so
/// [`Server::run`] unwinds gracefully: running sweeps stop between
/// cells (everything finished is already persisted) and the process
/// exits 0.
///
/// Only the first registered flag wins; later calls return `false`.
/// On non-Unix targets this is a no-op returning `false` — shut down
/// via [`Server::shutdown_handle`] instead.
pub fn install_shutdown_handlers(flag: &CancelFlag) -> bool {
    if SHUTDOWN_FLAG.set(flag.clone()).is_err() {
        return false;
    }
    #[cfg(unix)]
    {
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        extern "C" {
            /// `signal(2)`. Declared here instead of pulling in a
            /// bindings crate: the workspace is dependency-free and
            /// this is the one libc call the serve mode needs.
            fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
        }
        // SAFETY: `signal` is the C standard library's handler
        // registration. The handler we install (`on_signal`) is an
        // `extern "C" fn(i32)` matching the expected ABI, performs
        // only async-signal-safe operations (two atomic accesses, no
        // locks, no allocation), and lives for the whole program
        // (a static item). SIGINT/SIGTERM are valid signal numbers on
        // every Unix this crate targets.
        unsafe {
            signal(SIGINT, on_signal);
            signal(SIGTERM, on_signal);
        }
        true
    }
    #[cfg(not(unix))]
    {
        false
    }
}
