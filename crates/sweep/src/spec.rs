//! Declarative grid specifications.
//!
//! A [`GridSpec`] names the axes of a design-space sweep — the
//! paper's Tables 4–9 generalized: which traces to replay, which
//! predictor backends to drive, and the threshold / epoch /
//! call-chain-depth / arena-geometry values to cross. The spec is a
//! small JSON document (schema [`SPEC_SCHEMA`]) so the same bytes
//! work as a CLI input file and as a `POST /sweeps` body.
//!
//! [`GridSpec::cells`] expands the axes into the full cartesian
//! product of [`CellConfig`]s, in a deterministic nested order
//! (trace → backend → policy → threshold → epoch → arena) that the
//! table renderer and the result cache both rely on. Axes that a
//! backend ignores (a first-fit replay has no threshold) are *kept*
//! in the grid — every spec cell gets a rendered slot — but collapse
//! to one canonical execution via [`CellConfig::canonical_string`],
//! so the engine never measures the same configuration twice.

use lifepred_core::SitePolicy;
use lifepred_heap::ArenaConfig;
use lifepred_obs::json::{self, Value};
use std::fmt::Write as _;

/// Schema tag of the grid-spec JSON document.
pub const SPEC_SCHEMA: &str = "lifepred-sweep-v1";

/// Hard ceiling on expanded grid size: a sweep is a batch of
/// simulations, not a fuzzer; past this the spec is almost certainly
/// a typo (e.g. a threshold list pasted twice).
pub const MAX_CELLS: usize = 65_536;

/// Which allocator/predictor pipeline a cell drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Backend {
    /// Train on the trace, then replay it against the trained
    /// database (the paper's self-prediction arena runs).
    Offline,
    /// The self-correcting online learner, training while the trace
    /// replays.
    Online,
    /// Plain first-fit replay — the non-predicting baseline.
    FirstFit,
    /// BSD-style segregated-fit replay — the other baseline.
    Bsd,
}

impl Backend {
    /// Canonical lower-case name (also the JSON spelling).
    pub fn name(self) -> &'static str {
        match self {
            Backend::Offline => "offline",
            Backend::Online => "online",
            Backend::FirstFit => "firstfit",
            Backend::Bsd => "bsd",
        }
    }

    /// Parses a backend name; `first-fit` is accepted as an alias to
    /// match the `lifepred simulate --allocator` spelling.
    pub fn parse(text: &str) -> Option<Backend> {
        match text {
            "offline" => Some(Backend::Offline),
            "online" => Some(Backend::Online),
            "firstfit" | "first-fit" => Some(Backend::FirstFit),
            "bsd" => Some(Backend::Bsd),
            _ => None,
        }
    }

    /// Whether this backend consults a lifetime predictor (and thus
    /// the threshold / policy / arena axes).
    pub fn predicts(self) -> bool {
        matches!(self, Backend::Offline | Backend::Online)
    }
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A declarative sweep grid: every axis crossed with every other.
#[derive(Debug, Clone, PartialEq)]
pub struct GridSpec {
    /// Human-readable sweep name (table titles, `/sweeps` listings).
    pub name: String,
    /// `.lpt` trace files to replay — the workload axis.
    pub traces: Vec<String>,
    /// Predictor backends to drive.
    pub backends: Vec<Backend>,
    /// Short-lived thresholds in bytes (predictor backends only).
    pub thresholds: Vec<u64>,
    /// Online epoch lengths in bytes; `0` means the paper's default
    /// of twice the threshold.
    pub epochs: Vec<u64>,
    /// Site policies — the call-chain-depth axis (`complete`,
    /// `len-N`, `cce`, `size-only`).
    pub policies: Vec<SitePolicy>,
    /// Size rounding applied to site keys (bytes).
    pub rounding: u32,
    /// Arena geometries (`COUNTxSIZE`).
    pub arenas: Vec<ArenaConfig>,
}

impl Default for GridSpec {
    fn default() -> Self {
        GridSpec {
            name: "sweep".to_owned(),
            traces: Vec::new(),
            backends: vec![Backend::Offline],
            thresholds: vec![32 * 1024],
            epochs: vec![0],
            policies: vec![SitePolicy::Complete],
            rounding: 4,
            arenas: vec![ArenaConfig::default()],
        }
    }
}

/// One point of the expanded grid.
#[derive(Debug, Clone, PartialEq)]
pub struct CellConfig {
    /// Trace file path, exactly as the spec spelled it.
    pub trace: String,
    /// Backend to drive.
    pub backend: Backend,
    /// Site policy (call-chain depth).
    pub policy: SitePolicy,
    /// Site-key size rounding in bytes.
    pub rounding: u32,
    /// Short-lived threshold in bytes.
    pub threshold: u64,
    /// Raw epoch axis value; `0` selects the 2×-threshold default.
    /// Use [`CellConfig::epoch_bytes`] for the resolved length.
    pub epoch: u64,
    /// Arena geometry.
    pub arena: ArenaConfig,
}

impl CellConfig {
    /// The epoch length this cell actually runs with.
    pub fn epoch_bytes(&self) -> u64 {
        if self.epoch == 0 {
            self.threshold.saturating_mul(2)
        } else {
            self.epoch
        }
    }

    /// The canonical identity of the *measurement* this cell asks
    /// for: only the fields the backend consults, with ignored axes
    /// dropped. Grid cells with equal canonical strings (e.g. a
    /// first-fit baseline crossed with three thresholds) are the same
    /// run and share one cache entry. The trace's identity is **not**
    /// part of this string — the cache key hashes it separately so a
    /// re-recorded trace invalidates every cell that replays it.
    pub fn canonical_string(&self) -> String {
        match self.backend {
            Backend::FirstFit | Backend::Bsd => format!("b={}", self.backend),
            Backend::Offline => format!(
                "b={}|p={}|r={}|t={}|a={}",
                self.backend, self.policy, self.rounding, self.threshold, self.arena
            ),
            Backend::Online => format!(
                "b={}|p={}|r={}|t={}|e={}|a={}",
                self.backend,
                self.policy,
                self.rounding,
                self.threshold,
                self.epoch_bytes(),
                self.arena
            ),
        }
    }
}

fn spec_err(msg: impl Into<String>) -> String {
    format!("sweep spec: {}", msg.into())
}

/// Pushes `v` unless an equal element is already present — axis
/// duplicates collapse silently so a spec listing `[32768, 32768]`
/// doesn't double-render a column.
fn push_unique<T: PartialEq>(list: &mut Vec<T>, v: T) {
    if !list.contains(&v) {
        list.push(v);
    }
}

fn u64_list(val: &Value, what: &str) -> Result<Vec<u64>, String> {
    let arr = val
        .as_arr()
        .ok_or_else(|| spec_err(format!("`{what}` must be an array of integers")))?;
    let mut out = Vec::new();
    for v in arr {
        let n = v
            .as_u64()
            .ok_or_else(|| spec_err(format!("`{what}` entries must be non-negative integers")))?;
        push_unique(&mut out, n);
    }
    Ok(out)
}

fn str_list<'v>(val: &'v Value, what: &str) -> Result<Vec<&'v str>, String> {
    let arr = val
        .as_arr()
        .ok_or_else(|| spec_err(format!("`{what}` must be an array of strings")))?;
    arr.iter()
        .map(|v| {
            v.as_str()
                .ok_or_else(|| spec_err(format!("`{what}` entries must be strings")))
        })
        .collect()
}

impl GridSpec {
    /// Parses a spec document (see [`SPEC_SCHEMA`]); unknown keys are
    /// rejected so a typoed axis name cannot silently shrink a grid.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for malformed JSON, a wrong
    /// schema tag, a bad axis value, or a grid that fails
    /// [`validate`](GridSpec::validate).
    pub fn from_json(text: &str) -> Result<GridSpec, String> {
        let doc = json::parse(text).map_err(|e| spec_err(e.to_string()))?;
        let top = doc
            .as_obj()
            .ok_or_else(|| spec_err("top level must be an object"))?;
        let mut spec = GridSpec::default();
        let mut saw_schema = false;
        for (key, val) in top {
            match key.as_str() {
                "schema" => {
                    saw_schema = true;
                    let got = val.as_str().unwrap_or("<non-string>");
                    if got != SPEC_SCHEMA {
                        return Err(spec_err(format!(
                            "unsupported schema `{got}` (want `{SPEC_SCHEMA}`)"
                        )));
                    }
                }
                "name" => {
                    spec.name = val
                        .as_str()
                        .ok_or_else(|| spec_err("`name` must be a string"))?
                        .to_owned();
                }
                "traces" => {
                    spec.traces = str_list(val, "traces")?
                        .into_iter()
                        .map(str::to_owned)
                        .collect();
                }
                "backends" => {
                    spec.backends = Vec::new();
                    for name in str_list(val, "backends")? {
                        let b = Backend::parse(name).ok_or_else(|| {
                            spec_err(format!(
                                "unknown backend `{name}` (expected offline, online, \
                                 firstfit or bsd)"
                            ))
                        })?;
                        push_unique(&mut spec.backends, b);
                    }
                }
                "thresholds" => spec.thresholds = u64_list(val, "thresholds")?,
                "epochs" => spec.epochs = u64_list(val, "epochs")?,
                "policies" => {
                    spec.policies = Vec::new();
                    for name in str_list(val, "policies")? {
                        let p = SitePolicy::parse(name).ok_or_else(|| {
                            spec_err(format!(
                                "unknown policy `{name}` (expected complete, len-N, cce \
                                 or size-only)"
                            ))
                        })?;
                        push_unique(&mut spec.policies, p);
                    }
                }
                "rounding" => {
                    let n = val
                        .as_u64()
                        .filter(|&n| n > 0 && n <= u64::from(u32::MAX))
                        .ok_or_else(|| spec_err("`rounding` must be a positive integer"))?;
                    spec.rounding = n as u32;
                }
                "arenas" => {
                    spec.arenas = Vec::new();
                    for text in str_list(val, "arenas")? {
                        let a = ArenaConfig::parse(text).ok_or_else(|| {
                            spec_err(format!("bad arena geometry `{text}` (want COUNTxSIZE)"))
                        })?;
                        push_unique(&mut spec.arenas, a);
                    }
                }
                other => {
                    return Err(spec_err(format!("unknown key `{other}`")));
                }
            }
        }
        if !saw_schema {
            return Err(spec_err(format!("missing `schema` (want `{SPEC_SCHEMA}`)")));
        }
        spec.validate()?;
        Ok(spec)
    }

    /// Renders the spec back to its JSON document form.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"schema\": \"{SPEC_SCHEMA}\",");
        let _ = writeln!(out, "  \"name\": \"{}\",", json::escape(&self.name));
        let list = |items: &[String]| {
            items
                .iter()
                .map(|s| format!("\"{}\"", json::escape(s)))
                .collect::<Vec<_>>()
                .join(", ")
        };
        let _ = writeln!(out, "  \"traces\": [{}],", list(&self.traces));
        let _ = writeln!(
            out,
            "  \"backends\": [{}],",
            list(
                &self
                    .backends
                    .iter()
                    .map(|b| b.to_string())
                    .collect::<Vec<_>>()
            )
        );
        let nums = |ns: &[u64]| ns.iter().map(u64::to_string).collect::<Vec<_>>().join(", ");
        let _ = writeln!(out, "  \"thresholds\": [{}],", nums(&self.thresholds));
        let _ = writeln!(out, "  \"epochs\": [{}],", nums(&self.epochs));
        let _ = writeln!(
            out,
            "  \"policies\": [{}],",
            list(
                &self
                    .policies
                    .iter()
                    .map(|p| p.to_string())
                    .collect::<Vec<_>>()
            )
        );
        let _ = writeln!(out, "  \"rounding\": {},", self.rounding);
        let _ = writeln!(
            out,
            "  \"arenas\": [{}]",
            list(
                &self
                    .arenas
                    .iter()
                    .map(|a| a.to_string())
                    .collect::<Vec<_>>()
            )
        );
        out.push_str("}\n");
        out
    }

    /// Checks the axes describe a runnable, sanely-sized grid.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first empty axis, zero threshold,
    /// or a grid larger than [`MAX_CELLS`].
    pub fn validate(&self) -> Result<(), String> {
        if self.traces.is_empty() {
            return Err(spec_err("`traces` must name at least one .lpt file"));
        }
        for (axis, len) in [
            ("backends", self.backends.len()),
            ("thresholds", self.thresholds.len()),
            ("epochs", self.epochs.len()),
            ("policies", self.policies.len()),
            ("arenas", self.arenas.len()),
        ] {
            if len == 0 {
                return Err(spec_err(format!("axis `{axis}` is empty")));
            }
        }
        if self.thresholds.contains(&0) {
            return Err(spec_err("thresholds must be positive"));
        }
        let cells = self.cell_count();
        if cells > MAX_CELLS {
            return Err(spec_err(format!(
                "grid expands to {cells} cells (max {MAX_CELLS})"
            )));
        }
        Ok(())
    }

    /// Size of the expanded grid.
    pub fn cell_count(&self) -> usize {
        self.traces
            .len()
            .saturating_mul(self.backends.len())
            .saturating_mul(self.policies.len())
            .saturating_mul(self.thresholds.len())
            .saturating_mul(self.epochs.len())
            .saturating_mul(self.arenas.len())
    }

    /// Expands the axes into every grid cell, in the fixed nested
    /// order trace → backend → policy → threshold → epoch → arena.
    pub fn cells(&self) -> Vec<CellConfig> {
        let mut out = Vec::with_capacity(self.cell_count());
        for trace in &self.traces {
            for &backend in &self.backends {
                for &policy in &self.policies {
                    for &threshold in &self.thresholds {
                        for &epoch in &self.epochs {
                            for &arena in &self.arenas {
                                out.push(CellConfig {
                                    trace: trace.clone(),
                                    backend,
                                    policy,
                                    rounding: self.rounding,
                                    threshold,
                                    epoch,
                                    arena,
                                });
                            }
                        }
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_json() -> String {
        format!(
            r#"{{
              "schema": "{SPEC_SCHEMA}",
              "name": "demo",
              "traces": ["a.lpt", "b.lpt"],
              "backends": ["offline", "firstfit"],
              "thresholds": [16384, 32768],
              "epochs": [0],
              "policies": ["complete", "len-7"],
              "rounding": 4,
              "arenas": ["16x4096"]
            }}"#
        )
    }

    #[test]
    fn parses_and_expands() {
        let spec = GridSpec::from_json(&demo_json()).expect("parses");
        assert_eq!(spec.name, "demo");
        assert_eq!(spec.cell_count(), 2 * 2 * 2 * 2);
        let cells = spec.cells();
        assert_eq!(cells.len(), 16);
        // Nested order: trace is the outermost axis.
        assert!(cells[..8].iter().all(|c| c.trace == "a.lpt"));
        assert_eq!(cells[0].backend, Backend::Offline);
    }

    #[test]
    fn json_round_trips() {
        let spec = GridSpec::from_json(&demo_json()).expect("parses");
        let back = GridSpec::from_json(&spec.to_json()).expect("reparses");
        assert_eq!(back, spec);
    }

    #[test]
    fn canonical_collapses_ignored_axes() {
        let spec = GridSpec::from_json(&demo_json()).expect("parses");
        let cells = spec.cells();
        let firstfit: Vec<&CellConfig> = cells
            .iter()
            .filter(|c| c.backend == Backend::FirstFit && c.trace == "a.lpt")
            .collect();
        // 2 policies × 2 thresholds worth of first-fit cells…
        assert_eq!(firstfit.len(), 4);
        // …all naming the same canonical measurement.
        let canon = firstfit[0].canonical_string();
        assert!(firstfit.iter().all(|c| c.canonical_string() == canon));
        // Offline cells keep their distinguishing axes.
        let offline: Vec<String> = cells
            .iter()
            .filter(|c| c.backend == Backend::Offline && c.trace == "a.lpt")
            .map(CellConfig::canonical_string)
            .collect();
        let mut dedup = offline.clone();
        dedup.dedup();
        assert_eq!(offline.len(), 4);
        assert_eq!(dedup.len(), 4, "offline cells all distinct: {offline:?}");
    }

    #[test]
    fn epoch_zero_resolves_to_twice_threshold() {
        let cell = CellConfig {
            trace: "t.lpt".into(),
            backend: Backend::Online,
            policy: SitePolicy::Complete,
            rounding: 4,
            threshold: 1000,
            epoch: 0,
            arena: ArenaConfig::default(),
        };
        assert_eq!(cell.epoch_bytes(), 2000);
        let explicit = CellConfig {
            epoch: 2000,
            ..cell.clone()
        };
        // The default and its explicit spelling are the same run.
        assert_eq!(cell.canonical_string(), explicit.canonical_string());
    }

    #[test]
    fn bad_specs_are_rejected() {
        for (doc, needle) in [
            ("{}", "missing `schema`"),
            (r#"{"schema": "nope"}"#, "unsupported schema"),
            (
                &format!(r#"{{"schema": "{SPEC_SCHEMA}", "traces": []}}"#),
                "at least one",
            ),
            (
                &format!(r#"{{"schema": "{SPEC_SCHEMA}", "traces": ["x"], "bogus": 1}}"#),
                "unknown key",
            ),
            (
                &format!(r#"{{"schema": "{SPEC_SCHEMA}", "traces": ["x"], "thresholds": [0]}}"#),
                "positive",
            ),
            (
                &format!(r#"{{"schema": "{SPEC_SCHEMA}", "traces": ["x"], "arenas": ["0x16"]}}"#),
                "bad arena geometry",
            ),
        ] {
            let err = GridSpec::from_json(doc).expect_err(doc);
            assert!(err.contains(needle), "`{doc}` → `{err}`");
        }
    }

    #[test]
    fn duplicate_axis_values_collapse() {
        let doc = format!(
            r#"{{"schema": "{SPEC_SCHEMA}", "traces": ["x"],
                "thresholds": [1024, 1024, 2048]}}"#
        );
        let spec = GridSpec::from_json(&doc).expect("parses");
        assert_eq!(spec.thresholds, vec![1024, 2048]);
    }
}
