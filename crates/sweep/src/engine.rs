//! The sweep engine: expand a grid, probe the cache, and fan the
//! remaining work across a work-stealing scheduler.
//!
//! # Job DAG
//!
//! A grid expands into *unique executions* — cells deduplicated by
//! cache key, so a first-fit baseline crossed with three thresholds
//! runs once. Each uncached offline execution depends on a TRAIN job
//! (one per distinct trace × policy × rounding × threshold), shared
//! by every arena geometry replaying against the same database. Jobs
//! carry a dependency counter; a job becomes runnable when it drops
//! to zero.
//!
//! # Scheduler invariants
//!
//! * Every worker owns a deque. The owner pushes and pops at the
//!   **back** (LIFO — freshly unblocked work is cache-hot); thieves
//!   lock a victim and take half its queue from the **front** (FIFO —
//!   the oldest, most dependency-fertile jobs migrate).
//! * A job index appears in at most one deque at a time; it is pushed
//!   exactly once, when its dependency counter reaches zero.
//! * Workers park on a condvar with a short timeout when every deque
//!   is empty; any job completion or newly-ready job notifies.
//! * Termination: a shared done-counter reaching the job total, or
//!   the [`CancelFlag`] firing. Cancellation is checked between jobs,
//!   never mid-replay, so finished cells are always fully persisted —
//!   that is what makes `sweep resume` sound after a kill.

use crate::cell::{run_cell, train_for, TrainKey, TrainedDb};
use crate::spec::{CellConfig, GridSpec};
use crate::store::{cell_key, trace_identity, CellKey, CellResult, ResultStore};
use lifepred_obs::Snapshot;
use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// Cooperative cancellation: cloned into the scheduler and flipped by
/// a signal handler, an HTTP DELETE, or a test.
#[derive(Debug, Clone, Default)]
pub struct CancelFlag(Arc<AtomicBool>);

impl CancelFlag {
    /// A fresh, unset flag.
    pub fn new() -> CancelFlag {
        CancelFlag::default()
    }

    /// Requests cancellation; workers stop between jobs.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Release);
    }

    /// Whether cancellation was requested.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Acquire)
    }
}

/// Tuning for one [`run_sweep`] call.
#[derive(Debug, Clone)]
pub struct SweepOptions {
    /// Worker threads (clamped to at least 1).
    pub threads: usize,
    /// Record `lifepred_sim_*` metrics for every computed cell and
    /// merge them into [`SweepOutcome::metrics`].
    pub want_metrics: bool,
}

impl Default for SweepOptions {
    fn default() -> Self {
        SweepOptions {
            threads: 1,
            want_metrics: false,
        }
    }
}

/// What happened to one grid cell.
#[derive(Debug, Clone)]
pub struct CellOutcome {
    /// The cell's configuration, as the grid spelled it.
    pub cell: CellConfig,
    /// Its cache key (shared with every cell that collapses to the
    /// same canonical execution).
    pub key: CellKey,
    /// The measurement, when available.
    pub result: Option<CellResult>,
    /// Whether the result came from the cache (`false` for freshly
    /// computed cells *and* for missing results).
    pub cached: bool,
    /// The failure message, when the cell errored.
    pub error: Option<String>,
}

/// Aggregate accounting for one sweep run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SweepStats {
    /// Grid cells in the spec.
    pub cells: usize,
    /// Unique executions after canonical collapse.
    pub unique: usize,
    /// Unique executions answered by the cache.
    pub cache_hits: usize,
    /// Unique executions computed this run.
    pub computed: usize,
    /// Unique executions that failed.
    pub errors: usize,
    /// Whether the run was cancelled before finishing.
    pub cancelled: bool,
    /// Wall-clock duration of the whole sweep in milliseconds.
    pub elapsed_ms: u64,
}

/// Everything [`run_sweep`] produces.
#[derive(Debug)]
pub struct SweepOutcome {
    /// The spec that ran.
    pub spec: GridSpec,
    /// Per-cell outcomes, in grid order
    /// ([`GridSpec::cells`] order — the table renderer's contract).
    pub outcomes: Vec<CellOutcome>,
    /// Aggregate accounting.
    pub stats: SweepStats,
    /// Merged `lifepred_sim_*` metrics of every *computed* cell
    /// (empty unless [`SweepOptions::want_metrics`]; cached cells
    /// contribute nothing — their work was never re-done).
    pub metrics: Snapshot,
}

/// One unique execution: a representative cell plus its key.
struct Exec {
    cell: CellConfig,
    key: CellKey,
    /// Index into the train-job table, for offline cells.
    train: Option<usize>,
}

enum JobKind {
    Train(usize),
    Cell(usize),
}

struct Job {
    kind: JobKind,
    /// Unresolved dependencies; the job is pushed when this hits 0.
    deps: AtomicUsize,
    /// Jobs to decrement when this one completes.
    dependents: Vec<usize>,
}

/// Shared scheduler state.
struct Scheduler {
    jobs: Vec<Job>,
    deques: Vec<Mutex<VecDeque<usize>>>,
    /// Completed job count; termination at `jobs.len()`.
    done: AtomicUsize,
    /// Computed *cell* count, fed to the progress callback.
    cells_done: AtomicUsize,
    park: Mutex<()>,
    bell: Condvar,
}

impl Scheduler {
    /// Makes `job` runnable on worker `me`'s deque and rings the bell.
    fn push(&self, me: usize, job: usize) {
        self.deques[me].lock().expect("deque lock").push_back(job);
        self.bell.notify_all();
    }

    /// Owner pop: newest first.
    fn pop_own(&self, me: usize) -> Option<usize> {
        self.deques[me].lock().expect("deque lock").pop_back()
    }

    /// Steal half of `victim`'s queue (front first), returning one job
    /// to run now; the rest lands on `me`'s deque.
    fn steal(&self, me: usize, victim: usize) -> Option<usize> {
        let stolen: Vec<usize> = {
            let mut v = self.deques[victim].lock().expect("deque lock");
            let take = v.len().div_ceil(2);
            v.drain(..take).collect()
        };
        let mut iter = stolen.into_iter();
        let first = iter.next()?;
        let rest: Vec<usize> = iter.collect();
        if !rest.is_empty() {
            let mut mine = self.deques[me].lock().expect("deque lock");
            mine.extend(rest);
            drop(mine);
            self.bell.notify_all();
        }
        Some(first)
    }

    /// Marks `job` complete and wakes dependents whose counters hit 0.
    fn complete(&self, me: usize, job: usize) {
        for &dep in &self.jobs[job].dependents {
            if self.jobs[dep].deps.fetch_sub(1, Ordering::AcqRel) == 1 {
                self.push(me, dep);
            }
        }
        self.done.fetch_add(1, Ordering::AcqRel);
        self.bell.notify_all();
    }
}

/// Runs `spec` against `store`, recomputing only what the cache
/// cannot answer.
///
/// `progress` is invoked with `(computed_cells, cells_to_compute)`
/// after every freshly computed cell — the hook the serve endpoint's
/// status and the resume test's cancel-after-N both build on.
///
/// # Errors
///
/// Returns a message only for spec-level failures (invalid grid).
/// Per-cell failures — missing trace files, corrupt traces — land in
/// that cell's [`CellOutcome::error`] and the run keeps going.
pub fn run_sweep(
    spec: &GridSpec,
    store: &ResultStore,
    opts: &SweepOptions,
    cancel: &CancelFlag,
    progress: Option<&(dyn Fn(usize, usize) + Sync)>,
) -> Result<SweepOutcome, String> {
    let started = Instant::now();
    spec.validate()?;
    let cells = spec.cells();

    // Identify every distinct trace once. A missing file fails all of
    // its cells, not the sweep.
    let mut identities: HashMap<&str, Result<crate::store::TraceIdentity, String>> = HashMap::new();
    for cell in &cells {
        identities.entry(cell.trace.as_str()).or_insert_with(|| {
            trace_identity(&cell.trace).map_err(|e| format!("{}: {e}", cell.trace))
        });
    }

    // Collapse the grid into unique executions and probe the cache.
    let mut execs: Vec<Exec> = Vec::new();
    let mut exec_of_key: HashMap<CellKey, usize> = HashMap::new();
    let mut trains: Vec<TrainKey> = Vec::new();
    let mut train_of_key: HashMap<TrainKey, usize> = HashMap::new();
    // Per grid cell: Ok(exec index) or Err(identity failure).
    let mut cell_exec: Vec<Result<usize, String>> = Vec::with_capacity(cells.len());
    let mut cached: Vec<Option<CellResult>> = Vec::new();
    for cell in &cells {
        match &identities[cell.trace.as_str()] {
            Err(e) => cell_exec.push(Err(e.clone())),
            Ok(identity) => {
                let key = cell_key(*identity, cell);
                let exec = *exec_of_key.entry(key).or_insert_with(|| {
                    let hit = store.load(key);
                    lifepred_flight::instant(
                        if hit.is_some() {
                            lifepred_flight::catalog::SWEEP_CACHE_HIT
                        } else {
                            lifepred_flight::catalog::SWEEP_CACHE_MISS
                        },
                        execs.len() as u64,
                    );
                    let train = if hit.is_none() {
                        TrainKey::of(cell).map(|tk| {
                            *train_of_key.entry(tk.clone()).or_insert_with(|| {
                                trains.push(tk);
                                trains.len() - 1
                            })
                        })
                    } else {
                        None
                    };
                    execs.push(Exec {
                        cell: cell.clone(),
                        key,
                        train,
                    });
                    cached.push(hit);
                    execs.len() - 1
                });
                cell_exec.push(Ok(exec));
            }
        }
    }

    let cache_hits = cached.iter().filter(|c| c.is_some()).count();
    let to_compute: Vec<usize> = (0..execs.len()).filter(|&i| cached[i].is_none()).collect();

    // Build the job DAG: trains first, then the uncached cells.
    let mut jobs: Vec<Job> = Vec::with_capacity(trains.len() + to_compute.len());
    for _ in &trains {
        jobs.push(Job {
            kind: JobKind::Train(jobs.len()),
            deps: AtomicUsize::new(0),
            dependents: Vec::new(),
        });
    }
    for &exec in &to_compute {
        let job_idx = jobs.len();
        let deps = usize::from(execs[exec].train.is_some());
        if let Some(train) = execs[exec].train {
            jobs[train].dependents.push(job_idx);
        }
        jobs.push(Job {
            kind: JobKind::Cell(exec),
            deps: AtomicUsize::new(deps),
            dependents: Vec::new(),
        });
    }

    let threads = opts.threads.max(1).min(jobs.len().max(1));
    let sched = Scheduler {
        jobs,
        deques: (0..threads).map(|_| Mutex::new(VecDeque::new())).collect(),
        done: AtomicUsize::new(0),
        cells_done: AtomicUsize::new(0),
        park: Mutex::new(()),
        bell: Condvar::new(),
    };
    // Seed the deques round-robin with the initially-ready jobs.
    for (i, job) in sched.jobs.iter().enumerate() {
        if job.deps.load(Ordering::Acquire) == 0 {
            sched.deques[i % threads]
                .lock()
                .expect("deque lock")
                .push_back(i);
        }
    }

    // Shared result slots, one mutex each (jobs are milliseconds to
    // seconds of replay; slot contention is negligible).
    type ResultSlot<T> = Mutex<Option<Result<T, String>>>;
    let train_results: Vec<ResultSlot<Arc<TrainedDb>>> =
        (0..trains.len()).map(|_| Mutex::new(None)).collect();
    let exec_results: Vec<ResultSlot<CellResult>> =
        (0..execs.len()).map(|_| Mutex::new(None)).collect();
    let metrics = Mutex::new(Snapshot::default());
    let total_cells_to_compute = to_compute.len();

    std::thread::scope(|scope| {
        for me in 0..threads {
            let sched = &sched;
            let trains = &trains;
            let execs = &execs;
            let train_results = &train_results;
            let exec_results = &exec_results;
            let metrics = &metrics;
            scope.spawn(move || {
                let total = sched.jobs.len();
                loop {
                    if cancel.is_cancelled() || sched.done.load(Ordering::Acquire) >= total {
                        return;
                    }
                    let job = sched.pop_own(me).or_else(|| {
                        (1..threads)
                            .find_map(|d| sched.steal(me, (me + d) % threads))
                            .inspect(|&stolen| {
                                lifepred_flight::instant(
                                    lifepred_flight::catalog::SWEEP_STEAL,
                                    stolen as u64,
                                );
                            })
                    });
                    let Some(job) = job else {
                        let _park = lifepred_flight::span(lifepred_flight::catalog::SWEEP_PARK);
                        let guard = sched.park.lock().expect("park lock");
                        let _unused = sched
                            .bell
                            .wait_timeout(guard, std::time::Duration::from_millis(1))
                            .expect("park wait");
                        lifepred_flight::instant(lifepred_flight::catalog::SWEEP_UNPARK, 0);
                        continue;
                    };
                    let _job_span =
                        lifepred_flight::span_arg(lifepred_flight::catalog::SWEEP_JOB, job as u64);
                    // A panicking job must still count as done: with the
                    // unwind swallowed here, `done` keeps advancing and the
                    // other workers cannot wedge waiting for a completion
                    // that will never come.
                    let body = std::panic::AssertUnwindSafe(|| match sched.jobs[job].kind {
                        JobKind::Train(t) => {
                            let outcome = train_for(&trains[t]).map(Arc::new);
                            *train_results[t].lock().expect("train slot") = Some(outcome);
                        }
                        JobKind::Cell(e) => {
                            let exec = &execs[e];
                            let trained: Option<Result<Arc<TrainedDb>, String>> =
                                exec.train.map(|t| {
                                    train_results[t]
                                        .lock()
                                        .expect("train slot")
                                        .clone()
                                        .expect("train job completed before dependent")
                                });
                            let outcome = match trained {
                                Some(Err(e)) => Err(e),
                                Some(Ok(db)) => run_cell(&exec.cell, Some(&db), opts.want_metrics),
                                None => run_cell(&exec.cell, None, opts.want_metrics),
                            }
                            .map(|(result, snap)| {
                                if let Some(snap) = snap {
                                    metrics.lock().expect("metrics lock").merge(&snap);
                                }
                                result
                            })
                            .and_then(|result| {
                                store
                                    .save(exec.key, &exec.cell, &result)
                                    .map_err(|e| format!("cache write {}: {e}", exec.key))
                                    .map(|()| result)
                            });
                            *exec_results[e].lock().expect("exec slot") = Some(outcome);
                            let done_cells = sched.cells_done.fetch_add(1, Ordering::AcqRel) + 1;
                            if let Some(progress) = progress {
                                progress(done_cells, total_cells_to_compute);
                            }
                        }
                    });
                    if std::panic::catch_unwind(body).is_err() {
                        match sched.jobs[job].kind {
                            JobKind::Train(t) => {
                                let mut slot = train_results[t].lock().expect("train slot");
                                if slot.is_none() {
                                    *slot = Some(Err("training panicked".to_owned()));
                                }
                            }
                            JobKind::Cell(e) => {
                                let mut slot = exec_results[e].lock().expect("exec slot");
                                if slot.is_none() {
                                    *slot = Some(Err("cell execution panicked".to_owned()));
                                    drop(slot);
                                    sched.cells_done.fetch_add(1, Ordering::AcqRel);
                                }
                            }
                        }
                    }
                    sched.complete(me, job);
                }
            });
        }
    });

    let cancelled = cancel.is_cancelled() && sched.done.load(Ordering::Acquire) < sched.jobs.len();

    // Assemble grid-order outcomes from the cache hits and job slots.
    let mut computed = 0usize;
    let mut errors = 0usize;
    let mut exec_outcome: Vec<(Option<CellResult>, bool, Option<String>)> =
        Vec::with_capacity(execs.len());
    for (i, hit) in cached.iter().enumerate() {
        if let Some(result) = hit {
            exec_outcome.push((Some(result.clone()), true, None));
            continue;
        }
        match exec_results[i].lock().expect("exec slot").take() {
            Some(Ok(result)) => {
                computed += 1;
                exec_outcome.push((Some(result), false, None));
            }
            Some(Err(e)) => {
                errors += 1;
                exec_outcome.push((None, false, Some(e)));
            }
            None => exec_outcome.push((None, false, Some("cancelled before running".to_owned()))),
        }
    }

    let outcomes: Vec<CellOutcome> = cells
        .into_iter()
        .zip(cell_exec)
        .map(|(cell, exec)| match exec {
            Err(e) => CellOutcome {
                cell,
                key: CellKey(0),
                result: None,
                cached: false,
                error: Some(e),
            },
            Ok(i) => {
                let (result, was_cached, error) = exec_outcome[i].clone();
                CellOutcome {
                    cell,
                    key: execs[i].key,
                    result,
                    cached: was_cached,
                    error,
                }
            }
        })
        .collect();
    // Cells whose trace could not even be identified never got an
    // execution; they are errors too, on top of the per-exec ones.
    let identity_errors = outcomes
        .iter()
        .filter(|o| o.key == CellKey(0) && o.error.is_some())
        .count();

    Ok(SweepOutcome {
        spec: spec.clone(),
        stats: SweepStats {
            cells: outcomes.len(),
            unique: execs.len(),
            cache_hits,
            computed,
            errors: errors + identity_errors,
            cancelled,
            elapsed_ms: started.elapsed().as_millis() as u64,
        },
        outcomes,
        metrics: metrics.into_inner().expect("metrics lock"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::Backend;
    use std::path::PathBuf;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "lifepred-sweep-engine-{name}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("scratch dir");
        dir
    }

    fn churn_trace(name: &str) -> lifepred_trace::Trace {
        let s = lifepred_trace::TraceSession::new(name);
        {
            let _g = s.enter("churn");
            for _ in 0..400 {
                let a = s.alloc(64);
                s.free(a);
            }
        }
        s.finish()
    }

    fn demo_spec(dir: &std::path::Path) -> GridSpec {
        let mut traces = Vec::new();
        for name in ["alpha", "beta"] {
            let path = dir.join(format!("{name}.lpt"));
            lifepred_tracefile::save_trace(&path, &churn_trace(name)).expect("save trace");
            traces.push(path.to_string_lossy().into_owned());
        }
        GridSpec {
            name: "engine-test".into(),
            traces,
            backends: vec![Backend::Offline, Backend::FirstFit],
            thresholds: vec![16 * 1024, 32 * 1024],
            ..GridSpec::default()
        }
    }

    #[test]
    fn cold_run_computes_warm_run_hits() {
        let dir = scratch("warm");
        let spec = demo_spec(&dir);
        let store = ResultStore::open(dir.join("store")).expect("store");
        let opts = SweepOptions {
            threads: 2,
            want_metrics: false,
        };
        let cold = run_sweep(&spec, &store, &opts, &CancelFlag::new(), None).expect("cold run");
        // 2 traces × (offline × 2 thresholds + firstfit collapsed) = 6
        assert_eq!(cold.stats.cells, 8);
        assert_eq!(cold.stats.unique, 6);
        assert_eq!(cold.stats.cache_hits, 0);
        assert_eq!(cold.stats.computed, 6);
        assert_eq!(cold.stats.errors, 0);
        assert!(cold.outcomes.iter().all(|o| o.result.is_some()));

        let warm = run_sweep(&spec, &store, &opts, &CancelFlag::new(), None).expect("warm run");
        assert_eq!(warm.stats.cache_hits, 6, "warm run is all hits");
        assert_eq!(warm.stats.computed, 0);
        for (a, b) in cold.outcomes.iter().zip(&warm.outcomes) {
            assert_eq!(a.result, b.result, "cached result identical");
            assert!(b.cached);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_trace_fails_its_cells_only() {
        let dir = scratch("missing");
        let mut spec = demo_spec(&dir);
        spec.traces
            .push(dir.join("ghost.lpt").to_string_lossy().into_owned());
        let store = ResultStore::open(dir.join("store")).expect("store");
        let out = run_sweep(
            &spec,
            &store,
            &SweepOptions::default(),
            &CancelFlag::new(),
            None,
        )
        .expect("sweep runs");
        let (bad, good): (Vec<_>, Vec<_>) = out
            .outcomes
            .iter()
            .partition(|o| o.cell.trace.ends_with("ghost.lpt"));
        assert!(bad.iter().all(|o| o.error.is_some() && o.result.is_none()));
        assert!(good.iter().all(|o| o.result.is_some()));
        assert_eq!(out.stats.errors, 4, "one trace × 4 grid cells");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cancel_mid_run_keeps_finished_cells() {
        let dir = scratch("cancel");
        let spec = demo_spec(&dir);
        let store = ResultStore::open(dir.join("store")).expect("store");
        let cancel = CancelFlag::new();
        let cancel_at = 2usize;
        let hook = {
            let cancel = cancel.clone();
            move |done: usize, _total: usize| {
                if done >= cancel_at {
                    cancel.cancel();
                }
            }
        };
        let out = run_sweep(
            &spec,
            &store,
            &SweepOptions::default(),
            &cancel,
            Some(&hook),
        )
        .expect("sweep runs");
        assert!(out.stats.cancelled);
        assert!(out.stats.computed >= cancel_at);
        assert!(out.stats.computed < out.stats.unique, "cancel left work");
        // Everything computed before the cancel is persisted.
        let resumed = run_sweep(
            &spec,
            &store,
            &SweepOptions::default(),
            &CancelFlag::new(),
            None,
        )
        .expect("resume");
        assert_eq!(resumed.stats.cache_hits, out.stats.computed);
        assert_eq!(
            resumed.stats.computed,
            resumed.stats.unique - out.stats.computed
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn progress_reports_monotonic_counts() {
        let dir = scratch("progress");
        let spec = demo_spec(&dir);
        let store = ResultStore::open(dir.join("store")).expect("store");
        let seen = Mutex::new(Vec::new());
        let hook = |done: usize, total: usize| {
            seen.lock().expect("seen").push((done, total));
        };
        let out = run_sweep(
            &spec,
            &store,
            &SweepOptions {
                threads: 3,
                want_metrics: false,
            },
            &CancelFlag::new(),
            Some(&hook),
        )
        .expect("sweep");
        let seen = seen.into_inner().expect("seen");
        assert_eq!(seen.len(), out.stats.computed);
        assert!(seen.iter().all(|&(_, t)| t == out.stats.unique));
        let mut counts: Vec<usize> = seen.iter().map(|&(d, _)| d).collect();
        counts.sort_unstable();
        assert_eq!(counts, (1..=out.stats.computed).collect::<Vec<_>>());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn metrics_merge_across_computed_cells() {
        let dir = scratch("metrics");
        let spec = demo_spec(&dir);
        let store = ResultStore::open(dir.join("store")).expect("store");
        let out = run_sweep(
            &spec,
            &store,
            &SweepOptions {
                threads: 2,
                want_metrics: true,
            },
            &CancelFlag::new(),
            None,
        )
        .expect("sweep");
        let total: u64 = {
            // Each unique execution replays every alloc of its trace.
            let mut sum = 0;
            let mut seen = std::collections::HashSet::new();
            for o in &out.outcomes {
                if seen.insert(o.key) {
                    sum += o.result.as_ref().expect("result").total_allocs;
                }
            }
            sum
        };
        assert_eq!(
            out.metrics.counter("lifepred_sim_allocs_total"),
            Some(total)
        );
        // A warm re-run does no work, so no metrics either.
        let warm = run_sweep(
            &spec,
            &store,
            &SweepOptions {
                threads: 2,
                want_metrics: true,
            },
            &CancelFlag::new(),
            None,
        )
        .expect("warm");
        assert_eq!(warm.metrics.counter("lifepred_sim_allocs_total"), None);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
