//! Executing one grid cell: train (when offline), replay, measure.
//!
//! The execution paths mirror `lifepred simulate` exactly — streaming
//! two-pass replays that never materialize the event stream — so a
//! sweep cell's numbers are bit-identical to the one-off CLI run with
//! the same knobs. Offline cells additionally share their trained
//! database through [`TrainedDb`]: the engine trains once per
//! (trace, policy, rounding, threshold) combination and fans the
//! `Arc` out to every arena geometry that replays against it.

use crate::spec::{Backend, CellConfig};
use crate::store::CellResult;
use lifepred_adaptive::EpochConfig;
use lifepred_core::{evaluate, train, Profile, ShortLivedSet, SiteConfig, TrainConfig};
use lifepred_heap::{
    replay_arena_chunks, replay_arena_chunks_observed, replay_arena_online_chunks,
    replay_arena_online_chunks_observed, replay_bsd_chunks, replay_bsd_chunks_observed,
    replay_firstfit_chunks, replay_firstfit_chunks_observed, ReplayConfig, ReplayMeta, ReplayObs,
    ReplayReport,
};
use lifepred_obs::{Registry, Snapshot};
use lifepred_tracefile::{load_trace, TraceReader};
use std::time::Instant;

/// A database trained offline for one (trace, policy, rounding,
/// threshold) combination, plus the self-prediction quality the
/// training trace showed (the sweep's "Error Bytes" column).
#[derive(Debug)]
pub struct TrainedDb {
    /// The trained short-lived site set.
    pub db: ShortLivedSet,
    /// Self-prediction error bytes percentage from
    /// [`lifepred_core::evaluate`].
    pub error_bytes_pct: f64,
}

/// The axes that select a training run. Offline cells differing only
/// in arena geometry (or the ignored epoch axis) map to the same key
/// and share one [`TrainedDb`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TrainKey {
    /// Trace file path.
    pub trace: String,
    /// Site policy.
    pub policy: lifepred_core::SitePolicy,
    /// Site-key size rounding.
    pub rounding: u32,
    /// Short-lived threshold in bytes.
    pub threshold: u64,
}

impl TrainKey {
    /// The training key of an offline cell; `None` for backends that
    /// do not train offline.
    pub fn of(cell: &CellConfig) -> Option<TrainKey> {
        (cell.backend == Backend::Offline).then(|| TrainKey {
            trace: cell.trace.clone(),
            policy: cell.policy,
            rounding: cell.rounding,
            threshold: cell.threshold,
        })
    }
}

fn file_err(path: &str, e: impl std::fmt::Display) -> String {
    format!("{path}: {e}")
}

/// Trains the database `key` describes: loads the trace, profiles it,
/// trains, and self-evaluates.
///
/// # Errors
///
/// Returns a message for an unreadable or corrupt trace file.
pub fn train_for(key: &TrainKey) -> Result<TrainedDb, String> {
    let trace = load_trace(&key.trace).map_err(|e| file_err(&key.trace, e))?;
    let sites = SiteConfig {
        policy: key.policy,
        size_rounding: key.rounding,
    };
    let profile = Profile::build(&trace, &sites, key.threshold);
    let db = train(
        &profile,
        &TrainConfig {
            threshold: key.threshold,
            ..TrainConfig::default()
        },
    );
    let report = evaluate(&db, &trace);
    Ok(TrainedDb {
        db,
        error_bytes_pct: report.error_bytes_pct,
    })
}

fn pct(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        100.0 * num as f64 / den as f64
    }
}

fn base_result(report: &ReplayReport, elapsed_ms: u64) -> CellResult {
    CellResult {
        program: report.program.clone(),
        total_allocs: report.total_allocs,
        total_bytes: report.total_bytes,
        arena_allocs: report.arena_allocs,
        arena_bytes: report.arena_bytes,
        max_heap_bytes: report.max_heap_bytes,
        short_alloc_pct: report.arena_alloc_pct(),
        short_byte_pct: report.arena_byte_pct(),
        error_byte_pct: 0.0,
        epochs: 0,
        elapsed_ms,
    }
}

/// Runs one grid cell: streams the trace through the configured
/// backend and folds the replay report into a [`CellResult`].
///
/// `trained` must be `Some` exactly when the backend is
/// [`Backend::Offline`]. With `want_metrics`, the replay also records
/// into a private registry whose snapshot is returned for the caller
/// to merge (the serve endpoint's `lifepred_sim_*` feed).
///
/// # Errors
///
/// Returns a message for a missing/corrupt trace file, an invalid
/// event sequence, or a `trained`/backend mismatch.
pub fn run_cell(
    cell: &CellConfig,
    trained: Option<&TrainedDb>,
    want_metrics: bool,
) -> Result<(CellResult, Option<Snapshot>), String> {
    let started = Instant::now();
    let registry = want_metrics.then(Registry::new);
    let obs = registry.as_ref().map(ReplayObs::register);
    let path = cell.trace.as_str();
    let open = || TraceReader::open(path).map_err(|e| file_err(path, e));
    let meta_of = |reader: &TraceReader<std::io::BufReader<std::fs::File>>| ReplayMeta {
        program: reader.name().to_owned(),
        function_calls: reader.stats().function_calls,
    };
    let config = ReplayConfig { arena: cell.arena };
    let elapsed = |s: Instant| s.elapsed().as_millis() as u64;

    let result = match cell.backend {
        Backend::Offline => {
            let trained =
                trained.ok_or_else(|| format!("{path}: offline cell ran without training"))?;
            // Pass 1: predict every object from its allocation site.
            let reader = open()?;
            let chains = reader.chain_table().clone();
            let mut extractor =
                lifepred_core::SiteExtractor::from_chains(&chains, *trained.db.config());
            let mut predicted = Vec::new();
            for record in reader.into_records().map_err(|e| file_err(path, e))? {
                let record = record.map_err(|e| file_err(path, e))?;
                predicted.push(trained.db.predicts(&extractor.site_of(&record)));
            }
            // Pass 2: stream the event chunks through the arena heap.
            let reader = open()?;
            let meta = meta_of(&reader);
            let chunks = reader.into_event_chunks().map_err(|e| file_err(path, e))?;
            let report = match &obs {
                Some(obs) => replay_arena_chunks_observed(&meta, chunks, &predicted, &config, obs),
                None => replay_arena_chunks(&meta, chunks, &predicted, &config),
            }
            .map_err(|e| file_err(path, e))?;
            CellResult {
                error_byte_pct: trained.error_bytes_pct,
                ..base_result(&report, elapsed(started))
            }
        }
        Backend::Online => {
            if trained.is_some() {
                return Err(format!("{path}: online cell given an offline database"));
            }
            let sites_cfg = SiteConfig {
                policy: cell.policy,
                size_rounding: cell.rounding,
            };
            let epoch = EpochConfig::for_threshold(cell.threshold, Some(cell.epoch));
            epoch.validate().map_err(|e| file_err(path, e))?;
            // Pass 1: fingerprint every object's allocation site.
            let reader = open()?;
            let chains = reader.chain_table().clone();
            let mut extractor = lifepred_core::SiteExtractor::from_chains(&chains, sites_cfg);
            let mut sites = Vec::new();
            for record in reader.into_records().map_err(|e| file_err(path, e))? {
                let record = record.map_err(|e| file_err(path, e))?;
                sites.push(extractor.site_of(&record).fingerprint());
            }
            // Pass 2: replay with the learner predicting as it goes.
            let reader = open()?;
            let meta = meta_of(&reader);
            let chunks = reader.into_event_chunks().map_err(|e| file_err(path, e))?;
            let online = match &obs {
                Some(obs) => {
                    replay_arena_online_chunks_observed(&meta, chunks, &sites, &epoch, &config, obs)
                }
                None => replay_arena_online_chunks(&meta, chunks, &sites, &epoch, &config),
            }
            .map_err(|e| file_err(path, e))?;
            if let Some(registry) = &registry {
                online.learner.export(registry);
            }
            CellResult {
                error_byte_pct: pct(online.learner.error_bytes, online.learner.total_bytes),
                epochs: online.learner.epochs,
                ..base_result(&online.replay, elapsed(started))
            }
        }
        Backend::FirstFit | Backend::Bsd => {
            if trained.is_some() {
                return Err(format!("{path}: baseline cell given a database"));
            }
            let reader = open()?;
            let meta = meta_of(&reader);
            let chunks = reader.into_event_chunks().map_err(|e| file_err(path, e))?;
            let report = if cell.backend == Backend::Bsd {
                match &obs {
                    Some(obs) => replay_bsd_chunks_observed(&meta, chunks, &config, obs),
                    None => replay_bsd_chunks(&meta, chunks, &config),
                }
            } else {
                match &obs {
                    Some(obs) => replay_firstfit_chunks_observed(&meta, chunks, &config, obs),
                    None => replay_firstfit_chunks(&meta, chunks, &config),
                }
            }
            .map_err(|e| file_err(path, e))?;
            base_result(&report, elapsed(started))
        }
    };
    Ok((result, registry.map(|r| r.snapshot())))
}

#[cfg(test)]
mod tests {
    use super::*;
    use lifepred_core::SitePolicy;
    use lifepred_heap::ArenaConfig;
    use std::path::PathBuf;

    /// A mostly-short-lived churn workload with a few keepers.
    fn demo_trace() -> lifepred_trace::Trace {
        let s = lifepred_trace::TraceSession::new("demo");
        let mut kept = Vec::new();
        {
            let _g = s.enter("keeper");
            for _ in 0..20 {
                kept.push(s.alloc(256));
            }
        }
        {
            let _g = s.enter("churn");
            for _ in 0..800 {
                let a = s.alloc(64);
                let b = s.alloc(32);
                s.free(a);
                s.free(b);
            }
        }
        for id in kept {
            s.free(id);
        }
        s.finish()
    }

    fn write_demo_trace(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("lifepred-sweep-cell-{name}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("tempdir");
        let path = dir.join("demo.lpt");
        lifepred_tracefile::save_trace(&path, &demo_trace()).expect("save");
        path
    }

    fn cell_for(path: &std::path::Path, backend: Backend) -> CellConfig {
        CellConfig {
            trace: path.to_string_lossy().into_owned(),
            backend,
            policy: SitePolicy::Complete,
            rounding: 4,
            threshold: 32 * 1024,
            epoch: 0,
            arena: ArenaConfig::default(),
        }
    }

    #[test]
    fn offline_cell_matches_direct_replay() {
        let path = write_demo_trace("offline");
        let cell = cell_for(&path, Backend::Offline);
        let key = TrainKey::of(&cell).expect("offline trains");
        let trained = train_for(&key).expect("train");
        let (result, metrics) = run_cell(&cell, Some(&trained), false).expect("run");
        assert!(metrics.is_none());
        assert!(result.total_allocs > 0);
        assert!(
            result.short_alloc_pct > 50.0,
            "churn workload is mostly short: {result:?}"
        );
        // Self-prediction: training trace == replay trace, no errors.
        assert_eq!(result.error_byte_pct, 0.0);
        let _ = std::fs::remove_dir_all(path.parent().expect("parent"));
    }

    #[test]
    fn baseline_cell_runs_without_training() {
        let path = write_demo_trace("baseline");
        let cell = cell_for(&path, Backend::FirstFit);
        assert_eq!(TrainKey::of(&cell), None);
        let (result, _) = run_cell(&cell, None, false).expect("run");
        assert_eq!(result.arena_allocs, 0);
        assert!(result.max_heap_bytes > 0);
        let _ = std::fs::remove_dir_all(path.parent().expect("parent"));
    }

    #[test]
    fn online_cell_reports_epochs_and_metrics() {
        let path = write_demo_trace("online");
        let mut cell = cell_for(&path, Backend::Online);
        cell.threshold = 4096; // small epochs so the learner ticks
        let (result, metrics) = run_cell(&cell, None, true).expect("run");
        let snap = metrics.expect("metrics requested");
        assert_eq!(
            snap.counter("lifepred_sim_allocs_total"),
            Some(result.total_allocs)
        );
        assert!(result.epochs > 0, "learner must tick: {result:?}");
        let _ = std::fs::remove_dir_all(path.parent().expect("parent"));
    }

    #[test]
    fn mismatched_training_is_rejected() {
        let path = write_demo_trace("mismatch");
        let offline = cell_for(&path, Backend::Offline);
        assert!(run_cell(&offline, None, false).is_err());
        let trained = train_for(&TrainKey::of(&offline).expect("key")).expect("train");
        let baseline = cell_for(&path, Backend::Bsd);
        assert!(run_cell(&baseline, Some(&trained), false).is_err());
        let _ = std::fs::remove_dir_all(path.parent().expect("parent"));
    }
}
