//! Rendering sweep outcomes: paper-style tables, CSV and JSON
//! exports, and report diffing.
//!
//! Every renderer here is **deterministic in the measurements**: the
//! same grid with the same cached results produces byte-identical
//! output whether the cells were computed this run or pulled from the
//! cache. Run-dependent facts (elapsed time, hit counts) appear only
//! in the JSON report's separate `run` section, never in tables or
//! the per-cell rows — that is what lets `sweep resume` promise a
//! byte-identical table after a crash.

use crate::engine::{CellOutcome, SweepOutcome};
use crate::spec::Backend;
use lifepred_obs::json::{self, Value};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Schema tag of the JSON report document.
pub const REPORT_SCHEMA: &str = "lifepred-sweep-report-v1";

fn fmt_pct(v: f64) -> String {
    format!("{v:.1}")
}

/// The text one table slot renders to.
fn cell_text(outcome: &CellOutcome) -> String {
    match (&outcome.result, &outcome.error) {
        (Some(r), _) => {
            if outcome.cell.backend.predicts() {
                format!(
                    "{}/{}/{}",
                    fmt_pct(r.short_alloc_pct),
                    fmt_pct(r.error_byte_pct),
                    r.max_heap_bytes
                )
            } else {
                format!("-/-/{}", r.max_heap_bytes)
            }
        }
        (None, Some(_)) => "ERR".to_owned(),
        (None, None) => "…".to_owned(),
    }
}

/// The row label of a cell: the traced program when known, else the
/// trace path.
fn row_label(outcome: &CellOutcome) -> String {
    match &outcome.result {
        Some(r) if !r.program.is_empty() => r.program.clone(),
        _ => outcome.cell.trace.clone(),
    }
}

/// One table group: every non-threshold axis pinned.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct GroupKey {
    backend_order: u8,
    policy: String,
    epoch: u64,
    arena: String,
}

impl GroupKey {
    fn of(outcome: &CellOutcome) -> GroupKey {
        let c = &outcome.cell;
        GroupKey {
            backend_order: match c.backend {
                Backend::Offline => 0,
                Backend::Online => 1,
                Backend::FirstFit => 2,
                Backend::Bsd => 3,
            },
            policy: c.policy.to_string(),
            epoch: c.epoch,
            arena: c.arena.to_string(),
        }
    }

    fn backend(&self) -> Backend {
        match self.backend_order {
            0 => Backend::Offline,
            1 => Backend::Online,
            2 => Backend::FirstFit,
            _ => Backend::Bsd,
        }
    }
}

/// Writes a boxed ASCII table: `rows` of equal-length string cells,
/// with `header` on top.
fn write_grid(out: &mut String, header: &[String], rows: &[Vec<String>]) {
    let cols = header.len();
    let mut widths = vec![0usize; cols];
    for row in std::iter::once(header).chain(rows.iter().map(Vec::as_slice)) {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.chars().count());
        }
    }
    let rule = |out: &mut String| {
        for w in &widths {
            out.push('+');
            for _ in 0..w + 2 {
                out.push('-');
            }
        }
        out.push_str("+\n");
    };
    let line = |out: &mut String, row: &[String]| {
        for (i, cell) in row.iter().enumerate() {
            let pad = widths[i] - cell.chars().count();
            out.push_str("| ");
            out.push_str(cell);
            for _ in 0..pad {
                out.push(' ');
            }
            out.push(' ');
        }
        out.push_str("|\n");
    };
    rule(out);
    line(out, header);
    rule(out);
    for row in rows {
        line(out, row);
    }
    rule(out);
}

/// Renders the paper-style tables: one group per (backend, policy,
/// epoch, arena) combination, traces as rows, thresholds as columns,
/// each slot `short%/err%/max-heap` (baselines `-/-/max-heap`).
pub fn render_table(outcome: &SweepOutcome) -> String {
    let spec = &outcome.spec;
    let mut groups: BTreeMap<GroupKey, BTreeMap<(usize, u64), &CellOutcome>> = BTreeMap::new();
    // Index traces by spec order so rows keep the spec's ordering.
    let trace_order: BTreeMap<&str, usize> = spec
        .traces
        .iter()
        .enumerate()
        .map(|(i, t)| (t.as_str(), i))
        .collect();
    for o in &outcome.outcomes {
        let row = trace_order.get(o.cell.trace.as_str()).copied().unwrap_or(0);
        groups
            .entry(GroupKey::of(o))
            .or_default()
            .insert((row, o.cell.threshold), o);
    }

    let mut out = String::new();
    let _ = writeln!(out, "sweep: {}", spec.name);
    for (group, slots) in &groups {
        let backend = group.backend();
        out.push('\n');
        let mut title = format!("backend={backend}");
        if backend.predicts() {
            let _ = write!(title, " policy={} arena={}", group.policy, group.arena);
            if backend == Backend::Online {
                if group.epoch == 0 {
                    title.push_str(" epoch=2xthreshold");
                } else {
                    let _ = write!(title, " epoch={}", group.epoch);
                }
            }
        }
        let _ = writeln!(out, "{title}");
        // Column set: thresholds actually present in this group.
        let mut thresholds: Vec<u64> = slots.keys().map(|&(_, t)| t).collect();
        thresholds.sort_unstable();
        thresholds.dedup();
        let mut header: Vec<String> = vec!["trace".to_owned()];
        if backend.predicts() {
            header.extend(thresholds.iter().map(|t| format!("threshold={t}")));
        } else {
            header.push("short%/err%/max-heap".to_owned());
        }
        let mut rows_idx: Vec<usize> = slots.keys().map(|&(r, _)| r).collect();
        rows_idx.sort_unstable();
        rows_idx.dedup();
        let mut rows: Vec<Vec<String>> = Vec::new();
        for r in rows_idx {
            let mut row = Vec::with_capacity(header.len());
            let label_source = thresholds
                .iter()
                .find_map(|&t| slots.get(&(r, t)))
                .expect("row exists");
            row.push(row_label(label_source));
            if backend.predicts() {
                for &t in &thresholds {
                    row.push(slots.get(&(r, t)).map_or("…".to_owned(), |o| cell_text(o)));
                }
            } else {
                row.push(cell_text(label_source));
            }
            rows.push(row);
        }
        write_grid(&mut out, &header, &rows);
    }
    out
}

/// Renders every grid cell as one CSV row (header included). Columns
/// are the full config plus the measurements; deterministic across
/// cached and fresh runs.
pub fn render_csv(outcome: &SweepOutcome) -> String {
    let mut out = String::new();
    out.push_str(
        "trace,backend,policy,rounding,threshold,epoch_bytes,arena,\
         total_allocs,total_bytes,arena_allocs,arena_bytes,max_heap_bytes,\
         short_alloc_pct,short_byte_pct,error_byte_pct,epochs,status\n",
    );
    let csv_field = |s: &str| {
        if s.contains([',', '"', '\n']) {
            format!("\"{}\"", s.replace('"', "\"\""))
        } else {
            s.to_owned()
        }
    };
    for o in &outcome.outcomes {
        let c = &o.cell;
        let _ = write!(
            out,
            "{},{},{},{},{},{},{},",
            csv_field(&c.trace),
            c.backend,
            csv_field(&c.policy.to_string()),
            c.rounding,
            c.threshold,
            c.epoch_bytes(),
            c.arena
        );
        match &o.result {
            Some(r) => {
                let _ = writeln!(
                    out,
                    "{},{},{},{},{},{},{},{},{},ok",
                    r.total_allocs,
                    r.total_bytes,
                    r.arena_allocs,
                    r.arena_bytes,
                    r.max_heap_bytes,
                    fmt_pct(r.short_alloc_pct),
                    fmt_pct(r.short_byte_pct),
                    fmt_pct(r.error_byte_pct),
                    r.epochs
                );
            }
            None => {
                let status = if o.error.is_some() {
                    "error"
                } else {
                    "pending"
                };
                let _ = writeln!(out, ",,,,,,,,,{status}");
            }
        }
    }
    out
}

/// Renders the full structured report (schema [`REPORT_SCHEMA`]): the
/// spec, a `run` section with this run's accounting, and one entry
/// per grid cell. Only the `run` section varies between a cold run
/// and its cached re-run.
pub fn render_json(outcome: &SweepOutcome) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": \"{REPORT_SCHEMA}\",");
    let _ = writeln!(out, "  \"name\": \"{}\",", json::escape(&outcome.spec.name));
    let s = &outcome.stats;
    let _ = writeln!(
        out,
        "  \"run\": {{\"cells\": {}, \"unique\": {}, \"cache_hits\": {}, \
         \"computed\": {}, \"errors\": {}, \"cancelled\": {}, \"elapsed_ms\": {}}},",
        s.cells, s.unique, s.cache_hits, s.computed, s.errors, s.cancelled, s.elapsed_ms
    );
    out.push_str("  \"cells\": [\n");
    for (i, o) in outcome.outcomes.iter().enumerate() {
        let c = &o.cell;
        let _ = write!(
            out,
            "    {{\"trace\": \"{}\", \"backend\": \"{}\", \"policy\": \"{}\", \
             \"rounding\": {}, \"threshold\": {}, \"epoch_bytes\": {}, \"arena\": \"{}\"",
            json::escape(&c.trace),
            c.backend,
            json::escape(&c.policy.to_string()),
            c.rounding,
            c.threshold,
            c.epoch_bytes(),
            c.arena
        );
        match (&o.result, &o.error) {
            (Some(r), _) => {
                let _ = write!(
                    out,
                    ", \"metrics\": {{\"total_allocs\": {}, \"total_bytes\": {}, \
                     \"arena_allocs\": {}, \"arena_bytes\": {}, \"max_heap_bytes\": {}, \
                     \"short_alloc_pct\": {}, \"short_byte_pct\": {}, \
                     \"error_byte_pct\": {}, \"epochs\": {}}}",
                    r.total_allocs,
                    r.total_bytes,
                    r.arena_allocs,
                    r.arena_bytes,
                    r.max_heap_bytes,
                    fmt_pct(r.short_alloc_pct),
                    fmt_pct(r.short_byte_pct),
                    fmt_pct(r.error_byte_pct),
                    r.epochs
                );
            }
            (None, Some(e)) => {
                let _ = write!(out, ", \"error\": \"{}\"", json::escape(e));
            }
            (None, None) => {
                let _ = write!(out, ", \"pending\": true");
            }
        }
        out.push('}');
        if i + 1 < outcome.outcomes.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("  ]\n}\n");
    out
}

/// The identity of one report cell, for diffing.
fn diff_key(cell: &Value) -> Option<String> {
    let f = |k: &str| {
        cell.get(k).map(|v| match v {
            Value::Str(s) => s.clone(),
            other => format!("{other:?}"),
        })
    };
    Some(format!(
        "{} b={} p={} r={:?} t={:?} e={:?} a={}",
        f("trace")?,
        f("backend")?,
        f("policy")?,
        cell.get("rounding").and_then(Value::as_u64)?,
        cell.get("threshold").and_then(Value::as_u64)?,
        cell.get("epoch_bytes").and_then(Value::as_u64)?,
        f("arena")?,
    ))
}

const DIFF_METRICS: &[&str] = &[
    "total_allocs",
    "total_bytes",
    "arena_allocs",
    "arena_bytes",
    "max_heap_bytes",
    "short_alloc_pct",
    "short_byte_pct",
    "error_byte_pct",
    "epochs",
];

fn metric_text(metrics: Option<&Value>, name: &str) -> String {
    metrics.and_then(|m| m.get(name)).map_or_else(
        || "-".to_owned(),
        |v| match v {
            Value::Int(n) => n.to_string(),
            Value::Float(f) => format!("{f}"),
            Value::Str(s) => s.clone(),
            other => format!("{other:?}"),
        },
    )
}

/// Diffs two JSON reports (as produced by [`render_json`]): lists
/// cells present in only one report and metrics that changed between
/// them. Returns a human-readable summary; "no differences" when the
/// measurements agree everywhere.
///
/// # Errors
///
/// Returns a message when either document is not a
/// [`REPORT_SCHEMA`] report.
pub fn diff_reports(before: &str, after: &str) -> Result<String, String> {
    let load = |text: &str, which: &str| -> Result<BTreeMap<String, Value>, String> {
        let doc = json::parse(text).map_err(|e| format!("{which} report: {e}"))?;
        let schema = doc.get("schema").and_then(Value::as_str).unwrap_or("");
        if schema != REPORT_SCHEMA {
            return Err(format!(
                "{which} report: unsupported schema `{schema}` (want `{REPORT_SCHEMA}`)"
            ));
        }
        let cells = doc
            .get("cells")
            .and_then(Value::as_arr)
            .ok_or_else(|| format!("{which} report: missing `cells`"))?;
        let mut map = BTreeMap::new();
        for cell in cells {
            let key = diff_key(cell)
                .ok_or_else(|| format!("{which} report: cell missing config fields"))?;
            map.insert(key, cell.clone());
        }
        Ok(map)
    };
    let a = load(before, "before")?;
    let b = load(after, "after")?;

    let mut out = String::new();
    let mut changes = 0usize;
    for (key, cell_a) in &a {
        match b.get(key) {
            None => {
                changes += 1;
                let _ = writeln!(out, "- removed: {key}");
            }
            Some(cell_b) => {
                let ma = cell_a.get("metrics");
                let mb = cell_b.get("metrics");
                for metric in DIFF_METRICS {
                    let va = metric_text(ma, metric);
                    let vb = metric_text(mb, metric);
                    if va != vb {
                        changes += 1;
                        let _ = writeln!(out, "~ {key}: {metric} {va} -> {vb}");
                    }
                }
            }
        }
    }
    for key in b.keys() {
        if !a.contains_key(key) {
            changes += 1;
            let _ = writeln!(out, "+ added: {key}");
        }
    }
    if changes == 0 {
        out.push_str("no differences\n");
    } else {
        let _ = writeln!(out, "{changes} difference(s)");
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{SweepOutcome, SweepStats};
    use crate::spec::{CellConfig, GridSpec};
    use crate::store::{CellKey, CellResult};
    use lifepred_core::SitePolicy;
    use lifepred_heap::ArenaConfig;

    fn outcome_fixture() -> SweepOutcome {
        let spec = GridSpec {
            name: "fixture".into(),
            traces: vec!["a.lpt".into()],
            backends: vec![Backend::Offline, Backend::FirstFit],
            thresholds: vec![16384, 32768],
            ..GridSpec::default()
        };
        let outcomes = spec
            .cells()
            .into_iter()
            .enumerate()
            .map(|(i, cell)| {
                let result = CellResult {
                    program: "prog".into(),
                    total_allocs: 100,
                    total_bytes: 6400,
                    arena_allocs: if cell.backend.predicts() { 90 } else { 0 },
                    arena_bytes: if cell.backend.predicts() { 5000 } else { 0 },
                    max_heap_bytes: 8192 + i as u64,
                    short_alloc_pct: if cell.backend.predicts() { 90.0 } else { 0.0 },
                    short_byte_pct: 78.0,
                    error_byte_pct: 1.25,
                    epochs: 0,
                    elapsed_ms: i as u64, // must never leak into renders
                };
                CellOutcome {
                    key: CellKey(i as u64 + 1),
                    cell,
                    result: Some(result),
                    cached: i % 2 == 0,
                    error: None,
                }
            })
            .collect::<Vec<_>>();
        SweepOutcome {
            spec,
            stats: SweepStats {
                cells: outcomes.len(),
                unique: 3,
                cache_hits: 0,
                computed: 3,
                errors: 0,
                cancelled: false,
                elapsed_ms: 7,
            },
            outcomes,
            metrics: Default::default(),
        }
    }

    #[test]
    fn table_groups_by_backend_and_pins_columns() {
        let table = render_table(&outcome_fixture());
        assert!(table.contains("backend=offline"), "{table}");
        assert!(table.contains("backend=firstfit"), "{table}");
        assert!(table.contains("threshold=16384"), "{table}");
        assert!(table.contains("threshold=32768"), "{table}");
        assert!(table.contains("90.0/1.2/"), "{table}");
        assert!(table.contains("-/-/"), "baselines show no pcts: {table}");
    }

    #[test]
    fn renders_ignore_run_dependent_fields() {
        let a = outcome_fixture();
        let mut b = outcome_fixture();
        // Same measurements, different run accounting / cache paths.
        b.stats.cache_hits = 3;
        b.stats.computed = 0;
        b.stats.elapsed_ms = 999;
        for o in &mut b.outcomes {
            o.cached = !o.cached;
            if let Some(r) = &mut o.result {
                r.elapsed_ms += 1000;
            }
        }
        assert_eq!(render_table(&a), render_table(&b));
        assert_eq!(render_csv(&a), render_csv(&b));
    }

    #[test]
    fn csv_has_one_row_per_cell() {
        let out = outcome_fixture();
        let csv = render_csv(&out);
        assert_eq!(csv.lines().count(), 1 + out.outcomes.len());
        assert!(csv.lines().skip(1).all(|l| l.ends_with(",ok")), "{csv}");
    }

    #[test]
    fn json_report_diffs_clean_against_itself() {
        let report = render_json(&outcome_fixture());
        let diff = diff_reports(&report, &report).expect("diff");
        assert_eq!(diff, "no differences\n");
    }

    #[test]
    fn diff_spots_changed_and_missing_cells() {
        let a = outcome_fixture();
        let mut b = outcome_fixture();
        if let Some(r) = &mut b.outcomes[0].result {
            r.max_heap_bytes += 4096;
        }
        b.outcomes.pop();
        let diff = diff_reports(&render_json(&a), &render_json(&b)).expect("diff");
        assert!(diff.contains("max_heap_bytes"), "{diff}");
        assert!(diff.contains("removed"), "{diff}");
        assert!(!diff.contains("no differences"), "{diff}");
    }

    #[test]
    fn errored_cells_render_as_err() {
        let mut out = outcome_fixture();
        out.outcomes[0].result = None;
        out.outcomes[0].error = Some("boom".into());
        assert!(render_table(&out).contains("ERR"));
        assert!(render_csv(&out).contains(",error"));
        let json = render_json(&out);
        assert!(json.contains("\"error\": \"boom\""));
        // The errored report still parses and diffs.
        diff_reports(&json, &json).expect("diff");
    }

    #[test]
    fn baseline_rows_use_trace_labels_when_result_missing() {
        let mut out = outcome_fixture();
        for o in &mut out.outcomes {
            o.result = None;
        }
        let table = render_table(&out);
        assert!(table.contains("a.lpt"), "{table}");
        assert!(table.contains('…'), "{table}");
    }

    #[test]
    fn fixture_cell_policy_is_rendered() {
        let out = outcome_fixture();
        assert_eq!(out.outcomes[0].cell.policy, SitePolicy::Complete);
        assert_eq!(out.outcomes[0].cell.arena, ArenaConfig::default());
        let cfg: &CellConfig = &out.outcomes[0].cell;
        assert!(render_table(&out).contains(&format!("policy={}", cfg.policy)));
    }
}
