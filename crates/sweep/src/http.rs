//! A minimal, dependency-free HTTP/1.1 layer for the serve endpoint.
//!
//! Scope is deliberately tiny: parse one request (line + headers +
//! `Content-Length` body) off a blocking stream, write one response,
//! always `Connection: close`. No keep-alive, no chunked encoding, no
//! TLS — the endpoint is a localhost metrics/control port, not a web
//! server. Limits (header block ≤ 8 KiB, body ≤ 1 MiB) and the socket
//! timeouts the caller sets bound every read so a stuck client cannot
//! wedge a worker.

use std::io::{Read, Write};

/// Maximum accepted request head (request line + headers).
pub const MAX_HEAD_BYTES: usize = 8 * 1024;
/// Maximum accepted request body.
pub const MAX_BODY_BYTES: usize = 1024 * 1024;

/// One parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Upper-case method (`GET`, `POST`, …).
    pub method: String,
    /// Request target as sent (path + optional query).
    pub path: String,
    /// Raw body bytes (empty without `Content-Length`).
    pub body: Vec<u8>,
}

/// One response to write.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// A `200 OK` plain-text response.
    pub fn text(body: impl Into<String>) -> Response {
        Response {
            status: 200,
            content_type: "text/plain; charset=utf-8",
            body: body.into().into_bytes(),
        }
    }

    /// A JSON response with the given status.
    pub fn json(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            content_type: "application/json",
            body: body.into().into_bytes(),
        }
    }

    /// An error response with a plain-text message line.
    pub fn error(status: u16, msg: impl std::fmt::Display) -> Response {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            body: format!("{msg}\n").into_bytes(),
        }
    }
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    }
}

/// Reads one request off `stream`.
///
/// # Errors
///
/// Returns the response that should be sent back (`400`, `408`,
/// `413`) when the request is malformed, times out, or exceeds the
/// size limits.
pub fn read_request(stream: &mut impl Read) -> Result<Request, Response> {
    // Accumulate until the blank line ending the head.
    let mut head = Vec::with_capacity(512);
    let mut byte = [0u8; 1];
    let head_end = loop {
        match stream.read(&mut byte) {
            Ok(0) => return Err(Response::error(400, "connection closed mid-request")),
            Ok(_) => head.push(byte[0]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                return Err(Response::error(408, "request timed out"))
            }
            Err(e) => return Err(Response::error(400, format!("read failed: {e}"))),
        }
        if head.ends_with(b"\r\n\r\n") {
            break head.len();
        }
        if head.len() > MAX_HEAD_BYTES {
            return Err(Response::error(413, "request head too large"));
        }
    };
    let head_text = std::str::from_utf8(&head[..head_end])
        .map_err(|_| Response::error(400, "request head is not UTF-8"))?;
    let mut lines = head_text.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ');
    let (Some(method), Some(path), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return Err(Response::error(400, "malformed request line"));
    };
    if !version.starts_with("HTTP/1.") {
        return Err(Response::error(400, "unsupported protocol version"));
    }
    let mut content_length = 0usize;
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(Response::error(400, "malformed header line"));
        };
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value
                .trim()
                .parse()
                .map_err(|_| Response::error(400, "bad Content-Length"))?;
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(Response::error(413, "request body too large"));
    }
    let mut body = vec![0u8; content_length];
    if content_length > 0 {
        stream.read_exact(&mut body).map_err(|e| {
            if e.kind() == std::io::ErrorKind::WouldBlock
                || e.kind() == std::io::ErrorKind::TimedOut
            {
                Response::error(408, "request body timed out")
            } else {
                Response::error(400, format!("short body: {e}"))
            }
        })?;
    }
    Ok(Request {
        method: method.to_owned(),
        path: path.to_owned(),
        body,
    })
}

/// Writes `response` to `stream` (always `Connection: close`).
///
/// # Errors
///
/// Any I/O error on the write.
pub fn write_response(stream: &mut impl Write, response: &Response) -> std::io::Result<()> {
    let head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        response.status,
        reason(response.status),
        response.content_type,
        response.body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(&response.body)?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(bytes: &[u8]) -> Result<Request, Response> {
        let mut cursor = std::io::Cursor::new(bytes.to_vec());
        read_request(&mut cursor)
    }

    #[test]
    fn parses_get_request() {
        let req = parse(b"GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n").expect("parses");
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/metrics");
        assert!(req.body.is_empty());
    }

    #[test]
    fn parses_post_with_body() {
        let req = parse(
            b"POST /sweeps HTTP/1.1\r\nContent-Length: 7\r\nContent-Type: application/json\r\n\r\n{\"a\":1}",
        )
        .expect("parses");
        assert_eq!(req.method, "POST");
        assert_eq!(req.body, b"{\"a\":1}");
    }

    #[test]
    fn rejects_garbage_and_oversize() {
        assert_eq!(parse(b"NOT HTTP\r\n\r\n").expect_err("garbage").status, 400);
        let huge_head = format!(
            "GET / HTTP/1.1\r\nX-Pad: {}\r\n\r\n",
            "a".repeat(MAX_HEAD_BYTES)
        );
        assert_eq!(
            parse(huge_head.as_bytes()).expect_err("huge head").status,
            413
        );
        let huge_body = format!(
            "POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        assert_eq!(
            parse(huge_body.as_bytes()).expect_err("huge body").status,
            413
        );
    }

    #[test]
    fn truncated_body_is_a_bad_request() {
        let err = parse(b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort").expect_err("short");
        assert_eq!(err.status, 400);
    }

    #[test]
    fn response_wire_format() {
        let mut out = Vec::new();
        write_response(&mut out, &Response::text("ok\n")).expect("write");
        let text = String::from_utf8(out).expect("utf8");
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("Content-Length: 3\r\n"), "{text}");
        assert!(text.contains("Connection: close\r\n"), "{text}");
        assert!(text.ends_with("\r\n\r\nok\n"), "{text}");
    }
}
