//! Design-space sweep engine for the lifetime-prediction testbed.
//!
//! The paper's evaluation is a grid: programs × predictors ×
//! thresholds × site policies (Tables 4–9). This crate runs that grid
//! as a first-class object:
//!
//! * [`GridSpec`] — a declarative JSON grid spec, expanded into
//!   [`CellConfig`] cells ([`spec`]);
//! * [`ResultStore`] — a content-addressed on-disk cache keyed by
//!   trace identity + canonical cell config, with crash-safe atomic
//!   writes ([`store`]);
//! * [`run_sweep`] — a dependency-aware work-stealing scheduler that
//!   trains once per database and recomputes only dirty cells
//!   ([`engine`]);
//! * [`render_table`] / [`render_csv`] / [`render_json`] /
//!   [`diff_reports`] — deterministic paper-style renders and exports
//!   ([`table`]);
//! * [`Server`] — a dependency-free blocking HTTP/1.1 endpoint
//!   exposing metrics and sweep control ([`serve`]).
//!
//! # Examples
//!
//! ```no_run
//! use lifepred_sweep::{run_sweep, CancelFlag, GridSpec, ResultStore, SweepOptions};
//!
//! let spec = GridSpec {
//!     traces: vec!["traces/cfrac.lpt".into()],
//!     ..GridSpec::default()
//! };
//! let store = ResultStore::open("results/sweep-cache").unwrap();
//! let outcome = run_sweep(
//!     &spec,
//!     &store,
//!     &SweepOptions { threads: 4, want_metrics: false },
//!     &CancelFlag::new(),
//!     None,
//! )
//! .unwrap();
//! println!("{}", lifepred_sweep::render_table(&outcome));
//! ```

#![warn(missing_docs)]

pub mod cell;
pub mod engine;
pub mod http;
pub mod serve;
pub mod spec;
pub mod store;
pub mod table;

pub use cell::{run_cell, train_for, TrainKey, TrainedDb};
pub use engine::{run_sweep, CancelFlag, CellOutcome, SweepOptions, SweepOutcome, SweepStats};
pub use serve::{install_shutdown_handlers, Server, ServerConfig};
pub use spec::{Backend, CellConfig, GridSpec, MAX_CELLS, SPEC_SCHEMA};
pub use store::{
    cell_key, trace_identity, CellKey, CellResult, ResultStore, TraceIdentity, RESULT_SCHEMA,
};
pub use table::{diff_reports, render_csv, render_json, render_table, REPORT_SCHEMA};
