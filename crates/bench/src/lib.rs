//! The experiment harness: shared code for regenerating every table of
//! the paper's evaluation.
//!
//! Each `table*` binary in `src/bin/` rebuilds the corresponding table
//! of Barrett & Zorn (PLDI'93) on our substrate: five traced workloads
//! with a training and a (larger) test input each. [`build_suite`]
//! produces the trace pairs; the binaries derive profiles, train
//! predictors, replay allocator simulations and print the rows.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod driver;
mod host;

pub use driver::run_jobs;
pub use host::BenchHost;

use lifepred_adaptive::EpochConfig;
use lifepred_core::{
    evaluate, train, PredictionReport, Profile, ShortLivedSet, SiteConfig, TrainConfig,
    DEFAULT_THRESHOLD,
};
use lifepred_heap::{replay_arena_online, OnlineReplayReport, ReplayConfig};
use lifepred_trace::{shared_registry, Trace};
use lifepred_workloads::{all_workloads, record};

/// Traces for one workload: training input and (largest) test input.
#[derive(Debug)]
pub struct SuiteEntry {
    /// Workload name (`cfrac`, ...).
    pub name: String,
    /// One-paragraph description (Table 1).
    pub description: String,
    /// Trace of the training input.
    pub train: Trace,
    /// Trace of the test input (results are reported on this one, as
    /// the paper reports on its largest input).
    pub test: Trace,
}

/// Runs every workload on its training and test inputs.
pub fn build_suite() -> Vec<SuiteEntry> {
    all_workloads()
        .into_iter()
        .map(|w| {
            let registry = shared_registry();
            let n = w.inputs().len();
            let train = record(w.as_ref(), 0, registry.clone());
            let test = record(w.as_ref(), n - 1, registry);
            SuiteEntry {
                name: w.name().to_owned(),
                description: w.description().to_owned(),
                train,
                test,
            }
        })
        .collect()
}

/// The standard analysis bundle for one suite entry.
#[derive(Debug)]
pub struct Analysis {
    /// Profile of the test trace (self-prediction training data).
    pub self_profile: Profile,
    /// Profile of the training trace (true-prediction training data).
    pub train_profile: Profile,
    /// Database trained on the test trace itself.
    pub self_db: ShortLivedSet,
    /// Database trained on the training trace.
    pub true_db: ShortLivedSet,
    /// Self-prediction report (test-on-test).
    pub self_report: PredictionReport,
    /// True-prediction report (train database, test trace).
    pub true_report: PredictionReport,
}

/// Profiles, trains and evaluates one entry under `config`.
pub fn analyze(entry: &SuiteEntry, config: &SiteConfig) -> Analysis {
    let tc = TrainConfig::default();
    let self_profile = Profile::build(&entry.test, config, DEFAULT_THRESHOLD);
    let train_profile = Profile::build(&entry.train, config, DEFAULT_THRESHOLD);
    let self_db = train(&self_profile, &tc);
    let true_db = train(&train_profile, &tc);
    let self_report = evaluate(&self_db, &entry.test);
    let true_report = evaluate(&true_db, &entry.test);
    Analysis {
        self_profile,
        train_profile,
        self_db,
        true_db,
        self_report,
        true_report,
    }
}

/// Replays the entry's **test** trace with the online learner deciding
/// every prediction as it goes — the no-training-run counterpart to
/// [`analyze`]'s true-prediction path. Where `analyze` asks "how good
/// is a predictor trained on another input?", this asks "how good is a
/// predictor that has never seen any input and corrects itself while
/// the program runs?".
pub fn analyze_online(
    entry: &SuiteEntry,
    config: &SiteConfig,
    epoch: &EpochConfig,
) -> OnlineReplayReport {
    replay_arena_online(&entry.test, config, epoch, &ReplayConfig::default())
}

/// Prints an aligned text table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line: Vec<String> = headers
        .iter()
        .enumerate()
        .map(|(i, h)| format!("{h:>w$}", w = widths[i]))
        .collect();
    println!("{}", line.join("  "));
    println!("{}", "-".repeat(line.join("  ").len()));
    for row in rows {
        let line: Vec<String> = row
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{c:>w$}", w = widths[i]))
            .collect();
        println!("{}", line.join("  "));
    }
}

/// Formats a float with one decimal.
pub fn f1(x: f64) -> String {
    format!("{x:.1}")
}

/// Formats a float with two decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analyze_produces_consistent_reports() {
        // One workload is enough for a smoke test; keep it the
        // cheapest (espresso's training input).
        let w = lifepred_workloads::by_name("espresso").expect("exists");
        let registry = shared_registry();
        let train_trace = record(w.as_ref(), 0, registry.clone());
        let test_trace = record(w.as_ref(), 1, registry);
        let entry = SuiteEntry {
            name: "espresso".into(),
            description: String::new(),
            train: train_trace,
            test: test_trace,
        };
        let a = analyze(&entry, &SiteConfig::default());
        // Self prediction admits only all-short sites: zero error.
        assert_eq!(a.self_report.error_bytes_pct, 0.0);
        assert!(a.self_report.predicted_short_bytes_pct > 0.0);
        // True prediction can't beat the actual short fraction.
        assert!(
            a.true_report.predicted_short_bytes_pct <= a.true_report.actual_short_bytes_pct + 1e-9
        );

        // The online learner, starting blind on the same test trace,
        // still finds predictable sites and reports its own coverage.
        let online = analyze_online(&entry, &SiteConfig::default(), &EpochConfig::default());
        assert_eq!(online.replay.total_allocs, entry.test.stats().total_objects);
        assert!(online.learner.epochs > 0);
        assert!(online.learner.sites > 0);
        assert!(
            online.learner.coverage_byte_pct() <= 100.0
                && online.learner.coverage_byte_pct() >= 0.0
        );
    }
}
