//! Table 7: objects and bytes landing in arenas under true prediction.

use lifepred_bench::{analyze, build_suite, f1, print_table};
use lifepred_core::SiteConfig;
use lifepred_heap::{replay_arena, ReplayConfig};

fn main() {
    let suite = build_suite();
    let rows: Vec<Vec<String>> = suite
        .iter()
        .map(|e| {
            let a = analyze(e, &SiteConfig::default());
            let r = replay_arena(&e.test, &a.true_db, &ReplayConfig::default());
            vec![
                e.name.to_uppercase(),
                f1(r.total_allocs as f64 / 1000.0),
                f1(r.arena_alloc_pct()),
                f1(r.non_arena_alloc_pct()),
                (r.total_bytes / 1024).to_string(),
                f1(r.arena_byte_pct()),
                f1(r.non_arena_byte_pct()),
            ]
        })
        .collect();
    print_table(
        "Table 7: arena allocator utilization (true prediction, 16 x 4 KB arenas)",
        &[
            "Program",
            "Allocs (1000s)",
            "Arena Allocs (%)",
            "Non-arena (%)",
            "Bytes (KB)",
            "Arena Bytes (%)",
            "Non-arena (%)",
        ],
        &rows,
    );
}
