//! Prints per-workload trace sizes and recording times — a quick way
//! to gauge how each input compares to the paper's Table 2.

use lifepred_trace::shared_registry;
use lifepred_workloads::{all_workloads, record};

fn main() {
    for w in all_workloads() {
        for i in 0..w.inputs().len() {
            let t0 = std::time::Instant::now();
            let t = record(w.as_ref(), i, shared_registry());
            println!(
                "{:10} input{} objs={:8} bytes={:10} maxlive={:8} chains={:5} calls={:8} {:?}",
                w.name(),
                i,
                t.stats().total_objects,
                t.stats().total_bytes,
                t.stats().max_live_bytes,
                t.chains().len(),
                t.stats().function_calls,
                t0.elapsed()
            );
        }
    }
}
