//! Table 8: maximum heap sizes, first-fit vs arena allocator.

use lifepred_bench::{analyze, build_suite, f1, print_table};
use lifepred_core::SiteConfig;
use lifepred_heap::{replay_arena, replay_firstfit, ReplayConfig};

fn main() {
    let suite = build_suite();
    let cfg = ReplayConfig::default();
    let rows: Vec<Vec<String>> = suite
        .iter()
        .map(|e| {
            let a = analyze(e, &SiteConfig::default());
            let ff = replay_firstfit(&e.test, &cfg);
            let self_arena = replay_arena(&e.test, &a.self_db, &cfg);
            let true_arena = replay_arena(&e.test, &a.true_db, &cfg);
            let pct = |x: u64| 100.0 * x as f64 / ff.max_heap_bytes as f64;
            vec![
                e.name.to_uppercase(),
                (ff.max_heap_bytes / 1024).to_string(),
                (self_arena.max_heap_bytes / 1024).to_string(),
                f1(pct(self_arena.max_heap_bytes)),
                (true_arena.max_heap_bytes / 1024).to_string(),
                f1(pct(true_arena.max_heap_bytes)),
            ]
        })
        .collect();
    print_table(
        "Table 8: maximum heap sizes (KB), arena area included",
        &[
            "Program",
            "First-fit Heap",
            "Self Arena Heap",
            "Self/FF (%)",
            "True Arena Heap",
            "True/FF (%)",
        ],
        &rows,
    );
}
