//! Table 5: prediction from object size alone (self prediction).

use lifepred_bench::{analyze, build_suite, f1, print_table};
use lifepred_core::SiteConfig;

fn main() {
    let suite = build_suite();
    let rows: Vec<Vec<String>> = suite
        .iter()
        .map(|e| {
            let site_size = analyze(e, &SiteConfig::default());
            let size_only = analyze(e, &SiteConfig::size_only());
            vec![
                e.name.to_uppercase(),
                f1(size_only.self_report.actual_short_bytes_pct),
                f1(size_only.self_report.predicted_short_bytes_pct),
                size_only.self_report.sites_used.to_string(),
                f1(site_size.self_report.predicted_short_bytes_pct),
            ]
        })
        .collect();
    print_table(
        "Table 5: size-only prediction (self), vs site+size for reference",
        &[
            "Program",
            "Actual Short (%)",
            "Size-only Pred (%)",
            "Sites Used",
            "Site+Size Pred (%)",
        ],
        &rows,
    );
}
