//! Table 1: general information about the test programs.

use lifepred_bench::build_suite;

fn main() {
    println!("== Table 1: test programs ==");
    for entry in build_suite() {
        println!("\n{}", entry.name.to_uppercase());
        println!("  {}", entry.description);
        println!(
            "  training input: {} objects; test input: {} objects",
            entry.train.stats().total_objects,
            entry.test.stats().total_objects
        );
    }
}
