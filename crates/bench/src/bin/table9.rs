//! Table 9: modeled instructions per allocation and free.

use lifepred_bench::{analyze, build_suite, print_table};
use lifepred_core::SiteConfig;
use lifepred_heap::{
    arena_costs, bsd_costs, firstfit_costs, replay_arena, replay_bsd, replay_firstfit,
    PredictorKind, ReplayConfig,
};

fn main() {
    let suite = build_suite();
    let cfg = ReplayConfig::default();
    let rows: Vec<Vec<String>> = suite
        .iter()
        .map(|e| {
            let a = analyze(e, &SiteConfig::default());
            let bsd = bsd_costs(&replay_bsd(&e.test, &cfg));
            let ff = firstfit_costs(&replay_firstfit(&e.test, &cfg));
            let ar = replay_arena(&e.test, &a.true_db, &cfg);
            let len4 = arena_costs(&ar, PredictorKind::Len4);
            let cce = arena_costs(&ar, PredictorKind::Cce);
            let c = |x: f64| format!("{x:.0}");
            vec![
                e.name.to_uppercase(),
                c(bsd.alloc_instr),
                c(bsd.free_instr),
                c(bsd.total()),
                c(ff.alloc_instr),
                c(ff.free_instr),
                c(ff.total()),
                c(len4.alloc_instr),
                c(len4.free_instr),
                c(len4.total()),
                c(cce.alloc_instr),
                c(cce.free_instr),
                c(cce.total()),
            ]
        })
        .collect();
    print_table(
        "Table 9: instructions per alloc/free (true prediction for arenas)",
        &[
            "Program", "BSD a", "BSD f", "BSD a+f", "FF a", "FF f", "FF a+f", "Len4 a", "Len4 f",
            "Len4 a+f", "CCE a", "CCE f", "CCE a+f",
        ],
        &rows,
    );
}
