//! Table 6: effect of call-chain length on prediction and locality.

use lifepred_bench::{build_suite, print_table};
use lifepred_core::{
    evaluate, train, Profile, SiteConfig, SitePolicy, TrainConfig, DEFAULT_THRESHOLD,
};

fn main() {
    let suite = build_suite();
    let lengths: Vec<SitePolicy> = (1..=7)
        .map(SitePolicy::LastN)
        .chain([SitePolicy::Complete])
        .collect();

    let mut rows = Vec::new();
    for policy in &lengths {
        let config = SiteConfig {
            policy: *policy,
            ..SiteConfig::default()
        };
        let mut row = vec![policy.to_string()];
        for e in &suite {
            let profile = Profile::build(&e.test, &config, DEFAULT_THRESHOLD);
            let db = train(&profile, &TrainConfig::default());
            let report = evaluate(&db, &e.test);
            row.push(format!("{:.0}", report.predicted_short_bytes_pct));
            row.push(format!("{:.0}", report.new_ref_pct));
        }
        rows.push(row);
    }

    let mut headers: Vec<String> = vec!["Chain Length".to_owned()];
    for e in &suite {
        headers.push(format!("{} Pred(%)", e.name));
        headers.push(format!("{} NewRef(%)", e.name));
    }
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    print_table(
        "Table 6: call-chain length vs short-lived prediction (self)",
        &header_refs,
        &rows,
    );
    println!("\n(The \u{221e} row is the complete chain with recursion-cycle elimination.)");
}
