//! Table 4: bytes predicted short-lived from allocation site + size,
//! self and true prediction.

use lifepred_bench::{analyze, build_suite, f1, f2, print_table};
use lifepred_core::SiteConfig;

fn main() {
    let suite = build_suite();
    let rows: Vec<Vec<String>> = suite
        .iter()
        .map(|e| {
            let a = analyze(e, &SiteConfig::default());
            vec![
                e.name.to_uppercase(),
                a.self_report.total_sites.to_string(),
                f1(a.self_report.actual_short_bytes_pct),
                a.self_report.sites_used.to_string(),
                f1(a.self_report.predicted_short_bytes_pct),
                f2(a.self_report.error_bytes_pct),
                a.true_report.sites_used.to_string(),
                f1(a.true_report.predicted_short_bytes_pct),
                f2(a.true_report.error_bytes_pct),
            ]
        })
        .collect();
    print_table(
        "Table 4: bytes predicted short-lived by site+size (threshold 32 KB)",
        &[
            "Program",
            "Total Sites",
            "Actual Short (%)",
            "Self Sites",
            "Self Pred (%)",
            "Self Err (%)",
            "True Sites",
            "True Pred (%)",
            "True Err (%)",
        ],
        &rows,
    );
}
