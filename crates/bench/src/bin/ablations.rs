//! Ablation studies beyond the paper's tables: threshold sweep, arena
//! geometry sweep, relaxed training rule, and CCE collision behaviour.

use lifepred_bench::{build_suite, f1, print_table, SuiteEntry};
use lifepred_core::{evaluate, train, Profile, SiteConfig, SiteExtractor, SiteKey, TrainConfig};
use lifepred_heap::{replay_arena, ArenaConfig, ReplayConfig};
use std::collections::{HashMap, HashSet};

fn main() {
    let suite = build_suite();
    threshold_sweep(&suite);
    arena_geometry_sweep(&suite);
    relaxed_rule(&suite);
    cce_collisions(&suite);
}

/// How the short-lived threshold changes prediction coverage (the
/// paper fixes 32 KB and notes the choice is application-dependent).
fn threshold_sweep(suite: &[SuiteEntry]) {
    let thresholds = [8 * 1024, 16 * 1024, 32 * 1024, 64 * 1024, 128 * 1024];
    let mut rows = Vec::new();
    for e in suite {
        let mut row = vec![e.name.to_uppercase()];
        for &t in &thresholds {
            let p = Profile::build(&e.test, &SiteConfig::default(), t);
            let db = train(
                &p,
                &TrainConfig {
                    threshold: t,
                    ..TrainConfig::default()
                },
            );
            let r = evaluate(&db, &e.test);
            row.push(format!("{:.0}", r.predicted_short_bytes_pct));
        }
        rows.push(row);
    }
    print_table(
        "Ablation A: short-lived threshold vs predicted bytes % (self)",
        &["Program", "8KB", "16KB", "32KB", "64KB", "128KB"],
        &rows,
    );
}

/// Arena count × size: the paper chose 16 × 4 KB "with the intuition
/// that ... the space in the first half can be re-used".
fn arena_geometry_sweep(suite: &[SuiteEntry]) {
    let geometries = [
        (4usize, 16 * 1024u32),
        (8, 8 * 1024),
        (16, 4 * 1024),
        (32, 2 * 1024),
        (64, 1024),
    ];
    let mut rows = Vec::new();
    for e in suite {
        let p = Profile::build(&e.train, &SiteConfig::default(), 32 * 1024);
        let db = train(&p, &TrainConfig::default());
        let mut row = vec![e.name.to_uppercase()];
        for &(count, size) in &geometries {
            let cfg = ReplayConfig {
                arena: ArenaConfig {
                    arena_count: count,
                    arena_size: size,
                },
            };
            let r = replay_arena(&e.test, &db, &cfg);
            row.push(format!("{:.0}", r.arena_alloc_pct()));
        }
        rows.push(row);
    }
    print_table(
        "Ablation B: arena geometry (count x size, 64 KB total) vs arena allocs % (true)",
        &["Program", "4x16K", "8x8K", "16x4K", "32x2K", "64x1K"],
        &rows,
    );
}

/// Relaxing the all-short rule: admit sites with up to X% long-lived
/// bytes — more coverage, at the price of mispredictions.
fn relaxed_rule(suite: &[SuiteEntry]) {
    let fractions = [0.0, 0.01, 0.05, 0.20];
    let mut rows = Vec::new();
    for e in suite {
        let p = Profile::build(&e.train, &SiteConfig::default(), 32 * 1024);
        let mut row = vec![e.name.to_uppercase()];
        for &f in &fractions {
            let db = train(
                &p,
                &TrainConfig {
                    max_long_fraction: f,
                    ..TrainConfig::default()
                },
            );
            let r = evaluate(&db, &e.test);
            row.push(format!(
                "{}/{}",
                f1(r.predicted_short_bytes_pct),
                f1(r.error_bytes_pct)
            ));
        }
        rows.push(row);
    }
    print_table(
        "Ablation C: relaxed admission (pred%/err%, true prediction)",
        &["Program", "all-short", "1% long", "5% long", "20% long"],
        &rows,
    );
}

/// How often Carter's 16-bit XOR keys collide: distinct full chains
/// mapping to the same encrypted site.
fn cce_collisions(suite: &[SuiteEntry]) {
    let mut rows = Vec::new();
    for e in suite {
        let mut full_sites: HashSet<SiteKey> = HashSet::new();
        let mut cce_of_full: HashMap<SiteKey, HashSet<SiteKey>> = HashMap::new();
        let mut full_ex = SiteExtractor::new(&e.test, SiteConfig::default());
        let mut cce_ex = SiteExtractor::new(&e.test, SiteConfig::encrypted());
        for record in e.test.records() {
            let full = full_ex.site_of(record);
            let cce = cce_ex.site_of(record);
            full_sites.insert(full.clone());
            cce_of_full.entry(cce).or_default().insert(full);
        }
        let collided: usize = cce_of_full
            .values()
            .filter(|fulls| fulls.len() > 1)
            .map(|fulls| fulls.len())
            .sum();
        rows.push(vec![
            e.name.to_uppercase(),
            full_sites.len().to_string(),
            cce_of_full.len().to_string(),
            collided.to_string(),
        ]);
    }
    print_table(
        "Ablation D: call-chain encryption key collisions",
        &["Program", "Full Sites", "CCE Sites", "Sites In Collisions"],
        &rows,
    );
}
