//! Table 2: allocation behaviour of the test programs (test input).

use lifepred_bench::{build_suite, f1, print_table};

fn main() {
    let suite = build_suite();
    let rows: Vec<Vec<String>> = suite
        .iter()
        .map(|e| {
            let s = e.test.stats();
            vec![
                e.name.to_uppercase(),
                f1(s.instructions as f64 / 1e6),
                format!("{:.2}", s.function_calls as f64 / 1e6),
                format!("{:.2}", s.total_bytes as f64 / 1e6),
                format!("{:.2}", s.total_objects as f64 / 1e6),
                format!("{}", s.max_live_bytes / 1000),
                format!("{}", s.max_live_objects),
                f1(s.heap_ref_pct()),
            ]
        })
        .collect();
    print_table(
        "Table 2: memory allocation behaviour (test inputs)",
        &[
            "Program",
            "Instr (x10^6)",
            "Calls (x10^6)",
            "Bytes (x10^6)",
            "Objects (x10^6)",
            "MaxBytes (x10^3)",
            "MaxObjects",
            "HeapRefs (%)",
        ],
        &rows,
    );
}
