//! Table 3: quantile histograms of object lifetimes (byte-weighted).

use lifepred_bench::{build_suite, print_table};
use lifepred_core::{Profile, SiteConfig, DEFAULT_THRESHOLD};

fn main() {
    let suite = build_suite();
    let mut rows = Vec::new();
    let mut exact_rows = Vec::new();
    for e in &suite {
        let p = Profile::build(&e.test, &SiteConfig::default(), DEFAULT_THRESHOLD);
        let q = p.lifetimes().quartiles_p2();
        rows.push(vec![
            e.name.to_uppercase(),
            q[0].to_string(),
            q[1].to_string(),
            q[2].to_string(),
            q[3].to_string(),
            q[4].to_string(),
        ]);
        let qe = p.lifetimes().quartiles_exact();
        exact_rows.push(vec![
            e.name.to_uppercase(),
            qe[0].to_string(),
            qe[1].to_string(),
            qe[2].to_string(),
            qe[3].to_string(),
            qe[4].to_string(),
        ]);
    }
    let headers = [
        "Program",
        "0% (min)",
        "25%",
        "50% (median)",
        "75%",
        "100% (max)",
    ];
    print_table(
        "Table 3: object lifetime quantiles, P2 histogram (bytes)",
        &headers,
        &rows,
    );
    print_table(
        "Table 3 (check): exact byte-weighted quantiles",
        &headers,
        &exact_rows,
    );
}
