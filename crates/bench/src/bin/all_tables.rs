//! Regenerates every table of the paper in one run (shared traces).

use lifepred_bench::{analyze, build_suite, f1, f2, print_table, Analysis, SuiteEntry};
use lifepred_core::{
    evaluate, train, Profile, SiteConfig, SitePolicy, TrainConfig, DEFAULT_THRESHOLD,
};
use lifepred_heap::{
    arena_costs, bsd_costs, firstfit_costs, replay_arena, replay_bsd, replay_firstfit,
    PredictorKind, ReplayConfig,
};

fn main() {
    let t0 = std::time::Instant::now();
    let suite = build_suite();
    let analyses: Vec<Analysis> = suite
        .iter()
        .map(|e| analyze(e, &SiteConfig::default()))
        .collect();
    eprintln!("[suite built in {:?}]", t0.elapsed());

    table1(&suite);
    table2(&suite);
    table3(&suite, &analyses);
    table4(&suite, &analyses);
    table5(&suite, &analyses);
    table6(&suite);
    table7(&suite, &analyses);
    table8(&suite, &analyses);
    table9(&suite, &analyses);
    eprintln!("[all tables in {:?}]", t0.elapsed());
}

fn table1(suite: &[SuiteEntry]) {
    println!("== Table 1: test programs ==");
    for e in suite {
        println!("\n{}: {}", e.name.to_uppercase(), e.description);
    }
}

fn table2(suite: &[SuiteEntry]) {
    let rows: Vec<Vec<String>> = suite
        .iter()
        .map(|e| {
            let s = e.test.stats();
            vec![
                e.name.to_uppercase(),
                f1(s.instructions as f64 / 1e6),
                f2(s.function_calls as f64 / 1e6),
                f2(s.total_bytes as f64 / 1e6),
                f2(s.total_objects as f64 / 1e6),
                format!("{}", s.max_live_bytes / 1000),
                format!("{}", s.max_live_objects),
                f1(s.heap_ref_pct()),
            ]
        })
        .collect();
    print_table(
        "Table 2: memory allocation behaviour (test inputs)",
        &[
            "Program",
            "Instr (x10^6)",
            "Calls (x10^6)",
            "Bytes (x10^6)",
            "Objects (x10^6)",
            "MaxBytes (x10^3)",
            "MaxObjects",
            "HeapRefs (%)",
        ],
        &rows,
    );
}

fn table3(suite: &[SuiteEntry], analyses: &[Analysis]) {
    let mut rows = Vec::new();
    for (e, a) in suite.iter().zip(analyses) {
        let q = a.self_profile.lifetimes().quartiles_p2();
        let qe = a.self_profile.lifetimes().quartiles_exact();
        rows.push(vec![
            e.name.to_uppercase(),
            q[0].to_string(),
            q[1].to_string(),
            q[2].to_string(),
            q[3].to_string(),
            q[4].to_string(),
            format!("(exact 75%: {})", qe[3]),
        ]);
    }
    print_table(
        "Table 3: object lifetime quantiles in bytes (P2 histogram)",
        &["Program", "0% (min)", "25%", "50%", "75%", "100% (max)", ""],
        &rows,
    );
}

fn table4(suite: &[SuiteEntry], analyses: &[Analysis]) {
    let rows: Vec<Vec<String>> = suite
        .iter()
        .zip(analyses)
        .map(|(e, a)| {
            vec![
                e.name.to_uppercase(),
                a.self_report.total_sites.to_string(),
                f1(a.self_report.actual_short_bytes_pct),
                a.self_report.sites_used.to_string(),
                f1(a.self_report.predicted_short_bytes_pct),
                f2(a.self_report.error_bytes_pct),
                a.true_report.sites_used.to_string(),
                f1(a.true_report.predicted_short_bytes_pct),
                f2(a.true_report.error_bytes_pct),
            ]
        })
        .collect();
    print_table(
        "Table 4: bytes predicted short-lived by site+size (threshold 32 KB)",
        &[
            "Program",
            "Total Sites",
            "Actual Short (%)",
            "Self Sites",
            "Self Pred (%)",
            "Self Err (%)",
            "True Sites",
            "True Pred (%)",
            "True Err (%)",
        ],
        &rows,
    );
}

fn table5(suite: &[SuiteEntry], analyses: &[Analysis]) {
    let rows: Vec<Vec<String>> = suite
        .iter()
        .zip(analyses)
        .map(|(e, a)| {
            let size_only = analyze(e, &SiteConfig::size_only());
            vec![
                e.name.to_uppercase(),
                f1(size_only.self_report.actual_short_bytes_pct),
                f1(size_only.self_report.predicted_short_bytes_pct),
                size_only.self_report.sites_used.to_string(),
                f1(a.self_report.predicted_short_bytes_pct),
            ]
        })
        .collect();
    print_table(
        "Table 5: size-only prediction (self), site+size for reference",
        &[
            "Program",
            "Actual Short (%)",
            "Size-only Pred (%)",
            "Sites Used",
            "Site+Size Pred (%)",
        ],
        &rows,
    );
}

fn table6(suite: &[SuiteEntry]) {
    let lengths: Vec<SitePolicy> = (1..=7)
        .map(SitePolicy::LastN)
        .chain([SitePolicy::Complete])
        .collect();
    let mut rows = Vec::new();
    for policy in &lengths {
        let config = SiteConfig {
            policy: *policy,
            ..SiteConfig::default()
        };
        let mut row = vec![policy.to_string()];
        for e in suite {
            let profile = Profile::build(&e.test, &config, DEFAULT_THRESHOLD);
            let db = train(&profile, &TrainConfig::default());
            let report = evaluate(&db, &e.test);
            row.push(format!("{:.0}", report.predicted_short_bytes_pct));
            row.push(format!("{:.0}", report.new_ref_pct));
        }
        rows.push(row);
    }
    let mut headers: Vec<String> = vec!["Chain".to_owned()];
    for e in suite {
        headers.push(format!("{} P%", e.name));
        headers.push(format!("{} R%", e.name));
    }
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    print_table(
        "Table 6: call-chain length vs prediction (self; P=pred bytes, R=new refs)",
        &header_refs,
        &rows,
    );
}

fn table7(suite: &[SuiteEntry], analyses: &[Analysis]) {
    let rows: Vec<Vec<String>> = suite
        .iter()
        .zip(analyses)
        .map(|(e, a)| {
            let r = replay_arena(&e.test, &a.true_db, &ReplayConfig::default());
            vec![
                e.name.to_uppercase(),
                f1(r.total_allocs as f64 / 1000.0),
                f1(r.arena_alloc_pct()),
                f1(r.non_arena_alloc_pct()),
                (r.total_bytes / 1024).to_string(),
                f1(r.arena_byte_pct()),
                f1(r.non_arena_byte_pct()),
            ]
        })
        .collect();
    print_table(
        "Table 7: arena utilization (true prediction, 16 x 4 KB arenas)",
        &[
            "Program",
            "Allocs (1000s)",
            "Arena Allocs (%)",
            "Non-arena (%)",
            "Bytes (KB)",
            "Arena Bytes (%)",
            "Non-arena (%)",
        ],
        &rows,
    );
}

fn table8(suite: &[SuiteEntry], analyses: &[Analysis]) {
    let cfg = ReplayConfig::default();
    let rows: Vec<Vec<String>> = suite
        .iter()
        .zip(analyses)
        .map(|(e, a)| {
            let ff = replay_firstfit(&e.test, &cfg);
            let self_arena = replay_arena(&e.test, &a.self_db, &cfg);
            let true_arena = replay_arena(&e.test, &a.true_db, &cfg);
            let pct = |x: u64| 100.0 * x as f64 / ff.max_heap_bytes as f64;
            vec![
                e.name.to_uppercase(),
                (ff.max_heap_bytes / 1024).to_string(),
                (self_arena.max_heap_bytes / 1024).to_string(),
                f1(pct(self_arena.max_heap_bytes)),
                (true_arena.max_heap_bytes / 1024).to_string(),
                f1(pct(true_arena.max_heap_bytes)),
            ]
        })
        .collect();
    print_table(
        "Table 8: maximum heap sizes (KB), arena area included",
        &[
            "Program",
            "First-fit",
            "Self Arena",
            "Self/FF (%)",
            "True Arena",
            "True/FF (%)",
        ],
        &rows,
    );
}

fn table9(suite: &[SuiteEntry], analyses: &[Analysis]) {
    let cfg = ReplayConfig::default();
    let rows: Vec<Vec<String>> = suite
        .iter()
        .zip(analyses)
        .map(|(e, a)| {
            let bsd = bsd_costs(&replay_bsd(&e.test, &cfg));
            let ff = firstfit_costs(&replay_firstfit(&e.test, &cfg));
            let ar = replay_arena(&e.test, &a.true_db, &cfg);
            let len4 = arena_costs(&ar, PredictorKind::Len4);
            let cce = arena_costs(&ar, PredictorKind::Cce);
            let c = |x: f64| format!("{x:.0}");
            vec![
                e.name.to_uppercase(),
                c(bsd.alloc_instr),
                c(bsd.free_instr),
                c(bsd.total()),
                c(ff.alloc_instr),
                c(ff.free_instr),
                c(ff.total()),
                c(len4.alloc_instr),
                c(len4.free_instr),
                c(len4.total()),
                c(cce.alloc_instr),
                c(cce.free_instr),
                c(cce.total()),
            ]
        })
        .collect();
    print_table(
        "Table 9: instructions per alloc/free (arena uses true prediction)",
        &[
            "Program", "BSD a", "BSD f", "BSD a+f", "FF a", "FF f", "FF a+f", "Len4 a", "Len4 f",
            "Len4 a+f", "CCE a", "CCE f", "CCE a+f",
        ],
        &rows,
    );
}
